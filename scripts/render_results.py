"""Render results/quick_scale.json into a human-readable RESULTS.md."""
import json
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
data = json.loads((ROOT / "results/quick_scale.json").read_text())

lines = ["# Quick-scale results appendix", "",
         "Generated from `results/quick_scale.json` by "
         "`scripts/render_results.py` (see EXPERIMENTS.md for the "
         "paper-vs-measured analysis).", ""]


def fmt(v):
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)


for name in sorted(data):
    entry = data[name]
    if "error" in entry:
        lines.append(f"## {name}\n\nFAILED: {entry['error']}\n")
        continue
    lines.append(f"## {name} — {entry['title']}")
    lines.append("")
    rows = entry["rows"]
    cols = []
    for row in rows:
        for key in row:
            if key not in cols:
                cols.append(key)
    lines.append("| " + " | ".join(cols) + " |")
    lines.append("|" + "---|" * len(cols))
    for row in rows:
        lines.append("| " + " | ".join(fmt(row.get(c, "")) for c in cols) + " |")
    if entry.get("notes"):
        lines.append("")
        lines.append(f"*{entry['notes']}*")
    lines.append("")

(ROOT / "results/RESULTS.md").write_text("\n".join(lines))
print(f"wrote results/RESULTS.md ({len(lines)} lines)")
