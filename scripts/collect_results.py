"""Collect quick-scale results for EXPERIMENTS.md."""
import json, time
from repro.experiments import ALL_EXPERIMENTS

out = {}
for name, runner in ALL_EXPERIMENTS.items():
    t0 = time.time()
    try:
        res = runner("quick")
        out[name] = {"title": res.title, "rows": res.rows, "notes": res.notes,
                     "wall_s": round(time.time() - t0, 1)}
        print(f"{name}: done in {out[name]['wall_s']}s", flush=True)
    except Exception as e:
        out[name] = {"error": str(e)}
        print(f"{name}: FAILED {e}", flush=True)
with open("results/quick_scale.json", "w") as f:
    json.dump(out, f, indent=1, default=str)

# render key figures as ASCII for eyeballing against the paper
try:
    from repro.experiments import fig01, fig14
    from repro.experiments.plotting import pareto_plot, sweep_plot
    with open("results/figures.txt", "w") as f:
        f.write(pareto_plot(fig01.run("quick")) + "\n\n")
        f.write(sweep_plot(fig14.run(), "threads",
                           ["banked_mm2", "virec_8_regs_mm2",
                            "virec_32_regs_mm2"],
                           row_filter=lambda r: isinstance(r.get("threads"),
                                                           int)) + "\n")
    print("figures.txt written", flush=True)
except Exception as exc:  # pragma: no cover
    print(f"figure rendering failed: {exc}", flush=True)
print("ALL DONE", flush=True)
