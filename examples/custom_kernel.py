#!/usr/bin/env python3
"""Write your own near-memory kernel and run it on every core model.

Shows the full user-facing flow with no workload-registry sugar:
assemble a kernel, place data, create threads, pick a memory system, and
run it on banked / ViReC / NSF cores.  The kernel is a simple AXPY-like
update with an indirect index — the kind of operation near-memory systems
are built for.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro.core.cgmt import BankedCore, ContextLayout, make_threads
from repro.isa import X, assemble
from repro.memory import Cache, CacheConfig, Crossbar, DRAM, MainMemory
from repro.stats.counters import Stats
from repro.system.offload import offload_contexts
from repro.virec import ViReCConfig, ViReCCore, make_nsf_core

KERNEL = """
start:
    mov  x2, #chunk
    mul  x3, x0, x2          ; i = tid * chunk
    add  x4, x3, x2
    adr  x5, idx
    adr  x6, vec
    adr  x7, out
    mov  x8, #3              ; scale factor
loop:
    ldr  x9, [x5, x3, lsl #3]    ; j = idx[i]
    ldr  x10, [x6, x9, lsl #3]   ; v = vec[j]
    madd x10, x10, x8, x3        ; v = v*3 + i
    str  x10, [x7, x3, lsl #3]
    add  x3, x3, #1
    cmp  x3, x4
    b.lt loop
    halt
"""

USED_REGS = tuple(range(11))  # x0..x10 (flat indices)


def build_system():
    """One NDP memory stack: L1s in front of a crossbar + DDR5-like DRAM."""
    stats = Stats("sys")
    dram = DRAM(stats=stats.child("dram"))
    xbar = Crossbar(dram, latency=6, stats=stats.child("xbar"))
    icache = Cache(CacheConfig(name="ic", size_bytes=32 * 1024, assoc=4,
                               latency=2), xbar, stats.child("ic"))
    dcache = Cache(CacheConfig(name="dc", size_bytes=8 * 1024, assoc=4,
                               latency=2, mshrs=24), xbar, stats.child("dc"))
    return icache, dcache, stats


def main() -> None:
    n_threads, chunk = 8, 32
    n = n_threads * chunk
    rng = np.random.default_rng(42)
    idx = rng.integers(0, 2048, size=n)
    vec = rng.integers(0, 1000, size=2048)
    symbols = {"idx": 0x100000, "vec": 0x200000, "out": 0x300000,
               "chunk": chunk}
    program = assemble(KERNEL, symbols=symbols)
    expected = [int(vec[j]) * 3 + i for i, j in enumerate(idx)]

    layout = ContextLayout(used_regs=USED_REGS)
    print(f"{'core':<10} {'cycles':>8} {'IPC':>7} {'switches':>9} {'RF hit':>8}")
    for name, factory in [
        ("banked", lambda p, ic, dc, m, th: BankedCore(p, ic, dc, m, th,
                                                       layout=layout)),
        ("virec", lambda p, ic, dc, m, th: ViReCCore(
            p, ic, dc, m, th, virec=ViReCConfig(rf_size=40), layout=layout)),
        ("nsf", lambda p, ic, dc, m, th: make_nsf_core(
            p, ic, dc, m, th, rf_size=40, layout=layout)),
    ]:
        mem = MainMemory()
        mem.write_array(symbols["idx"], idx)
        mem.write_array(symbols["vec"], vec)
        icache, dcache, _ = build_system()
        threads = make_threads(n_threads,
                               init_regs=[{X(0): t} for t in range(n_threads)])
        offload_contexts(mem, layout, threads)
        core = factory(program, icache, dcache, mem, threads)
        stats = core.run()
        got = mem.read_array(symbols["out"], n)
        assert got == expected, f"{name}: wrong results!"
        hit = f"{stats['rf_hit_rate']:.1%}" if "rf_hit_rate" in stats else "--"
        print(f"{name:<10} {int(stats['cycles']):>8} {stats['ipc']:>7.3f} "
              f"{int(stats['context_switches']):>9} {hit:>8}")
    print("\nAll three cores produced bit-identical results; they differ "
          "only in time and area.")


if __name__ == "__main__":
    main()
