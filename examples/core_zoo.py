#!/usr/bin/env python3
"""Run one kernel across every core model in the repository.

A side-by-side tour of the design space the paper navigates: the
single-thread in-order baseline, the OoO host, both classic multithreading
styles (banked CGMT and an idealized barrel/FGMT core), software context
switching, the NSF register cache, both RF-prefetching strategies, and
ViReC itself — all bit-identical in results, differing only in cycles and
silicon.

Run:  python examples/core_zoo.py [workload]
"""

import sys

from repro.area import (
    banked_core_area,
    inorder_core_area,
    ooo_core_area,
    prefetch_core_area,
    swctx_core_area,
    virec_core_area,
)
from repro.system import RunConfig, run_config

THREADS = 8
PER_THREAD = 32


def area_of(core_type: str, rf_entries: int) -> float:
    return {
        "inorder": inorder_core_area(),
        "ooo": ooo_core_area(),
        "banked": banked_core_area(THREADS),
        "fgmt": banked_core_area(THREADS),
        "swctx": swctx_core_area(),
        "nsf": virec_core_area(rf_entries),
        "virec": virec_core_area(rf_entries),
        "prefetch-full": prefetch_core_area(),
        "prefetch-exact": prefetch_core_area(),
    }[core_type]


def main(workload: str = "gather") -> None:
    total = THREADS * PER_THREAD
    print(f"workload = {workload}, total work = {total} elements\n")
    print(f"{'core':<16} {'threads':>7} {'cycles':>9} {'IPC':>7} "
          f"{'area mm^2':>10} {'perf/area':>10}")

    rows = []
    for core_type in ("inorder", "ooo", "swctx", "banked", "fgmt",
                      "prefetch-full", "prefetch-exact", "nsf", "virec"):
        threads = 1 if core_type in ("inorder", "ooo") else THREADS
        cfg = RunConfig(workload=workload, core_type=core_type,
                        n_threads=threads, n_per_thread=total // threads,
                        context_fraction=0.8)
        r = run_config(cfg)
        rf = cfg.resolve_rf_size(8)
        rows.append((core_type, threads, r.cycles, r.ipc,
                     area_of(core_type, rf)))

    base_cycles = rows[0][2]
    for name, threads, cycles, ipc, area in rows:
        speedup = base_cycles / cycles
        print(f"{name:<16} {threads:>7} {cycles:>9} {ipc:>7.3f} "
              f"{area:>10.2f} {speedup / area:>10.3f}")

    print("\nAll rows computed identical outputs (run_config verifies each")
    print("against the workload's numpy oracle).  ViReC's column is the")
    print("paper's point: near-banked cycles at a fraction of the area.")
    print("(fgmt is an idealized barrel-processor bound — see its docstring.)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "gather")
