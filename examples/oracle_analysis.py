#!/usr/bin/env python3
"""How close is LRC to the clairvoyant optimum?

Records the register reference stream of a real multithreaded gather run,
then replays it through the register cache under every policy — including
a Belady-MIN oracle that evicts the register used furthest in the future.
This quantifies the paper's positioning of LRC as "aimed at evicting the
registers used furthest in the future, similar to Belady's MIN".

Run:  python examples/oracle_analysis.py
"""

from repro import workloads
from repro.core.base import ThreadState
from repro.memory import NDPMemorySystem
from repro.system.config import ndp_dcache, ndp_icache, table1_dram
from repro.system.offload import offload_contexts
from repro.virec import ViReCConfig, ViReCCore
from repro.virec.oracle import AccessTraceRecorder, policy_quality, simulate_trace


def record_trace(n_threads=8, n_per_thread=64, rf_size=40):
    inst = workloads.get("gather").build(n_threads=n_threads,
                                         n_per_thread=n_per_thread)
    memsys = NDPMemorySystem(n_cores=1, dcache=ndp_dcache(),
                             icache=ndp_icache(), dram=table1_dram())
    ports = memsys.ports(0)
    threads = inst.threads()
    offload_contexts(inst.memory, inst.layout(), threads, inst.init_regs)
    for th in threads:
        th.state = ThreadState.BLOCKED
    core = ViReCCore(inst.program, ports.icache, ports.dcache, inst.memory,
                     threads, virec=ViReCConfig(rf_size=rf_size),
                     layout=inst.layout())
    trace = AccessTraceRecorder.attach(core)
    core.run()
    return trace, inst


def main() -> None:
    print("Recording an 8-thread gather run (ViReC, 40-entry cache)...")
    trace, inst = record_trace()
    print(f"  {trace.accesses} register references, "
          f"{sum(1 for e in trace.events if e.kind == 'switch')} context switches\n")

    active_per_thread = len(inst.active_regs)
    for frac in (0.4, 0.6, 0.8):
        capacity = max(8, round(frac * 8 * active_per_thread))
        q = policy_quality(trace, capacity)
        opt = q.pop("opt_hit_rate")
        q.pop("opt")
        print(f"capacity {capacity:3d} entries ({int(frac * 100)}% context) — "
              f"Belady-MIN hit rate {opt:.1%}")
        for name in ("plru", "lru", "mrt-plru", "mrt-lru", "lrc"):
            r = simulate_trace(trace, capacity, name)
            print(f"    {name:<9} hit {r.hit_rate:.1%}   "
                  f"= {q[name]:.1%} of optimal")
        print()

    print("LRC tracks the clairvoyant policy within a few percent while")
    print("using only 7 bits of metadata per entry — the paper's argument")
    print("for a scheduling-aware policy over bigger hardware.")


if __name__ == "__main__":
    main()
