#!/usr/bin/env python3
"""A multi-processor near-memory node under increasing system load.

Builds 1-8 ViReC processors sharing a crossbar and DDR5-like DRAM (the
Figure 11 system), offloads a batch of gather tasks to each, and shows how
observed memory latency climbs with activity — and how per-core register
cache occupancy responds.

Run:  python examples/offload_multicore.py
"""

from repro.system import RunConfig, run_config
from repro.virec.analysis import RegisterCacheMonitor


def main() -> None:
    print(f"{'cores':>6} {'threads':>8} {'cycles':>9} {'node IPC':>9} "
          f"{'DRAM latency':>13} {'RF hit':>8}")
    for cores in (1, 2, 4, 8):
        cfg = RunConfig(workload="gather", core_type="virec",
                        n_threads=8, n_cores=cores, n_per_thread=48,
                        context_fraction=0.8)
        r = run_config(cfg)
        dram = r.stats.child("mem").child("dram")
        reqs = dram["reads"] + dram["writes"]
        lat = dram["busy_cycles"] / reqs if reqs else 0
        print(f"{cores:>6} {8:>8} {r.cycles:>9} {r.ipc:>9.3f} "
              f"{lat:>12.1f}c {r.rf_hit_rate:>7.1%}")

    print("\nObserved latency grows with active processors (crossbar and")
    print("bank contention); aggregate node IPC still scales because each")
    print("processor hides its own latency behind thread switching.")
    print("\nRegister-cache occupancy on a single processor:")

    # a closer look at one core with the cache monitor
    from repro import workloads
    from repro.core.base import ThreadState
    from repro.memory import NDPMemorySystem
    from repro.system.config import ndp_dcache, ndp_icache, table1_dram
    from repro.system.offload import offload_contexts
    from repro.virec import ViReCConfig, ViReCCore

    inst = workloads.get("gather").build(n_threads=8, n_per_thread=48)
    memsys = NDPMemorySystem(n_cores=1, dcache=ndp_dcache(),
                             icache=ndp_icache(), dram=table1_dram())
    ports = memsys.ports(0)
    threads = inst.threads()
    offload_contexts(inst.memory, inst.layout(), threads, inst.init_regs)
    for th in threads:
        th.state = ThreadState.BLOCKED
    core = ViReCCore(inst.program, ports.icache, ports.dcache, inst.memory,
                     threads, virec=ViReCConfig(rf_size=45),
                     layout=inst.layout())
    monitor = RegisterCacheMonitor(core)
    core.run()
    print()
    print(monitor.finish().summary())


if __name__ == "__main__":
    main()
