#!/usr/bin/env python3
"""Thread scaling with a fixed register budget (the Section 2 argument).

A ViReC processor with a fixed 32-entry register cache can run 4 threads at
100% context *or* squeeze in 8 threads at ~55% context — and on a
miss-dominated kernel the extra threads win, something a banked design with
4 fixed banks simply cannot do.

Run:  python examples/thread_scaling.py [workload]
"""

import sys

from repro import workloads
from repro.system import RunConfig, run_config


def main(workload: str = "gather") -> None:
    rf_budget = 32
    total_work = 512
    print(f"workload={workload}, fixed register budget = {rf_budget} entries,"
          f" total work = {total_work} elements\n")
    print(f"{'threads':>8}  {'context/thread':>15}  {'cycles':>9}  "
          f"{'RF hit rate':>12}  {'speedup':>8}")

    active = len(workloads.get(workload).build(n_threads=2, n_per_thread=4)
                 .active_regs)
    base_cycles = None
    for threads in (2, 4, 6, 8, 10):
        cfg = RunConfig(workload=workload, core_type="virec",
                        n_threads=threads, n_per_thread=total_work // threads,
                        rf_size=rf_budget)
        r = run_config(cfg)
        pct = 100.0 * rf_budget / (threads * active)
        if base_cycles is None:
            base_cycles = r.cycles
        print(f"{threads:>8}  {pct:>14.0f}%  {r.cycles:>9}  "
              f"{r.rf_hit_rate:>11.1%}  {base_cycles / r.cycles:>8.2f}x")

    print("\nWith the same silicon, scheduling more threads with smaller")
    print("per-thread contexts hides more memory latency — until the")
    print("register cache (and the dcache behind it) starts thrashing.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "gather")
