#!/usr/bin/env python3
"""Walk through the replacement-policy examples of Figures 5 and 6.

Builds a tiny two-thread register cache and replays the paper's scenarios:

* Figure 5 — on a context switch, plain PLRU evicts registers of the thread
  that is about to run (it only sees age), while MRT-PLRU targets the most
  recently *suspended* thread.
* Figure 6 — within a thread, saturated PLRU ages cannot distinguish an
  in-flight (flushed, about-to-replay) register from a committed one; the
  LRC commit bit can.

Run:  python examples/policy_walkthrough.py
"""

import numpy as np

from repro.virec.policies import LRC, MRTPLRU, PLRU


def banner(text: str) -> None:
    print(f"\n=== {text} ===")


def show(policy, owner, names) -> None:
    prio = policy.priority()
    for i, name in enumerate(names):
        print(f"  entry {i} ({name}, thread {owner[i]}): "
              f"T={int(policy.T[i])} C={int(policy.C[i])} A={int(policy.A[i])} "
              f"priority={int(prio[i])}")


def figure5() -> None:
    banner("Figure 5: inter-thread reuse (PLRU vs MRT-PLRU)")
    # six registers: x2,x4,x5 of the red thread (0); x2,x4,x5 of blue (1)
    names = ["red.x2", "red.x4", "red.x5", "blue.x2", "blue.x4", "blue.x5"]
    owner = np.array([0, 0, 0, 1, 1, 1])
    valid = np.ones(6, dtype=bool)

    for policy in (PLRU(6), MRTPLRU(6)):
        # red thread runs: accesses x2, x4, then x5 (x5 most recent)
        for idx in (0, 1, 2):
            policy.on_instruction(valid)
            policy.on_access(idx)
        # red's load misses the dcache -> context switch to blue
        policy.on_context_switch(owner, valid, prev_tid=0, new_tid=1)
        # blue starts executing and touches x2
        policy.on_instruction(valid)
        policy.on_access(3)
        victim = policy.select_victim(valid)
        print(f"\n{policy.name}: victim = {names[victim]}")
        show(policy, owner, names)
        if isinstance(policy, PLRU):
            print("  -> PLRU evicted an old *blue* register: blue is about to")
            print("     need it (thrash).  The paper's Figure 5(b).")
        else:
            print("  -> MRT-PLRU evicts from red, the thread that will run")
            print("     furthest in the future.  The paper's Figure 5(c).")


def figure6() -> None:
    banner("Figure 6: intra-thread reuse (MRT-PLRU vs LRC)")
    # red thread registers x2, x5 (in flight when flushed) and x0 (committed)
    names = ["red.x2", "red.x5", "red.x0"]
    valid = np.ones(3, dtype=bool)
    for policy in (MRTPLRU(3), LRC(3)):
        for idx in (0, 1, 2):
            policy.on_instruction(valid)
            policy.on_access(idx)
        for _ in range(9):
            policy.on_instruction(valid)   # ages saturate at 7
        # the context switch flushed the instructions using x2 and x5:
        policy.on_flush([0, 1])
        victim = policy.select_victim(valid)
        print(f"\n{policy.name}: victim = {names[victim]}")
        show(policy, np.zeros(3, dtype=int), names)
    print("\n  -> with saturated ages MRT-PLRU cannot see that x2/x5 will be")
    print("     replayed immediately; LRC's commit bit keeps them resident.")


if __name__ == "__main__":
    figure5()
    figure6()
