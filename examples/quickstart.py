#!/usr/bin/env python3
"""Quickstart: run the Spatter gather kernel on a ViReC near-memory processor
and compare it against a conventional banked-register-file CGMT core.

This touches the three layers most users need:
  1. pick a workload from ``repro.workloads``;
  2. describe a machine with ``repro.system.RunConfig``;
  3. simulate with ``repro.system.run_config`` and read the stats.

Run:  python examples/quickstart.py
"""

from repro.area import banked_core_area, virec_core_area
from repro.system import RunConfig, run_config


def main() -> None:
    threads = 8
    base = RunConfig(workload="gather", n_threads=threads, n_per_thread=64)

    print("Simulating gather on 8 hardware threads...\n")

    banked = run_config(base.with_(core_type="banked"))
    print(f"banked CGMT core : {banked.cycles:7d} cycles   "
          f"IPC {banked.ipc:.3f}   area {banked_core_area(threads):.2f} mm^2")

    for fraction in (1.0, 0.8, 0.4):
        cfg = base.with_(core_type="virec", context_fraction=fraction)
        r = run_config(cfg)
        rf = cfg.resolve_rf_size(7)  # gather's active context is 7 registers
        rel = banked.cycles / r.cycles
        print(f"ViReC {int(fraction * 100):3d}% ctx   : {r.cycles:7d} cycles   "
              f"IPC {r.ipc:.3f}   area {virec_core_area(rf):.2f} mm^2   "
              f"RF hit rate {r.rf_hit_rate:.1%}   {rel:.2f}x of banked")

    print("\nViReC trades a few percent of performance for ~40% less core area")
    print("(the paper's headline, Figures 1 and 14).")


if __name__ == "__main__":
    main()
