"""Regression-aware HTML reports: sparklines, grading, and the CI gate.

``build_report`` is pure data assembly over a sweep directory, so both
gate outcomes (pass and regression) are exercised on a synthetic
directory with a hand-written manifest / metrics snapshot / event log —
and once more through the CLI, asserting on the actual exit codes.
"""

import json
import math
import os

import pytest

from repro.cli import main as cli_main
from repro.stats.report_html import (DEFAULT_THRESHOLD, EXIT_REGRESSION,
                                     build_report, classify_delta,
                                     load_baseline, render_html,
                                     svg_sparkline, write_report)


# -- sparklines (SVG flavour) ------------------------------------------------
def test_svg_sparkline_normal_series():
    svg = svg_sparkline([1, 2, 3, 2])
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert "<polyline" in svg and "<circle" in svg


def test_svg_sparkline_empty_series():
    svg = svg_sparkline([])
    assert svg.startswith("<svg")
    assert "<polyline" not in svg  # an empty frame, not a crash


def test_svg_sparkline_single_point_centered():
    svg = svg_sparkline([5.0], height=28)
    assert "14.0" in svg  # flat line at mid-height; no div-by-zero


def test_svg_sparkline_constant_series_flat():
    svg = svg_sparkline([3, 3, 3, 3], height=28)
    assert svg.count(",14.0") == 4  # every point at mid-height


def test_svg_sparkline_filters_non_finite():
    svg = svg_sparkline([1.0, float("nan"), float("inf"),
                         float("-inf"), 2.0])
    assert "nan" not in svg and "inf" not in svg
    assert "<polyline" in svg
    # only NaN/inf values: degenerates to the empty frame
    assert "<polyline" not in svg_sparkline([float("nan")])


# -- delta grading -----------------------------------------------------------
def test_classify_delta_grades():
    assert classify_delta(100, 100)["severity"] == "ok"
    assert classify_delta(110, 100)["severity"] == "ok"  # improvements pass
    # warn strictly beyond threshold/2, regression strictly beyond threshold
    assert classify_delta(70, 100, threshold=0.5)["severity"] == "warn"
    assert classify_delta(40, 100, threshold=0.5)["severity"] == "regression"
    assert classify_delta(80, 100, threshold=0.5)["severity"] == "ok"


def test_classify_delta_missing_baseline_is_ok():
    assert classify_delta(100, None)["severity"] == "ok"
    assert classify_delta(None, 100)["severity"] == "ok"
    assert classify_delta(100, 0)["severity"] == "ok"
    assert classify_delta(100, -5)["severity"] == "ok"


def test_classify_delta_lower_is_better():
    entry = classify_delta(300, 100, threshold=0.5, higher_is_better=False)
    assert entry["severity"] == "regression"
    assert classify_delta(50, 100, threshold=0.5,
                          higher_is_better=False)["severity"] == "ok"


def test_load_baseline_both_shapes(tmp_path):
    bench = tmp_path / "BENCH_simspeed.json"
    bench.write_text(json.dumps({
        "bench": "simspeed",
        "results": {"virec": {"instructions": 10, "seconds": 2,
                              "instr_per_s": 5.0},
                    "skipme": {"note": "no rate"}}}))
    assert load_baseline(str(bench)) == {"virec": 5.0}
    plain = tmp_path / "plain.json"
    plain.write_text(json.dumps({"virec": 7.5, "banked": 3}))
    assert load_baseline(str(plain)) == {"virec": 7.5, "banked": 3.0}


# -- synthetic sweep directory ----------------------------------------------
def _make_sweep_dir(tmp_path, instr_per_s=8000.0):
    root = tmp_path / "swp"
    root.mkdir(parents=True)
    manifest = {
        "repro_version": "0", "python_version": "3", "platform": "test",
        "results_digest": "feedfacefeedface",
        "configs": [{"workload": "gather", "core_type": "virec",
                     "n_threads": 4, "context_fraction": 0.6, "seed": 7},
                    {"workload": "gather", "core_type": "virec",
                     "n_threads": 4, "context_fraction": 0.8, "seed": 7}],
        "results_summary": [
            {"cycles": 1000, "instructions": 400, "ipc": 0.4,
             "rf_hit_rate": 0.9},
            {"cycles": 900, "instructions": 400, "ipc": 0.44,
             "rf_hit_rate": 0.95}],
        "host_profiles": [
            {"total_s": 0.05, "phases_s": {"build": 0.01, "simulate": 0.03,
                                           "check": 0.01},
             "instr_per_s": instr_per_s, "cycles_per_s": 2e4},
            {"total_s": 0.04, "phases_s": {"build": 0.01, "simulate": 0.02,
                                           "check": 0.01},
             "instr_per_s": instr_per_s, "cycles_per_s": 2e4}],
    }
    (root / "manifest.json").write_text(json.dumps(manifest))
    metrics = {"metrics": {
        "sweep_stage_seconds": {
            "kind": "counter", "help": "",
            "series": {'stage="build"': 0.02, 'stage="simulate"': 0.05,
                       'stage="check"': 0.02}},
        "sim_vrmu_hits": {"kind": "counter", "help": "",
                          "series": {'core="0"': 900.0}},
        "sim_vrmu_misses": {"kind": "counter", "help": "",
                            "series": {'core="0"': 100.0}},
        "sim_cycles": {"kind": "gauge", "help": "", "agg": "max",
                       "series": {'core="0"': 1000.0}},
    }}
    (root / "metrics.json").write_text(json.dumps(metrics))
    events = [{"ev": "sweep_start", "t": 0.0, "total": 2},
              {"ev": "row_ok", "t": 0.5, "index": 0},
              {"ev": "row_ok", "t": 0.9, "index": 1},
              {"ev": "sweep_end", "t": 1.0}]
    (root / "sweep_events.jsonl").write_text(
        "".join(json.dumps(e) + "\n" for e in events))
    return root


def _baseline(tmp_path, rate, name="base.json"):
    path = tmp_path / name
    path.write_text(json.dumps({"bench": "simspeed", "results": {
        "virec": {"instr_per_s": rate}}}))
    return str(path)


def test_build_report_sections(tmp_path):
    root = _make_sweep_dir(tmp_path)
    report = build_report(str(root))
    assert report["summary"]["ok"] == 2 and report["summary"]["finished"]
    assert [r["label"] for r in report["rows"]] == [
        "gather/virec/t4/cf0.6", "gather/virec/t4/cf0.8"]
    stages = {s["stage"]: s for s in report["stages"]}
    assert set(stages) == {"build", "simulate", "check"}
    assert stages["simulate"]["share"] == pytest.approx(0.05 / 0.09, abs=1e-3)
    assert report["vrmu"] == [{"core": "0", "hits": 900, "misses": 100,
                               "hit_rate": 0.9, "cycles": 1000}]
    assert not report["has_regression"]  # no baseline given


def test_gate_passes_on_matching_baseline(tmp_path):
    root = _make_sweep_dir(tmp_path, instr_per_s=8000.0)
    report = build_report(str(root), baseline=_baseline(tmp_path, 8000.0))
    assert report["deltas"][0]["severity"] == "ok"
    assert not report["has_regression"]


def test_gate_fails_on_regression(tmp_path):
    root = _make_sweep_dir(tmp_path, instr_per_s=2000.0)
    # 2000 vs a 8000 baseline: -75%, well past the default 50% threshold
    report = build_report(str(root), baseline=_baseline(tmp_path, 8000.0))
    assert report["deltas"][0]["severity"] == "regression"
    assert report["has_regression"]
    # a looser threshold lets the same numbers pass
    loose = build_report(str(root), baseline=_baseline(tmp_path, 8000.0),
                         threshold=0.9)
    assert not loose["has_regression"]


def test_html_is_self_contained(tmp_path):
    root = _make_sweep_dir(tmp_path, instr_per_s=2000.0)
    report = write_report(str(root), str(root / "report.html"),
                          baseline=_baseline(tmp_path, 8000.0))
    html = (root / "report.html").read_text()
    assert html.startswith("<!DOCTYPE html>")
    assert "<style>" in html and "<svg" in html
    for external in ("http://", "https://", "src=", "@import"):
        assert external not in html, f"external asset via {external}"
    assert "REGRESSION" in html  # the badge reflects the gate
    assert "sev-regression" in html
    assert report["has_regression"]
    ok_root = _make_sweep_dir(tmp_path / "ok", instr_per_s=8000.0)
    write_report(str(ok_root), str(ok_root / "report.html"),
                 baseline=_baseline(tmp_path, 8000.0, "b2.json"))
    assert ">OK<" in (ok_root / "report.html").read_text()


def test_report_on_bare_directory(tmp_path):
    # no manifest, no metrics, no events: every section degrades gracefully
    report = build_report(str(tmp_path))
    assert report["rows"] == [] and report["stages"] == []
    assert not report["has_regression"]
    html = render_html(report)
    assert "<h1>" in html


# -- CLI gate ----------------------------------------------------------------
def test_cli_report_check_exit_codes(tmp_path, capsys):
    root = _make_sweep_dir(tmp_path, instr_per_s=2000.0)
    bad = _baseline(tmp_path, 8000.0)
    rc = cli_main(["report", str(root), "--baseline", bad, "--check"])
    assert rc == EXIT_REGRESSION == 4
    assert os.path.exists(root / "report.html")
    good = _baseline(tmp_path, 2000.0, "good.json")
    assert cli_main(["report", str(root), "--baseline", good,
                     "--check"]) == 0
    capsys.readouterr()


def test_cli_report_missing_dir():
    assert cli_main(["report", "/nonexistent/sweep-dir"]) == 2


def test_cli_report_baseline_hints(tmp_path, capsys):
    """A missing/empty/unusable baseline is a one-line hint + exit 2
    (usage), never a traceback and never a silent pass of --check."""
    root = _make_sweep_dir(tmp_path, instr_per_s=2000.0)

    rc = cli_main(["report", str(root), "--baseline",
                   str(tmp_path / "nope.json"), "--check"])
    err = capsys.readouterr().err
    assert rc == 2
    assert "does not exist" in err and "bench_simulator_speed" in err

    empty = tmp_path / "empty.json"
    empty.write_text("")
    assert cli_main(["report", str(root), "--baseline", str(empty),
                     "--check"]) == 2
    assert "is empty" in capsys.readouterr().err

    garbled = tmp_path / "garbled.json"
    garbled.write_text("{not json")
    assert cli_main(["report", str(root), "--baseline", str(garbled),
                     "--check"]) == 2
    assert "not valid JSON" in capsys.readouterr().err

    norates = tmp_path / "norates.json"
    norates.write_text(json.dumps({"results": {}}))
    assert cli_main(["report", str(root), "--baseline", str(norates),
                     "--check"]) == 2
    assert "no usable rate entries" in capsys.readouterr().err
