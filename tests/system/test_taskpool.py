"""Tests for the task-pool offload extension (steady-state scheduling)."""

import pytest

from repro.system.taskpool import Task, TaskPool, run_taskpool


def test_pool_fifo_and_dispatch_count():
    pool = TaskPool()
    pool.tasks.extend(Task(init_regs={"k": i}) for i in range(3))
    assert len(pool) == 3
    assert pool.pop().init_regs == {"k": 0}
    assert pool.dispatched == 1
    pool.pop(), pool.pop()
    assert pool.pop() is None
    assert pool.dispatched == 3


def test_taskpool_virec_all_tasks_complete_correctly():
    stats, inst = run_taskpool(workload="gather", core_type="virec",
                               hw_threads=4, n_tasks=12, n_per_task=12)
    assert stats["tasks_redispatched"] == 8  # 12 tasks - 4 initial
    assert stats["task_context_drops"] >= 8
    # every logical task's output verified by run_taskpool's checker


def test_taskpool_banked_all_tasks_complete_correctly():
    stats, inst = run_taskpool(workload="vecadd", core_type="banked",
                               hw_threads=4, n_tasks=10, n_per_task=12)
    assert stats["tasks_redispatched"] == 6


def test_taskpool_rejects_unknown_core():
    with pytest.raises(ValueError):
        run_taskpool(core_type="ooo")


def test_more_hw_threads_help_when_pool_is_deep():
    """The thread-scalability claim in steady state: ViReC with 10 hardware
    threads drains a deep task pool no slower than with 2."""
    few, _ = run_taskpool(workload="gather", core_type="virec",
                          hw_threads=2, n_tasks=12, n_per_task=16)
    many, _ = run_taskpool(workload="gather", core_type="virec",
                           hw_threads=8, n_tasks=12, n_per_task=16)
    assert many["cycles"] < few["cycles"]


def test_virec_exceeds_banked_thread_cap():
    """ViReC runs 10 hardware threads; banked is capped at 8 and must
    two-level schedule the same batch."""
    virec, _ = run_taskpool(workload="gather", core_type="virec",
                            hw_threads=10, n_tasks=20, n_per_task=12)
    banked, _ = run_taskpool(workload="gather", core_type="banked",
                             hw_threads=8, n_tasks=20, n_per_task=12)
    assert virec["tasks_redispatched"] == 10
    assert banked["tasks_redispatched"] == 12
    # both finish; relative speed depends on contention (no assertion)
    assert virec["cycles"] > 0 and banked["cycles"] > 0


def test_dispatch_latency_visible():
    fast, _ = run_taskpool(workload="vecadd", core_type="virec",
                           hw_threads=2, n_tasks=8, n_per_task=8,
                           dispatch_latency=0)
    slow, _ = run_taskpool(workload="vecadd", core_type="virec",
                           hw_threads=2, n_tasks=8, n_per_task=8,
                           dispatch_latency=500)
    assert slow["cycles"] > fast["cycles"]
