"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    assert "gather" in out and "spmv" in out


def test_run_command(capsys):
    rc = main(["run", "--workload", "vecadd", "--core", "virec",
               "--threads", "4", "--per-thread", "12"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "cycles" in out and "RF hit rate" in out


def test_run_verbose(capsys):
    rc = main(["run", "--workload", "vecadd", "--core", "banked",
               "--threads", "2", "--per-thread", "8", "--verbose"])
    assert rc == 0
    assert "core0" in capsys.readouterr().out


def test_disasm_command(capsys):
    assert main(["disasm", "--workload", "gather"]) == 0
    out = capsys.readouterr().out
    assert "ldr" in out and "active registers" in out


def test_area_command(capsys):
    assert main(["area"]) == 0
    assert "banked_mm2" in capsys.readouterr().out


def test_experiments_command(capsys):
    assert main(["experiments", "fig14", "--scale", "tiny"]) == 0
    assert "area vs threads" in capsys.readouterr().out


def test_experiments_unknown_name(capsys):
    assert main(["experiments", "fig99"]) == 2


def test_experiments_integer_scale(capsys):
    assert main(["experiments", "fig02", "--scale", "8"]) == 0


def test_bad_core_type_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--core", "tpu"])


def test_parser_builds():
    parser = build_parser()
    args = parser.parse_args(["run", "--workload", "gather"])
    assert args.workload == "gather"
