"""Tests for the parameter-grid sweep utility."""

import pytest

from repro.system import RunConfig
from repro.system.sweeps import best_by, run_grid, sweep_grid


def base():
    return RunConfig(workload="vecadd", core_type="virec", n_threads=4,
                     n_per_thread=8)


def test_grid_cartesian_product():
    grid = sweep_grid(base(), context_fraction=[0.4, 0.8], n_threads=[2, 4, 6])
    assert len(grid) == 6
    # last axis fastest
    assert [c.n_threads for c in grid[:3]] == [2, 4, 6]
    assert grid[0].context_fraction == 0.4 and grid[3].context_fraction == 0.8


def test_grid_rejects_unknown_field():
    with pytest.raises(ValueError, match="no field"):
        sweep_grid(base(), frequency=[1, 2])


def test_run_grid_rows_and_progress():
    seen = []
    rows = run_grid(sweep_grid(base(), context_fraction=[0.5, 1.0]),
                    progress=lambda i, n, r: seen.append((i, n)))
    assert len(rows) == 2
    assert seen == [(1, 2), (2, 2)]
    assert all(0 < r["ipc"] <= 1 for r in rows)
    assert rows[0]["rf_hit_rate"] <= rows[1]["rf_hit_rate"] + 0.05


def test_best_by():
    rows = [
        {"workload": "a", "ipc": 0.2}, {"workload": "a", "ipc": 0.5},
        {"workload": "b", "ipc": 0.3},
    ]
    best = best_by(rows)
    assert len(best) == 2
    assert best[0]["ipc"] == 0.5


def test_rows_export_to_csv():
    from repro.stats.reporting import rows_to_csv
    rows = run_grid(sweep_grid(base(), n_threads=[2]))
    csv_text = rows_to_csv(rows)
    assert "workload" in csv_text.splitlines()[0]
    assert "vecadd" in csv_text
