"""Resilient sweep runner: isolation, watchdogs, retry, checkpoint/resume."""

import sys
import time
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import repro.system.sweeps as sweeps
from repro.errors import (DeadlockError, FaultEscapeError,
                          FunctionalCheckError, RunFailure, SimulationError,
                          TaskPoolError, TRANSIENT_ERRORS, WatchdogTimeout)
from repro.stats.counters import Stats
from repro.system import (RunConfig, config_key, run_config, run_grid, sweep,
                          sweep_grid)
from repro.system.simulator import RunResult
from repro.system.sweeps import best_by
from repro.system.taskpool import TaskPool, run_taskpool


def _cfg(**kw):
    base = dict(workload="gather", core_type="virec", n_threads=4,
                n_per_thread=8)
    base.update(kw)
    return RunConfig(**base)


def _fake_result(cfg, cycles=100):
    return RunResult(config=cfg, cycles=cycles, instructions=50,
                     ipc=50 / cycles, stats=Stats("fake"))


# -- error taxonomy -----------------------------------------------------------
class TestTaxonomy:
    def test_everything_roots_at_simulation_error(self):
        for cls in (DeadlockError, FunctionalCheckError, FaultEscapeError,
                    WatchdogTimeout, TaskPoolError):
            assert issubclass(cls, SimulationError)

    def test_backward_compatible_bases(self):
        # historical callers caught RuntimeError / AssertionError
        assert issubclass(DeadlockError, RuntimeError)
        assert issubclass(FunctionalCheckError, AssertionError)

    def test_core_reexports_deadlock_error(self):
        from repro.core.base import DeadlockError as CoreDeadlockError
        assert CoreDeadlockError is DeadlockError

    def test_transient_set(self):
        assert DeadlockError in TRANSIENT_ERRORS
        assert FunctionalCheckError not in TRANSIENT_ERRORS

    def test_run_failure_from_exception(self):
        f = RunFailure.from_exception(FaultEscapeError("boom", site="tag"),
                                      index=3, config={"seed": 1})
        assert f.error_type == "FaultEscapeError"
        assert f.transient
        assert f.extra["site"] == "tag"
        assert f.as_dict()["index"] == 3


# -- isolation ----------------------------------------------------------------
class TestIsolation:
    def test_one_deadlocking_config_does_not_abort_grid(self, tmp_path):
        ckpt = str(tmp_path / "grid.jsonl")
        grid = sweep_grid(_cfg(), context_fraction=[0.4, 0.8])
        grid.insert(1, _cfg(max_cycles=10))  # trips the cycle watchdog
        rows = run_grid(grid, checkpoint=ckpt)
        assert len(rows) == 2
        assert len(rows.failures) == 1
        failure = rows.failures[0]
        assert failure.index == 1
        assert failure.error_type == "DeadlockError"
        assert failure.transient
        assert Path(ckpt).exists()

    def test_on_error_raise_preserves_exception_type(self):
        with pytest.raises(DeadlockError):
            run_grid([_cfg(max_cycles=10)], on_error="raise")
        with pytest.raises(ValueError):
            run_grid([], on_error="explode")

    def test_sweep_isolate_keeps_alignment(self):
        configs = [_cfg(), _cfg(max_cycles=10), _cfg(context_fraction=0.4)]
        results = sweep(configs, on_error="isolate")
        assert len(results) == 3
        assert results[1] is None
        assert results[0] is not None and results[2] is not None
        assert len(results.failures) == 1
        assert results.failures[0].index == 1

    def test_sweep_default_still_fail_fast(self):
        with pytest.raises(DeadlockError):
            sweep([_cfg(max_cycles=10)])


# -- watchdogs and retries ----------------------------------------------------
class TestWatchdogsAndRetries:
    def test_wall_clock_watchdog(self, monkeypatch):
        def slow(cfg, check=True):
            time.sleep(5.0)
            return _fake_result(cfg)

        monkeypatch.setattr(sweeps, "run_config", slow)
        rows = run_grid([_cfg()], timeout_s=0.05)
        assert len(rows) == 0
        assert rows.failures[0].error_type == "WatchdogTimeout"
        assert rows.failures[0].transient

    def test_transient_retry_perturbs_seed(self, monkeypatch):
        seeds = []

        def flaky(cfg, check=True):
            seeds.append(cfg.seed)
            if len(seeds) == 1:
                raise DeadlockError("first attempt wedges")
            return _fake_result(cfg)

        monkeypatch.setattr(sweeps, "run_config", flaky)
        rows = run_grid([_cfg(seed=7)], retries=1)
        assert len(rows) == 1 and not rows.failures
        assert seeds == [7, 7 + 7919]

    def test_functional_failure_not_retried(self, monkeypatch):
        attempts = []

        def wrong(cfg, check=True):
            attempts.append(cfg.seed)
            raise FunctionalCheckError("deterministically wrong")

        monkeypatch.setattr(sweeps, "run_config", wrong)
        rows = run_grid([_cfg()], retries=3)
        assert len(attempts) == 1
        assert rows.failures[0].error_type == "FunctionalCheckError"
        assert not rows.failures[0].transient

    def test_retry_exhaustion_records_attempts(self, monkeypatch):
        def wedge(cfg, check=True):
            raise DeadlockError("always wedges")

        monkeypatch.setattr(sweeps, "run_config", wedge)
        rows = run_grid([_cfg()], retries=2)
        assert rows.failures[0].attempts == 3


# -- checkpoint / resume ------------------------------------------------------
class TestCheckpointResume:
    def test_resume_reruns_only_failed_rows(self, tmp_path):
        ckpt = str(tmp_path / "grid.jsonl")
        grid = sweep_grid(_cfg(), context_fraction=[0.4, 0.8])
        grid.insert(1, _cfg(max_cycles=10))
        first = run_grid(grid, checkpoint=ckpt)
        assert len(first) == 2 and len(first.failures) == 1

        calls = []
        real = sweeps.run_config

        def counting(cfg, check=True):
            calls.append(cfg)
            return real(cfg, check=check)

        sweeps_run_config = sweeps.run_config
        try:
            sweeps.run_config = counting
            again = run_grid(grid, checkpoint=ckpt, resume=True)
        finally:
            sweeps.run_config = sweeps_run_config
        # only the deadlocked config was re-simulated
        assert len(calls) == 1
        assert calls[0].max_cycles == 10
        assert again.resumed == 2
        assert len(again) == 2 and len(again.failures) == 1

    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError):
            run_grid([_cfg()], resume=True)

    def test_journal_tolerates_torn_tail(self, tmp_path):
        ckpt = tmp_path / "grid.jsonl"
        cfg = _cfg()
        run_grid([cfg], checkpoint=str(ckpt))
        with open(ckpt, "a") as f:
            f.write('{"key": "torn-half-wr')  # crash mid-append
        rows = run_grid([cfg], checkpoint=str(ckpt), resume=True)
        assert len(rows) == 1
        assert rows.resumed == 1

    def test_resumed_rows_match_fresh_rows(self, tmp_path):
        ckpt = str(tmp_path / "grid.jsonl")
        grid = sweep_grid(_cfg(), context_fraction=[0.4, 0.8])
        fresh = run_grid(grid, checkpoint=ckpt)
        resumed = run_grid(grid, checkpoint=ckpt, resume=True)
        assert list(fresh) == list(resumed)

    def test_config_key_stable_and_distinct(self):
        a, b = _cfg(), _cfg(seed=8)
        assert config_key(a) == config_key(_cfg())
        assert config_key(a) != config_key(b)


# -- satellite fixes ----------------------------------------------------------
class TestRowConstruction:
    def test_rows_carry_non_default_fields(self):
        rows = run_grid(sweep_grid(_cfg(), seed=[8, 9]))
        assert [r["seed"] for r in rows] == [8, 9]
        # n_per_thread=8 differs from the RunConfig default, so it must
        # survive into the rows (the old runner dropped it)
        assert all(r["n_per_thread"] == 8 for r in rows)
        # default-valued fields stay implicit
        assert all("dcache_kb" not in r for r in rows)

    def test_best_by_skips_rows_missing_metric(self):
        rows = [{"workload": "gather", "ipc": 0.5, "rf_hit_rate": 0.9},
                {"workload": "gather", "ipc": 0.7}]  # no rf_hit_rate
        best = best_by(rows, metric="rf_hit_rate")
        assert best == [rows[0]]
        assert best_by([], metric="ipc") == []


class TestTaskPool:
    def test_snapshot_tracks_queue_state(self):
        pool = TaskPool()
        assert pool.snapshot() == {"pending": 0, "dispatched": 0,
                                   "completed": 0}

    def test_taskpool_run_accounts_for_every_task(self):
        stats, _ = run_taskpool(hw_threads=4, n_tasks=8, n_per_task=8)
        assert stats["tasks_redispatched"] == 4

    def test_taskpool_error_carries_snapshot(self):
        err = TaskPoolError("pool wedged",
                            snapshot={"pending": 2, "dispatched": 5,
                                      "completed": 3})
        assert err.snapshot["pending"] == 2
        f = RunFailure.from_exception(err, index=0, config={})
        assert f.extra["snapshot"]["dispatched"] == 5


# -- wedge diagnostics (commit_tail / committed payloads) ---------------------
class TestWedgeDiagnostics:
    def test_deadlock_message_carries_progress(self):
        exc = DeadlockError("no runnable thread", commit_tail=123,
                            committed=456)
        assert "[commit_tail=123, committed=456]" in str(exc)
        assert exc.commit_tail == 123 and exc.committed == 456

    def test_bare_construction_still_works(self):
        # the worker pickling fallback reconstructs with message only
        exc = DeadlockError("wedged")
        assert str(exc) == "wedged"
        assert exc.commit_tail == -1 and exc.committed == -1
        again = type(exc)(str(DeadlockError("w", commit_tail=9)))
        assert "[commit_tail=9" in str(again)

    def test_live_cycle_budget_wedge_has_payload(self):
        with pytest.raises(DeadlockError) as excinfo:
            run_config(_cfg(n_per_thread=64, max_cycles=50), check=False)
        exc = excinfo.value
        assert exc.commit_tail >= 0
        assert exc.committed >= 0
        assert "commit_tail=" in str(exc)

    def test_wall_clock_timeout_recovers_wedge_site(self, monkeypatch):
        class _FakeCore:
            commit_tail = 77
            threads = [type("T", (), {"instructions": 5})(),
                       type("T", (), {"instructions": 6})()]

        def slow(cfg, check=True):
            self = _FakeCore()  # noqa: F841  (found via frame walk)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                pass
            return _fake_result(cfg)

        monkeypatch.setattr(sweeps, "run_config", slow)
        rows = run_grid([_cfg()], timeout_s=0.05)
        failure = rows.failures[0]
        assert failure.error_type == "WatchdogTimeout"
        assert failure.extra["commit_tail"] == 77
        assert failure.extra["committed"] == 11
        assert "commit_tail=77" in failure.message

    def test_run_failure_carries_wedge_extra(self):
        exc = DeadlockError("cycle budget exceeded", commit_tail=40,
                            committed=7)
        f = RunFailure.from_exception(exc, index=0, config={})
        assert f.extra["commit_tail"] == 40
        assert f.extra["committed"] == 7


# -- checkpoint hardening -----------------------------------------------------
class TestCheckpointHardening:
    def test_torn_tail_warns_not_raises(self, tmp_path):
        ckpt = tmp_path / "grid.jsonl"
        cfg = _cfg()
        run_grid([cfg], checkpoint=str(ckpt))
        with open(ckpt, "a") as f:
            f.write('{"key": "torn-half-wr')
        with pytest.warns(RuntimeWarning, match="torn or malformed"):
            rows = run_grid([cfg], checkpoint=str(ckpt), resume=True)
        assert rows.resumed == 1

    def test_non_object_lines_skipped_with_warning(self, tmp_path):
        ckpt = tmp_path / "grid.jsonl"
        cfg = _cfg()
        run_grid([cfg], checkpoint=str(ckpt))
        with open(ckpt, "a") as f:
            f.write('[1, 2, 3]\n"just a string"\n')
        with pytest.warns(RuntimeWarning):
            rows = run_grid([cfg], checkpoint=str(ckpt), resume=True)
        assert rows.resumed == 1

    def test_ok_record_without_row_reruns(self, tmp_path):
        import json as _json

        ckpt = tmp_path / "grid.jsonl"
        cfg = _cfg()
        # an "ok" record whose payload never made it to disk
        with open(ckpt, "w") as f:
            f.write(_json.dumps({"key": config_key(cfg),
                                 "status": "ok"}) + "\n")
        with pytest.warns(RuntimeWarning, match="no row"):
            rows = run_grid([cfg], checkpoint=str(ckpt), resume=True)
        assert rows.resumed == 0
        assert len(rows) == 1
