"""Tests for RunConfig, the simulation driver, and multi-core nodes."""

import pytest

from repro.system import RunConfig, run_config, sweep


def small(**kw):
    base = dict(workload="gather", core_type="virec", n_threads=4,
                n_per_thread=12)
    base.update(kw)
    return RunConfig(**base)


def test_run_config_validation():
    with pytest.raises(ValueError):
        RunConfig(core_type="quantum")
    with pytest.raises(ValueError):
        RunConfig(context_fraction=0.01)


def test_resolve_rf_size():
    cfg = small(context_fraction=0.5, n_threads=8)
    assert cfg.resolve_rf_size(10) == 40
    assert cfg.with_(rf_size=13).resolve_rf_size(10) == 13


@pytest.mark.parametrize("core_type", ["banked", "virec", "nsf", "swctx",
                                       "prefetch-full", "prefetch-exact"])
def test_driver_runs_each_core_type(core_type):
    r = run_config(small(core_type=core_type))
    assert r.correct and r.cycles > 0 and r.instructions > 0
    assert 0 < r.ipc <= 1.0


def test_driver_runs_inorder():
    r = run_config(small(core_type="inorder", n_threads=1))
    assert r.correct and r.ipc > 0


def test_driver_runs_ooo():
    r = run_config(small(core_type="ooo", n_threads=1, n_per_thread=64))
    assert r.correct and r.ipc > 0


def test_virec_reports_hit_rate():
    r = run_config(small(core_type="virec", context_fraction=0.6))
    assert r.rf_hit_rate is not None and 0.2 < r.rf_hit_rate <= 1.0
    rb = run_config(small(core_type="banked"))
    assert rb.rf_hit_rate is None


def test_multicore_node_contention():
    """Figure 11 mechanism: more active processors -> slower per-core."""
    one = run_config(small(core_type="virec", n_cores=1, n_per_thread=24))
    four = run_config(small(core_type="virec", n_cores=4, n_per_thread=24))
    # per-core work equal; shared memory contention must not speed things up
    assert four.cycles >= one.cycles
    assert four.instructions == pytest.approx(4 * one.instructions, rel=0.01)


def test_sweep_returns_in_order():
    cfgs = [small(context_fraction=f) for f in (1.0, 0.6)]
    results = sweep(cfgs)
    assert [r.config.context_fraction for r in results] == [1.0, 0.6]


def test_offload_stagger_delays_start():
    fast = run_config(small(offload_stagger=0))
    slow = run_config(small(offload_stagger=500))
    assert slow.cycles > fast.cycles


def test_determinism():
    a = run_config(small(seed=9))
    b = run_config(small(seed=9))
    assert a.cycles == b.cycles and a.instructions == b.instructions
