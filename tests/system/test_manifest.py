"""Tests for run manifests (exact reproducibility records)."""

import json

import pytest

from repro.system import RunConfig, run_config
from repro.system.manifest import RunManifest


def small(**kw):
    base = dict(workload="vecadd", core_type="virec", n_threads=4,
                n_per_thread=10)
    base.update(kw)
    return RunConfig(**base)


def test_manifest_roundtrip(tmp_path):
    r = run_config(small())
    m = RunManifest()
    m.add(r)
    path = tmp_path / "manifest.json"
    m.save(str(path))
    loaded = RunManifest.load(str(path))
    assert loaded.results_digest == m.results_digest
    assert loaded.configs[0]["workload"] == "vecadd"


def test_replay_reproduces_exactly(tmp_path):
    r1 = run_config(small(seed=123))
    m = RunManifest()
    m.add(r1)
    cfg = m.replay_config(0)
    r2 = run_config(cfg)
    assert m.verify_against([r2])


def test_digest_sensitive_to_results():
    a, b = RunManifest(), RunManifest()
    r = run_config(small())
    a.add(r)
    b.add(r)
    assert a.results_digest == b.results_digest
    r2 = run_config(small(n_per_thread=12))
    b.add(r2)
    assert a.results_digest != b.results_digest


def test_verify_against_detects_divergence():
    r1 = run_config(small(seed=1))
    r2 = run_config(small(seed=2))
    m = RunManifest()
    m.add(r1)
    assert not m.verify_against([r2])


def test_manifest_json_contains_environment():
    m = RunManifest()
    data = json.loads(m.to_json())
    assert "repro_version" in data and "python_version" in data
