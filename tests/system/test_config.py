"""Table 1 configuration presets must match the paper exactly."""

import pytest

from repro.memory import DRAMConfig
from repro.system.config import (
    OOO_AREA_RATIO_VS_INO,
    OOO_CLOCK_RATIO,
    RunConfig,
    ndp_dcache,
    ndp_icache,
    table1_dram,
)


def test_ndp_dcache_matches_table1():
    """8kB 4-way D-cache, 2-cycle access, 24 MSHRs."""
    cfg = ndp_dcache()
    assert cfg.size_bytes == 8 * 1024
    assert cfg.assoc == 4
    assert cfg.latency == 2
    assert cfg.mshrs == 24
    assert cfg.line_bytes == 64


def test_ndp_icache_matches_table1():
    """32kB 4-way I-cache, 2-cycle access."""
    cfg = ndp_icache()
    assert cfg.size_bytes == 32 * 1024
    assert cfg.assoc == 4
    assert cfg.latency == 2


def test_dram_matches_table1():
    """DDR5_6400: 1 rank, 2 channels, tRP-tCL-tRCD 14-14-14."""
    cfg = table1_dram()
    assert cfg.channels == 2
    assert cfg.t_rp == cfg.t_cl == cfg.t_rcd == 14


def test_ooo_constants_match_paper():
    """2 GHz OoO vs 1 GHz NDP; 19.1x area [43]."""
    assert OOO_CLOCK_RATIO == 2.0
    assert OOO_AREA_RATIO_VS_INO == 19.1


def test_ooo_core_parameters_match_table1():
    from repro.core.ooo import OoOConfig
    cfg = OoOConfig()
    assert cfg.width == 8
    assert cfg.rob_entries == 224
    assert cfg.lq_entries == 113
    assert cfg.sq_entries == 120
    assert cfg.alu_units == 4 and cfg.fp_units == 2 and cfg.ld_units == 2


def test_inorder_core_parameters_match_table1():
    from repro.core.base import CoreConfig
    from repro.core.inorder import InOrderCore
    cfg = CoreConfig()
    assert cfg.sq_entries == 5          # 5 SQ entries
    # CGMT cores: 1 outstanding load; base InO: 2 (checked on the class)
    assert cfg.max_outstanding_loads == 1


def test_virec_register_range_covers_paper_sweep():
    """Paper sweeps 24-120 registers for ViReC; resolve_rf_size must
    produce values in that range for the evaluated configurations."""
    for threads in (4, 6, 8):
        for frac in (0.4, 0.6, 0.8, 1.0):
            cfg = RunConfig(core_type="virec", n_threads=threads,
                            context_fraction=frac)
            rf = cfg.resolve_rf_size(active_context=8)
            assert 8 <= rf <= 120


def test_banked_bank_geometry():
    """Banked core: 8 banks of 32/32 int/FP registers (= 64 per bank)."""
    from repro.area.cores import banked_core_area
    # the area model's default regs_per_bank is 64 (32 int + 32 fp)
    import inspect
    sig = inspect.signature(banked_core_area)
    assert sig.parameters["regs_per_bank"].default == 64
