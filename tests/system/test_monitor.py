"""The live sweep monitor: event-log folding, panel rendering, loop.

``read_state`` and ``render_panel`` are pure functions of a sweep
directory / state, so everything here runs on synthetic event logs and
touched heartbeat files — no sweep, no terminal, no sleeping.
"""

import json
import os
import time

import pytest

from repro.system.monitor import (STALE_AFTER_S, SweepObservability,
                                  SweepState, monitor_loop, read_state,
                                  render_panel)


def _write_events(root, rows):
    with open(os.path.join(root, "sweep_events.jsonl"), "w") as f:
        for row in rows:
            f.write(json.dumps(row) + "\n")


def _beat(root, pid, age_s, now):
    hb = os.path.join(root, "heartbeats")
    os.makedirs(hb, exist_ok=True)
    path = os.path.join(hb, f"{pid}.hb")
    with open(path, "w"):
        pass
    os.utime(path, (now - age_s, now - age_s))


# -- read_state --------------------------------------------------------------
def test_state_from_event_log(tmp_path):
    root = str(tmp_path)
    _write_events(root, [
        {"ev": "sweep_start", "t": 0.0, "total": 6},
        {"ev": "row_resumed", "t": 0.1, "index": 0},
        {"ev": "row_start", "t": 0.2, "index": 1, "pid": 11},
        {"ev": "row_ok", "t": 1.0, "index": 1, "pid": 11},
        {"ev": "row_start", "t": 1.1, "index": 2, "pid": 12},
        {"ev": "row_fail", "t": 2.0, "index": 2, "pid": 12,
         "error": "DeadlockError"},
        {"ev": "row_start", "t": 2.1, "index": 3, "pid": 11},
    ])
    state = read_state(root, now=time.time())
    assert (state.total, state.ok, state.failed, state.resumed) == (6, 1, 1, 1)
    assert state.done == 3
    assert state.running == [3]
    assert not state.finished
    # rate counts fresh rows only (resumed rows cost ~nothing)
    assert state.rate == (2 / 2.1)
    assert state.eta_s is not None and state.eta_s > 0


def test_state_finished_and_empty(tmp_path):
    root = str(tmp_path)
    assert read_state(root).total == 0  # no log at all: all zeros
    _write_events(root, [
        {"ev": "sweep_start", "t": 0.0, "total": 1},
        {"ev": "row_start", "t": 0.1, "index": 0},
        {"ev": "row_ok", "t": 0.5, "index": 0},
        {"ev": "sweep_end", "t": 0.6, "ok": 1, "failed": 0},
    ])
    state = read_state(root)
    assert state.finished
    assert state.eta_s is None  # nothing left to estimate
    assert state.running == []


def test_torn_tail_line_is_skipped(tmp_path):
    root = str(tmp_path)
    _write_events(root, [{"ev": "sweep_start", "t": 0.0, "total": 2},
                         {"ev": "row_ok", "t": 0.4, "index": 0}])
    with open(os.path.join(root, "sweep_events.jsonl"), "a") as f:
        f.write('{"ev": "row_ok", "ind')  # a write torn mid-append
    with pytest.warns(RuntimeWarning, match="torn or malformed"):
        state = read_state(root)
    assert state.ok == 1  # the torn line neither counts nor raises


def test_torn_and_malformed_lines_warn_but_never_raise(tmp_path):
    """A live log read mid-append: torn tails, non-object JSON rows, and
    garbled field values must all be tolerated — one summary warning, no
    exception, and the well-formed rows still count."""
    root = str(tmp_path)
    _write_events(root, [{"ev": "sweep_start", "t": 0.0, "total": 3},
                         {"ev": "row_ok", "t": 0.4, "index": 0}])
    with open(os.path.join(root, "sweep_events.jsonl"), "a") as f:
        f.write("[1, 2, 3]\n")                 # valid JSON, not an object
        f.write('"row_ok"\n')                  # ditto
        # a dict row with garbage where numbers belong must not raise
        f.write(json.dumps({"ev": "row_ok", "t": "soon",
                            "index": None}) + "\n")
        f.write('{"ev": "row_ok", "ind')       # torn tail, no newline
    with pytest.warns(RuntimeWarning, match="skipped 3 torn or malformed"):
        state = read_state(root)
    assert state.total == 3
    assert state.ok == 2           # the garbled-value row still counts
    assert not state.finished


def test_clean_log_does_not_warn(tmp_path):
    root = str(tmp_path)
    _write_events(root, [{"ev": "sweep_start", "t": 0.0, "total": 1},
                         {"ev": "row_ok", "t": 0.2, "index": 0}])
    import warnings as _warnings
    with _warnings.catch_warnings():
        _warnings.simplefilter("error")
        state = read_state(root)
    assert state.ok == 1


def test_heartbeat_ages(tmp_path):
    root = str(tmp_path)
    now = time.time()
    _beat(root, 11, age_s=2.0, now=now)
    _beat(root, 12, age_s=120.0, now=now)
    state = read_state(root, now=now)
    assert state.workers[11] == pytest.approx(2.0, abs=0.1)
    assert state.workers[12] == pytest.approx(120.0, abs=0.1)


# -- render_panel ------------------------------------------------------------
def test_panel_renders_progress_and_workers():
    state = SweepState(total=10, done=4, ok=3, failed=1, running=[5, 6],
                       rate=2.0, eta_s=3.0, workers={11: 1.5, 12: 70.0})
    panel = render_panel(state)
    assert "4/10 rows" in panel
    assert "3 ok, 1 failed" in panel
    assert "2.00 rows/s" in panel and "ETA 3s" in panel
    assert "rows 5, 6" in panel
    assert "11:1.5s" in panel
    assert "12:70.0s STALE" in panel  # stale flag beyond STALE_AFTER_S
    assert 70.0 > STALE_AFTER_S


def test_panel_empty_state_no_division():
    panel = render_panel(SweepState())
    assert "0/0 rows" in panel
    assert "ETA --" in panel


def test_panel_eta_formats():
    hours = render_panel(SweepState(total=1, eta_s=7300))
    assert "2h01m" in hours
    minutes = render_panel(SweepState(total=1, eta_s=95))
    assert "1m35s" in minutes


# -- monitor_loop ------------------------------------------------------------
def test_monitor_loop_single_snapshot(tmp_path):
    root = str(tmp_path)
    _write_events(root, [{"ev": "sweep_start", "t": 0.0, "total": 1},
                         {"ev": "row_ok", "t": 0.3, "index": 0},
                         {"ev": "sweep_end", "t": 0.4}])
    frames = []
    state = monitor_loop(root, follow=False, out=frames.append)
    assert state.finished
    assert len(frames) == 1 and "sweep done" in frames[0]


# -- SweepObservability plumbing --------------------------------------------
def test_observability_surface(tmp_path):
    root = str(tmp_path / "swp")
    obs = SweepObservability(root)
    assert os.path.isdir(obs.heartbeat_dir)
    obs.append_event("sweep_start", total=3)
    obs.append_event("sweep_end", ok=3, failed=0)
    state = read_state(root)
    assert state.total == 3 and state.finished
    spec = obs.task_obs()
    assert spec["events_path"] == obs.events_path
    assert spec["heartbeat_dir"] == obs.heartbeat_dir
    assert spec["t_submit"] >= spec["t0"]
    # ensure() passes instances through and coerces paths
    assert SweepObservability.ensure(obs) is obs
    assert SweepObservability.ensure(str(tmp_path / "other")).root.endswith(
        "other")
