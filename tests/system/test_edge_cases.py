"""System-level edge cases: HBM preset, address skew, empty/degenerate runs."""

import pytest

from repro.system import RunConfig, run_config
from repro.system.node import AddressSkew


def test_hbm_preset_runs_and_differs_from_ddr5():
    ddr = run_config(RunConfig(workload="gather", core_type="virec",
                               n_threads=4, n_per_thread=16))
    hbm = run_config(RunConfig(workload="gather", core_type="virec",
                               n_threads=4, n_per_thread=16,
                               dram_preset="hbm"))
    assert ddr.correct and hbm.correct
    assert ddr.cycles != hbm.cycles  # different timing model actually used


def test_bad_dram_preset_rejected():
    with pytest.raises(ValueError, match="dram preset"):
        RunConfig(dram_preset="optane")


def test_hbm_channels_help_under_load():
    """8 narrow channels absorb multi-core traffic better than 2."""
    ddr = run_config(RunConfig(workload="stride", core_type="virec",
                               n_threads=8, n_cores=8, n_per_thread=16))
    hbm = run_config(RunConfig(workload="stride", core_type="virec",
                               n_threads=8, n_cores=8, n_per_thread=16,
                               dram_preset="hbm"))
    assert hbm.cycles < ddr.cycles * 1.05


def test_address_skew_separates_cores():
    calls = []

    class Spy:
        def access(self, now, line_addr, is_write=False, requestor=0):
            calls.append(line_addr)
            return now + 1

    spy = Spy()
    AddressSkew(spy, core_id=0).access(0, 0x1000)
    AddressSkew(spy, core_id=1).access(0, 0x1000)
    assert calls[0] != calls[1]
    assert calls[1] - calls[0] == 1 << 28


def test_single_element_workload():
    r = run_config(RunConfig(workload="vecadd", core_type="virec",
                             n_threads=1, n_per_thread=1,
                             context_fraction=2.0))
    assert r.correct and r.instructions > 0


def test_many_threads_tiny_work():
    r = run_config(RunConfig(workload="reduction", core_type="virec",
                             n_threads=10, n_per_thread=2,
                             context_fraction=0.5))
    assert r.correct


def test_zero_offload_stagger():
    r = run_config(RunConfig(workload="vecadd", core_type="banked",
                             n_threads=4, n_per_thread=8, offload_stagger=0))
    assert r.correct


def test_dcache_one_kb_extreme():
    """A 1 kB dcache (16 lines) with 8 threads: extreme thrash, must still
    complete correctly."""
    r = run_config(RunConfig(workload="gather", core_type="virec",
                             n_threads=8, n_per_thread=8, dcache_kb=1,
                             context_fraction=0.6))
    assert r.correct
    assert r.ipc < 0.5  # heavily memory bound


def test_crossbar_latency_monotone():
    fast = run_config(RunConfig(workload="stride", core_type="banked",
                                n_threads=4, n_per_thread=16,
                                crossbar_latency=2))
    slow = run_config(RunConfig(workload="stride", core_type="banked",
                                n_threads=4, n_per_thread=16,
                                crossbar_latency=40))
    assert slow.cycles > fast.cycles
