"""Every sanitizer test runs under a hard wall-clock limit.

Shadow-state bugs tend to manifest as hangs or quadratic sweeps, so each
test in this directory is wrapped in the SIGALRM guard from
``tests/helpers.py`` (no pytest-timeout dependency).
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import time_limit  # noqa: E402


@pytest.fixture(autouse=True)
def _sanitizer_test_time_limit():
    with time_limit(240.0):
        yield
