"""Structural invariant checks catch deliberately corrupted VRMU state.

Each test runs a healthy ViReC core to completion, verifies the checks
pass, then breaks one structure by hand and asserts the matching typed
violation fires (with its documented invariant id from
``docs/correctness.md``).
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import build_gather_core  # noqa: E402

from repro.errors import SanitizerViolation
from repro.sanitizer import SanitizeConfig, Sanitizer
from repro.virec import ViReCConfig, ViReCCore


def _sanitized_core(**cfg_kw):
    core, mem, _, _ = build_gather_core(
        ViReCCore, n_threads=4, n=32, virec=ViReCConfig(rf_size=16))
    vsan = Sanitizer(SanitizeConfig(shadow=False, **cfg_kw))
    vsan.attach(core, mem)
    core.run()
    return core, vsan


def _check(core):
    core.sanitizer.check(core.now)


def test_healthy_run_passes_all_checks():
    core, vsan = _sanitized_core()
    _check(core)
    vsan.finalize(core.now)


def test_dangling_map_entry_caught():
    core, _ = _sanitized_core()
    ts = core.vrmu.tagstore
    (tid, areg), slot = next(iter(ts._map.items()))
    ts.valid[slot] = False          # mapping now points at an invalid slot
    with pytest.raises(SanitizerViolation) as excinfo:
        _check(core)
    assert excinfo.value.invariant == "tagstore.bijection"


def test_tag_mismatch_caught():
    core, _ = _sanitized_core()
    ts = core.vrmu.tagstore
    (tid, areg), slot = next(iter(ts._map.items()))
    ts.owner[slot] = tid + 1        # tag disagrees with the map
    with pytest.raises(SanitizerViolation) as excinfo:
        _check(core)
    assert excinfo.value.invariant == "tagstore.bijection"


def test_map_valid_count_mismatch_caught():
    core, _ = _sanitized_core()
    ts = core.vrmu.tagstore
    del ts._map[next(iter(ts._map))]
    with pytest.raises(SanitizerViolation) as excinfo:
        _check(core)
    assert excinfo.value.invariant == "tagstore.bijection"


def test_priority_word_out_of_range_caught():
    core, _ = _sanitized_core()
    ts = core.vrmu.tagstore
    slot = int(ts.valid_slots()[0])
    ts.policy.T[slot] = 99          # 3-bit hardware field
    with pytest.raises(SanitizerViolation) as excinfo:
        _check(core)
    assert excinfo.value.invariant == "policy.word"


def test_rollback_depth_violation_caught():
    core, _ = _sanitized_core()
    core.vrmu.rollback.depth = -1   # any occupancy now exceeds the bound
    core.vrmu.rollback._queue.append(
        type("Entry", (), {"slots": (0,)})())
    with pytest.raises(SanitizerViolation) as excinfo:
        _check(core)
    assert excinfo.value.invariant == "rollback.depth"


def test_bsi_bookkeeping_violation_caught():
    core, _ = _sanitized_core()
    core.bsi.busy_until = -5
    with pytest.raises(SanitizerViolation) as excinfo:
        _check(core)
    assert excinfo.value.invariant == "bsi.bookkeeping"


def test_backing_region_mismatch_caught():
    core, _ = _sanitized_core(structures=False)
    core.dcache.register_region = (0x1000, 0x2000)
    with pytest.raises(SanitizerViolation) as excinfo:
        _check(core)
    assert excinfo.value.invariant == "backing.bounds"


def test_tagstore_check_invariants_raises_typed():
    """The tag store's own invariant checker now raises the typed
    violation — still an AssertionError for legacy property tests."""
    core, _ = _sanitized_core()
    ts = core.vrmu.tagstore
    ts.check_invariants()           # healthy state passes
    del ts._map[next(iter(ts._map))]
    with pytest.raises(SanitizerViolation):
        ts.check_invariants()
    ts_err = None
    try:
        ts.check_invariants()
    except AssertionError as exc:   # the legacy contract
        ts_err = exc
    assert isinstance(ts_err, SanitizerViolation)
    assert ts_err.invariant == "tagstore.bijection"
