"""VSan must be purely observational.

The hard guarantee of the sanitizer (mirroring tests/telemetry/test_noop.py):
a run with ``sanitize=`` *on* that finds no violation produces exactly the
same simulated behaviour — cycle counts, instruction counts, and the entire
stats tree — as the same run with the sanitizer off.  The shadow state only
reads simulator state; it never touches a timestamp.
"""

import pytest

from repro.errors import SanitizerViolation, TRANSIENT_ERRORS
from repro.system import RunConfig, run_config

FULL_SANITIZE = {"granularity": "commit", "shadow": True,
                 "structures": True, "backing_bounds": True}


@pytest.mark.parametrize("core_type", ["virec", "banked", "swctx", "fgmt",
                                       "nsf", "prefetch-exact"])
def test_sanitizer_does_not_change_cycles(core_type):
    base = RunConfig(workload="gather", core_type=core_type,
                     n_threads=4, n_per_thread=16)
    off = run_config(base)
    on = run_config(base.with_(sanitize=FULL_SANITIZE))
    assert on.cycles == off.cycles
    assert on.instructions == off.instructions
    assert on.ipc == off.ipc
    assert on.stats.as_dict() == off.stats.as_dict()
    assert on.sanitizer is not None
    assert on.sanitizer.stats()["shadow_commits"] > 0
    assert on.sanitizer.stats()["frozen_threads"] == 0


@pytest.mark.parametrize("granularity", ["commit", "interval", "run"])
def test_every_granularity_cycle_identical(granularity):
    base = RunConfig(workload="spmv", core_type="virec",
                     n_threads=4, n_per_thread=16)
    off = run_config(base)
    on = run_config(base.with_(sanitize={"granularity": granularity,
                                         "interval": 100}))
    assert on.cycles == off.cycles
    assert on.stats.as_dict() == off.stats.as_dict()


def test_sanitizer_multicore_identical():
    base = RunConfig(workload="spmv", core_type="virec",
                     n_threads=4, n_per_thread=8, n_cores=2)
    off = run_config(base)
    on = run_config(base.with_(sanitize=FULL_SANITIZE))
    assert on.cycles == off.cycles
    assert on.stats.as_dict() == off.stats.as_dict()
    assert on.sanitizer.stats()["cores"] == 2


def test_sanitizer_with_corrected_faults_identical():
    """ECC-protected injection: recovery happens, VSan verifies the
    recovered state really is architecturally correct, and timing is
    untouched by the verification."""
    base = RunConfig(workload="gather", core_type="virec",
                     n_threads=4, n_per_thread=16,
                     faults={"rf_rate": 1e-4, "scheme": "ecc"})
    off = run_config(base)
    on = run_config(base.with_(sanitize=FULL_SANITIZE))
    assert on.cycles == off.cycles
    assert on.stats.as_dict() == off.stats.as_dict()


def test_sanitizer_with_telemetry_identical():
    base = RunConfig(workload="gather", core_type="virec",
                     n_threads=4, n_per_thread=16)
    off = run_config(base)
    on = run_config(base.with_(sanitize=FULL_SANITIZE,
                               telemetry={"events": True, "interval": 100}))
    assert on.cycles == off.cycles
    assert on.stats.as_dict() == off.stats.as_dict()


def test_sanitize_off_wires_nothing():
    r = run_config(RunConfig(workload="gather", core_type="virec",
                             n_threads=2, n_per_thread=8))
    assert r.sanitizer is None


def test_disabled_spec_wires_nothing():
    r = run_config(RunConfig(
        workload="gather", core_type="virec", n_threads=2, n_per_thread=8,
        sanitize={"shadow": False, "structures": False,
                  "backing_bounds": False}))
    assert r.sanitizer is None


def test_ooo_rejects_sanitize():
    cfg = RunConfig(workload="gather", core_type="ooo", n_threads=1,
                    n_per_thread=16, sanitize=True)
    with pytest.raises(ValueError, match="ooo"):
        run_config(cfg)


def test_unknown_sanitize_field_rejected_eagerly():
    with pytest.raises(ValueError, match="unknown sanitize field"):
        RunConfig(sanitize={"granulraity": "commit"})


def test_bad_granularity_rejected_eagerly():
    with pytest.raises(ValueError, match="granularity"):
        RunConfig(sanitize={"granularity": "sometimes"})


def test_violation_is_not_transient():
    """A violation signals a real coherence bug: sweeps must record it,
    never paper over it with a reseeded retry."""
    assert not issubclass(SanitizerViolation, TRANSIENT_ERRORS)
    assert issubclass(SanitizerViolation, AssertionError)


# ----------------------------------------------------- the instrument bus
# VSan rides the core's InstrumentBus (slot ``sanitizer``, dispatched after
# the architectural update, before the tracer): attaching must flip the
# core off its fast path, and the checked run must commit on exactly the
# fast path's clock.

def test_attach_goes_through_the_bus():
    from repro.core.base import TimelineCore
    from repro.core.cgmt import BankedCore
    from repro.sanitizer import Sanitizer

    from ..helpers import build_gather_core

    core, mem, _, _ = build_gather_core(BankedCore, n_threads=2, n=8)
    assert core.bus.empty
    assert (core._process_instruction.__func__
            is TimelineCore._process_instruction_fast)

    cs = Sanitizer().attach(core, mem)
    assert core.bus.sanitizer is cs is core.sanitizer
    assert (core._process_instruction.__func__
            is TimelineCore._process_instruction_instrumented)


def test_bus_attached_run_is_cycle_identical_to_fast_path():
    from repro.core.cgmt import BankedCore
    from repro.sanitizer import Sanitizer

    from ..helpers import build_gather_core

    bare, _, _, _ = build_gather_core(BankedCore, n_threads=4, n=32)
    bare.run()

    checked, mem, _, _ = build_gather_core(BankedCore, n_threads=4, n=32)
    vsan = Sanitizer()
    vsan.attach(checked, mem)
    checked.run()
    vsan.finalize(checked.commit_tail)       # run-end sweep finds no bug

    assert checked.commit_tail == bare.commit_tail
    assert checked.stats.as_dict() == bare.stats.as_dict()
    assert checked.sanitizer.shadow is not None
