"""Fault injection is VSan's test oracle.

Under the unprotected (``none``) scheme the injector corrupts live
architectural state on the spot, so every run in which a bit actually
flipped must be caught by the shadow comparison — with a cycle-stamped,
typed diagnostic.  The detection-rate floor here (95%) is the contract
``docs/correctness.md`` documents; the tiny allowed slack covers flips
architecturally masked by the committing instruction's own writeback.
"""

import pytest

from repro.errors import RunFailure, SanitizerViolation
from repro.system import RunConfig, run_config

SANITIZE = {"granularity": "commit"}


def _flips(result) -> int:
    """Bits actually flipped in architectural state (not just injections)."""
    return int(sum(v for k, v in result.stats.flat()
                   if k.endswith("faults.bits_flipped")))


def _silently_corrupted(cfg: RunConfig) -> bool:
    """True when the sanitize-off run completes with architectural bit
    flips and no error of its own.  Crashing runs (e.g. a flipped address
    register tripping an alignment check) are already loud without VSan —
    the sanitizer's contract is catching the *silent* corruption."""
    try:
        return _flips(run_config(cfg, check=False)) > 0
    except Exception:
        return False


def _campaign_config(seed: int, core_type: str = "virec") -> RunConfig:
    return RunConfig(workload="gather", core_type=core_type,
                     n_threads=4, n_per_thread=16, seed=seed,
                     faults={"rf_rate": 2e-4, "tag_rate": 2e-4,
                             "scheme": "none", "seed": seed})


def test_detects_rf_and_tag_flips_under_none_scheme():
    corrupted = caught = 0
    for seed in range(20):
        base = _campaign_config(seed)
        if not _silently_corrupted(base):
            continue
        corrupted += 1
        try:
            run_config(base.with_(sanitize=SANITIZE), check=False)
        except SanitizerViolation as exc:
            assert exc.cycle >= 0
            assert exc.invariant.startswith(("shadow.", "tagstore.",
                                             "policy.", "rollback.",
                                             "bsi.", "backing."))
            caught += 1
    assert corrupted >= 8, "campaign rates too low to exercise detection"
    assert caught / corrupted >= 0.95, \
        f"VSan caught only {caught}/{corrupted} corrupted runs"


def test_violation_report_is_cycle_stamped():
    for seed in range(20):
        base = _campaign_config(seed)
        if not _silently_corrupted(base):
            continue
        with pytest.raises(SanitizerViolation) as excinfo:
            run_config(base.with_(sanitize=SANITIZE), check=False)
        report = excinfo.value.report()
        assert "cycle" in report
        assert str(excinfo.value.cycle) in report
        assert excinfo.value.invariant in report
        return
    pytest.fail("no seed produced a corrupting campaign")


def test_banked_core_detection():
    """The shadow comparison works on cores without a VRMU too."""
    for seed in range(20):
        base = _campaign_config(seed, core_type="banked")
        if not _silently_corrupted(base):
            continue
        with pytest.raises(SanitizerViolation):
            run_config(base.with_(sanitize=SANITIZE), check=False)
        return
    pytest.fail("no seed flipped a bit on the banked core")


def test_run_failure_carries_violation_metadata():
    """Sweep-runner failure records preserve the invariant id and cycle."""
    for seed in range(20):
        base = _campaign_config(seed)
        if not _silently_corrupted(base):
            continue
        try:
            run_config(base.with_(sanitize=SANITIZE), check=False)
        except SanitizerViolation as exc:
            failure = RunFailure.from_exception(exc, index=0, config={})
            assert failure.extra["invariant"] == exc.invariant
            assert failure.extra["cycle"] == exc.cycle
            return
    pytest.fail("no seed produced a violation")


def test_interval_granularity_still_detects():
    """Deferred checking trades latency, not detection: a divergence seen
    while checks are deferred surfaces at the next boundary."""
    for seed in range(20):
        base = _campaign_config(seed)
        if not _silently_corrupted(base):
            continue
        with pytest.raises(SanitizerViolation):
            run_config(base.with_(sanitize={"granularity": "interval",
                                            "interval": 200}), check=False)
        return
    pytest.fail("no seed produced a corrupting campaign")
