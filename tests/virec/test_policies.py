"""Unit tests for the register-cache replacement policies (Section 4)."""

import numpy as np
import pytest

from repro.virec.policies import (
    A_MAX,
    LRC,
    LRU,
    MRTLRU,
    MRTPLRU,
    PLRU,
    T_MAX,
    make_policy,
)


def all_valid(n):
    return np.ones(n, dtype=bool)


def test_make_policy_names():
    for name in ("plru", "lru", "mrt-plru", "mrt-lru", "lrc"):
        assert make_policy(name, 8).name == name
    with pytest.raises(ValueError):
        make_policy("belady", 8)
    with pytest.raises(ValueError):
        make_policy("plru", 0)


def test_plru_ages_saturate():
    p = PLRU(4)
    v = all_valid(4)
    for _ in range(20):
        p.on_instruction(v)
    assert (p.A == A_MAX).all()


def test_plru_evicts_oldest():
    p = PLRU(4)
    v = all_valid(4)
    for i in range(4):
        p.on_instruction(v)
        p.on_access(i)
    # entry 0 accessed longest ago -> highest age -> victim
    assert p.select_victim(v) == 0


def test_lru_exact_recency():
    p = LRU(8)
    v = all_valid(8)
    order = [3, 1, 4, 0, 5, 2, 6, 7]
    for i in order:
        p.on_instruction(v)
        p.on_access(i)
    assert p.select_victim(v) == 3  # least recently used


def test_plru_fuzzes_old_ages_but_lru_does_not():
    """With 3-bit ages, accesses >7 instructions apart are indistinguishable."""
    plru, lru = PLRU(4), LRU(4)
    v = all_valid(4)
    for pol in (plru, lru):
        pol.on_access(0)
        for _ in range(10):
            pol.on_instruction(v)
        pol.on_access(1)
        for _ in range(10):
            pol.on_instruction(v)
    # both 0 and 1 saturated for PLRU
    assert plru.A[0] == plru.A[1] == A_MAX
    # exact LRU still distinguishes them
    assert lru.priority()[0] > lru.priority()[1]


def test_mrt_plru_targets_most_recently_suspended_thread():
    """Figure 5: evict from the thread that will run furthest in the future."""
    p = MRTPLRU(6)
    valid = all_valid(6)
    owner = np.array([0, 0, 0, 1, 1, 1])
    # thread 0 was running and is now suspended; thread 1 takes over
    for i in range(6):
        p.on_access(i)
    p.on_context_switch(owner, valid, prev_tid=0, new_tid=1)
    assert (p.T[:3] == T_MAX).all()
    assert (p.T[3:] == 0).all()
    victim = p.select_victim(valid)
    assert victim < 3  # a register of the suspended thread


def test_t_bits_decrement_for_other_threads():
    p = MRTPLRU(4)
    valid = all_valid(4)
    owner = np.array([0, 1, 2, 3])
    p.on_context_switch(owner, valid, prev_tid=0, new_tid=1)
    assert p.T[0] == T_MAX
    p.on_context_switch(owner, valid, prev_tid=1, new_tid=2)
    assert p.T[1] == T_MAX
    assert p.T[0] == T_MAX - 1  # decremented
    assert p.T[2] == 0          # running thread
    # round-robin: oldest-suspended thread has the lowest T
    p.on_context_switch(owner, valid, prev_tid=2, new_tid=3)
    assert p.T[0] == T_MAX - 2


def test_lrc_prefers_committed_over_inflight():
    """Figure 6: same thread, same saturated age — C bit breaks the tie."""
    p = LRC(3)
    v = all_valid(3)
    for i in range(3):
        p.on_access(i)
    for _ in range(10):
        p.on_instruction(v)   # all ages saturate
    p.on_flush([0, 1])        # regs 0,1 were in flight when flushed
    assert p.C[0] == 0 and p.C[1] == 0 and p.C[2] == 1
    assert p.select_victim(v) == 2  # committed register evicted first


def test_lrc_thread_bits_dominate_commit_bit():
    p = LRC(4)
    valid = all_valid(4)
    owner = np.array([0, 0, 1, 1])
    for i in range(4):
        p.on_access(i)
    p.on_flush([2])  # an in-flight reg of thread 1
    p.on_context_switch(owner, valid, prev_tid=0, new_tid=1)
    # thread-0 registers (T=7) evicted before thread-1 even though committed
    assert p.select_victim(valid) in (0, 1)


def test_speculative_commit_initialization():
    p = LRC(2)
    p.on_access(0)
    assert p.C[0] == 1  # speculatively committed until a flush says otherwise


def test_select_victim_respects_candidates():
    p = PLRU(4)
    v = all_valid(4)
    for _ in range(3):
        p.on_instruction(v)
    cand = np.array([False, True, False, False])
    assert p.select_victim(cand) == 1
    none = np.zeros(4, dtype=bool)
    assert p.select_victim(none) is None


def test_mrt_lru_orders_within_thread_exactly():
    p = MRTLRU(4)
    v = all_valid(4)
    owner = np.zeros(4, dtype=int)
    for i in (2, 0, 3, 1):
        p.on_instruction(v)
        p.on_access(i)
    assert p.select_victim(v) == 2


def test_policy_flag_metadata():
    assert LRC.uses_commit_bit and LRC.uses_thread_bits
    assert MRTPLRU.uses_thread_bits and not MRTPLRU.uses_commit_bit
    assert not PLRU.uses_thread_bits
