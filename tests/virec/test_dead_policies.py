"""Dead-hint replacement policies (``dead-first`` / ``dead-elide``).

Covers the policy registry/factory, victim preference for dead entries,
end-to-end correctness with writeback elision, the pin-release path, and
the acceptance-critical inertness guarantee: annotating a decoded
program changes nothing unless a hint-consuming policy is selected.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import GATHER_REGS, build_gather_core  # noqa: E402

from repro.analysis.dataflow import annotate  # noqa: E402
from repro.virec import ViReCConfig, ViReCCore  # noqa: E402
from repro.virec.policies import (  # noqa: E402
    LRC,
    POLICIES,
    DeadElideLRC,
    DeadFirstLRC,
    ReplacementPolicy,
    make_policy,
)


def all_valid(n):
    return np.ones(n, dtype=bool)


# -- registry / factory ------------------------------------------------------
def test_registry_covers_every_policy_class():
    assert POLICIES["dead-first"] is DeadFirstLRC
    assert POLICIES["dead-elide"] is DeadElideLRC
    for name, cls in POLICIES.items():
        assert cls.name == name
        assert make_policy(name, 8).name == name


def test_from_spec_classmethod():
    p = ReplacementPolicy.from_spec("dead-elide", 16)
    assert isinstance(p, DeadElideLRC) and p.capacity == 16
    with pytest.raises(ValueError):
        ReplacementPolicy.from_spec("belady", 16)


def test_hint_capability_flags():
    assert not LRC(4).uses_dead_hints
    assert DeadFirstLRC(4).uses_dead_hints
    assert not DeadFirstLRC(4).elides_dead_writebacks
    assert DeadElideLRC(4).uses_dead_hints
    assert DeadElideLRC(4).elides_dead_writebacks


# -- victim selection --------------------------------------------------------
def test_dead_first_prefers_dead_victim():
    p = DeadFirstLRC(4)
    v = all_valid(4)
    for i in range(4):
        p.on_instruction(v)
        p.on_access(i)
    # entry 3 is the most recently used; dead bit must still win
    p.mark_dead(3)
    assert p.select_victim(v) == 3


def test_dead_bit_cleared_on_reaccess():
    p = DeadFirstLRC(4)
    v = all_valid(4)
    for i in range(4):
        p.on_instruction(v)
        p.on_access(i)
    p.mark_dead(2)
    p.on_access(2)                      # redefined: no longer dead
    assert p.select_victim(v) != 2


def test_plain_lrc_ignores_dead_bit():
    base, dead = LRC(4), DeadFirstLRC(4)
    v = all_valid(4)
    for p in (base, dead):
        for i in range(4):
            p.on_instruction(v)
            p.on_access(i)
        p.mark_dead(3)
    assert (base.priority() < 128).all()       # D never reaches priority
    assert dead.priority()[3] >= 128


# -- end-to-end --------------------------------------------------------------
def _run(policy, n_threads=4, frac=0.4):
    rf = max(6, int(frac * n_threads * len(GATHER_REGS)))
    core, mem, sym, expected = build_gather_core(
        ViReCCore, n_threads=n_threads,
        virec=ViReCConfig(rf_size=rf, policy=policy))
    stats = core.run()
    return core, stats, mem, sym, expected


@pytest.mark.parametrize("policy", ["dead-first", "dead-elide"])
def test_dead_policies_are_architecturally_correct(policy):
    core, stats, mem, sym, expected = _run(policy)
    assert mem.read_array(sym["out"], len(expected)) == expected
    assert core.vrmu.stats["dead_marks"] > 0
    assert core.vrmu.stats["dead_evictions"] > 0


def test_dead_elide_skips_writebacks_and_releases_pins():
    core, stats, mem, sym, expected = _run("dead-elide")
    flat = stats.as_dict()
    elided = core.vrmu.stats["elided_writebacks"]
    assert elided > 0
    assert core.bsi.stats["elided_spills"] == elided
    # every elided spill still releases its dcache line pin
    assert core.dcache.stats["metadata_unpins"] == elided
    # no pin leak: elision leaves exactly the pin footprint a spilling
    # policy leaves (only registers still resident at halt stay pinned)
    def total_pins(c):
        return sum(ln.pin for ways in c.dcache._sets
                   for ln in ways.values())
    baseline, *_ = _run("dead-first")
    assert total_pins(core) == total_pins(baseline)
    assert flat  # smoke: flattened tree renders


def test_dead_first_spills_everything_it_evicts():
    core, stats, *_ = _run("dead-first")
    assert core.vrmu.stats["elided_writebacks"] == 0
    assert core.bsi.stats["elided_spills"] == 0


# -- inertness (acceptance-critical) -----------------------------------------
def test_hints_inert_under_non_hint_policy():
    """Annotating the shared decoded program must not change a single
    counter of an ``lrc`` run: the hint bits are dead weight unless a
    hint-consuming policy is selected."""
    core1, stats1, mem1, sym1, expected = _run("lrc")
    base = stats1.as_dict()

    # force hints onto the (cached, shared) decoded program, run again
    core2, mem2, sym2, _ = build_gather_core(
        ViReCCore, n_threads=4,
        virec=ViReCConfig(rf_size=max(6, int(0.4 * 4 * len(GATHER_REGS))),
                          policy="lrc"))[0:4]
    annotate(core2.dprog)
    assert core2.dprog[0].kill_flats is not None
    stats2 = core2.run()
    after = stats2.as_dict()

    assert stats1["cycles"] == stats2["cycles"]
    assert base == after
    assert mem2.read_array(sym2["out"], len(expected)) == expected


def test_non_hint_policy_never_marks_dead():
    core, stats, *_ = _run("lrc")
    assert core.vrmu.stats["dead_marks"] == 0
    assert core.vrmu.stats["dead_evictions"] == 0
