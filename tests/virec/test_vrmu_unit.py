"""Focused unit tests for VRMU corner cases (decode-stage behaviour)."""

import pytest

from repro.core.cgmt import ContextLayout
from repro.isa import AddrMode, Instruction, Opcode, X
from repro.memory import Cache, CacheConfig
from repro.stats.counters import Stats
from repro.virec import CapacityError, VRMU, make_policy
from repro.virec.bsi import BackingStoreInterface


class FixedLatencyBackend:
    def __init__(self, latency=50):
        self.latency = latency

    def access(self, now, line_addr, is_write=False, requestor=0):
        return now + self.latency


class PortModel:
    def __init__(self, dcache):
        self.dcache = dcache
        self.port_free = 0

    def __call__(self, t, addr, is_write=False, is_register=False, pin_delta=0):
        t_issue = max(t, self.port_free)
        self.port_free = t_issue + 1
        return t_issue, self.dcache.access(t_issue, addr, is_write,
                                           is_register=is_register,
                                           pin_delta=pin_delta)


def make_vrmu(capacity=8, policy="lrc", **bsi_kw):
    dc = Cache(CacheConfig(name="dc", size_bytes=8 * 1024, assoc=4, latency=2,
                           mshrs=24), FixedLatencyBackend(), Stats("dc"))
    bsi = BackingStoreInterface(PortModel(dc), ContextLayout(), stats=Stats("b"),
                                **bsi_kw)
    return VRMU(capacity, make_policy(policy, capacity), bsi, stats=Stats("v"))


def add(rd, rn, rm):
    return Instruction(Opcode.ADD, rd=X(rd), rn=X(rn), rm=X(rm))


def ldr(rd, rn):
    return Instruction(Opcode.LDR, rd=X(rd), rn=X(rn), imm=0,
                       mode=AddrMode.OFF_IMM)


def test_capacity_floor():
    with pytest.raises(CapacityError):
        make_vrmu(capacity=4)


def test_cold_miss_then_hit():
    v = make_vrmu()
    t1 = v.access(0, add(0, 1, 2), 0)
    assert t1 > 0  # two source fills on the critical path
    assert v.stats["misses"] == 3 and v.stats["hits"] == 0
    t2 = v.access(0, add(0, 1, 2), t1 + 1)
    assert v.stats["hits"] == 3
    assert t2 == t1 + 1  # all resident: no extra wait


def test_dest_only_register_uses_dummy_fill():
    v = make_vrmu()
    inst = Instruction(Opcode.MOV, rd=X(5), imm=1)
    t = v.access(0, inst, 10)
    assert t == 10  # dummy fill: not on the critical path
    assert v.bsi.stats["dummy_fills"] == 1
    slot = v.tagstore.lookup(0, X(5).flat)
    assert v.tagstore.dirty[slot]  # will be written; must spill on evict


def test_instruction_operands_protected_from_each_other():
    """An instruction's own registers never evict each other, even at
    minimum capacity."""
    v = make_vrmu(capacity=6)
    t = 0
    # fill the cache with 6 other registers
    for reg in range(10, 16):
        t = v.access(0, Instruction(Opcode.MOV, rd=X(reg), imm=0), t) + 1
    # a 4-register instruction must displace 4 *other* entries
    inst = Instruction(Opcode.MADD, rd=X(0), rn=X(1), rm=X(2), ra=X(3))
    v.access(0, inst, t + 200)
    for reg in (0, 1, 2, 3):
        assert v.tagstore.lookup(0, X(reg).flat) is not None
    v.tagstore.check_invariants()


def test_rollback_flush_resets_commit_bits():
    v = make_vrmu()
    inst = ldr(6, 7)
    t = v.access(0, inst, 0)
    slots = [v.tagstore.lookup(0, X(6).flat), v.tagstore.lookup(0, X(7).flat)]
    assert all(v.tagstore.policy.C[s] == 1 for s in slots)
    v.on_flush(0, [inst])
    assert all(v.tagstore.policy.C[s] == 0 for s in slots)


def test_commit_pops_rollback():
    v = make_vrmu()
    v.access(0, add(0, 1, 2), 0)
    assert len(v.rollback) == 1
    v.on_commit()
    assert len(v.rollback) == 0


def test_segment_tracking_per_thread():
    v = make_vrmu(capacity=12)
    v.access(0, add(0, 1, 2), 0)
    v.access(1, add(3, 4, 5), 100)
    assert v.segment_regs[0] == {X(0).flat, X(1).flat, X(2).flat}
    assert v.segment_regs[1] == {X(3).flat, X(4).flat, X(5).flat}


def test_two_threads_same_arch_reg_coexist():
    v = make_vrmu(capacity=8)
    t0 = v.access(0, Instruction(Opcode.MOV, rd=X(3), imm=1), 0)
    t1 = v.access(1, Instruction(Opcode.MOV, rd=X(3), imm=2), t0 + 1)
    s0 = v.tagstore.lookup(0, X(3).flat)
    s1 = v.tagstore.lookup(1, X(3).flat)
    assert s0 is not None and s1 is not None and s0 != s1


def test_eviction_spills_through_bsi():
    v = make_vrmu(capacity=6)
    t = 0
    for reg in range(6):
        t = v.access(0, Instruction(Opcode.MOV, rd=X(reg), imm=0), t) + 1
    spills_before = v.bsi.stats["spills"]
    v.access(0, Instruction(Opcode.MOV, rd=X(20), imm=0), t + 500)
    assert v.bsi.stats["spills"] == spills_before + 1


def test_hit_rate_property():
    v = make_vrmu()
    assert v.hit_rate == 1.0  # vacuous before any access
    v.access(0, add(0, 1, 2), 0)
    assert v.hit_rate == 0.0
