"""Unit tests for the Backing Store Interface and the sysreg ping-pong buffer."""

import pytest

from repro.core.cgmt import ContextLayout
from repro.memory import Cache, CacheConfig
from repro.stats.counters import Stats
from repro.virec.bsi import BackingStoreInterface
from repro.virec.csl import SysRegBuffer


class FixedLatencyBackend:
    def __init__(self, latency=50):
        self.latency = latency

    def access(self, now, line_addr, is_write=False, requestor=0):
        return now + self.latency


class PortModel:
    """Minimal stand-in for TimelineCore.dcache_request."""

    def __init__(self, dcache):
        self.dcache = dcache
        self.port_free = 0
        self.log = []

    def __call__(self, t, addr, is_write=False, is_register=False, pin_delta=0):
        t_issue = max(t, self.port_free)
        self.port_free = t_issue + 1
        r = self.dcache.access(t_issue, addr, is_write, is_register=is_register,
                               pin_delta=pin_delta)
        self.log.append((t_issue, addr, is_write, pin_delta))
        return t_issue, r


def make_bsi(**kw):
    dc = Cache(CacheConfig(name="dc", size_bytes=8 * 1024, assoc=4, latency=2,
                           mshrs=24), FixedLatencyBackend(), Stats("dc"))
    port = PortModel(dc)
    layout = ContextLayout(used_regs=tuple(range(10)))
    bsi = BackingStoreInterface(port, layout, stats=Stats("bsi"), **kw)
    return bsi, dc, port, layout


def test_fill_returns_completion_and_pins():
    bsi, dc, port, layout = make_bsi()
    done = bsi.fill(0, tid=0, flat_reg=3)
    assert done > 0
    line = dc.line_state(layout.reg_addr(0, 3))
    assert line.is_reg and line.pin == 1
    assert bsi.stats["fills"] == 1
    assert bsi.busy_until == done


def test_spill_unpins_and_is_posted():
    bsi, dc, port, layout = make_bsi()
    t1 = bsi.fill(0, 0, 3)
    t2 = bsi.spill(t1, 0, 3, dirty=True)
    assert t2 <= t1 + 2  # posted: returns right after issue
    assert dc.line_state(layout.reg_addr(0, 3)).pin == 0
    assert bsi.stats["dirty_spills"] == 1


def test_dummy_fill_is_immediate_but_issues_metadata_txn():
    bsi, dc, port, layout = make_bsi()
    done = bsi.dummy_fill(5, 0, 4)
    assert done == 5  # no latency on the critical path
    assert bsi.stats["dummy_fills"] == 1
    assert len(port.log) == 1  # metadata transaction went to the cache


def test_dummy_fill_disabled_falls_back_to_real_fill():
    bsi, dc, port, layout = make_bsi(dummy_fill_enabled=False)
    done = bsi.dummy_fill(5, 0, 4)
    assert done > 5
    assert bsi.stats["fills"] == 1 and bsi.stats["dummy_fills"] == 0


def test_pinning_disabled_leaves_lines_unpinned():
    bsi, dc, port, layout = make_bsi(pinning_enabled=False)
    bsi.fill(0, 0, 3)
    assert dc.line_state(layout.reg_addr(0, 3)).pin == 0


def test_blocking_bsi_serializes_on_completion():
    blocking, dcb, portb, _ = make_bsi(blocking=True)
    t1 = blocking.fill(0, 0, 0)
    t2 = blocking.fill(0, 0, 63)  # different line -> cold miss again
    assert t2 >= t1  # second issue waited for first completion

    nonblocking, dcn, portn, _ = make_bsi(blocking=False)
    n1 = nonblocking.fill(0, 0, 0)
    n2 = nonblocking.fill(0, 0, 63)
    assert n2 - n1 <= t2 - t1  # pipelined issue at least as fast


def test_registers_pack_eight_per_line():
    bsi, dc, port, layout = make_bsi()
    a0 = layout.reg_addr(0, 0)
    a7 = layout.reg_addr(0, 7)
    a8 = layout.reg_addr(0, 8)
    assert a7 - a0 == 56
    assert a8 // 64 != a0 // 64  # ninth register on the next line


def test_sysreg_lines_pin_persistently():
    bsi, dc, port, layout = make_bsi()
    t = bsi.sysreg_read(0, tid=1)
    line = dc.line_state(layout.sysreg_addr(1))
    assert line.pin >= 1
    bsi.sysreg_write(t, tid=1)
    assert dc.line_state(layout.sysreg_addr(1)).pin >= 1  # still pinned


# -- SysRegBuffer ----------------------------------------------------------

def test_sysreg_buffer_prefetch_hit_path():
    bsi, dc, port, layout = make_bsi()
    buf = SysRegBuffer(bsi, n_threads=4, stats=Stats("srb"))
    t0 = buf.switch_to(0, 0)          # cold: demand fetch
    assert buf.stats["demand_fetches"] == 1
    # thread 1 was prefetched during the switch to 0
    t1 = buf.switch_to(1, t0 + 500)
    assert buf.stats["prefetch_hits"] == 1
    assert t1 == t0 + 500             # no extra wait


def test_sysreg_buffer_late_prefetch_costs_cycles():
    bsi, dc, port, layout = make_bsi()
    buf = SysRegBuffer(bsi, n_threads=2, stats=Stats("srb"))
    t0 = buf.switch_to(0, 0)
    t1 = buf.switch_to(1, t0 + 1)     # immediately: prefetch not done yet
    assert t1 > t0 + 1
    assert buf.stats["prefetch_late_cycles"] > 0


def test_sysreg_buffer_writes_back_previous():
    bsi, dc, port, layout = make_bsi()
    buf = SysRegBuffer(bsi, n_threads=3, stats=Stats("srb"))
    buf.switch_to(0, 0)
    buf.switch_to(1, 400)
    assert bsi.stats["sysreg_writes"] >= 1
