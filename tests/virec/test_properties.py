"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.instructions import Flags, Cond
from repro.isa.instructions import to_signed, to_unsigned, MASK64
from repro.virec.policies import LRC, PLRU, make_policy
from repro.virec.rollback import RollbackQueue
from repro.virec.tagstore import TagStore

# -- 64-bit arithmetic ---------------------------------------------------------


@given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
def test_signed_unsigned_bijection(x):
    assert to_signed(to_unsigned(x)) == x


@given(st.integers(), st.integers())
def test_unsigned_add_matches_masked_python(a, b):
    assert (to_unsigned(a) + to_unsigned(b)) & MASK64 == to_unsigned(a + b)


@given(st.integers(min_value=-(1 << 62), max_value=(1 << 62) - 1),
       st.integers(min_value=-(1 << 62), max_value=(1 << 62) - 1))
def test_cmp_flags_total_order(a, b):
    """NZCV evaluation must agree with Python's signed comparison."""
    from repro.isa.instructions import Instruction, Opcode, evaluate
    from repro.isa.registers import X
    inst = Instruction(Opcode.CMP, rn=X(0), rm=X(1))
    f = evaluate(inst, {X(0): to_unsigned(a), X(1): to_unsigned(b)},
                 Flags(), 0).new_flags
    assert f.evaluate(Cond.EQ) == (a == b)
    assert f.evaluate(Cond.LT) == (a < b)
    assert f.evaluate(Cond.GE) == (a >= b)


# -- tag store invariants ------------------------------------------------------

ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),   # thread
              st.integers(min_value=0, max_value=15),  # register
              st.booleans()),                          # is_write
    min_size=1, max_size=200)


@given(ops)
@settings(max_examples=60, deadline=None)
def test_tagstore_invariants_under_random_traffic(trace):
    """Random lookup/insert/evict traffic never corrupts the mapping, and
    the resident set never exceeds capacity."""
    capacity = 8
    ts = TagStore(capacity, LRC(capacity))
    now = 0
    for tid, reg, is_write in trace:
        now += 1
        ts.on_instruction()
        slot = ts.lookup(tid, reg)
        if slot is not None:
            ts.touch(slot, is_write)
        else:
            free = ts.free_slot()
            if free is None:
                victim = ts.select_victim([], now)
                assert victim is not None
                ts.evict(victim)
                free = victim
            ts.insert(free, tid, reg, now)
        ts.check_invariants()
        assert ts.resident_count() <= capacity


@given(ops)
@settings(max_examples=60, deadline=None)
def test_tagstore_lookup_agrees_with_reference_model(trace):
    """The tag store's resident set always equals a reference dict model."""
    capacity = 6
    ts = TagStore(capacity, PLRU(capacity))
    reference = {}
    now = 0
    for tid, reg, is_write in trace:
        now += 1
        ts.on_instruction()
        key = (tid, reg)
        slot = ts.lookup(tid, reg)
        assert (slot is not None) == (key in reference)
        if slot is None:
            free = ts.free_slot()
            if free is None:
                victim = ts.select_victim([], now)
                vt, vr, _ = ts.evict(victim)
                del reference[(vt, vr)]
                free = victim
            ts.insert(free, tid, reg, now)
            reference[key] = True
        else:
            ts.touch(slot, is_write)
    assert set(reference) == {(t, r) for (t, r) in ts._map}


# -- policy properties ----------------------------------------------------------

policy_names = st.sampled_from(["plru", "lru", "mrt-plru", "mrt-lru", "lrc"])


@given(policy_names, st.lists(st.integers(min_value=0, max_value=7),
                              min_size=1, max_size=100))
@settings(max_examples=60, deadline=None)
def test_policy_never_selects_outside_candidates(name, accesses):
    pol = make_policy(name, 8)
    valid = np.ones(8, dtype=bool)
    for idx in accesses:
        pol.on_instruction(valid)
        pol.on_access(idx)
    cand = np.zeros(8, dtype=bool)
    cand[accesses[0]] = True
    assert pol.select_victim(cand) == accesses[0]


@given(st.lists(st.integers(min_value=0, max_value=7), min_size=8, max_size=60))
@settings(max_examples=40, deadline=None)
def test_lrc_retains_flushed_registers(accesses):
    """After a flush, any committed register is always evicted before any
    in-flight (C=0) register of the same thread and age."""
    pol = LRC(8)
    valid = np.ones(8, dtype=bool)
    for idx in accesses:
        pol.on_instruction(valid)
        pol.on_access(idx)
    for _ in range(10):
        pol.on_instruction(valid)  # saturate ages
    flushed = set(a % 8 for a in accesses[:3])
    pol.on_flush(flushed)
    committed = [i for i in range(8) if i not in flushed]
    if committed:
        victim = pol.select_victim(valid)
        assert victim in committed


@given(st.integers(min_value=2, max_value=8),
       st.lists(st.integers(min_value=0, max_value=7), min_size=2,
                max_size=40))
@settings(max_examples=40, deadline=None)
def test_mrt_priority_monotone_in_thread_distance(n_threads, switches):
    """After any switch sequence, the most recently suspended thread's
    registers never have lower T than a longer-suspended thread's."""
    pol = make_policy("mrt-plru", 8)
    valid = np.ones(8, dtype=bool)
    owner = np.arange(8) % n_threads
    last_suspended = None
    prev = 0
    for s in switches:
        new = s % n_threads
        if new == prev:
            continue
        pol.on_context_switch(owner, valid, prev_tid=prev, new_tid=new)
        last_suspended = prev
        prev = new
    if last_suspended is not None and last_suspended != prev:
        t_last = pol.T[(owner == last_suspended)]
        others = pol.T[(owner != last_suspended) & (owner != prev)]
        if t_last.size and others.size:
            assert t_last.min() >= others.max() - 7  # bounded fields
            assert t_last.max() == 7


# -- rollback queue -------------------------------------------------------------


@given(st.lists(st.tuples(st.lists(st.integers(0, 31), max_size=4),
                          st.booleans()), max_size=50))
@settings(max_examples=60, deadline=None)
def test_rollback_flush_equals_union_of_pending(entries):
    q = RollbackQueue(depth=64)
    expected = set()
    for slots, is_mem in entries:
        q.push(slots, is_mem)
        expected.update(slots)
    assert q.flush() == expected
    assert len(q) == 0


@given(st.lists(st.booleans(), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_rollback_fifo_order(pattern):
    q = RollbackQueue(depth=64)
    for i, is_mem in enumerate(pattern):
        q.push([i], is_mem)
    for i, is_mem in enumerate(pattern):
        e = q.pop_commit()
        assert e.slots == (i,) and e.is_mem == is_mem
