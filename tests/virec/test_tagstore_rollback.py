"""Unit tests for the tag store and rollback queue."""

import pytest

from repro.virec.policies import LRC, PLRU
from repro.virec.rollback import RollbackQueue
from repro.virec.tagstore import TagStore


def make_ts(capacity=8, policy_cls=LRC):
    return TagStore(capacity, policy_cls(capacity))


# -- tag store -------------------------------------------------------------

def test_insert_lookup_evict_roundtrip():
    ts = make_ts()
    ts.insert(0, tid=1, flat_reg=5, now=0)
    assert ts.lookup(1, 5) == 0
    assert ts.lookup(0, 5) is None
    tid, reg, dirty = ts.evict(0)
    assert (tid, reg, dirty) == (1, 5, False)
    assert ts.lookup(1, 5) is None


def test_duplicate_mapping_rejected():
    ts = make_ts()
    ts.insert(0, 1, 5, 0)
    with pytest.raises(ValueError):
        ts.insert(1, 1, 5, 0)


def test_insert_into_occupied_slot_rejected():
    ts = make_ts()
    ts.insert(0, 1, 5, 0)
    with pytest.raises(ValueError):
        ts.insert(0, 2, 6, 0)


def test_evict_invalid_slot_rejected():
    ts = make_ts()
    with pytest.raises(ValueError):
        ts.evict(3)


def test_free_slot_then_full():
    ts = make_ts(capacity=2)
    assert ts.free_slot() == 0
    ts.insert(0, 0, 0, 0)
    assert ts.free_slot() == 1
    ts.insert(1, 0, 1, 0)
    assert ts.free_slot() is None


def test_dirty_tracking_via_touch():
    ts = make_ts()
    ts.insert(0, 0, 3, 0)
    ts.touch(0, is_write=False)
    assert not ts.dirty[0]
    ts.touch(0, is_write=True)
    assert ts.dirty[0]
    assert ts.evict(0)[2] is True


def test_select_victim_excludes_instruction_slots():
    ts = make_ts(capacity=3, policy_cls=PLRU)
    for slot, reg in enumerate((0, 1, 2)):
        ts.insert(slot, 0, reg, 0)
    victim = ts.select_victim(exclude_slots=[0, 1], now=100)
    assert victim == 2


def test_select_victim_skips_inflight_fills():
    ts = make_ts(capacity=2, policy_cls=PLRU)
    ts.insert(0, 0, 0, 0, fill_ready=50)
    ts.insert(1, 0, 1, 0, fill_ready=0)
    assert ts.select_victim([], now=10) == 1      # slot 0 still filling
    assert ts.select_victim([1], now=10) is None  # nothing evictable
    assert ts.select_victim([], now=60) in (0, 1)


def test_resident_counts_per_thread():
    ts = make_ts()
    ts.insert(0, 0, 0, 0)
    ts.insert(1, 0, 1, 0)
    ts.insert(2, 1, 0, 0)
    assert ts.resident_count() == 3
    assert ts.resident_count(0) == 2
    assert ts.resident_count(1) == 1
    assert ts.resident_regs(0) == [0, 1]


def test_invariants_hold():
    ts = make_ts()
    for i, reg in enumerate((3, 7, 9)):
        ts.insert(i, 0, reg, 0)
    ts.evict(1)
    ts.insert(1, 1, 3, 0)
    ts.check_invariants()


def test_capacity_mismatch_rejected():
    with pytest.raises(ValueError):
        TagStore(8, LRC(4))


# -- rollback queue -----------------------------------------------------------

def test_rollback_push_pop():
    q = RollbackQueue(depth=4)
    q.push([0, 1], is_mem=False)
    q.push([2], is_mem=True)
    assert len(q) == 2
    assert not q.oldest_is_mem
    e = q.pop_commit()
    assert e.slots == (0, 1)
    assert q.oldest_is_mem


def test_rollback_flush_compacts_to_slot_set():
    q = RollbackQueue()
    q.push([0, 1], False)
    q.push([1, 2], True)
    assert q.flush() == {0, 1, 2}
    assert len(q) == 0


def test_rollback_pop_empty_returns_none():
    q = RollbackQueue()
    assert q.pop_commit() is None


def test_rollback_overflow_drops_oldest():
    q = RollbackQueue(depth=2)
    q.push([0], False)
    q.push([1], False)
    q.push([2], False)
    assert q.stats["overflow"] == 1
    assert len(q) == 2
    assert q.pop_commit().slots == (1,)
