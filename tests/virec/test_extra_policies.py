"""Tests for the SRRIP and random policies (paper Section 7 claims)."""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import build_gather_core  # noqa: E402

from repro.virec import ViReCConfig, ViReCCore, make_policy  # noqa: E402
from repro.virec.policies import SRRIP, RandomPolicy  # noqa: E402


def test_srrip_insert_with_long_rrpv():
    p = SRRIP(4)
    p.on_insert(0)
    assert p.A[0] == SRRIP.RRPV_MAX - 1
    p.on_access(0)
    assert p.A[0] == 0  # promoted on re-reference


def test_srrip_victim_is_max_rrpv():
    p = SRRIP(4)
    valid = np.ones(4, dtype=bool)
    for i in range(4):
        p.on_insert(i)
    p.on_access(2)
    victim = p.select_victim(valid)
    assert victim != 2  # the promoted entry survived the aging sweep


def test_random_policy_deterministic_and_in_candidates():
    a = RandomPolicy(8, seed=42)
    b = RandomPolicy(8, seed=42)
    cand = np.zeros(8, dtype=bool)
    cand[[1, 3, 5]] = True
    seq_a = [a.select_victim(cand) for _ in range(10)]
    seq_b = [b.select_victim(cand) for _ in range(10)]
    assert seq_a == seq_b
    assert all(v in (1, 3, 5) for v in seq_a)
    assert a.select_victim(np.zeros(8, dtype=bool)) is None


def test_policies_registered():
    assert make_policy("srrip", 8).name == "srrip"
    assert make_policy("random", 8).name == "random"


def test_srrip_worse_than_lrc_on_multithreaded_register_cache():
    """The paper's Section 7 claim: RRIP-style reuse prediction does not
    work for registers under context switching."""
    lrc, *_ = build_gather_core(ViReCCore, n_threads=8, n=96,
                                virec=ViReCConfig(rf_size=34, policy="lrc"))
    srrip, *_ = build_gather_core(ViReCCore, n_threads=8, n=96,
                                  virec=ViReCConfig(rf_size=34, policy="srrip"))
    sl = lrc.run()
    ss = srrip.run()
    assert sl["rf_hit_rate"] > ss["rf_hit_rate"]
    assert sl["cycles"] <= ss["cycles"] * 1.02


def test_random_is_the_floor():
    """Every informed policy should beat random replacement."""
    rates = {}
    for policy in ("random", "plru", "mrt-plru", "lrc"):
        core, *_ = build_gather_core(ViReCCore, n_threads=8, n=96,
                                     virec=ViReCConfig(rf_size=34,
                                                       policy=policy))
        rates[policy] = core.run()["rf_hit_rate"]
    assert rates["lrc"] > rates["random"]
    assert rates["mrt-plru"] > rates["random"]


def test_extra_policies_work_in_trace_replay():
    from repro.virec.oracle import RegisterTrace, TraceEvent, simulate_trace
    trace = RegisterTrace(events=[
        TraceEvent(tid=0, regs=(i % 5, (i + 1) % 7)) for i in range(200)])
    for name in ("srrip", "random"):
        r = simulate_trace(trace, capacity=6, policy=name)
        assert 0 <= r.hit_rate <= 1
