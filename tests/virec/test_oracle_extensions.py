"""Tests for the Belady-MIN oracle replay and the future-work extensions
(group evictions, next-context prefetch)."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import GATHER_REGS, build_gather_core  # noqa: E402

from repro.virec import ViReCConfig, ViReCCore  # noqa: E402
from repro.virec.oracle import (  # noqa: E402
    AccessTraceRecorder,
    RegisterTrace,
    TraceEvent,
    policy_quality,
    simulate_trace,
)


def make_trace(seq):
    """seq: list of (tid, regs) access tuples or ('switch', prev, new)."""
    t = RegisterTrace()
    for item in seq:
        if item[0] == "switch":
            t.events.append(TraceEvent(tid=item[1], regs=(), kind="switch",
                                       new_tid=item[2]))
        else:
            t.events.append(TraceEvent(tid=item[0], regs=tuple(item[1])))
    return t


def test_opt_is_perfect_on_fitting_working_set():
    trace = make_trace([(0, (1, 2)), (0, (3,)), (0, (1, 2)), (0, (3,))] * 5)
    r = simulate_trace(trace, capacity=3, policy="opt")
    assert r.misses == 3  # only compulsory misses
    assert r.hit_rate >= 0.9


def test_opt_beats_or_matches_all_policies():
    import random
    random.seed(4)
    seq = []
    tid = 0
    for i in range(400):
        if i % 17 == 16:
            new = (tid + 1) % 3
            seq.append(("switch", tid, new))
            tid = new
        else:
            seq.append((tid, tuple(random.sample(range(12), k=2))))
    trace = make_trace(seq)
    opt = simulate_trace(trace, capacity=10, policy="opt")
    for name in ("plru", "lru", "mrt-plru", "mrt-lru", "lrc"):
        r = simulate_trace(trace, capacity=10, policy=name)
        assert r.hit_rate <= opt.hit_rate + 1e-12, f"{name} beat OPT?!"


def test_policy_quality_report():
    # skewed reuse: hot registers 0-2 interleaved with cold 3-9
    seq = [(0, (i % 3, 3 + (i % 7))) for i in range(120)]
    q = policy_quality(make_trace(seq), capacity=6)
    assert q["opt"] == 1.0
    assert 0 < q["lrc"] <= 1.0
    assert set(q) >= {"plru", "lru", "mrt-plru", "mrt-lru", "lrc"}


def test_cyclic_pattern_defeats_recency_but_not_opt():
    """A cyclic sweep larger than capacity: LRU-family policies get zero
    hits (classic pathology); the clairvoyant oracle still scores."""
    trace = make_trace([(0, (i % 6,)) for i in range(120)])
    assert simulate_trace(trace, 4, "lru").hit_rate == 0.0
    assert simulate_trace(trace, 4, "opt").hit_rate > 0.4


def test_recorder_captures_real_run():
    core, *_ = build_gather_core(ViReCCore, n_threads=4, n=32,
                                 virec=ViReCConfig(rf_size=20))
    trace = AccessTraceRecorder.attach(core)
    core.run()
    assert trace.accesses > 100
    kinds = {e.kind for e in trace.events}
    assert kinds >= {"access", "switch", "flush"}
    # the recorded trace replays with a hit rate in the same ballpark as
    # the timing simulation reported
    replay = simulate_trace(trace, capacity=20, policy="lrc")
    timing_rate = core.vrmu.hit_rate
    assert abs(replay.hit_rate - timing_rate) < 0.15


def test_lrc_close_to_opt_on_real_trace():
    """The paper positions LRC as approximating Belady's MIN; quantify it."""
    core, *_ = build_gather_core(ViReCCore, n_threads=8, n=96,
                                 virec=ViReCConfig(rf_size=40))
    trace = AccessTraceRecorder.attach(core)
    core.run()
    q = policy_quality(trace, capacity=40)
    assert q["lrc"] > 0.85          # within 15% of clairvoyant
    assert q["lrc"] >= q["plru"]    # and no worse than prior work


# -- group evictions -------------------------------------------------------

def test_group_evict_validation():
    with pytest.raises(ValueError):
        build_gather_core(ViReCCore, n_threads=2,
                          virec=ViReCConfig(rf_size=12, group_evict=0))[0]


def test_group_evictions_counted_and_correct():
    core, mem, sym, expected = build_gather_core(
        ViReCCore, n_threads=4, n=64,
        virec=ViReCConfig(rf_size=16, group_evict=3))
    core.run()
    assert mem.read_array(sym["out"], len(expected)) == expected
    assert core.vrmu.stats["group_evictions"] > 0


def test_group_evictions_reduce_eviction_events():
    """Grouping amortizes: fewer later on-demand spill stalls."""
    single, *_ = build_gather_core(ViReCCore, n_threads=4, n=64,
                                   virec=ViReCConfig(rf_size=16, group_evict=1))
    grouped, *_ = build_gather_core(ViReCCore, n_threads=4, n=64,
                                    virec=ViReCConfig(rf_size=16, group_evict=3))
    s1 = single.run()
    s2 = grouped.run()
    # grouped mode must still finish in comparable time (ablation, not win)
    assert s2["cycles"] < s1["cycles"] * 1.5


# -- context prefetch --------------------------------------------------------

def test_context_prefetch_correct_and_counted():
    core, mem, sym, expected = build_gather_core(
        ViReCCore, n_threads=4, n=64,
        virec=ViReCConfig(rf_size=20, context_prefetch=True))
    core.run()
    assert mem.read_array(sym["out"], len(expected)) == expected
    assert core.vrmu.stats["context_prefetches"] > 0


def test_context_prefetch_improves_hit_rate_under_contention():
    base, *_ = build_gather_core(ViReCCore, n_threads=8, n=96,
                                 virec=ViReCConfig(rf_size=30))
    pf, *_ = build_gather_core(ViReCCore, n_threads=8, n=96,
                               virec=ViReCConfig(rf_size=30,
                                                 context_prefetch=True))
    sb = base.run()
    sp = pf.run()
    assert sp["rf_hit_rate"] >= sb["rf_hit_rate"] - 0.02
