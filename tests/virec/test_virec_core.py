"""End-to-end tests of the ViReC core against the banked baseline."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import GATHER_REGS, build_gather_core  # noqa: E402

from repro.core.cgmt import BankedCore, ContextLayout  # noqa: E402
from repro.virec import ViReCConfig, ViReCCore, make_nsf_core  # noqa: E402


def virec_kw(rf_size, policy="lrc", **kw):
    return dict(virec=ViReCConfig(rf_size=rf_size, policy=policy, **kw))


def run_gather(core_cls, **kw):
    core, mem, sym, expected = build_gather_core(core_cls, **kw)
    stats = core.run()
    return core, stats, mem, sym, expected


def test_virec_correctness_full_context():
    core, stats, mem, sym, expected = run_gather(
        ViReCCore, n_threads=4, **virec_kw(4 * len(GATHER_REGS)))
    assert mem.read_array(sym["out"], len(expected)) == expected


def test_virec_correctness_tiny_rf():
    """40% context: heavy register-cache contention, still exact results."""
    rf = max(6, int(0.4 * 4 * len(GATHER_REGS)))
    core, stats, mem, sym, expected = run_gather(
        ViReCCore, n_threads=4, **virec_kw(rf))
    assert mem.read_array(sym["out"], len(expected)) == expected
    assert core.vrmu.stats["misses"] > 0


def test_virec_full_context_close_to_banked():
    """Headline claim: 100% context ViReC ~ banked performance."""
    v, vs, *_ = run_gather(ViReCCore, n_threads=4,
                           **virec_kw(4 * len(GATHER_REGS)))
    b, bs, *_ = run_gather(BankedCore, n_threads=4)
    assert vs["cycles"] <= bs["cycles"] * 1.35


def test_performance_degrades_gracefully_with_rf_size():
    ctx = len(GATHER_REGS)
    cycles = {}
    for frac in (1.0, 0.8, 0.6, 0.4):
        rf = max(6, int(frac * 4 * ctx))
        _, stats, *_ = run_gather(ViReCCore, n_threads=4, **virec_kw(rf))
        cycles[frac] = stats["cycles"]
    assert cycles[0.4] >= cycles[0.8] >= cycles[1.0] * 0.95
    # graceful: 40% context within 2x of full context
    assert cycles[0.4] < cycles[1.0] * 2.0


def test_hit_rate_increases_with_rf_size():
    ctx = len(GATHER_REGS)
    rates = []
    for frac in (0.4, 0.8, 1.0):
        core, stats, *_ = run_gather(ViReCCore, n_threads=4,
                                     **virec_kw(max(6, int(frac * 4 * ctx))))
        rates.append(stats["rf_hit_rate"])
    assert rates[0] <= rates[1] <= rates[2]
    assert rates[2] > 0.9


def test_lrc_beats_plru_under_contention():
    """Figure 12: LRC > PLRU hit rate on a multithreaded register cache."""
    ctx = len(GATHER_REGS)
    rf = max(6, int(0.6 * 8 * ctx))
    lrc, ls, *_ = run_gather(ViReCCore, n_threads=8, n=128,
                             **virec_kw(rf, policy="lrc"))
    plru, ps, *_ = run_gather(ViReCCore, n_threads=8, n=128,
                              **virec_kw(rf, policy="plru"))
    assert ls["rf_hit_rate"] > ps["rf_hit_rate"]
    assert ls["cycles"] < ps["cycles"] * 1.05


def test_nsf_baseline_slower_than_virec():
    ctx = len(GATHER_REGS)
    rf = max(6, int(0.8 * 4 * ctx))
    layout = ContextLayout(used_regs=GATHER_REGS)
    v, vs, *_ = run_gather(ViReCCore, n_threads=4, **virec_kw(rf))
    core, mem, sym, expected = build_gather_core(
        make_nsf_core, n_threads=4, rf_size=rf)
    ns = core.run()
    assert vs["cycles"] < ns["cycles"]
    assert mem.read_array(sym["out"], len(expected)) == expected


def test_register_region_is_reserved_in_dcache():
    core, stats, *_ = run_gather(ViReCCore, n_threads=4,
                                 **virec_kw(4 * len(GATHER_REGS)))
    lo, hi = core.dcache.register_region
    assert hi - lo == 4 * core.layout.bytes_per_thread


def test_pinning_reduces_register_fill_misses():
    ctx = len(GATHER_REGS)
    rf = max(6, int(0.4 * 8 * ctx))
    pin, pin_s, *_ = run_gather(ViReCCore, n_threads=8, n=128,
                                **virec_kw(rf, pinning=True))
    nopin, nopin_s, *_ = run_gather(ViReCCore, n_threads=8, n=128,
                                    **virec_kw(rf, pinning=False))
    pin_miss = pin.stats.child("bsi")["fill_backing_misses"]
    nopin_miss = nopin.stats.child("bsi")["fill_backing_misses"]
    assert pin_miss <= nopin_miss


def test_tagstore_invariants_after_run():
    core, *_ = run_gather(ViReCCore, n_threads=4, **virec_kw(12))
    core.vrmu.tagstore.check_invariants()


def test_rf_too_small_rejected():
    from repro.virec import CapacityError
    with pytest.raises(CapacityError):
        run_gather(ViReCCore, n_threads=2, **virec_kw(4))


def test_thread_scaling_more_threads_smaller_context():
    """Section 2: with a fixed 32-entry RF, 8 threads at ~40% context beat
    4 threads at 100% context on a miss-heavy gather."""
    ctx = len(GATHER_REGS)
    rf = 4 * ctx  # 36 entries
    four, fs, *_ = run_gather(ViReCCore, n_threads=4, n=128, mem_latency=200,
                              **virec_kw(rf))
    eight, es, *_ = run_gather(ViReCCore, n_threads=8, n=128, mem_latency=200,
                               **virec_kw(rf))
    assert es["cycles"] < fs["cycles"]
