"""CachedBackend: warm replays must be byte-identical to cold computes.

The cache contract on top of the backend determinism contract: a sweep
served from the ledger produces the exact result list (and manifest
digest) of recomputation, under both the serial and the process-pool
inner backends, with every lookup graded hit/miss/stale.
"""

import pytest

from repro.ledger import CachedBackend, LedgerReader, SCHEMA_VERSION
from repro.ledger import store as store_mod
from repro.metrics import MetricsRegistry
from repro.system import run_grid, sweep

from ..helpers import time_limit
from .test_backends import MIXED_GRID, digest_of


def make_cached(path, jobs=None):
    from repro.exec import resolve_backend
    return CachedBackend(path, inner=resolve_backend(jobs=jobs))


@pytest.fixture
def ledger(tmp_path):
    return str(tmp_path / "ledger.sqlite")


def run_warm(ledger, grid=MIXED_GRID, jobs=None, **kw):
    backend = make_cached(ledger, jobs=jobs)
    try:
        results = sweep(grid, backend=backend, **kw)
        return results, dict(backend.counts)
    finally:
        backend.close()


# -- byte-identity ------------------------------------------------------------
def test_warm_sweep_is_byte_identical_serial(ledger):
    with time_limit(300):
        cold = sweep(MIXED_GRID, ledger=ledger)
        warm, counts = run_warm(ledger)
    assert counts == {"hit": len(MIXED_GRID), "miss": 0, "stale": 0}
    assert digest_of(warm) == digest_of(cold)
    assert [r.cycles for r in warm] == [r.cycles for r in cold]
    assert ([r.stats.as_dict() for r in warm]
            == [r.stats.as_dict() for r in cold])


def test_warm_sweep_is_byte_identical_jobs2(ledger):
    """Cold through a pooled cache, warm through another: same digest as
    a plain serial sweep at every step."""
    with time_limit(300):
        serial = sweep(MIXED_GRID)
        cold, cold_counts = run_warm(ledger, jobs=2)
        warm, warm_counts = run_warm(ledger, jobs=2)
    assert cold_counts == {"hit": 0, "miss": len(MIXED_GRID), "stale": 0}
    assert warm_counts == {"hit": len(MIXED_GRID), "miss": 0, "stale": 0}
    assert digest_of(cold) == digest_of(serial)
    assert digest_of(warm) == digest_of(serial)


def test_partial_warm_mixes_hits_and_misses(ledger):
    with time_limit(300):
        sweep(MIXED_GRID[:2], ledger=ledger)
        warm, counts = run_warm(ledger)
    assert counts == {"hit": 2, "miss": 2, "stale": 0}
    assert digest_of(warm) == digest_of(sweep(MIXED_GRID))


# -- ledger row accounting ----------------------------------------------------
def test_counters_match_row_counts(ledger):
    with time_limit(300):
        _, cold_counts = run_warm(ledger)          # all misses, recorded
        with LedgerReader(ledger) as reader:
            after_cold = reader.count()
        _, warm_counts = run_warm(ledger)          # all hits, not re-recorded
        with LedgerReader(ledger) as reader:
            after_warm = reader.count()
    assert cold_counts["miss"] == after_cold == len(MIXED_GRID)
    assert warm_counts["hit"] == len(MIXED_GRID)
    assert after_warm == after_cold                # hits append nothing
    with LedgerReader(ledger) as reader:
        assert all(r["source"] == "cache" for r in reader.runs())


def test_metrics_registry_sees_grades(ledger):
    with time_limit(300):
        sweep(MIXED_GRID[:2], ledger=ledger)
        backend = make_cached(ledger)
        try:
            registry = MetricsRegistry()
            run_grid(MIXED_GRID[:3], backend=backend, metrics=registry)
        finally:
            backend.close()
    snap = registry.snapshot()["metrics"]
    assert snap["ledger.hit"]["series"][""] == 2.0
    assert snap["ledger.miss"]["series"][""] == 1.0
    assert "ledger.stale" not in snap


def test_bind_metrics_keeps_explicit_registry(ledger):
    explicit = MetricsRegistry()
    backend = CachedBackend(ledger, metrics=explicit)
    try:
        backend.bind_metrics(MetricsRegistry())
        assert backend.metrics is explicit
    finally:
        backend.close()


# -- staleness ----------------------------------------------------------------
def test_flipped_engine_key_grades_stale(ledger):
    cfg = MIXED_GRID[0]
    with time_limit(300):
        cold = sweep([cfg], ledger=ledger)
        warm, counts = run_warm(ledger, grid=[cfg.with_(engine="compiled")])
    assert counts == {"hit": 0, "miss": 0, "stale": 1}
    # the engines agree on results, so the recompute matches anyway
    assert warm[0].cycles == cold[0].cycles
    # and the fresh compiled-engine row is now servable under its own key
    _, counts2 = run_warm(ledger, grid=[cfg.with_(engine="compiled")])
    assert counts2 == {"hit": 1, "miss": 0, "stale": 0}


def test_schema_version_bump_grades_stale(ledger, monkeypatch):
    with time_limit(300):
        sweep(MIXED_GRID[:1], ledger=ledger)
        monkeypatch.setattr(store_mod, "SCHEMA_VERSION", SCHEMA_VERSION + 1)
        _, counts = run_warm(ledger, grid=MIXED_GRID[:1])
    assert counts == {"hit": 0, "miss": 0, "stale": 1}


def test_unchecked_rows_stale_for_checked_requests(ledger):
    with time_limit(300):
        sweep(MIXED_GRID[:1], ledger=ledger, check=False)
        _, counts = run_warm(ledger, grid=MIXED_GRID[:1], check=True)
        assert counts == {"hit": 0, "miss": 0, "stale": 1}
        _, counts = run_warm(ledger, grid=MIXED_GRID[:1], check=False)
    assert counts["hit"] == 1


# -- failure handling ---------------------------------------------------------
def test_failures_are_never_cached(ledger):
    bad = MIXED_GRID[1].with_(max_cycles=2)     # trips the cycle watchdog
    with time_limit(300):
        first, counts1 = run_warm(ledger, grid=[MIXED_GRID[0], bad],
                                  on_error="isolate")
        second, counts2 = run_warm(ledger, grid=[MIXED_GRID[0], bad],
                                   on_error="isolate")
    for results, counts in ((first, counts1), (second, counts2)):
        assert results[0] is not None and results[1] is None
        assert [f.index for f in results.failures] == [1]
    assert counts1 == {"hit": 0, "miss": 2, "stale": 0}
    # the good row was cached; the failed row stays a miss forever
    assert counts2 == {"hit": 1, "miss": 1, "stale": 0}


# -- pass-through -------------------------------------------------------------
def test_unknown_fn_passes_through(ledger):
    backend = CachedBackend(ledger)
    try:
        assert backend.map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]
        assert backend.counts == {"hit": 0, "miss": 0, "stale": 0}
    finally:
        backend.close()


def test_jobs_property_delegates(ledger):
    backend = make_cached(ledger, jobs=3)
    try:
        assert backend.jobs == 3
    finally:
        backend.close()


# -- concurrent parent appends ------------------------------------------------
def test_run_grid_jobs4_ledger_consistent(ledger):
    """``--jobs 4`` with a ledger: every row recorded exactly once and the
    parallel digest matches serial (the acceptance gate)."""
    with time_limit(300):
        serial = run_grid(MIXED_GRID, ledger=ledger)
        with LedgerReader(ledger) as reader:
            assert reader.count() == len(MIXED_GRID)
        parallel = run_grid(MIXED_GRID, jobs=4,
                            ledger=str(ledger) + ".par")
    assert parallel == serial
    with LedgerReader(str(ledger) + ".par") as reader:
        assert reader.count() == len(MIXED_GRID)
        digests = {r["digest"] for r in reader.runs()}
    with LedgerReader(ledger) as reader:
        assert {r["digest"] for r in reader.runs()} == digests
