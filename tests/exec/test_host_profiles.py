"""Host profiles across the process boundary, and out of the digest.

Two promises: ``strip_result`` keeps ``host_profile`` (unlike telemetry
sessions, it is plain picklable data the report needs), and manifest
digests never depend on it (wall-clock is machine-dependent; the digest
is a pure function of simulated behaviour).
"""

import pickle

from repro.exec import strip_result, sweep_worker
from repro.system import RunConfig, RunManifest, run_config, run_grid

from ..helpers import time_limit

CFG = RunConfig(workload="gather", core_type="virec", n_threads=2,
                n_per_thread=8)


def _assert_profile(profile):
    assert profile is not None
    assert profile["total_s"] > 0
    assert profile["instr_per_s"] > 0
    assert set(profile["phases_s"]) == {"build", "simulate", "check"}


def test_strip_result_keeps_host_profile():
    result = run_config(CFG)
    stripped = strip_result(result)
    _assert_profile(stripped.host_profile)
    assert stripped.telemetry is None  # process-local state is dropped
    assert stripped.sanitizer is None
    # and the stripped result actually crosses a process boundary
    clone = pickle.loads(pickle.dumps(stripped))
    _assert_profile(clone.host_profile)


def test_sweep_worker_ships_profile():
    status, result = sweep_worker((0, CFG, True))
    assert status == "ok"
    _assert_profile(result.host_profile)


def test_parallel_grid_manifest_collects_profiles(tmp_path):
    grid = [RunConfig(workload="gather", core_type="virec", n_threads=2,
                      n_per_thread=8, seed=s) for s in (1, 2)]
    manifest = RunManifest()
    with time_limit(300):
        rows = run_grid(grid, jobs=2, manifest=manifest)
    assert len(rows) == 2 and not rows.failures
    assert len(manifest.host_profiles) == 2
    for profile in manifest.host_profiles:
        _assert_profile(profile)
    # the profiles survive a save/load round trip
    path = tmp_path / "manifest.json"
    manifest.save(str(path))
    loaded = RunManifest.load(str(path))
    assert len(loaded.host_profiles) == 2
    _assert_profile(loaded.host_profiles[0])


def test_host_profiles_never_enter_the_digest():
    r1, r2 = run_config(CFG), run_config(CFG)
    # two runs of one config: identical simulation, different wall-clock
    assert r1.host_profile != r2.host_profile or True  # may rarely tie
    m1, m2 = RunManifest(), RunManifest()
    m1.add(r1)
    m2.add(r2)
    assert m1.results_digest == m2.results_digest
    # mutating recorded profiles leaves the digest untouched
    m1.host_profiles[0] = {"total_s": 999.0}
    assert m1._digest() == m2.results_digest
