"""Worker-crash containment: BrokenProcessPool becomes per-row failures.

A worker that dies outright (``os._exit``, OOM kill, segfault) used to
surface as a bare ``BrokenProcessPool`` that aborted the whole sweep.
The backend now blames the broken chunk with :class:`WorkerCrash`
sentinels (carrying the chunk's row indices and exit context), retries
the surviving chunks in a fresh pool, and ``run_grid`` records crashed
rows as transient ``WorkerCrashError`` failures.

(The victim function lives at module top level so spawn workers can
pickle it by reference.)
"""

import os
import time

import pytest

from repro.errors import RunFailure, WorkerCrashError
from repro.exec import ProcessPoolBackend, WorkerCrash
from repro.exec.backends import ExecBackend
from repro.system import RunConfig, run_grid

from ..helpers import time_limit


def _victim(item):
    if item == "die":
        time.sleep(0.3)  # let sibling chunks get submitted first
        os._exit(13)
    return item * 2


# -- sentinel semantics ------------------------------------------------------
def test_worker_crash_to_error():
    crash = WorkerCrash(index=2, chunk_indices=[2, 3], context="exit 13",
                        attempt=1)
    err = crash.to_error()
    assert isinstance(err, WorkerCrashError)
    assert err.indices == [2, 3]
    assert err.context == "exit 13"
    assert "3" in str(err)  # chunk peers named in the message


def test_run_failure_carries_chunk_context():
    err = WorkerCrashError("worker died", indices=[4, 5],
                           context="exit code 9")
    failure = RunFailure.from_exception(err, index=4, config={})
    assert failure.error_type == "WorkerCrashError"
    assert failure.transient  # crashes are retryable
    assert failure.extra["chunk_indices"] == [4, 5]
    assert failure.extra["exit_context"] == "exit code 9"


# -- the pool itself ---------------------------------------------------------
def test_crash_contained_to_its_chunk():
    items = ["die", "a", "b", "c", "d", "e"]
    with time_limit(300):
        out = ProcessPoolBackend(jobs=2, chunksize=1).map(_victim, items)
    crashes = [r for r in out if isinstance(r, WorkerCrash)]
    assert len(crashes) == 1
    assert crashes[0].index == 0
    assert crashes[0].chunk_indices == [0]
    # every other item still completed, in order
    assert out[1:] == ["aa", "bb", "cc", "dd", "ee"]


def test_crash_blames_whole_chunk():
    items = ["x", "die", "y", "z"]
    with time_limit(300):
        out = ProcessPoolBackend(jobs=2, chunksize=2).map(_victim, items)
    # chunk [x, die] is lost as a unit; chunk [y, z] survives
    assert all(isinstance(r, WorkerCrash) for r in out[:2])
    assert out[0].chunk_indices == [0, 1]
    assert out[2:] == ["yy", "zz"]


# -- run_grid conversion (deterministic fake backend, no real crash) --------
class _CrashingBackend(ExecBackend):
    """Pretends row 0's worker died; runs everything else in-process."""

    jobs = 2

    def map(self, fn, tasks):
        out = []
        for task in tasks:
            if task[0] == 0:
                out.append(WorkerCrash(index=0, chunk_indices=[0],
                                       context="exit 13"))
            else:
                out.append(fn(task))
        return out


def test_run_grid_records_crash_as_failure():
    cfgs = [RunConfig(workload="gather", core_type="virec", n_threads=2,
                      n_per_thread=8, seed=s) for s in (1, 2)]
    rows = run_grid(cfgs, backend=_CrashingBackend())
    assert len(rows) == 1  # the surviving row
    assert len(rows.failures) == 1
    f = rows.failures[0]
    assert f.error_type == "WorkerCrashError"
    assert f.index == 0
    assert f.transient
    assert f.extra["exit_context"] == "exit 13"


def test_sweep_crash_raises_in_fail_fast_mode():
    from repro.system import sweep

    cfgs = [RunConfig(workload="gather", core_type="virec", n_threads=2,
                      n_per_thread=8, seed=s) for s in (1, 2)]
    with pytest.raises(WorkerCrashError):
        sweep(cfgs, backend=_CrashingBackend(), on_error="raise")


def test_sweep_crash_isolated_as_failure():
    from repro.system import sweep

    cfgs = [RunConfig(workload="gather", core_type="virec", n_threads=2,
                      n_per_thread=8, seed=s) for s in (1, 2)]
    results = sweep(cfgs, backend=_CrashingBackend(), on_error="isolate")
    assert results[0] is None and results[1] is not None
    assert results.failures[0].error_type == "WorkerCrashError"
    assert results.failures[0].index == 0
