"""The execution-backend determinism contract.

The hard guarantee of :mod:`repro.exec`: a sweep fanned out over worker
processes produces *exactly* the results of the same sweep run serially —
same values, same order, same failure placement — so ``jobs=N`` is purely
a wall-clock knob.  These tests byte-compare manifest digests between the
two paths over a mixed core-type grid, and check the failure-isolation
alignment that :class:`~repro.system.ResultList` promises.

(Worker processes use the ``spawn`` start method and re-import ``repro``
from scratch, which is why these tests go through the library entry points
rather than closures — closures don't pickle.)
"""

import os

import pytest

from repro.errors import RunFailure, SimulationError
from repro.exec import (ExecBackend, ProcessPoolBackend, SerialBackend,
                        resolve_backend, strip_result, sweep_worker)
from repro.system import RunConfig, RunManifest, run_config, run_grid, sweep

from ..helpers import time_limit

#: one config per engine flavour — CGMT banked, ViReC, barrel FGMT, and the
#: software-switch baseline — so the digest comparison crosses every
#: subclass of the per-instruction step.
MIXED_GRID = [
    RunConfig(workload="gather", core_type="banked", n_threads=4,
              n_per_thread=8),
    RunConfig(workload="gather", core_type="virec", n_threads=4,
              n_per_thread=8, context_fraction=0.6),
    RunConfig(workload="stride", core_type="fgmt", n_threads=4,
              n_per_thread=8),
    RunConfig(workload="gather", core_type="swctx", n_threads=2,
              n_per_thread=8),
]


def digest_of(results) -> str:
    m = RunManifest()
    for r in results:
        m.add(r)
    return m.results_digest


# ------------------------------------------------------- backend resolution
def test_default_is_serial(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert isinstance(resolve_backend(), SerialBackend)
    assert isinstance(resolve_backend(jobs=None), SerialBackend)


def test_jobs_one_is_serial():
    assert isinstance(resolve_backend(jobs=1), SerialBackend)


def test_jobs_n_is_process_pool():
    b = resolve_backend(jobs=3)
    assert isinstance(b, ProcessPoolBackend)
    assert b.jobs == 3


def test_jobs_zero_means_all_cores():
    ncpu = os.cpu_count() or 1
    b = resolve_backend(jobs=0)
    if ncpu > 1:
        assert isinstance(b, ProcessPoolBackend)
        assert b.jobs == ncpu
    else:  # a 1-cpu host has no parallelism to offer
        assert isinstance(b, SerialBackend)


def test_env_var_sets_default(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "2")
    b = resolve_backend()
    assert isinstance(b, ProcessPoolBackend)
    assert b.jobs == 2
    # an explicit jobs= beats the environment
    assert isinstance(resolve_backend(jobs=1), SerialBackend)


def test_explicit_backend_wins(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "4")
    serial = SerialBackend()
    assert resolve_backend(backend=serial) is serial


def test_negative_jobs_rejected():
    with pytest.raises(ValueError, match="jobs"):
        ProcessPoolBackend(jobs=-1)


def test_backends_are_exec_backends():
    assert isinstance(SerialBackend(), ExecBackend)
    assert isinstance(ProcessPoolBackend(jobs=2), ExecBackend)


# ------------------------------------------------------------ map semantics
def test_serial_map_preserves_order():
    out = SerialBackend().map(lambda x: x * x, [3, 1, 2])
    assert out == [9, 1, 4]


def test_pool_single_item_runs_inline():
    # one item (or jobs=1) short-circuits to in-process execution, so even
    # an unpicklable closure works — no worker is spawned
    seen = []

    def fn(x):
        seen.append(x)
        return x + 1

    assert ProcessPoolBackend(jobs=4).map(fn, [41]) == [42]
    assert seen == [41]


def test_strip_result_drops_process_local_attachments():
    r = run_config(RunConfig(workload="gather", core_type="virec",
                             n_threads=2, n_per_thread=8,
                             telemetry={"events": True, "interval": 50},
                             sanitize=True))
    assert r.telemetry is not None and r.sanitizer is not None
    s = strip_result(r)
    assert s.telemetry is None and s.sanitizer is None
    assert s.cycles == r.cycles


def test_sweep_worker_tags_outcomes():
    ok = sweep_worker((0, MIXED_GRID[0], True))
    assert ok[0] == "ok" and ok[1].cycles > 0
    bad = sweep_worker((5, MIXED_GRID[0].with_(max_cycles=2), True))
    assert bad[0] == "err"
    assert isinstance(bad[1], RunFailure) and bad[1].index == 5
    assert isinstance(bad[2], SimulationError)


# ----------------------------------------------- serial vs parallel digests
def test_sweep_parallel_digest_matches_serial():
    """The acceptance contract: byte-identical result digests."""
    with time_limit(300):
        serial = sweep(MIXED_GRID)
        parallel = sweep(MIXED_GRID, jobs=2)
    assert digest_of(parallel) == digest_of(serial)
    assert [r.cycles for r in parallel] == [r.cycles for r in serial]
    assert ([r.stats.as_dict() for r in parallel]
            == [r.stats.as_dict() for r in serial])


def test_run_grid_parallel_rows_match_serial():
    with time_limit(300):
        serial = run_grid(MIXED_GRID)
        parallel = run_grid(MIXED_GRID, jobs=2)
    assert parallel == serial
    assert parallel.failures == [] and serial.failures == []


def test_isolate_alignment_under_pool():
    """``on_error="isolate"``: placeholder positions and failure indices of
    a parallel sweep line up exactly with the serial ones."""
    grid = [
        MIXED_GRID[0],
        MIXED_GRID[1].with_(max_cycles=2),   # trips the cycle watchdog
        MIXED_GRID[2],
        MIXED_GRID[3].with_(max_cycles=2),
        MIXED_GRID[0].with_(workload="stride"),
    ]
    with time_limit(300):
        serial = sweep(grid, on_error="isolate")
        parallel = sweep(grid, on_error="isolate", jobs=2)
    holes = [i for i, r in enumerate(serial) if r is None]
    assert holes == [1, 3]
    assert [i for i, r in enumerate(parallel) if r is None] == holes
    assert [f.index for f in parallel.failures] == \
        [f.index for f in serial.failures] == holes
    assert [f.error_type for f in parallel.failures] == \
        [f.error_type for f in serial.failures]
    ok = [i for i in range(len(grid)) if i not in holes]
    assert [parallel[i].cycles for i in ok] == [serial[i].cycles for i in ok]


def test_parallel_raise_propagates_first_failure_in_config_order():
    grid = [MIXED_GRID[0], MIXED_GRID[1].with_(max_cycles=2), MIXED_GRID[2]]
    with time_limit(300):
        with pytest.raises(SimulationError):
            sweep(grid, on_error="raise", jobs=2)
