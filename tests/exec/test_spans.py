"""Cross-process span tracing: recorder, merged trace, flow arrows.

The unit half drives :class:`SweepTrace` with synthetic records from two
fake worker pids and JSON-parses the merged Chrome trace; the integration
half runs a real two-worker grid and validates the written ``trace.json``
the same way CI does.
"""

import json
import os

from repro.exec import SpanRecorder, SweepTrace, task_spec
from repro.exec.spans import PARENT_PID, now_s
from repro.system import RunConfig, run_grid

from ..helpers import time_limit


# -- worker-side recorder ----------------------------------------------------
def test_recorder_measures_queue_wait_and_phases():
    t0 = now_s()
    obs = task_spec(t0)
    rec = SpanRecorder(obs, index=3)
    rec.phase("setup")
    rec.phase("simulate")
    names = [r[2] for r in rec.records]
    # queue_wait may be absent when dispatch->pickup is sub-clock-tick
    assert names[-2:] == ["setup", "simulate"]
    for index, pid, _, start_us, dur_us in rec.records:
        assert index == 3
        assert pid == os.getpid()
        assert start_us >= 0 and dur_us >= 0


def test_recorder_spans_are_contiguous():
    obs = {"t0": now_s(), "t_submit": now_s() - 0.01}
    rec = SpanRecorder(obs, index=0)
    rec.phase("setup")
    rec.phase("simulate")
    assert rec.records[0][2] == "queue_wait"
    for prev, cur in zip(rec.records, rec.records[1:]):
        assert cur[3] >= prev[3]  # starts are monotonic


# -- parent-side merge (synthetic two-worker fleet) --------------------------
def _merged_trace():
    trace = SweepTrace(label="sweep")
    trace.dispatch(0)
    trace.dispatch(1)
    trace.merge_spans([(0, 101, "queue_wait", 10, 5),
                       (0, 101, "simulate", 15, 50)])
    trace.merge_spans([(1, 202, "queue_wait", 12, 3),
                       (1, 202, "simulate", 15, 40)])
    return trace, trace.chrome_trace(metadata={"rows": 2})


def test_merge_creates_one_pid_track_per_worker():
    trace, ct = _merged_trace()
    assert trace.worker_pids == [101, 202]
    events = json.loads(json.dumps(ct))["traceEvents"]
    pnames = {e["pid"]: e["args"]["name"] for e in events
              if e["ph"] == "M" and e["name"] == "process_name"}
    assert pnames[PARENT_PID] == "sweep parent"
    assert pnames[101] == "worker 101"
    assert pnames[202] == "worker 202"
    span_pids = {e["pid"] for e in events
                 if e["ph"] == "X" and e["name"] == "simulate"}
    assert span_pids == {101, 202}


def test_flow_arrows_link_dispatch_to_worker():
    _, ct = _merged_trace()
    events = ct["traceEvents"]
    starts = [e for e in events if e["ph"] == "s"]
    ends = [e for e in events if e["ph"] == "f"]
    assert len(starts) == len(ends) == 2  # one arrow per task
    assert all(e["pid"] == PARENT_PID for e in starts)
    assert {e["pid"] for e in ends} == {101, 202}
    assert ({e["id"] for e in starts} == {e["id"] for e in ends})
    assert all(e.get("bp") == "e" for e in ends)


def test_unknown_dispatch_defaults_flow_origin():
    trace = SweepTrace()
    # no dispatch() recorded for index 7: the arrow starts at the span
    trace.merge_spans([(7, 303, "simulate", 100, 10)])
    s = [e for e in trace.chrome_trace()["traceEvents"] if e["ph"] == "s"]
    assert s and s[0]["ts"] == 100


def test_trace_metadata_and_roundtrip(tmp_path):
    trace, _ = _merged_trace()
    path = tmp_path / "trace.json"
    trace.write(str(path), metadata={"rows": 2})
    data = json.loads(path.read_text())
    assert data["otherData"]["workers"] == 2
    assert data["otherData"]["rows"] == 2


# -- integration: a real two-worker observed grid ----------------------------
def test_observed_parallel_grid_traces_two_workers(tmp_path):
    grid = [RunConfig(workload="gather", core_type=ct, n_threads=2,
                      n_per_thread=8)
            for ct in ("banked", "virec", "fgmt", "swctx")]
    with time_limit(300):
        rows = run_grid(grid, jobs=2, observe=str(tmp_path))
    assert len(rows) == 4 and not rows.failures
    data = json.loads((tmp_path / "trace.json").read_text())
    events = data["traceEvents"]
    worker_pids = {e["pid"] for e in events
                   if e["ph"] == "X" and e["pid"] != PARENT_PID}
    assert len(worker_pids) >= 2, "expected spans from >=2 worker processes"
    span_names = {e["name"] for e in events if e["ph"] == "X"}
    assert {"setup", "simulate", "serialize"} <= span_names
    assert any(e["ph"] == "s" for e in events)
    assert any(e["ph"] == "f" for e in events)
    # the event log saw every row finish
    log = (tmp_path / "sweep_events.jsonl").read_text().splitlines()
    evs = [json.loads(line)["ev"] for line in log]
    assert evs.count("row_ok") == 4
    assert evs[-1] == "sweep_end"
