"""VRMU probes, interval sampler, host profiler, report, and CLI verbs."""

import json

import pytest

from repro.stats.counters import Stats
from repro.stats.reporting import render_intervals, sparkline
from repro.system import RunConfig, run_config
from repro.telemetry import IntervalSampler, TelemetryConfig
from repro.telemetry.probes import _log2_bucket
from repro.telemetry.profiler import HostProfiler


def _virec_run(**telemetry):
    cfg = RunConfig(workload="gather", core_type="virec", n_threads=4,
                    n_per_thread=16, telemetry=telemetry or {"events": True})
    return run_config(cfg)


# -- VRMU probe --------------------------------------------------------------

def test_probe_counts_match_stats():
    r = _virec_run()
    probe = r.telemetry.cores[0].vrmu_probe
    assert probe.hits == r.stats.child("core0").child("vrmu")["hits"]
    assert probe.misses == r.stats.child("core0").child("vrmu")["misses"]


def test_eviction_causes_taxonomy():
    r = _virec_run()
    probe = r.telemetry.cores[0].vrmu_probe
    causes = probe.eviction_causes
    assert causes, "undersized RF run must evict"
    assert set(causes) <= {"capacity", "thread", "group", "prefetch",
                           "task-drop"}


def test_residency_histogram_totals():
    r = _virec_run()
    probe = r.telemetry.cores[0].vrmu_probe
    s = probe.summary()
    # finalize() closed still-resident spans, so the histogram covers
    # every insertion
    assert sum(probe.residency_hist.values()) >= sum(
        probe.eviction_causes.values())
    assert s["hit_rate"] == pytest.approx(r.rf_hit_rate)
    assert all(v > 0 for v in s["peak_occupancy"].values())


def test_occupancy_by_thread_matches_resident_counts():
    r = _virec_run()
    core = r.telemetry.cores[0].core
    occ = core.vrmu.tagstore.occupancy_by_thread()
    for tid, count in occ.items():
        assert count == core.vrmu.tagstore.resident_count(tid)


def test_log2_bucket():
    assert _log2_bucket(0) == 0
    assert _log2_bucket(1) == 0
    assert _log2_bucket(2) == 1
    assert _log2_bucket(3) == 1
    assert _log2_bucket(1024) == 10


# -- interval sampler --------------------------------------------------------

def test_sampler_partial_tail():
    s = Stats("core0")
    sampler = IntervalSampler(100, s)
    s.inc("instructions", 5)
    sampler.on_cycle(100)
    s.inc("instructions", 2)
    sampler.finalize(130)
    assert [r["cycle"] for r in sampler.rows] == [100, 130]
    assert sampler.rows[-1]["elapsed"] == 30


def test_sampler_catches_up_over_skipped_intervals():
    s = Stats("core0")
    sampler = IntervalSampler(10, s)
    sampler.on_cycle(35)  # commit clock jumped 3.5 intervals
    assert [r["cycle"] for r in sampler.rows] == [10, 20, 30]


def test_sampler_rejects_bad_interval():
    with pytest.raises(ValueError):
        IntervalSampler(0, Stats())


# -- config ------------------------------------------------------------------

def test_config_from_spec_roundtrip():
    tc = TelemetryConfig(interval=50)
    assert TelemetryConfig.from_spec(tc) is tc
    assert TelemetryConfig.from_spec({"interval": 50}) == tc
    assert not TelemetryConfig.from_spec(None).enabled
    with pytest.raises(TypeError):
        TelemetryConfig.from_spec("yes")
    with pytest.raises(ValueError):
        TelemetryConfig(interval=-1)


# -- host profiler -----------------------------------------------------------

def test_host_profiler_phases():
    p = HostProfiler()
    with p.phase("build"):
        pass
    with p.phase("simulate"):
        pass
    with p.phase("simulate"):  # accumulates
        pass
    d = p.as_dict(instructions=1000, cycles=2000, events=30)
    assert set(d["phases_s"]) == {"build", "simulate"}
    assert d["total_s"] >= 0
    assert d["instr_per_s"] is not None
    assert d["events_per_s"] is not None


def test_run_result_carries_host_profile():
    r = _virec_run()
    prof = r.host_profile
    assert {"build", "simulate", "check"} <= set(prof["phases_s"])
    assert prof["instr_per_s"] > 0
    # collected even with telemetry off
    r2 = run_config(RunConfig(workload="gather", core_type="banked",
                              n_threads=2, n_per_thread=8))
    assert r2.host_profile["instr_per_s"] > 0


def test_manifest_records_host_profiles(tmp_path):
    from repro.system.manifest import RunManifest

    r = _virec_run()
    m = RunManifest()
    m.add(r)
    digest_with = m.results_digest
    assert m.host_profiles[0]["instr_per_s"] > 0
    # host profiles are machine-dependent and must not affect the digest
    m2 = RunManifest()
    m2.add(r)
    m2.host_profiles[0] = {"total_s": 999.0}
    assert m2._digest() == digest_with
    path = tmp_path / "manifest.json"
    m.save(str(path))
    loaded = RunManifest.load(str(path))
    assert loaded.host_profiles[0]["instr_per_s"] == \
        m.host_profiles[0]["instr_per_s"]


# -- report & sparklines -----------------------------------------------------

def test_session_report_contents():
    r = _virec_run(events=True, interval=100, pipeline_trace=True)
    text = r.telemetry.report()
    assert "telemetry report" in text
    assert "hit rate" in text
    assert "eviction causes" in text
    assert "pipeline stalls" in text
    assert "interval samples" in text


def test_sparkline_shapes():
    assert sparkline([]) == ""
    assert sparkline([1, 1, 1]) == "▁▁▁"
    line = sparkline(list(range(100)), width=10)
    assert len(line) == 10
    assert line[0] == "▁" and line[-1] == "█"


def test_render_intervals_skips_missing_columns():
    rows = [{"cycle": 10, "ipc": 0.5}, {"cycle": 20, "ipc": 0.7}]
    text = render_intervals(rows, ["ipc", "not_a_column"])
    assert "ipc" in text and "not_a_column" not in text
    assert render_intervals([], ["ipc"]) == "(no interval samples)"


# -- CLI verbs ---------------------------------------------------------------

def test_cli_trace(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.jsonl"
    rc = main(["trace", "--workload", "gather", "--core", "virec",
               "--threads", "4", "--per-thread", "12",
               "--interval", "100", "--pipeline",
               "--out", str(out), "--metrics", str(metrics)])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "perfetto" in printed.lower()
    assert "telemetry report" in printed
    assert json.loads(out.read_text())["traceEvents"]
    assert metrics.read_text().splitlines()


def test_cli_timeline(tmp_path, capsys):
    from repro.cli import main

    jsonl = tmp_path / "tl.jsonl"
    rc = main(["timeline", "--workload", "gather", "--core", "virec",
               "--threads", "4", "--per-thread", "16",
               "--interval", "200", "--jsonl", str(jsonl)])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "ipc" in printed and "vrmu_hit_rate" in printed
    assert "intervals" in printed
    assert jsonl.read_text().splitlines()


def test_cli_timeline_custom_columns(capsys):
    from repro.cli import main

    rc = main(["timeline", "--workload", "vecadd", "--core", "banked",
               "--threads", "2", "--per-thread", "8",
               "--interval", "100", "--columns", "ipc,context_switches"])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "context_switches" in printed
    assert "occupancy_total" not in printed
