"""Chrome trace-event export: schema, track monotonicity, flow pairing."""

import json

import pytest

from repro.system import RunConfig, run_config
from repro.telemetry import BSI_TRACK, EventTracer
from repro.telemetry.events import EVENT_CATEGORIES


@pytest.fixture(scope="module")
def trace():
    r = run_config(RunConfig(workload="gather", core_type="virec",
                             n_threads=4, n_per_thread=16,
                             telemetry={"events": True, "interval": 200}))
    return r.telemetry.chrome_trace(metadata={"workload": "gather"})


def test_trace_is_json_serializable(trace):
    text = json.dumps(trace)
    assert json.loads(text) == trace


def test_required_top_level_keys(trace):
    assert set(trace) >= {"traceEvents", "displayTimeUnit", "otherData"}
    assert trace["otherData"]["workload"] == "gather"
    assert trace["otherData"]["dropped_events"] == 0
    assert trace["traceEvents"]


def test_event_schema(trace):
    for ev in trace["traceEvents"]:
        assert set(ev) >= {"name", "ph", "pid", "tid"}
        if ev["ph"] == "M":
            assert ev["name"] in ("process_name", "thread_name",
                                  "thread_sort_index")
            continue
        assert isinstance(ev["ts"], int) and ev["ts"] >= 0
        assert ev["cat"] in set(EVENT_CATEGORIES.values()) | {"misc"}
        if ev["ph"] == "X":
            assert ev["dur"] >= 0
        if ev["ph"] in ("s", "f"):
            assert "id" in ev


def test_timestamps_monotonic_per_track(trace):
    last = {}
    for ev in trace["traceEvents"]:
        if ev["ph"] == "M":
            continue
        key = (ev["pid"], ev["tid"])
        assert ev["ts"] >= last.get(key, 0)
        last[key] = ev["ts"]


def test_metadata_names_every_track(trace):
    named = {(e["pid"], e["tid"]) for e in trace["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"}
    used = {(e["pid"], e["tid"]) for e in trace["traceEvents"]
            if e["ph"] != "M"}
    assert used <= named


def test_flow_pairs_match(trace):
    starts = [e for e in trace["traceEvents"] if e["ph"] == "s"]
    finishes = [e for e in trace["traceEvents"] if e["ph"] == "f"]
    assert starts, "expected spill/fill flow events from a virec run"
    assert {e["id"] for e in starts} == {e["id"] for e in finishes}
    for f in finishes:
        assert f["bp"] == "e"


def test_expected_event_types_present(trace):
    names = {e["name"] for e in trace["traceEvents"] if e["ph"] != "M"}
    assert {"run", "stall", "ctx_switch", "vrmu_miss", "evict", "fill",
            "spill", "dcache_miss"} <= names


def test_ring_overflow_keeps_newest():
    tr = EventTracer(max_events=10)
    for i in range(25):
        tr.instant("tick", ts=i, pid=0, tid=BSI_TRACK)
    assert len(tr) == 10
    assert tr.dropped == 15
    assert [e["ts"] for e in tr.events] == list(range(15, 25))
    assert tr.chrome_trace()["otherData"]["dropped_events"] == 15


def test_flow_ids_unique():
    tr = EventTracer()
    for _ in range(5):
        tr.flow_pair("f", 0, 1, 2, BSI_TRACK, pid=0)
    ids = [e["id"] for e in tr.events if e["ph"] == "s"]
    assert len(ids) == len(set(ids)) == 5


def test_bad_capacity_rejected():
    with pytest.raises(ValueError):
        EventTracer(max_events=0)
