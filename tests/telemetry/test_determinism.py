"""Telemetry artifacts are deterministic: same seed + config => same bytes."""

import json

from repro.system import RunConfig, run_config

CFG = RunConfig(workload="gather", core_type="virec", n_threads=4,
                n_per_thread=16,
                telemetry={"events": True, "interval": 150})


def _run():
    return run_config(CFG)


def test_metrics_jsonl_byte_identical():
    a = _run().telemetry.metrics_jsonl()
    b = _run().telemetry.metrics_jsonl()
    assert a == b
    assert a.endswith("\n")
    # every line parses and keys are sorted (diffable output)
    for line in a.splitlines():
        row = json.loads(line)
        assert list(row) == sorted(row)
        assert {"core", "cycle", "elapsed", "ipc",
                "vrmu_hit_rate"} <= set(row)


def test_chrome_trace_identical_across_runs():
    a = _run().telemetry.chrome_trace()
    b = _run().telemetry.chrome_trace()
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_report_identical_across_runs():
    assert _run().telemetry.report() == _run().telemetry.report()


def test_interval_rows_cover_whole_run():
    r = _run()
    rows = r.telemetry.interval_rows()
    assert rows[-1]["cycle"] == r.cycles  # finalize() emits the tail
    cycles = [row["cycle"] for row in rows]
    assert cycles == sorted(cycles)
    assert sum(row["instructions"] for row in rows) == r.instructions


def test_write_artifacts(tmp_path):
    r = _run()
    trace_path = tmp_path / "trace.json"
    jsonl_path = tmp_path / "metrics.jsonl"
    r.telemetry.write_chrome_trace(str(trace_path))
    r.telemetry.write_metrics_jsonl(str(jsonl_path))
    assert json.loads(trace_path.read_text())["traceEvents"]
    assert len(jsonl_path.read_text().splitlines()) == \
        len(r.telemetry.interval_rows())
