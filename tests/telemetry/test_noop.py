"""Telemetry must be purely observational.

The hard guarantee of the observability layer: a run with telemetry *on*
produces exactly the same simulated behaviour — cycle counts, instruction
counts, and the entire stats tree — as the same run with telemetry off.
(The instruments only read simulator state; they never touch a timestamp.)
"""

import pytest

from repro.system import RunConfig, run_config

FULL_TELEMETRY = {"events": True, "interval": 100, "vrmu_probes": True,
                  "pipeline_trace": True}


@pytest.mark.parametrize("core_type", ["virec", "banked", "swctx", "fgmt",
                                       "nsf", "prefetch-exact"])
def test_telemetry_does_not_change_cycles(core_type):
    base = RunConfig(workload="gather", core_type=core_type,
                     n_threads=4, n_per_thread=16)
    off = run_config(base)
    on = run_config(base.with_(telemetry=FULL_TELEMETRY))
    assert on.cycles == off.cycles
    assert on.instructions == off.instructions
    assert on.ipc == off.ipc
    assert on.stats.as_dict() == off.stats.as_dict()


def test_telemetry_multicore_identical():
    base = RunConfig(workload="spmv", core_type="virec",
                     n_threads=4, n_per_thread=8, n_cores=2)
    off = run_config(base)
    on = run_config(base.with_(telemetry=FULL_TELEMETRY))
    assert on.cycles == off.cycles
    assert on.stats.as_dict() == off.stats.as_dict()


def test_telemetry_with_faults_identical():
    """Telemetry observing a fault campaign must not perturb it."""
    base = RunConfig(workload="gather", core_type="virec",
                     n_threads=4, n_per_thread=16,
                     faults={"rf_rate": 1e-4, "scheme": "ecc"})
    off = run_config(base)
    on = run_config(base.with_(telemetry=FULL_TELEMETRY))
    assert on.cycles == off.cycles
    assert on.stats.as_dict() == off.stats.as_dict()


def test_telemetry_off_wires_nothing():
    r = run_config(RunConfig(workload="gather", core_type="virec",
                             n_threads=2, n_per_thread=8))
    assert r.telemetry is None


def test_disabled_spec_wires_nothing():
    r = run_config(RunConfig(
        workload="gather", core_type="virec", n_threads=2, n_per_thread=8,
        telemetry={"events": False, "interval": 0, "vrmu_probes": False}))
    assert r.telemetry is None


def test_ooo_rejects_telemetry():
    cfg = RunConfig(workload="gather", core_type="ooo", n_threads=1,
                    n_per_thread=16, telemetry={"events": True})
    with pytest.raises(ValueError, match="ooo"):
        run_config(cfg)


def test_unknown_telemetry_field_rejected_eagerly():
    with pytest.raises(ValueError, match="unknown telemetry field"):
        RunConfig(telemetry={"evnets": True})


# ----------------------------------------------------- the instrument bus
# Telemetry rides the core's InstrumentBus: attaching must leave the fast
# (uninstrumented) step path, and the instrumented run must commit on
# exactly the fast path's clock (the bus-level restatement of the cycle
# tests above — see repro/core/instrument.py).

def test_attach_goes_through_the_bus():
    from repro.core.base import TimelineCore
    from repro.core.cgmt import BankedCore
    from repro.telemetry import TelemetryConfig, TelemetrySession

    from ..helpers import build_gather_core

    core, _, _, _ = build_gather_core(BankedCore, n_threads=2, n=8)
    assert core.bus.empty
    assert (core._process_instruction.__func__
            is TimelineCore._process_instruction_fast)

    session = TelemetrySession(TelemetryConfig(events=True, interval=50))
    ct = session.attach(core)
    assert core.bus.telemetry is ct is core.telemetry
    assert (core._process_instruction.__func__
            is TimelineCore._process_instruction_instrumented)


def test_bus_attached_run_is_cycle_identical_to_fast_path():
    from repro.core.cgmt import BankedCore
    from repro.telemetry import TelemetryConfig, TelemetrySession

    from ..helpers import build_gather_core

    bare, _, _, _ = build_gather_core(BankedCore, n_threads=4, n=32)
    bare.run()

    observed, _, _, _ = build_gather_core(BankedCore, n_threads=4, n=32)
    TelemetrySession(TelemetryConfig(events=True, interval=25,
                                     pipeline_trace=True)).attach(observed)
    observed.run()

    assert observed.commit_tail == bare.commit_tail
    assert observed.stats.as_dict() == bare.stats.as_dict()
