"""Property-based tests: random programs assemble, run, and round-trip."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import assemble, run_functional
from repro.isa.func_sim import FunctionalSimulator
from repro.memory.main_memory import MainMemory

regs = st.integers(min_value=0, max_value=15).map(lambda i: f"x{i}")
imms = st.integers(min_value=-1024, max_value=1024)

alu_line = st.one_of(
    st.tuples(st.sampled_from(["add", "sub", "and", "orr", "eor", "mul"]),
              regs, regs, regs).map(lambda t: f"{t[0]} {t[1]}, {t[2]}, {t[3]}"),
    st.tuples(st.sampled_from(["add", "sub", "lsl", "lsr"]),
              regs, regs, st.integers(0, 63)).map(
                  lambda t: f"{t[0]} {t[1]}, {t[2]}, #{t[3]}"),
    st.tuples(regs, imms).map(lambda t: f"mov {t[0]}, #{t[1]}"),
    st.tuples(regs, regs).map(lambda t: f"mov {t[0]}, {t[1]}"),
    st.tuples(regs, regs, regs, regs).map(
        lambda t: f"madd {t[0]}, {t[1]}, {t[2]}, {t[3]}"),
)


@given(st.lists(alu_line, min_size=1, max_size=40))
@settings(max_examples=80, deadline=None)
def test_random_alu_programs_assemble_and_terminate(lines):
    src = "\n".join(lines) + "\nhalt"
    program = assemble(src)
    assert len(program) == len(lines) + 1
    sim = run_functional(program)
    assert sim.instructions_executed == len(lines)
    # all register values are canonical unsigned 64-bit
    assert all(0 <= v < (1 << 64) for v in sim.state.xregs)


@given(st.lists(alu_line, min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_disassembly_reassembles_identically(lines):
    """text -> Program -> text listing contains every original mnemonic."""
    src = "\n".join(lines) + "\nhalt"
    program = assemble(src)
    listing = program.disassemble()
    for line in lines:
        mnemonic = line.split()[0]
        assert mnemonic in listing


@given(st.lists(alu_line, min_size=1, max_size=25), st.integers(0, 1 << 30))
@settings(max_examples=40, deadline=None)
def test_functional_sim_deterministic(lines, seed_val):
    src = "\n".join(lines) + "\nhalt"
    a = run_functional(assemble(src))
    b = run_functional(assemble(src))
    assert a.state.xregs == b.state.xregs


@given(st.integers(1, 50), st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_counted_loop_trip_counts(n, step):
    src = f"""
        mov x0, #0
        mov x1, #0
        loop:
        add x1, x1, #1
        add x0, x0, #{step}
        cmp x0, #{n * step}
        b.lt loop
        halt
    """
    sim = run_functional(assemble(src))
    assert sim.state.xregs[1] == n


@given(st.lists(st.integers(0, 1 << 40), min_size=1, max_size=20))
@settings(max_examples=30, deadline=None)
def test_memory_copy_roundtrip(values):
    mem = MainMemory()
    mem.write_array(0x1000, values)
    src = f"""
        adr x1, src
        adr x2, dst
        mov x3, #0
        loop:
        ldr x4, [x1, x3, lsl #3]
        str x4, [x2, x3, lsl #3]
        add x3, x3, #1
        cmp x3, #{len(values)}
        b.lt loop
        halt
    """
    sim = FunctionalSimulator(assemble(src, symbols={"src": 0x1000,
                                                     "dst": 0x8000}), mem)
    sim.run()
    assert mem.read_array(0x8000, len(values)) == list(values)
