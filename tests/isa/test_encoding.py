"""Round-trip tests for the binary instruction encoding."""

import pytest

import repro.workloads as wl
from repro.isa import assemble
from repro.isa.encoding import (
    EncodingError,
    decode_instruction,
    decode_program,
    encode_instruction,
    encode_program,
)


def roundtrip(program):
    blob = encode_program(program)
    back = decode_program(blob)
    assert len(back) == len(program)
    for a, b in zip(program.instructions, back.instructions):
        assert encode_instruction(a) == encode_instruction(b), (a.text, b)
    return back


def test_roundtrip_simple_program():
    p = assemble(
        """
        start:
            mov x0, #0
        loop:
            add x0, x0, #1
            ldr x2, [x1, x0, lsl #3]
            ldr x3, [x1, #16]
            ldr x4, [x1], #8
            str x2, [x1, #0]
            cmp x0, #10
            b.lt loop
            cbz x2, loop
            madd x5, x0, x2, x3
            fmov d0, #2.5
            fmadd d1, d0, d0, d1
            nop
            halt
        """
    )
    roundtrip(p)


@pytest.mark.parametrize("name", wl.names())
def test_roundtrip_every_workload_kernel(name):
    inst = wl.get(name).build(n_threads=2, n_per_thread=4)
    roundtrip(inst.program)


def test_large_immediates_use_literal_word():
    p = assemble("mov x0, #100000\nadr x1, sym\nhalt",
                 symbols={"sym": 0x123456})
    blob = encode_program(p)
    back = decode_program(blob)
    assert back[0].imm == 100000
    assert back[1].imm == 0x123456


def test_negative_immediates():
    p = assemble("add x0, x0, #-8\nldr x1, [x2, #-64]\nhalt")
    back = roundtrip(p)
    assert back[0].imm == -8
    assert back[1].imm == -64


def test_fp_immediate_literal():
    p = assemble("fmov d0, #3.25\nhalt")
    back = roundtrip(p)
    assert back[0].imm == pytest.approx(3.25)


def test_branch_targets_roundtrip():
    src = "\n".join(["nop"] * 70) + "\nloop:\nnop\nb loop\nhalt"
    p = assemble(src)
    back = roundtrip(p)
    assert back[71].target == 70  # far target forced a literal


def test_decoded_program_executes_identically():
    from repro.isa import run_functional
    src = """
        mov x0, #0
        mov x1, #0
        loop:
        madd x1, x0, x0, x1
        add x0, x0, #1
        cmp x0, #15
        b.lt loop
        halt
    """
    p = assemble(src)
    q = decode_program(encode_program(p))
    assert run_functional(p).state.xregs[:2] == run_functional(q).state.xregs[:2]


def test_stream_size_reasonable():
    inst = wl.get("gather").build(n_threads=2, n_per_thread=4)
    blob = encode_program(inst.program)
    n = len(inst.program)
    # header + length bytes + 4-8 bytes per instruction
    assert 4 + n + 4 * n <= len(blob) <= 4 + n + 8 * n
