"""The static pre-decode pass (DecodedProgram / DecodedOp).

Every DecodedOp field must mirror the corresponding Instruction property
exactly — the engine trusts the packed metadata instead of re-deriving it
per commit — and the decode must be cached per (program, line size) so all
cores over one program share a single pass.
"""

from repro.isa import assemble
from repro.isa.decoded import INST_BYTES, DecodedOp, DecodedProgram
from repro.isa.registers import RegClass

SRC = """
start:
    mov  x2, #7
    mul  x3, x0, x2
    adr  x5, idx
    fadd d1, d2, d3
loop:
    ldr  x8, [x5, x3, lsl #3]
    str  x8, [x5, x3, lsl #3]
    add  x3, x3, #1
    cmp  x3, x2
    b.lt loop
    halt
"""


def program():
    return assemble(SRC, symbols={"idx": 0x1000})


def test_metadata_mirrors_instruction_properties():
    prog = program()
    dprog = DecodedProgram.of(prog, 64)
    assert len(dprog) == len(prog.instructions)
    for pc, inst in enumerate(prog.instructions):
        d = dprog[pc]
        assert isinstance(d, DecodedOp)
        assert d.inst is inst and d.pc == pc
        assert d.srcs == inst.srcs and d.dests == inst.dests
        assert d.reads_flags == inst.reads_flags
        assert d.sets_flags == inst.sets_flags
        assert d.is_load == inst.is_load
        assert d.is_store == inst.is_store
        assert d.is_branch == inst.is_branch
        assert d.is_halt == inst.is_halt
        assert d.ex_latency == inst.ex_latency
        assert d.rd is inst.rd
        assert d.has_regs == bool(inst.regs)
        assert d.addr == pc * INST_BYTES
        assert d.line == d.addr // 64


def test_src_reads_triples_index_the_right_register_file():
    dprog = DecodedProgram.of(program(), 64)
    for d in dprog.ops:
        assert len(d.src_reads) == len(d.srcs)
        for (reg, is_x, idx), src in zip(d.src_reads, d.srcs):
            assert reg is src
            assert is_x == (src.rclass is RegClass.X)
            assert idx == src.index


def test_classification_spot_checks():
    dprog = DecodedProgram.of(program(), 64)
    kinds = [(d.is_load, d.is_store, d.is_branch, d.is_halt)
             for d in dprog.ops]
    assert kinds[4] == (True, False, False, False)    # ldr
    assert kinds[5] == (False, True, False, False)    # str
    assert kinds[8] == (False, False, True, False)    # b.lt
    assert kinds[9] == (False, False, False, True)    # halt
    assert dprog[8].reads_flags and dprog[7].sets_flags


def test_decode_is_cached_per_program_and_line_size():
    prog = program()
    a = DecodedProgram.of(prog, 64)
    assert DecodedProgram.of(prog, 64) is a          # cache hit
    b = DecodedProgram.of(prog, 32)
    assert b is not a and b.line_bytes == 32         # distinct per line size
    assert DecodedProgram.of(program(), 64) is not a  # distinct per program


def test_line_indices_respect_line_size():
    prog = program()
    d64 = DecodedProgram.of(prog, 64)
    d16 = DecodedProgram.of(prog, 16)
    # 16 instructions per 64B line vs 4 per 16B line
    assert d64[15 if len(d64) > 15 else len(d64) - 1].line == \
        (min(15, len(d64) - 1) * INST_BYTES) // 64
    assert [d.line for d in d16.ops] == \
        [(pc * INST_BYTES) // 16 for pc in range(len(d16))]


def test_cores_over_one_program_share_the_decode():
    from repro.core.cgmt import BankedCore
    from tests.helpers import build_gather_core
    core_a, _, _, _ = build_gather_core(BankedCore, n_threads=2, n=8)
    core_b = BankedCore(core_a.program, core_a.icache, core_a.dcache,
                        core_a.memory, core_a.threads,
                        layout=core_a.layout)
    assert core_b.dprog is core_a.dprog


def test_annotation_survives_decode_cache():
    """Liveness hints written by annotate() persist on the cached decode:
    a second core asking for the same (program, line size) sees them."""
    from repro.analysis.dataflow import annotate

    prog = program()
    d1 = DecodedProgram.of(prog, 64)
    annotate(d1)
    assert d1.liveness is not None
    d2 = DecodedProgram.of(prog, 64)
    assert d2 is d1
    assert d2.liveness is d1.liveness
    for op in d2.ops:
        assert op.kill_flats is not None


def test_annotation_does_not_leak_between_line_sizes():
    """Each icache-line-size decode variant carries its own hint state —
    annotating the 64B decode must not make the 32B one claim hints."""
    from repro.analysis.dataflow import annotate

    prog = program()
    d64 = DecodedProgram.of(prog, 64)
    d32 = DecodedProgram.of(prog, 32)
    assert d64 is not d32
    annotate(d64)
    assert d32.liveness is None
    assert all(op.kill_flats is None for op in d32.ops)
    # annotating the other variant reuses the computation independently
    annotate(d32)
    assert d32.liveness is not None
    for a, b in zip(d64.ops, d32.ops):
        assert a.kill_flats == b.kill_flats
        assert a.last_use_flats == b.last_use_flats
        assert a.dead_dest_flats == b.dead_dest_flats


def test_decoded_op_duck_types_instruction_for_vrmu():
    """The VRMU reads .regs / .srcs / .dests / .is_mem off whatever the
    hooks hand it; DecodedOp must mirror the Instruction exactly."""
    prog = program()
    dprog = DecodedProgram.of(prog, 64)
    for pc, inst in enumerate(prog.instructions):
        d = dprog[pc]
        assert d.regs == inst.regs
        assert d.srcs == inst.srcs
        assert d.dests == inst.dests
        assert d.is_mem == inst.is_mem


def test_fresh_decode_has_unclaimed_hints():
    import dataclasses
    prog = program()
    # a distinct Program object gets a distinct, unannotated decode
    clone = dataclasses.replace(prog) if dataclasses.is_dataclass(prog) \
        else None
    d = DecodedProgram.of(clone if clone is not None else program(), 64)
    assert d.liveness is None
    assert all(op.kill_flats is None for op in d.ops)
