"""Cache keying and superop structure of the threaded-code compiler.

The compile cache must never hand one context's closures to another: the
full key is (program identity, icache line size, EngineVariant), with the
same staleness guard the decode cache carries.  Chains (superops) must
stop at CFG basic-block leaders, branches, and halts, and instrumented
tables must not chain at all (per-instruction probe granularity).
"""

import pytest

from repro.analysis.dataflow.cfg import build_cfg
from repro.isa import assemble
from repro.isa.compiled import (
    MAX_CHAIN,
    CompiledProgram,
    EngineVariant,
    compile_program,
)
from repro.isa.decoded import DecodedProgram

SRC = """
start:
    mov  x1, #0
    mov  x2, #16
    adr  x3, buf
loop:
    ldr  x4, [x3, x1, lsl #3]
    add  x5, x4, #1
    str  x5, [x3, x1, lsl #3]
    add  x1, x1, #1
    cmp  x1, x2
    b.lt loop
    halt
"""


def make_dprog(line_bytes=64):
    prog = assemble(SRC, symbols={"buf": 0x1000})
    return DecodedProgram.of(prog, line_bytes)


def chain_of(step):
    """The successor closure a compiled step chains into (None if it
    ends its superop)."""
    code = step.__code__
    if "CHAIN" not in code.co_freevars:
        return None
    return step.__closure__[code.co_freevars.index("CHAIN")].cell_contents


# ------------------------------------------------------------- cache keying
def test_same_variant_hits_cache():
    dprog = make_dprog()
    v = EngineVariant()
    assert compile_program(dprog, v) is compile_program(dprog, v)


def test_equal_variant_values_share_one_table():
    # the key is the variant's *value*, not its object identity
    dprog = make_dprog()
    a = compile_program(dprog, EngineVariant(reg_hook=True))
    b = compile_program(dprog, EngineVariant(reg_hook=True))
    assert a is b


@pytest.mark.parametrize("other", [
    EngineVariant(reg_hook=True),
    EngineVariant(commit_hook=True),
    EngineVariant(miss_switch=True),
    EngineVariant(instrumented=True),
    EngineVariant(family="barrel"),
    EngineVariant(chained=False),
])
def test_distinct_variants_get_distinct_tables(other):
    dprog = make_dprog()
    base = compile_program(dprog, EngineVariant())
    cp = compile_program(dprog, other)
    assert cp is not base
    assert all(f is not g for f, g in zip(base.code, cp.code))


def test_no_leak_across_line_sizes():
    d64 = make_dprog(64)
    d32 = make_dprog(32)
    assert d64 is not d32
    v = EngineVariant()
    a = compile_program(d64, v)
    b = compile_program(d32, v)
    assert a is not b
    # each decode owns its cache: recompiling one never touches the other
    assert d64.compiled[v] is a
    assert d32.compiled[v] is b


def test_no_leak_across_programs():
    p1 = assemble(SRC, symbols={"buf": 0x1000})
    p2 = assemble(SRC, symbols={"buf": 0x2000})
    v = EngineVariant()
    a = compile_program(DecodedProgram.of(p1), v)
    b = compile_program(DecodedProgram.of(p2), v)
    assert a is not b


def test_staleness_guard_recompiles():
    prog = assemble(SRC, symbols={"buf": 0x1000})
    dprog = DecodedProgram(prog)      # private decode: no shared cache
    v = EngineVariant()
    cp = compile_program(dprog, v)
    assert len(cp.code) == len(dprog.ops)
    dprog.ops.append(dprog.ops[-1])   # simulate an in-place regrow
    fresh = compile_program(dprog, v)
    assert fresh is not cp
    assert len(fresh.code) == len(dprog.ops)


def test_unknown_family_rejected():
    with pytest.raises(ValueError):
        compile_program(make_dprog(), EngineVariant(family="vliw"))


# --------------------------------------------------------- superop structure
def test_chains_stop_at_block_leaders():
    dprog = make_dprog()
    leaders = {b.start for b in build_cfg(dprog.program).blocks}
    code = compile_program(dprog, EngineVariant()).code
    for pc, step in enumerate(code):
        nxt = chain_of(step)
        d = dprog.ops[pc]
        if d.is_branch or d.is_halt or pc + 1 in leaders \
                or pc + 1 >= len(code):
            assert nxt is None, f"pc {pc} must end its superop"
        else:
            assert nxt is code[pc + 1], f"pc {pc} must chain to {pc + 1}"


def test_chain_depth_bounded():
    src = "start:\n" + "    add x1, x1, #1\n" * (3 * MAX_CHAIN) + "    halt\n"
    dprog = DecodedProgram.of(assemble(src))
    code = compile_program(dprog, EngineVariant()).code
    for start in range(len(code)):
        depth, step = 0, chain_of(code[start])
        while step is not None:
            depth += 1
            step = chain_of(step)
        assert depth <= MAX_CHAIN


def test_instrumented_table_never_chains():
    dprog = make_dprog()
    code = compile_program(dprog, EngineVariant(instrumented=True)).code
    assert all(chain_of(step) is None for step in code)


def test_unchained_variant_never_chains():
    # chained=False (multi-core nodes): every step ends its superop so
    # the node can interleave cores at per-instruction granularity
    dprog = make_dprog()
    code = compile_program(dprog, EngineVariant(chained=False)).code
    assert all(chain_of(step) is None for step in code)


def test_barrel_table_never_chains():
    dprog = make_dprog()
    code = compile_program(dprog, EngineVariant(family="barrel")).code
    assert all(chain_of(step) is None for step in code)


def test_compiled_program_len():
    dprog = make_dprog()
    cp = compile_program(dprog, EngineVariant())
    assert isinstance(cp, CompiledProgram)
    assert len(cp) == len(dprog.ops)
