"""Unit tests for the two-pass assembler."""

import pytest

from repro.isa import AddrMode, AssemblerError, Cond, D, Opcode, X, assemble


def test_simple_program_labels_and_targets():
    p = assemble(
        """
        start:
            mov x0, #0
        loop:
            add x0, x0, #1
            cmp x0, #10
            b.lt loop
            halt
        """
    )
    assert p.labels == {"start": 0, "loop": 1}
    assert p.entry == 0
    assert len(p) == 5
    assert p[3].opcode == Opcode.BCOND and p[3].cond == Cond.LT and p[3].target == 1
    assert p[4].opcode == Opcode.HALT


def test_comments_and_blank_lines():
    p = assemble(
        """
        ; full-line comment
        mov x0, #1   // trailing
        nop          ; trailing ;
        halt
        """
    )
    assert [i.opcode for i in p.instructions] == [Opcode.MOV, Opcode.NOP, Opcode.HALT]


def test_memory_operand_forms():
    p = assemble(
        """
        ldr x0, [x1, #16]
        ldr x0, [x1, x2, lsl #3]
        ldr x0, [x1, x2]
        ldr x0, [x1], #8
        str x0, [x1]
        halt
        """
    )
    assert p[0].mode == AddrMode.OFF_IMM and p[0].imm == 16
    assert p[1].mode == AddrMode.OFF_REG and p[1].shift == 3 and p[1].rm == X(2)
    assert p[2].mode == AddrMode.OFF_REG and p[2].shift == 0
    assert p[3].mode == AddrMode.POST_IMM and p[3].imm == 8
    assert p[4].mode == AddrMode.OFF_IMM and p[4].imm == 0
    assert p[4].opcode == Opcode.STR


def test_ldrsw_alias():
    p = assemble("ldrsw x6, [x2, x5, lsl #3]\nhalt")
    assert p[0].opcode == Opcode.LDR


def test_symbol_resolution_adr():
    p = assemble("adr x1, arr\nhalt", symbols={"arr": 0x10000})
    assert p[0].opcode == Opcode.ADR and p[0].imm == 0x10000


def test_symbolic_immediate():
    p = assemble("mov x1, #n\nhalt", symbols={"n": 42})
    assert p[0].imm == 42


def test_fp_instructions():
    p = assemble(
        """
        fmov d0, #1.5
        fadd d0, d0, d1
        fmadd d2, d0, d1, d2
        ldr d3, [x1, #0]
        halt
        """
    )
    assert p[0].opcode == Opcode.FMOV and p[0].imm == 1.5
    assert p[1].opcode == Opcode.FADD
    assert p[2].opcode == Opcode.FMADD and p[2].ra == D(2)
    assert p[3].rd == D(3)


def test_cbz_cbnz():
    p = assemble("top:\ncbz x0, top\ncbnz x1, top\nhalt")
    assert p[0].opcode == Opcode.CBZ and p[0].target == 0
    assert p[1].opcode == Opcode.CBNZ and p[1].target == 0


def test_madd():
    p = assemble("madd x0, x1, x2, x3\nhalt")
    assert p[0].opcode == Opcode.MADD
    assert set(p[0].srcs) == {X(1), X(2), X(3)}


def test_label_on_same_line_as_instruction():
    p = assemble("loop: add x0, x0, #1\nb loop")
    assert p.labels["loop"] == 0
    assert p[1].target == 0


def test_undefined_label_raises():
    with pytest.raises(AssemblerError, match="undefined label"):
        assemble("b nowhere")


def test_duplicate_label_raises():
    with pytest.raises(AssemblerError, match="duplicate label"):
        assemble("a:\nnop\na:\nnop")


def test_unknown_mnemonic_raises():
    with pytest.raises(AssemblerError, match="unknown mnemonic"):
        assemble("frobnicate x0, x1")


def test_bad_operand_count_raises():
    with pytest.raises(AssemblerError, match="expects"):
        assemble("add x0, x1")


def test_unknown_symbol_raises():
    with pytest.raises(AssemblerError, match="unknown symbol"):
        assemble("adr x0, missing")


def test_bad_memory_operand_raises():
    with pytest.raises(AssemblerError, match="bad memory operand"):
        assemble("ldr x0, [x1, x2, lsl]")


def test_disassemble_roundtrip_contains_labels():
    p = assemble("start:\nmov x0, #1\nloop:\nb loop")
    listing = p.disassemble()
    assert "start:" in listing and "loop:" in listing and "mov x0, #1" in listing


def test_negative_immediates():
    p = assemble("add x0, x0, #-8\nldr x1, [x2, #-16]\nhalt")
    assert p[0].imm == -8
    assert p[1].imm == -16


def test_hex_immediates():
    p = assemble("mov x0, #0xff\nhalt")
    assert p[0].imm == 255
