"""Tests for the programmatic kernel builder."""

import pytest

from repro.isa import Cond, X, run_functional
from repro.isa.builder import BuilderError, KernelBuilder
from repro.memory.main_memory import MainMemory


def test_sum_loop_matches_assembly_version():
    b = KernelBuilder()
    b.mov(X(0), 0).mov(X(1), 0)
    b.label("loop")
    b.add(X(0), X(0), X(1))
    b.add(X(1), X(1), 1)
    b.cmp(X(1), 10)
    b.blt("loop")
    b.halt()
    sim = run_functional(b.build())
    assert sim.state.xregs[0] == sum(range(10))


def test_memory_ops_and_post_index():
    mem = MainMemory()
    mem.write_array(0x1000, [7, 8, 9])
    b = KernelBuilder()
    b.adr(X(1), 0x1000)
    b.ldr(X(2), base=X(1), post=8)
    b.ldr(X(3), base=X(1), post=8)
    b.adr(X(4), 0x2000)
    b.mov(X(5), 0)
    b.str_(X(2), base=X(4), index=X(5), shift=3)
    b.halt()
    from repro.isa.func_sim import FunctionalSimulator
    sim = FunctionalSimulator(b.build(), mem)
    sim.run()
    assert sim.state.xregs[2] == 7 and sim.state.xregs[3] == 8
    assert mem.load(0x2000) == 7


def test_forward_references_resolve():
    b = KernelBuilder()
    b.mov(X(0), 1)
    b.cbz(X(0), "skip")      # forward label
    b.mov(X(1), 42)
    b.label("skip")
    b.halt()
    sim = run_functional(b.build())
    assert sim.state.xregs[1] == 42


def test_undefined_label_rejected():
    b = KernelBuilder()
    b.b("nowhere")
    b.halt()
    with pytest.raises(BuilderError, match="undefined label"):
        b.build()


def test_duplicate_label_rejected():
    b = KernelBuilder()
    b.label("x")
    with pytest.raises(BuilderError, match="duplicate"):
        b.label("x")


def test_operand_validation():
    b = KernelBuilder()
    with pytest.raises(BuilderError):
        b.mul(X(0), X(1), 5)
    with pytest.raises(BuilderError):
        b.ldr(X(0), base=X(1), offset=8, post=8)


def test_built_program_runs_on_timed_core():
    import sys
    from pathlib import Path
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from helpers import FixedLatencyBackend
    from repro.core.cgmt import make_threads
    from repro.core.inorder import InOrderCore
    from repro.memory import Cache, CacheConfig
    from repro.stats.counters import Stats

    b = KernelBuilder()
    b.adr(X(1), 0x1000)
    b.mov(X(2), 0)
    b.mov(X(3), 0)
    b.label("loop")
    b.ldr(X(4), base=X(1), index=X(2), shift=3)
    b.add(X(3), X(3), X(4))
    b.add(X(2), X(2), 1)
    b.cmp(X(2), 8)
    b.blt("loop")
    b.halt()
    prog = b.build()

    mem = MainMemory()
    mem.write_array(0x1000, list(range(1, 9)))
    be = FixedLatencyBackend(40)
    ic = Cache(CacheConfig(name="ic", size_bytes=32 * 1024, assoc=4,
                           latency=2), be, Stats("ic"))
    dc = Cache(CacheConfig(name="dc", size_bytes=8 * 1024, assoc=4,
                           latency=2), be, Stats("dc"))
    core = InOrderCore(prog, ic, dc, mem, make_threads(1))
    core.run()
    assert core.threads[0].xregs[3] == 36


def test_builder_interops_with_scheduler_and_encoding():
    from repro.compiler import schedule_program
    from repro.isa import decode_program, encode_program

    b = KernelBuilder()
    b.adr(X(1), 0x1000)
    b.ldr(X(2), base=X(1))
    b.add(X(3), X(2), 1)
    b.mov(X(4), 5)
    b.halt()
    prog = b.build()
    sched = schedule_program(prog).program
    decoded = decode_program(encode_program(sched))
    assert len(decoded) == len(prog)
