"""Unit tests for instruction semantics (evaluate) and operand extraction."""

import pytest

from repro.isa import AddrMode, Cond, D, Flags, Instruction, Opcode, X, evaluate
from repro.isa.instructions import MASK64, to_signed, to_unsigned


def ev(inst, srcvals=None, flags=None, pc=0):
    return evaluate(inst, srcvals or {}, flags or Flags(), pc)


# -- helpers -------------------------------------------------------------

def test_signed_unsigned_roundtrip():
    assert to_signed(MASK64) == -1
    assert to_unsigned(-1) == MASK64
    assert to_signed(to_unsigned(-12345)) == -12345


# -- ALU -----------------------------------------------------------------

def test_add_reg_and_imm():
    i = Instruction(Opcode.ADD, rd=X(0), rn=X(1), rm=X(2))
    assert ev(i, {X(1): 5, X(2): 7}).writes[X(0)] == 12
    j = Instruction(Opcode.ADD, rd=X(0), rn=X(1), imm=100)
    assert ev(j, {X(1): 1}).writes[X(0)] == 101


def test_add_wraps_64bit():
    i = Instruction(Opcode.ADD, rd=X(0), rn=X(1), rm=X(2))
    assert ev(i, {X(1): MASK64, X(2): 1}).writes[X(0)] == 0


def test_sub_underflow_wraps():
    i = Instruction(Opcode.SUB, rd=X(0), rn=X(1), imm=1)
    assert ev(i, {X(1): 0}).writes[X(0)] == MASK64


def test_logical_ops():
    for op, f in [(Opcode.AND, lambda a, b: a & b), (Opcode.ORR, lambda a, b: a | b),
                  (Opcode.EOR, lambda a, b: a ^ b)]:
        i = Instruction(op, rd=X(0), rn=X(1), rm=X(2))
        assert ev(i, {X(1): 0b1100, X(2): 0b1010}).writes[X(0)] == f(0b1100, 0b1010)


def test_shifts():
    assert ev(Instruction(Opcode.LSL, rd=X(0), rn=X(1), imm=3), {X(1): 5}).writes[X(0)] == 40
    assert ev(Instruction(Opcode.LSR, rd=X(0), rn=X(1), imm=3), {X(1): 40}).writes[X(0)] == 5
    # arithmetic shift preserves sign
    neg8 = to_unsigned(-8)
    assert to_signed(ev(Instruction(Opcode.ASR, rd=X(0), rn=X(1), imm=1),
                        {X(1): neg8}).writes[X(0)]) == -4


def test_mul_madd():
    assert ev(Instruction(Opcode.MUL, rd=X(0), rn=X(1), rm=X(2)),
              {X(1): 6, X(2): 7}).writes[X(0)] == 42
    i = Instruction(Opcode.MADD, rd=X(0), rn=X(1), rm=X(2), ra=X(3))
    assert ev(i, {X(1): 6, X(2): 7, X(3): 8}).writes[X(0)] == 50


def test_mov_variants():
    assert ev(Instruction(Opcode.MOV, rd=X(0), imm=99)).writes[X(0)] == 99
    assert ev(Instruction(Opcode.MOV, rd=X(0), rn=X(1)), {X(1): 4}).writes[X(0)] == 4
    assert ev(Instruction(Opcode.ADR, rd=X(0), imm=0x1000)).writes[X(0)] == 0x1000


# -- flags / compare / branches -------------------------------------------

def cmp_flags(a, b):
    i = Instruction(Opcode.CMP, rn=X(0), rm=X(1))
    return ev(i, {X(0): to_unsigned(a), X(1): to_unsigned(b)}).new_flags


@pytest.mark.parametrize("a,b", [(1, 1), (0, 5), (5, 0), (-3, 2), (2, -3), (-5, -5)])
def test_cmp_condition_truth_table(a, b):
    f = cmp_flags(a, b)
    assert f.evaluate(Cond.EQ) == (a == b)
    assert f.evaluate(Cond.NE) == (a != b)
    assert f.evaluate(Cond.LT) == (a < b)
    assert f.evaluate(Cond.LE) == (a <= b)
    assert f.evaluate(Cond.GT) == (a > b)
    assert f.evaluate(Cond.GE) == (a >= b)


def test_cmp_imm():
    i = Instruction(Opcode.CMP, rn=X(0), imm=10)
    assert ev(i, {X(0): 10}).new_flags.evaluate(Cond.EQ)


def test_unconditional_branch():
    r = ev(Instruction(Opcode.B, target=7))
    assert r.taken and r.target == 7


def test_bcond_taken_and_not():
    i = Instruction(Opcode.BCOND, cond=Cond.LT, target=3)
    assert ev(i, flags=cmp_flags(1, 2)).taken
    assert not ev(i, flags=cmp_flags(2, 1)).taken


def test_cbz_cbnz():
    cbz = Instruction(Opcode.CBZ, rn=X(0), target=9)
    assert ev(cbz, {X(0): 0}).taken
    assert not ev(cbz, {X(0): 1}).taken
    cbnz = Instruction(Opcode.CBNZ, rn=X(0), target=9)
    assert ev(cbnz, {X(0): 1}).taken
    assert not ev(cbnz, {X(0): 0}).taken


# -- memory ----------------------------------------------------------------

def test_ldr_address_imm():
    i = Instruction(Opcode.LDR, rd=X(0), rn=X(1), imm=16, mode=AddrMode.OFF_IMM)
    r = ev(i, {X(1): 0x1000})
    assert r.addr == 0x1010
    assert X(0) not in r.writes  # memory supplies the value later


def test_ldr_address_reg_shift():
    i = Instruction(Opcode.LDR, rd=X(0), rn=X(1), rm=X(2), shift=3, mode=AddrMode.OFF_REG)
    assert ev(i, {X(1): 0x1000, X(2): 5}).addr == 0x1000 + 40


def test_ldr_post_index_writeback():
    i = Instruction(Opcode.LDR, rd=X(0), rn=X(1), imm=8, mode=AddrMode.POST_IMM)
    r = ev(i, {X(1): 0x2000})
    assert r.addr == 0x2000
    assert r.writes[X(1)] == 0x2008
    assert set(i.dests) == {X(0), X(1)}


def test_str_value_and_srcs():
    i = Instruction(Opcode.STR, rd=X(5), rn=X(1), imm=0, mode=AddrMode.OFF_IMM)
    r = ev(i, {X(5): 77, X(1): 0x3000})
    assert r.addr == 0x3000 and r.store_value == 77
    assert X(5) in i.srcs and not i.dests


# -- FP ----------------------------------------------------------------------

def test_fp_ops():
    assert ev(Instruction(Opcode.FADD, rd=D(0), rn=D(1), rm=D(2)),
              {D(1): 1.5, D(2): 2.5}).writes[D(0)] == 4.0
    assert ev(Instruction(Opcode.FMUL, rd=D(0), rn=D(1), rm=D(2)),
              {D(1): 3.0, D(2): 2.0}).writes[D(0)] == 6.0
    i = Instruction(Opcode.FMADD, rd=D(0), rn=D(1), rm=D(2), ra=D(3))
    assert ev(i, {D(1): 2.0, D(2): 3.0, D(3): 1.0}).writes[D(0)] == 7.0


# -- operand extraction / classification --------------------------------------

def test_srcs_dedup():
    i = Instruction(Opcode.ADD, rd=X(0), rn=X(1), rm=X(1))
    assert i.srcs == (X(1),)


def test_halt_and_nop():
    assert ev(Instruction(Opcode.HALT)).halt
    r = ev(Instruction(Opcode.NOP))
    assert not r.writes and not r.taken and not r.halt


def test_ex_latency_classes():
    assert Instruction(Opcode.ADD, rd=X(0), rn=X(1), imm=1).ex_latency == 1
    assert Instruction(Opcode.MUL, rd=X(0), rn=X(1), rm=X(2)).ex_latency == 3
    assert Instruction(Opcode.FMADD, rd=D(0), rn=D(1), rm=D(2), ra=D(3)).ex_latency == 5


def test_classification_flags():
    ldr = Instruction(Opcode.LDR, rd=X(0), rn=X(1), imm=0, mode=AddrMode.OFF_IMM)
    assert ldr.is_load and ldr.is_mem and not ldr.is_store
    b = Instruction(Opcode.B, target=0)
    assert b.is_branch
    cmp = Instruction(Opcode.CMP, rn=X(0), imm=0)
    assert cmp.sets_flags
    bc = Instruction(Opcode.BCOND, cond=Cond.EQ, target=0)
    assert bc.reads_flags
