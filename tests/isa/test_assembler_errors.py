"""Exhaustive negative-path tests for the assembler (error matrix)."""

import pytest

from repro.isa import AssemblerError, assemble


@pytest.mark.parametrize("src,match", [
    ("frobnicate x0", "unknown mnemonic"),
    ("add x0, x1", "expects 3 operands"),
    ("mov x0", "expects 2 operands"),
    ("ldr x0", "expects 2 operands"),
    ("madd x0, x1, x2", "expects 4 operands"),
    ("b", "expects 1 operands"),
    ("cbz x0", "expects 2 operands"),
    ("halt x0", "expects 0 operands"),
    ("b nowhere", "undefined label"),
    ("cbz x1, missing", "undefined label"),
    ("adr x0, ghost", "unknown symbol"),
    ("mov x0, #notanumber", "unknown symbol"),
    ("ldr x0, [x1, x2, lsl]", "bad memory operand"),
    ("ldr x0, [x1 x2]", "bad memory operand"),
    ("ldr x0, [x1, #4], #8", "mixed addressing"),
    ("add q0, x1, x2", "bad register"),
    ("add x99, x1, x2", "out of range"),
    ("fmov d0, #nan-ish", "bad float"),
])
def test_error_cases(src, match):
    with pytest.raises((AssemblerError, ValueError), match=match):
        assemble(src)


def test_duplicate_labels():
    with pytest.raises(AssemblerError, match="duplicate label"):
        assemble("x:\nnop\nx:\nhalt")


def test_line_numbers_in_errors():
    try:
        assemble("nop\nnop\nbogus x0")
    except AssemblerError as exc:
        assert "line 3" in str(exc)
    else:  # pragma: no cover
        pytest.fail("expected AssemblerError")


def test_empty_program_is_valid():
    p = assemble("")
    assert len(p) == 0


def test_comment_only_program():
    p = assemble("; nothing here\n// still nothing")
    assert len(p) == 0


def test_whitespace_tolerance():
    p = assemble("   add\tx0 , x1 ,  #4  \n\n  halt ")
    assert len(p) == 2
    assert p[0].imm == 4
