"""Tests for the functional golden-model simulator."""

import pytest

from repro.isa import X, D, assemble, run_functional
from repro.memory.main_memory import MainMemory


def test_sum_loop():
    p = assemble(
        """
        mov x0, #0
        mov x1, #0
        loop:
        add x0, x0, x1
        add x1, x1, #1
        cmp x1, #10
        b.lt loop
        halt
        """
    )
    sim = run_functional(p)
    assert sim.state.xregs[0] == sum(range(10))


def test_memory_gather():
    mem = MainMemory()
    idx_base, data_base, out_base = 0x1000, 0x2000, 0x3000
    indices = [3, 1, 4, 1, 5]
    data = [10, 11, 12, 13, 14, 15]
    mem.write_array(idx_base, indices)
    mem.write_array(data_base, data)
    p = assemble(
        """
        adr x1, idx
        adr x2, data
        adr x3, out
        mov x5, #0
        loop:
        ldr x6, [x1, x5, lsl #3]
        ldr x7, [x2, x6, lsl #3]
        str x7, [x3, x5, lsl #3]
        add x5, x5, #1
        cmp x5, #5
        b.lt loop
        halt
        """,
        symbols={"idx": idx_base, "data": data_base, "out": out_base},
    )
    sim = run_functional(p, mem)
    assert mem.read_array(out_base, 5) == [data[i] for i in indices]


def test_post_index_walk():
    mem = MainMemory()
    mem.write_array(0x4000, [5, 6, 7])
    p = assemble(
        """
        adr x1, arr
        ldr x2, [x1], #8
        ldr x3, [x1], #8
        ldr x4, [x1], #8
        halt
        """,
        symbols={"arr": 0x4000},
    )
    sim = run_functional(p, mem)
    assert (sim.state.xregs[2], sim.state.xregs[3], sim.state.xregs[4]) == (5, 6, 7)
    assert sim.state.xregs[1] == 0x4000 + 24


def test_fp_triad():
    mem = MainMemory()
    a, b, c = 0x1000, 0x2000, 0x3000
    mem.write_array(b, [1.0, 2.0, 3.0])
    mem.write_array(c, [10.0, 20.0, 30.0])
    p = assemble(
        """
        adr x1, a
        adr x2, b
        adr x3, c
        fmov d0, #2.0
        mov x5, #0
        loop:
        ldr d1, [x2, x5, lsl #3]
        ldr d2, [x3, x5, lsl #3]
        fmadd d3, d1, d0, d2
        str d3, [x1, x5, lsl #3]
        add x5, x5, #1
        cmp x5, #3
        b.lt loop
        halt
        """,
        symbols={"a": a, "b": b, "c": c},
    )
    run_functional(p, mem)
    assert mem.read_array(a, 3) == [12.0, 24.0, 36.0]


def test_halt_required():
    p = assemble("loop:\nb loop")
    sim_cls = run_functional
    with pytest.raises(RuntimeError):
        from repro.isa.func_sim import FunctionalSimulator
        s = FunctionalSimulator(p, max_instructions=1000)
        s.run()


def test_init_regs():
    p = assemble("add x0, x1, x2\nhalt")
    sim = run_functional(p, init_regs={X(1): 30, X(2): 12})
    assert sim.state.xregs[0] == 42


def test_snapshot_keys():
    p = assemble("mov x0, #7\nfmov d1, #1.5\nhalt")
    sim = run_functional(p)
    snap = sim.state.snapshot()
    assert snap["x0"] == 7 and snap["d1"] == 1.5 and len(snap) == 64


def test_instruction_count():
    p = assemble("nop\nnop\nnop\nhalt")
    sim = run_functional(p)
    assert sim.instructions_executed == 3  # halt not counted
