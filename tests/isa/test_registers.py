"""Unit tests for register definitions."""

import pytest

from repro.isa import D, Reg, RegClass, SP, X, from_flat, parse_reg


def test_int_register_names():
    assert X(0).name == "x0"
    assert X(30).name == "x30"
    assert X(31).name == "sp"
    assert SP == X(31)


def test_fp_register_names():
    assert D(0).name == "d0"
    assert D(31).name == "d31"


def test_flat_indices_unique():
    flats = [X(i).flat for i in range(32)] + [D(i).flat for i in range(32)]
    assert sorted(flats) == list(range(64))


def test_from_flat_roundtrip():
    for i in range(32):
        assert from_flat(X(i).flat) == X(i)
        assert from_flat(D(i).flat) == D(i)


def test_from_flat_out_of_range():
    with pytest.raises(ValueError):
        from_flat(64)
    with pytest.raises(ValueError):
        from_flat(-1)


def test_parse_reg():
    assert parse_reg("x5") == X(5)
    assert parse_reg("X5") == X(5)
    assert parse_reg("sp") == SP
    assert parse_reg("d12") == D(12)


@pytest.mark.parametrize("bad", ["y3", "x", "x32", "d-1", "q0", ""])
def test_parse_reg_rejects(bad):
    with pytest.raises(ValueError):
        parse_reg(bad)


def test_reg_out_of_range_construction():
    with pytest.raises(ValueError):
        Reg(RegClass.X, 32)
    with pytest.raises(ValueError):
        Reg(RegClass.D, -1)


def test_is_fp():
    assert D(3).is_fp
    assert not X(3).is_fp
