"""Tests for the ASCII plotting helpers."""

from repro.experiments import fig14
from repro.experiments.plotting import lines, pareto_plot, scatter, sweep_plot


def test_scatter_renders_all_points():
    out = scatter({"a": (1.0, 2.0), "b": (3.0, 4.0), "c": (2.0, 1.0)},
                  width=20, height=8, title="demo")
    assert "demo" in out
    for glyph in ("a", "b", "c"):
        assert f"{glyph} = " in out
    assert "(no points)" == scatter({})


def test_scatter_extremes_on_borders():
    out = scatter({"lo": (0.0, 0.0), "hi": (10.0, 10.0)}, width=10, height=5)
    rows = [ln for ln in out.splitlines() if ln.startswith("|")]
    assert rows[0].rstrip()[-1] == "b"   # hi at top-right
    assert rows[-1][1] == "a"            # lo at bottom-left


def test_lines_chart():
    out = lines({"up": [1, 2, 3], "down": [3, 2, 1]}, x=[10, 20, 30],
                width=12, height=6, title="t")
    assert "a = up" in out and "b = down" in out
    assert "10  20  30" in out
    assert lines({}, []) == "(no data)"


def test_pareto_plot_from_fig01_shape():
    # synthesize a fig01-like result without running simulations
    from repro.experiments.common import ExperimentResult
    r = ExperimentResult("fig01", "pareto", rows=[
        {"config": "inorder", "area_mm2": 1.4, "speedup": 1.0},
        {"config": "virec", "area_mm2": 1.7, "speedup": 2.2},
        {"config": "banked", "area_mm2": 2.8, "speedup": 2.3},
    ])
    out = pareto_plot(r)
    assert "virec" in out and "area [mm^2]" in out


def test_sweep_plot_from_fig14():
    result = fig14.run()
    out = sweep_plot(result, "threads",
                     ["banked_mm2", "virec_8_regs_mm2"],
                     row_filter=lambda r: isinstance(r.get("threads"), int))
    assert "banked_mm2" in out
