"""Smoke tests: the example scripts run to completion as subprocesses."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "policy_walkthrough.py",   # no simulation, instant
    "quickstart.py",           # a few small runs
    "custom_kernel.py",
    "thread_scaling.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_policy_walkthrough_reproduces_figures():
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / "policy_walkthrough.py")],
        capture_output=True, text=True, timeout=120)
    out = proc.stdout
    assert "victim = blue.x4" in out       # Figure 5(b): PLRU thrash
    assert "victim = red.x2" in out        # Figure 5(c): MRT targets red
    assert "victim = red.x0" in out        # Figure 6(c): LRC evicts committed


def test_all_examples_exist_and_are_documented():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 7
    for script in scripts:
        head = script.read_text().split('"""')
        assert len(head) >= 2 and head[1].strip(), f"{script.name} lacks a docstring"
