"""End-to-end §4.2 study: compiler register reduction helps ViReC.

A register-rich gather variant keeps six outer-loop constants live across
the inner loop.  Unreduced, those registers inflate every thread's context
and churn the register cache; after `reduce_registers` demotes them to
memory, the inner-loop working set shrinks and the same ViReC configuration
gets a higher hit rate — the reason the paper applies compiler register
reduction to outer-loop registers.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import FixedLatencyBackend  # noqa: E402

from repro.compiler import reduce_registers  # noqa: E402
from repro.core.cgmt import ContextLayout, make_threads  # noqa: E402
from repro.isa import X, assemble  # noqa: E402
from repro.isa.func_sim import FunctionalSimulator  # noqa: E402
from repro.memory import Cache, CacheConfig, MainMemory  # noqa: E402
from repro.stats.counters import Stats  # noqa: E402
from repro.virec import ViReCConfig, ViReCCore  # noqa: E402

# gather with 6 outer-loop-only registers (x16-x21) summed into the result
# once per OUTER iteration; the inner loop is the usual gather stream.
RICH_SRC = """
start:
    mov  x2, #chunk
    mul  x3, x0, x2
    add  x4, x3, x2
    adr  x5, idx
    adr  x6, data
    adr  x7, out
    mov  x16, #11          ; outer-loop-only constants
    mov  x17, #13
    mov  x18, #17
    mov  x19, #19
    mov  x20, #23
    mov  x21, #29
    mov  x10, #0           ; outer counter
outer:
    mov  x11, x3           ; i = start (redo the slice each outer iter)
inner:
    ldr  x8, [x5, x11, lsl #3]
    ldr  x9, [x6, x8, lsl #3]
    str  x9, [x7, x11, lsl #3]
    add  x11, x11, #1
    cmp  x11, x4
    b.lt inner
    add  x9, x16, x17      ; outer-loop epilogue using the constants
    add  x9, x9, x18
    add  x9, x9, x19
    add  x9, x9, x20
    add  x9, x9, x21
    adr  x12, sums
    str  x9, [x12, x0, lsl #3]
    add  x10, x10, #1
    cmp  x10, #2
    b.lt outer
    halt
"""

SPILL_AREA = 0x0090_0000


def build(n_threads=4, n_per_thread=16, seed=21):
    n = n_threads * n_per_thread
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, 2048, size=n)
    data = rng.integers(0, 1 << 20, size=2048)
    sym = {"idx": 0x100000, "data": 0x200000, "out": 0x300000,
           "sums": 0x400000, "chunk": n_per_thread}
    prog = assemble(RICH_SRC, symbols=sym)
    mem = MainMemory()
    mem.write_array(sym["idx"], idx)
    mem.write_array(sym["data"], data)
    expected = [int(data[i]) for i in idx]
    return prog, mem, sym, expected


def run_virec(prog, mem, used_regs, rf_size, n_threads=4):
    be = FixedLatencyBackend(80)
    ic = Cache(CacheConfig(name="ic", size_bytes=32 * 1024, assoc=4,
                           latency=2), be, Stats("ic"))
    dc = Cache(CacheConfig(name="dc", size_bytes=8 * 1024, assoc=4, latency=2,
                           mshrs=24), be, Stats("dc"))
    threads = make_threads(n_threads, entry_pc=prog.entry,
                           init_regs=[{X(0): t} for t in range(n_threads)])
    core = ViReCCore(prog, ic, dc, mem, threads,
                     virec=ViReCConfig(rf_size=rf_size),
                     layout=ContextLayout(used_regs=tuple(used_regs)))
    return core, core.run()


def used_regs_of(prog):
    from repro.compiler import used_regs
    return sorted(used_regs(prog))


def test_reduction_shrinks_used_context():
    prog, mem, sym, _ = build()
    red = reduce_registers(prog, SPILL_AREA)
    assert set(red.spilled) >= {X(16).flat, X(17).flat, X(18).flat,
                                X(19).flat, X(20).flat, X(21).flat}
    before = {r for r in used_regs_of(prog) if r < 25}
    after = {r for r in used_regs_of(red.program) if r < 25}
    assert len(after) < len(before)


def test_reduced_kernel_still_correct_on_virec():
    prog, mem, sym, expected = build()
    red = reduce_registers(prog, SPILL_AREA)
    core, stats = run_virec(red.program, mem, used_regs_of(red.program),
                            rf_size=32)
    assert mem.read_array(sym["out"], len(expected)) == expected
    # outer-loop epilogue also correct through the spill slots
    assert mem.load(sym["sums"]) == 11 + 13 + 17 + 19 + 23 + 29


def test_reduction_improves_virec_hit_rate_at_fixed_rf():
    """Same physical register cache: the reduced kernel fits more of each
    thread's *hot* context, raising the hit rate (the §4.2 payoff)."""
    rf = 32  # tight for 4 threads x rich context
    prog1, mem1, sym1, expected = build()
    core1, s1 = run_virec(prog1, mem1, used_regs_of(prog1), rf)
    assert mem1.read_array(sym1["out"], len(expected)) == expected

    prog2, mem2, sym2, _ = build()
    red = reduce_registers(prog2, SPILL_AREA)
    core2, s2 = run_virec(red.program, mem2, used_regs_of(red.program), rf)

    assert s2["rf_hit_rate"] > s1["rf_hit_rate"]
    # and the cycle count does not regress materially
    assert s2["cycles"] < s1["cycles"] * 1.1


def test_golden_model_agreement_after_reduction():
    prog, mem, sym, expected = build(n_threads=2, n_per_thread=8)
    red = reduce_registers(prog, SPILL_AREA)
    for tid in range(2):
        sim = FunctionalSimulator(red.program, mem)
        sim.state.pc = red.program.entry
        sim.state.write(X(0), tid)
        sim.run()
    assert mem.read_array(sym["out"], len(expected)) == expected
