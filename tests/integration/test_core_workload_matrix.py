"""The full correctness matrix: every workload x every core type.

``run_config`` already asserts each workload's numpy-oracle check; these
tests additionally verify cross-core architectural equivalence (identical
committed instruction counts across core types, since timing never changes
functional behaviour) and basic performance sanity orderings.
"""

import pytest

import repro.workloads as wl
from repro.system import RunConfig, run_config

CORES = ("banked", "swctx", "virec", "nsf", "prefetch-full", "prefetch-exact")
WORKLOADS = wl.names()


@pytest.mark.parametrize("workload", WORKLOADS)
def test_all_cores_agree_on_instruction_count(workload):
    counts = {}
    for core in CORES:
        r = run_config(RunConfig(workload=workload, core_type=core,
                                 n_threads=4, n_per_thread=8))
        counts[core] = r.instructions
    assert len(set(counts.values())) == 1, f"disagreement: {counts}"


@pytest.mark.parametrize("core", CORES)
def test_every_core_handles_fp_and_nested_loops(core):
    # spmv: nested loops + FP; the most structurally complex kernel
    r = run_config(RunConfig(workload="spmv", core_type=core,
                             n_threads=4, n_per_thread=4))
    assert r.correct and r.cycles > 0


def test_single_thread_matches_across_mt_cores():
    """With one thread there are no switches; all CGMT cores should be
    within a small constant of each other."""
    cycles = {}
    for core in ("banked", "virec"):
        r = run_config(RunConfig(workload="vecadd", core_type=core,
                                 n_threads=1, n_per_thread=32,
                                 context_fraction=2.0))
        cycles[core] = r.cycles
    assert abs(cycles["banked"] - cycles["virec"]) < 0.25 * cycles["banked"]


def test_virec_never_slower_than_swctx():
    """Hardware-managed partial contexts must beat software save/restore."""
    for workload in ("gather", "stride", "spmv"):
        sw = run_config(RunConfig(workload=workload, core_type="swctx",
                                  n_threads=4, n_per_thread=16))
        v = run_config(RunConfig(workload=workload, core_type="virec",
                                 n_threads=4, n_per_thread=16,
                                 context_fraction=0.8))
        assert v.cycles < sw.cycles, workload


def test_more_work_more_cycles():
    small = run_config(RunConfig(workload="gather", core_type="virec",
                                 n_threads=4, n_per_thread=8))
    large = run_config(RunConfig(workload="gather", core_type="virec",
                                 n_threads=4, n_per_thread=32))
    assert large.cycles > small.cycles
    assert large.instructions > 3 * small.instructions


def test_ipc_bounded_by_issue_width():
    for core in CORES:
        r = run_config(RunConfig(workload="vecadd", core_type=core,
                                 n_threads=4, n_per_thread=16))
        assert 0 < r.ipc <= 1.0, f"{core}: single-issue IPC must be <= 1"
