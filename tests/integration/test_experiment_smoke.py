"""Smoke tests: every experiment driver runs at tiny scale and produces the
rows its figure needs.  (The full shape assertions live in benchmarks/.)"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    ablation,
    fig01,
    fig02,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
)


def test_registry_complete():
    assert set(ALL_EXPERIMENTS) == {"ablation", "compiler_study",
                                    "fault_study", "fig01",
                                    "fig02", "fig09", "fig10", "fig11",
                                    "fig12", "fig13", "fig14", "sizing",
                                    "throughput"}


def test_fig01_rows():
    r = fig01.run("tiny")
    names = {row["config"] for row in r.rows}
    assert {"inorder-1", "ooo", "banked-4t", "banked-8t",
            "virec-8t-40%", "virec-8t-100%"} <= names
    assert all("speedup" in row and "area_mm2" in row for row in r.rows)


def test_fig02_rows():
    r = fig02.run()
    assert len(r.rows) >= 10
    assert all(0 < row["inner_context_%"] < 100 for row in r.rows)


def test_fig09_subset():
    r = fig09.run("tiny", workloads=("vecadd",), threads=(4,),
                  include_nsf=False, include_prefetch=False)
    assert [row["workload"] for row in r.rows] == ["vecadd", "GEOMEAN"]
    assert 0 < r.rows[0]["virec80"] <= 1.4


def test_fig10_subset():
    r = fig10.run("tiny", threads=(2, 4))
    configs = {row["config"] for row in r.rows}
    assert "banked" in configs and "virec100" in configs
    assert all(row["perf_per_reg"] > 0 for row in r.rows)


def test_fig11_subset():
    r = fig11.run("tiny", core_counts=(1, 2), thread_counts=(4, 6))
    sweep = [row for row in r.rows if isinstance(row["threads"], int)]
    assert len(sweep) == 4
    best = [row for row in r.rows if isinstance(row["threads"], str)]
    assert len(best) == 2


def test_fig12_subset():
    r = fig12.run("tiny", workloads=("gather",), policies=("plru", "lrc"))
    mean_rows = [row for row in r.rows if row["workload"] == "MEAN"]
    assert len(mean_rows) == 2
    for row in mean_rows:
        assert 0 < row["hit_lrc"] <= 1


def test_fig13_subset():
    r = fig13.run("tiny", workloads=("vecadd",), latencies=(2, 8),
                  capacities_kb=(4, 16))
    sweeps = {(row["sweep"], row["value"]) for row in r.rows}
    assert sweeps == {("latency", 2), ("latency", 8),
                      ("capacity_kb", 4), ("capacity_kb", 16)}


def test_fig14_pure_model():
    r = fig14.run()
    assert any("headline" in row for row in r.rows)


def test_ablation_subset():
    r = ablation.run("tiny", workloads_=("vecadd",),
                     variants=("full", "blocking_bsi"))
    mean = next(row for row in r.rows if row["workload"] == "GEOMEAN")
    assert mean["blocking_bsi"] > 0.9


def test_result_formatting():
    r = fig14.run()
    text = r.format()
    assert "fig14" in text and "\n" in text
    assert r.series("banked_mm2")


def test_bad_scale_rejected():
    from repro.experiments import scale_to_n
    with pytest.raises(ValueError):
        scale_to_n("gigantic")
    assert scale_to_n(77) == 77
    assert scale_to_n("tiny") == 12


def test_fault_study_subset():
    from repro.experiments import fault_study
    r = fault_study.run("tiny")
    assert len(r.rows) == (len(fault_study.CELLS) * len(fault_study.SCHEMES)
                           * len(fault_study.RATES))
    # rate-0 rows prove the subsystem is opt-in: nothing injected, no cost
    for row in r.rows:
        if float(row["rate"]) == 0.0:
            assert row["injected"] == 0 and row["overhead"] == 0.0
