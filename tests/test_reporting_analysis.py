"""Tests for stats reporting exports and the register-cache monitor."""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
from helpers import build_gather_core  # noqa: E402

from repro.stats.counters import Stats  # noqa: E402
from repro.stats.reporting import (  # noqa: E402
    compare,
    rows_to_csv,
    stats_to_csv,
    stats_to_dict,
    stats_to_json,
    text_histogram,
)
from repro.virec import ViReCConfig, ViReCCore  # noqa: E402
from repro.virec.analysis import RegisterCacheMonitor  # noqa: E402


def sample_stats():
    s = Stats("core")
    s.inc("cycles", 100)
    s.child("dcache").inc("misses", 7)
    return s


def test_json_roundtrip():
    d = json.loads(stats_to_json(sample_stats()))
    assert d["core.cycles"] == 100
    assert d["core.dcache.misses"] == 7


def test_csv_export():
    text = stats_to_csv(sample_stats())
    lines = text.strip().splitlines()
    assert lines[0] == "counter,value"
    assert any("core.dcache.misses,7" in ln for ln in lines)


def test_rows_to_csv_union_columns():
    rows = [{"a": 1, "b": 2}, {"a": 3, "c": 4}]
    text = rows_to_csv(rows)
    header = text.splitlines()[0]
    assert header == "a,b,c"
    assert rows_to_csv([]) == ""


def test_compare_with_baseline():
    a, b = sample_stats(), sample_stats()
    b.inc("cycles", 100)  # 200 total
    table = compare({"base": a, "fast": b}, keys=["core.cycles"],
                    baseline="base")
    assert "2.00x" in table
    assert "base" in table and "fast" in table


def test_compare_missing_counter():
    a = Stats("x")
    a.inc("only_in_a")
    b = Stats("x")
    table = compare({"a": a, "b": b})
    assert "--" in table


def test_text_histogram():
    h = text_histogram([1, 1, 2, 5, 5, 5], bins=4, title="demo")
    assert "demo" in h and "#" in h
    assert text_histogram([], title="t").endswith("(no data)")
    assert "#" in text_histogram([3, 3, 3])  # degenerate range


def test_register_cache_monitor_on_real_run():
    core, *_ = build_gather_core(ViReCCore, n_threads=4, n=64,
                                 virec=ViReCConfig(rf_size=20))
    monitor = RegisterCacheMonitor(core, period=8)
    core.run()
    report = monitor.finish()
    assert report.capacity == 20
    assert report.samples, "no occupancy samples collected"
    assert 0 < report.mean_occupancy <= 20
    # all four threads hold some share of the cache on average
    shares = [report.thread_share(t) for t in range(4)]
    assert all(s > 0.02 for s in shares)
    assert abs(sum(shares) - 1.0) < 0.2
    # evictions recorded with owner distances
    assert sum(report.eviction_owner_distance.values()) > 0
    assert report.mean_lifetime > 0
    assert "register cache capacity" in report.summary()


def test_monitor_lrc_evicts_far_threads():
    """The T bits should make most victims come from distant threads."""
    core, *_ = build_gather_core(ViReCCore, n_threads=4, n=96,
                                 virec=ViReCConfig(rf_size=16, policy="lrc"))
    monitor = RegisterCacheMonitor(core)
    core.run()
    report = monitor.finish()
    dist = report.eviction_owner_distance
    total = sum(dist.values())
    near = dist.get(0, 0) + dist.get(1, 0)
    far = total - near
    # most evictions come from threads further away in the schedule
    assert far >= near * 0.8


# -- sparkline edge cases ----------------------------------------------------
def test_sparkline_empty_series():
    from repro.stats.reporting import sparkline
    assert sparkline([]) == ""


def test_sparkline_single_point_is_flat():
    from repro.stats.reporting import sparkline
    assert sparkline([5.0]) == "▁"


def test_sparkline_constant_series_is_flat():
    from repro.stats.reporting import sparkline
    # a zero span must not divide; every column sits on the baseline
    assert sparkline([3, 3, 3, 3]) == "▁" * 4


def test_sparkline_width_clamped():
    from repro.stats.reporting import sparkline
    assert len(sparkline([1, 2, 3], width=0)) == 1
    assert len(sparkline([1, 2, 3], width=-5)) == 1
    assert len(sparkline(range(100), width=10)) == 10


def test_sparkline_non_finite_samples():
    from repro.stats.reporting import sparkline
    nan, inf = float("nan"), float("inf")
    # NaN/inf render as baseline blocks and stay out of the autoscale
    out = sparkline([1.0, nan, 2.0, inf, -inf])
    assert len(out) == 5
    assert out[1] == out[3] == out[4] == "▁"
    assert out[2] == "█"  # 2.0 still tops the finite scale
    # an all-non-finite series degrades to a flat baseline, not a crash
    assert sparkline([nan, inf]) == "▁" * 2


def test_sparkline_pinned_scale_still_safe():
    from repro.stats.reporting import sparkline
    # caller-pinned lo == hi is another zero-span path
    assert sparkline([1, 2, 3], lo=5, hi=5) == "▁" * 3
