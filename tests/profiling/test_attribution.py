"""Cycle attribution: the exact-sum taxonomy invariant and cycle identity.

The two hard guarantees of the profiling subsystem:

* **exhaustive**: on every supported core type,
  ``sum(per-cause attributed cycles) == total core cycles`` — exactly,
  no residual bucket, enforced per run by the plugin's
  ``finalize_simulate`` (raising :class:`~repro.errors.AttributionError`);
* **observational**: a profile-on run is cycle- and stats-identical to
  the same run with profiling off (the attributor classifies timestamps
  the engine already computed; it never alters one).
"""

import json

import pytest

from repro.errors import AttributionError
from repro.profiling import CAUSES, SCHEDULER_PC
from repro.system import RunConfig, run_config

#: every timeline-engine core type (the ooo host is covered separately by
#: its own always-on cycle_causes accounting below)
TIMELINE_CORES = ("inorder", "banked", "swctx", "virec", "nsf",
                  "prefetch-full", "prefetch-exact", "fgmt")


def _cfg(core_type, **kw):
    kw.setdefault("workload", "gather")
    kw.setdefault("n_threads", 1 if core_type == "inorder" else 4)
    kw.setdefault("n_per_thread", 16)
    return RunConfig(core_type=core_type, **kw)


# -- the taxonomy-invariant suite -------------------------------------------
@pytest.mark.parametrize("core_type", TIMELINE_CORES)
def test_every_cycle_attributed_exactly(core_type):
    r = run_config(_cfg(core_type, profile=True))
    session = r.profile
    assert session is not None and session.attributors
    for attributor in session.attributors:
        assert attributor.attributed == attributor.core.commit_tail
    snap = session.snapshot()
    assert sum(snap["causes"].values()) == sum(
        c["cycles"] for c in snap["cores"])
    for core in snap["cores"]:
        assert sum(core["causes"].values()) == core["cycles"]


@pytest.mark.parametrize("core_type", ["virec", "swctx", "fgmt"])
@pytest.mark.parametrize("workload", ["spmv", "stride", "histogram"])
def test_invariant_across_kernels(core_type, workload):
    r = run_config(_cfg(core_type, workload=workload, profile=True,
                        context_fraction=0.5))
    for attributor in r.profile.attributors:
        assert attributor.attributed == attributor.core.commit_tail


def test_invariant_multicore():
    r = run_config(_cfg("virec", workload="spmv", n_cores=2, n_per_thread=8,
                        profile=True))
    assert len(r.profile.attributors) == 2
    for attributor in r.profile.attributors:
        assert attributor.attributed == attributor.core.commit_tail


def test_ooo_cycle_causes_account_for_every_cycle():
    """The ooo host's always-on commit-clock accounting is exhaustive too."""
    r = run_config(RunConfig(workload="gather", core_type="ooo",
                             n_threads=1, n_per_thread=32))
    flat = dict(r.stats.flat())
    native = [v for k, v in flat.items()
              if k.endswith(".cycles") and "core" in k]
    causes = {k: v for k, v in flat.items() if "cycle_causes" in k}
    assert causes and native
    assert sum(causes.values()) == sum(native)


def test_violation_raises_attribution_error():
    r = run_config(_cfg("banked", profile=True))
    attributor = r.profile.attributors[0]
    attributor.totals[0] += 1  # manufacture a hole in the accounting
    with pytest.raises(AttributionError, match="attributed"):
        r.profile.verify()


# -- cycle identity ----------------------------------------------------------
@pytest.mark.parametrize("core_type", TIMELINE_CORES)
def test_profile_does_not_change_cycles(core_type):
    base = _cfg(core_type)
    off = run_config(base)
    on = run_config(base.with_(profile=True))
    assert on.cycles == off.cycles
    assert on.instructions == off.instructions
    assert on.stats.as_dict() == off.stats.as_dict()


def test_profile_with_telemetry_and_sanitizer_identical():
    base = _cfg("virec", n_per_thread=32, context_fraction=0.6)
    off = run_config(base)
    on = run_config(base.with_(profile=True,
                               telemetry={"events": True, "interval": 64},
                               sanitize=True))
    assert on.cycles == off.cycles
    assert on.stats.as_dict() == off.stats.as_dict()


# -- opt-in discipline -------------------------------------------------------
def test_profile_off_wires_nothing():
    assert run_config(_cfg("virec")).profile is None


def test_disabled_spec_wires_nothing():
    r = run_config(_cfg("virec", profile={"attribution": False}))
    assert r.profile is None


def test_ooo_rejects_profile():
    cfg = RunConfig(workload="gather", core_type="ooo", n_threads=1,
                    n_per_thread=16, profile=True)
    with pytest.raises(ValueError, match="ooo"):
        run_config(cfg)


def test_unknown_profile_field_rejected_eagerly():
    with pytest.raises(ValueError, match="unknown profile field"):
        RunConfig(profile={"atribution": True})


def test_profile_none_keeps_digests_stable():
    from repro.system.manifest import config_key, config_payload
    cfg = _cfg("virec")
    assert "profile" not in config_payload(cfg)
    assert config_key(cfg) != config_key(cfg.with_(profile={}))


# -- artifacts ---------------------------------------------------------------
def test_snapshot_shape_and_json_round_trip():
    r = run_config(_cfg("virec", profile=True))
    snap = r.profile.snapshot()
    assert snap["taxonomy"] == list(CAUSES)
    assert snap["cycles"] == r.cycles
    again = json.loads(json.dumps(snap))
    assert again == snap


def test_hotspots_are_source_mapped_and_sorted():
    r = run_config(_cfg("banked", profile=True))
    rows = r.profile.hotspots()
    assert rows
    cycles = [row["cycles"] for row in rows]
    assert cycles == sorted(cycles, reverse=True)
    labels = {row["label"] for row in rows}
    assert "loop" in labels  # the gather kernel's loop body dominates
    sched = [row for row in rows if row["pc"] == SCHEDULER_PC]
    assert sched and sched[0]["label"] == "<scheduler>"


def test_collapsed_flamegraph_parses_and_sums():
    r = run_config(_cfg("swctx", profile=True))
    folded = r.profile.collapsed()
    assert folded.endswith("\n")
    total = 0
    for line in folded.splitlines():
        frames, _, count = line.rpartition(" ")
        assert frames and frames.count(";") >= 1
        total += int(count)  # a non-integer trailer would raise here
    assert total == sum(a.attributed for a in r.profile.attributors)


def test_counter_track_merges_into_chrome_trace(tmp_path):
    r = run_config(_cfg("virec", n_per_thread=32, profile={
        "attribution": True, "by_pc": True, "sample_cycles": 128},
        telemetry={"events": True}))
    out = tmp_path / "trace.json"
    r.telemetry.write_chrome_trace(str(out))
    events = json.loads(out.read_text())["traceEvents"]
    tracks = [e for e in events if e.get("name") == "cycle_causes"]
    assert tracks and all(e["ph"] == "C" for e in tracks)
    merged = {}
    for e in tracks:
        for cause, n in e["args"].items():
            merged[cause] = merged.get(cause, 0) + n
    assert sum(merged.values()) == r.profile.attributors[0].attributed


def test_strip_result_folds_profile_to_snapshot():
    from repro.exec.workers import strip_result
    r = run_config(_cfg("banked", profile=True))
    snap = r.profile.snapshot()
    stripped = strip_result(r)
    assert isinstance(stripped.profile, dict)
    assert stripped.profile == snap


# -- spill-held port attribution (dead-hint policy axis) ---------------------
def _spill_writeback_cycles(policy):
    cfg = _cfg("virec", n_threads=8, n_per_thread=32,
               context_fraction=0.4, seed=7, profile=True, policy=policy)
    r = run_config(cfg)
    for attributor in r.profile.attributors:
        assert attributor.attributed == attributor.core.commit_tail
    return r.profile.snapshot()["causes"].get("spill_writeback", 0)


def test_virec_attributes_spill_held_port_waits():
    """ViReC fill waits caused by spill port occupancy land in
    spill_writeback, not vrmu_refill (the BSI port is shared)."""
    assert _spill_writeback_cycles("lrc") > 0


def test_dead_elide_cuts_spill_writeback_attribution():
    """Eliding dead writebacks frees the port: the spill_writeback slice
    shrinks relative to plain LRC on a register-pressure-bound run."""
    assert _spill_writeback_cycles("dead-elide") < _spill_writeback_cycles("lrc")
