"""Diff views, the ``repro profile`` verb, and report integration.

Pins the acceptance story: on the fixed gather kernel, the per-cause
delta between the banked reference and ViReC is dominated by the causes
the paper's Fig 9 narrative names — VRMU refill traffic (ViReC pays it,
a fully-banked RF never does) against switch/spill overhead (which the
software-switch core pays and ViReC's background BSI hides).
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.profiling import diff_snapshots
from repro.system import RunConfig, run_config

#: fixed kernel of the Fig 9 consistency assertions
FIG9_KW = dict(workload="gather", n_threads=8, n_per_thread=32,
               context_fraction=0.5, profile=True)


def _snapshot(core_type):
    return run_config(RunConfig(core_type=core_type, **FIG9_KW)
                      ).profile.snapshot()


# -- Fig 9 consistency -------------------------------------------------------
def test_banked_vs_virec_delta_is_refill_dominated():
    banked, virec = _snapshot("banked"), _snapshot("virec")
    assert "vrmu_refill" not in banked["causes"]  # banked RF never refills
    diff = diff_snapshots(banked, virec)
    assert diff["cycles_base"] == banked["cycles"]
    assert diff["cycles_other"] == virec["cycles"]
    assert diff["dominant"][0] == "vrmu_refill"
    assert diff["by_cause"]["vrmu_refill"] > 0
    # the Fig 9 story: register-cache refills are the majority of the
    # extra cycles ViReC spends relative to the fully-banked RF
    gains = {c: d for c, d in diff["by_cause"].items() if d > 0}
    assert gains["vrmu_refill"] >= 0.5 * sum(gains.values())


def test_swctx_vs_virec_delta_is_switch_dominated():
    """ViReC's win over software save/restore is switch/spill time."""
    virec, swctx = _snapshot("virec"), _snapshot("swctx")
    diff = diff_snapshots(virec, swctx)
    assert diff["cycles_delta"] > 0  # swctx is slower on this kernel
    gap_causes = set(diff["dominant"][:3])
    assert gap_causes & {"switch", "spill_writeback"}
    assert diff["by_cause"].get("vrmu_refill", 0) < 0  # only virec refills


def test_diff_per_pc_deltas_fold_by_pc():
    banked, virec = _snapshot("banked"), _snapshot("virec")
    diff = diff_snapshots(banked, virec)
    assert diff["by_pc"]
    total = sum(diff["by_pc"].values())
    attributed_delta = (sum(virec["causes"].values())
                        - sum(banked["causes"].values()))
    assert total == attributed_delta


# -- renderers ---------------------------------------------------------------
def test_render_attribution_table_lists_causes_and_hotspots():
    from repro.stats.reporting import render_attribution_table
    snap = _snapshot("banked")
    text = render_attribution_table(snap, top=3)
    assert "cycle attribution" in text
    for cause in snap["causes"]:
        assert cause in text
    assert "hotspots" in text and "loop" in text
    assert "WARNING" not in text  # exact sum: no residual warning line


def test_render_attribution_diff_orders_by_magnitude():
    from repro.stats.reporting import render_attribution_diff
    diff = diff_snapshots(_snapshot("banked"), _snapshot("virec"))
    text = render_attribution_diff(diff, "banked", "virec", top=5)
    assert "cycle delta: banked" in text
    assert "dominant causes: vrmu_refill" in text


# -- the CLI verb ------------------------------------------------------------
def _profile_args(*extra):
    return ["profile", "--workload", "gather", "--core", "banked",
            "--threads", "4", "--per-thread", "16", *extra]


def test_cli_profile_prints_attribution(capsys):
    assert cli_main(_profile_args("--top", "3")) == 0
    out = capsys.readouterr().out
    assert "cycle attribution" in out and "top 3 hotspots" in out


def test_cli_profile_diff_flame_json(tmp_path, capsys):
    flame, snap_path = tmp_path / "out.folded", tmp_path / "prof.json"
    assert cli_main(_profile_args(
        "--diff", "virec", "--flame", str(flame),
        "--json", str(snap_path))) == 0
    out = capsys.readouterr().out
    assert "cycle delta: banked" in out
    folded = flame.read_text()
    assert folded and all(line.rsplit(" ", 1)[1].isdigit()
                          for line in folded.splitlines())
    snap = json.loads(snap_path.read_text())
    assert sum(snap["causes"].values()) == sum(
        c["cycles"] for c in snap["cores"])


def test_cli_profile_rejects_ooo(capsys):
    args = _profile_args()
    args[args.index("banked")] = "ooo"
    assert cli_main(args) == 2
    assert "error:" in capsys.readouterr().err


# -- monitor/report usage hints ---------------------------------------------
def test_monitor_missing_dir_hint(tmp_path, capsys):
    assert cli_main(["monitor", str(tmp_path / "nope")]) == 2
    err = capsys.readouterr().err
    assert "no such sweep directory" in err and "repro sweep" in err


def test_monitor_empty_dir_hint(tmp_path, capsys):
    assert cli_main(["monitor", str(tmp_path)]) == 2
    assert "is empty" in capsys.readouterr().err


def test_report_dir_without_event_log_hint(tmp_path, capsys):
    (tmp_path / "stray.txt").write_text("not a sweep\n")
    assert cli_main(["report", str(tmp_path)]) == 2
    err = capsys.readouterr().err
    assert "sweep_events.jsonl" in err and "Traceback" not in err


# -- HTML report attribution section ----------------------------------------
@pytest.fixture()
def sweep_dir_with_profile(tmp_path):
    session = run_config(RunConfig(core_type="banked", **FIG9_KW)).profile
    session.write_json(str(tmp_path / "profile.json"))
    (tmp_path / "sweep_events.jsonl").write_text("")
    return tmp_path


def test_build_report_reads_profile_json(sweep_dir_with_profile):
    from repro.stats.report_html import build_report
    report = build_report(str(sweep_dir_with_profile))
    attribution = report["attribution"]
    assert attribution is not None
    assert attribution["total"] == sum(
        e["cycles"] for e in attribution["causes"])
    assert attribution["hotspots"]


def test_render_html_has_stacked_bars(sweep_dir_with_profile):
    from repro.stats.report_html import build_report, render_html
    page = render_html(build_report(str(sweep_dir_with_profile)))
    assert "Cycle attribution" in page
    assert "class='stack'" in page and "width:" in page
    assert "Hotspots" in page


def test_report_without_profile_json_skips_section(tmp_path):
    from repro.stats.report_html import build_report, render_html
    (tmp_path / "sweep_events.jsonl").write_text("")
    report = build_report(str(tmp_path))
    assert report["attribution"] is None
    assert "Cycle attribution" not in render_html(report)
