"""Fuzz-generator hygiene against the static verifier.

Post-condition of the generator: every program it emits passes
``repro check`` with zero findings — well-formed control flow, a halt
on every path, no unreachable code, and no read of a register the
generator did not initialize (beyond the x0/x1 ABI).  Shrunk corpus
reproducers are held to the structural subset only: the shrinker
deletes instructions, so a reproducer may legitimately lean on the
machine's zero-init reset semantics, but it must never gain a bad
branch target or lose its halt paths.
"""

from pathlib import Path

import pytest

from repro import workloads
from repro.analysis.dataflow import verify_program
from repro.fuzz.corpus import Corpus
from repro.fuzz.generator import sample_spec
from repro.isa.registers import NUM_ARCH_REGS

CORPUS_DIR = Path(__file__).resolve().parent / "corpus"


def _verify_instance(inst, name, zero_init=False):
    init = {r.flat for d in inst.init_regs for r in d}
    if zero_init:
        init = set(range(NUM_ARCH_REGS))
    return verify_program(inst.program, init_flats=init, name=name)


@pytest.mark.parametrize("index", range(25))
def test_generated_programs_verify_clean(index):
    spec = sample_spec(run_seed=99, index=index)
    inst = workloads.get("fuzz").build(n_threads=3, n_per_thread=8,
                                       gen=spec.as_dict())
    report = _verify_instance(inst, f"fuzz[{index}]")
    assert report.ok and not report.warnings, \
        "\n".join(f.message for f in report.findings)


def test_default_fuzz_workload_verifies_clean():
    inst = workloads.get("fuzz").build(n_threads=4, n_per_thread=16)
    report = _verify_instance(inst, "fuzz-default")
    assert report.ok and not report.warnings


def test_corpus_reproducers_structurally_clean():
    corpus = Corpus(str(CORPUS_DIR))
    slugs = corpus.entries()
    assert slugs, "checked-in corpus should not be empty"
    for slug in slugs:
        asm, meta = corpus.load(slug)
        inst = workloads.get("fuzz").build(
            n_threads=meta.get("n_threads", 4),
            n_per_thread=meta.get("n_per_thread", 16),
            gen=meta.get("spec") or {}, asm=asm)
        report = _verify_instance(inst, slug, zero_init=True)
        assert report.ok and not report.warnings, \
            f"{slug}: {[f.message for f in report.findings]}"
