"""The fuzz program generator: determinism, validity, termination."""

import pytest

from repro.fuzz.generator import (
    ARCHETYPES,
    GenSpec,
    generate,
    sample_spec,
)
from repro.isa import FunctionalSimulator, X, assemble
from repro.memory.main_memory import MainMemory


def _build(spec, n_threads=4, n_per_thread=16):
    kern = generate(spec, n_threads=n_threads, n_per_thread=n_per_thread)
    program = assemble(kern.asm, symbols=kern.symbols)
    mem = MainMemory()
    for name in sorted(kern.arrays):
        mem.write_array(kern.symbols[name], kern.arrays[name])
    return kern, program, mem


def test_generate_is_deterministic():
    spec = sample_spec(1, 5)
    a, b = generate(spec), generate(spec)
    assert a.asm == b.asm
    assert a.arrays.keys() == b.arrays.keys()
    assert all((a.arrays[k] == b.arrays[k]).all() if hasattr(
        a.arrays[k], "all") else a.arrays[k] == b.arrays[k]
        for k in a.arrays)
    assert a.meta == b.meta


def test_sample_spec_varies_but_is_pure():
    specs = [sample_spec(7, i) for i in range(24)]
    assert specs == [sample_spec(7, i) for i in range(24)]
    assert len({s.archetype for s in specs}) > 1
    assert len({s.n_body_ops for s in specs}) > 1
    # different run seeds produce different campaigns
    assert specs != [sample_spec(8, i) for i in range(24)]


@pytest.mark.parametrize("archetype", ARCHETYPES)
def test_every_archetype_assembles_and_terminates(archetype):
    spec = GenSpec(seed=11, archetype=archetype, n_body_ops=10,
                   branch_density=0.3, mem_density=0.4)
    kern, program, mem = _build(spec)
    for tid in range(kern.n_threads):
        sim = FunctionalSimulator(program, mem,
                                  max_instructions=2_000_000)
        sim.state.write(X(0), tid)
        sim.state.write(X(1), kern.n_threads)
        sim.run()   # raises RuntimeError on budget blowout / pc overrun


@pytest.mark.parametrize("seed", range(8))
def test_sampled_programs_terminate(seed):
    spec = sample_spec(3, seed)
    kern, program, mem = _build(spec)
    sim = FunctionalSimulator(program, mem, max_instructions=2_000_000)
    sim.state.write(X(0), 0)
    sim.state.write(X(1), kern.n_threads)
    sim.run()


def test_spec_validation():
    with pytest.raises(ValueError):
        GenSpec(archetype="bogus")
    with pytest.raises(ValueError):
        GenSpec(footprint_words=100)      # not a power of two
    with pytest.raises(ValueError):
        GenSpec(n_body_ops=-1)
    with pytest.raises(ValueError):
        GenSpec(branch_density=1.5)


def test_meta_describes_program():
    kern = generate(GenSpec(seed=2, archetype="csr"))
    assert kern.meta["n_lines"] == len(kern.asm.splitlines())
    assert kern.meta["asm_sha256"]
    assert set(kern.meta["ops"]) == {"int_alu", "fp_alu", "load",
                                     "store", "branch"}
    assert kern.used_regs
    assert set(kern.active_regs) <= set(kern.used_regs)


def test_as_dict_round_trips():
    spec = sample_spec(9, 4)
    assert GenSpec(**spec.as_dict()) == spec
