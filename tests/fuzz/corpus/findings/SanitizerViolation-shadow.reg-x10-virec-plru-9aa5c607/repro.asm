start:
    mov  x2, #chunk
    mul  x3, x0, x2
    add  x4, x3, x2
    adr  x5, data
    adr  x23, out
    adr  x24, scratch
    mov  x25, #mask
    adr  x6, aux
    mov  x8, #1754124
    mov  x9, #8561863
    mov  x10, #2833776
    mov  x11, #4452251
    mov  x12, #1559409
    mov  x13, #12124595
loop:
    and  x26, x3, x25
    ldr  x26, [x6, x26, lsl #3]
L1:
L2:
L3:
L4:
    and  x13, x13, x12
    cbz x13, L5
    lsl  x13, x12, #6
    mul  x8, x12, x13
L5:
    and  x11, x11, x11
    and  x26, x8, x25
    ldr  x27, [x5, x26, lsl #3]
    eor  x12, x12, x27
    add  x3, x3, #1
    cmp  x3, x4
    b.lt loop
    mov  x27, #0
    add  x27, x27, x8
    eor  x27, x27, x9
    add  x27, x27, x10
    eor  x27, x27, x11
    add  x27, x27, x12
    eor  x27, x27, x13
    halt
