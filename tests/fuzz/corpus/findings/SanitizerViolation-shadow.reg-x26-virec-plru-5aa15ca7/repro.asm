start:
    mov  x2, #chunk
    mul  x3, x0, x2
    add  x4, x3, x2
    adr  x5, data
    adr  x23, out
    adr  x24, scratch
    mov  x25, #mask
    mov  x8, #3242217
    mov  x9, #15249022
    mov  x10, #10247691
    mov  x11, #6969055
    mov  x12, #11939476
    mov  x13, #3647225
    mov  x14, #9628855
    fmov d0, #1.295
    fmov d1, #0.061
    fmov d2, #1.532
    fmov d3, #0.374
loop:
    and  x26, x3, x25
    ldr  x27, [x5, x26, lsl #3]
    add  x8, x8, x27
    fmadd d1, d2, d1, d1
    cbz x9, L1
    madd x11, x14, x14, x9
    lsr  x13, x13, #3
L1:
    and  x26, x14, x25
    ldr  x27, [x5, x26, lsl #3]
    sub  x11, x11, x27
    eor  x27, x27, x9
    add  x27, x27, x10
    eor  x27, x27, x11
    add  x27, x27, x12
    eor  x27, x27, x13
    add  x27, x27, x14
    str  x27, [x23, x0, lsl #3]
    fmov d8, #0.0
    fadd d8, d8, d0
    fadd d8, d8, d1
    fadd d8, d8, d2
    fadd d8, d8, d3
    add  x26, x0, x1
    str  d8, [x23, x26, lsl #3]
    halt
