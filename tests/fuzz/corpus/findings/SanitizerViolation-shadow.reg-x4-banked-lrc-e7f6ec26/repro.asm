start:
    mov  x2, #chunk
    mul  x3, x0, x2
    add  x4, x3, x2
    adr  x5, data
    adr  x23, out
    adr  x24, scratch
    mov  x25, #mask
    mov  x8, #3242217
    mov  x9, #15249022
    mov  x10, #10247691
    mov  x11, #6969055
    mov  x12, #11939476
    mov  x13, #3647225
    mov  x14, #9628855
loop:
L1:
    and  x10, x13, x8
    and  x26, x9, x25
    ldr  x27, [x5, x26, lsl #3]
    sub  x10, x10, x27
    and  x26, x11, x25
    ldr  x27, [x5, x26, lsl #3]
    add  x12, x12, x27
    fmadd d3, d1, d2, d2
    str  d2, [x24, x3, lsl #3]
    add  x3, x3, #1
    cmp  x3, x4
    b.lt loop
    mov  x27, #0
    add  x27, x27, x8
    halt
