"""Pin the banked-vs-candidate cycle-ratio envelope on fixed kernels.

The fuzz oracle's timing-divergence check relies on
:data:`repro.fuzz.oracle.RATIO_BOUNDS`; this test anchors those declared
bounds against the paper's fixed kernels so a core-model change that
shifts the envelope fails *here*, loudly, instead of silently eating (or
spewing) fuzz findings.  Measured on gather/stride/spmv at 4x16:
virec/banked sits in [1.02, 1.09] and fgmt/banked in [0.62, 0.79]; the
declared fuzz bounds are deliberately wider.
"""

import pytest

from repro.fuzz.oracle import RATIO_BOUNDS, REFERENCE_ARM
from repro.system import RunConfig, run_config

KERNELS = ("gather", "stride", "spmv")
#: the tight envelope fixed kernels must stay inside (generous margin
#: around the measured band, far inside the fuzz bounds)
FIXED_ENVELOPE = {"virec": (0.95, 1.30), "fgmt": (0.50, 0.95)}


def _run(workload, core_type, policy):
    return run_config(RunConfig(workload=workload, core_type=core_type,
                                policy=policy, n_threads=4, n_per_thread=16,
                                seed=3), check=True)


@pytest.mark.parametrize("workload", KERNELS)
@pytest.mark.parametrize("core_type", sorted(RATIO_BOUNDS))
def test_fixed_kernel_ratios_inside_declared_bounds(workload, core_type):
    ref = _run(workload, *REFERENCE_ARM)
    cand = _run(workload, core_type, "lrc")
    ratio = cand.cycles / ref.cycles

    tight_lo, tight_hi = FIXED_ENVELOPE[core_type]
    assert tight_lo <= ratio <= tight_hi, \
        f"{core_type}/{workload} ratio {ratio:.3f} left its envelope"

    lo, hi = RATIO_BOUNDS[core_type]
    assert lo < tight_lo and tight_hi < hi, \
        "fuzz bounds must strictly contain the fixed-kernel envelope"

    # the equal-instruction-count invariant the oracle also enforces
    assert cand.instructions == ref.instructions
