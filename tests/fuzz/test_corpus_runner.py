"""Corpus dedup/layout, the fuzz loop, checkpoint/resume, CLI exit codes."""

import json
import os

import pytest

from repro.cli import main as cli_main
from repro.fuzz.corpus import Corpus, replay_corpus, slug_for
from repro.fuzz.runner import FuzzConfig, run_fuzz

FAULTS = {"rf_rate": 2e-5, "scheme": "none", "seed": 9}


def _read(path):
    with open(path) as f:
        return json.load(f)


# -- corpus ------------------------------------------------------------------
def test_slug_is_stable_and_fs_safe():
    sig = "SanitizerViolation:shadow.reg:x9@virec/lrc"
    assert slug_for(sig) == slug_for(sig)
    assert "/" not in slug_for(sig) and ":" not in slug_for(sig)
    assert slug_for(sig) != slug_for(sig + "2")


def test_corpus_roundtrip(tmp_path):
    c = Corpus(str(tmp_path))
    sig = "DeadlockError:cycle-budget@fgmt/lrc"
    slug = c.add(sig, "    halt", {"signature": sig, "spec": {}})
    assert c.entries() == [slug]
    assert c.has(sig)
    asm, meta = c.load(slug)
    assert asm == "    halt\n"
    assert meta["signature"] == sig


# -- run_fuzz ----------------------------------------------------------------
def test_clean_campaign_writes_report_and_metrics(tmp_path):
    d = str(tmp_path / "c")
    rep = run_fuzz(FuzzConfig(seed=1, budget=2, corpus_dir=d, jobs=1))
    assert rep.programs == 2 and rep.findings_total == 0
    on_disk = _read(os.path.join(d, "fuzz_report.json"))
    assert on_disk == rep.as_dict()
    metrics = _read(os.path.join(d, "metrics.json"))
    assert "fuzz_programs_total" in json.dumps(metrics)


def test_fixed_seed_campaign_is_byte_identical(tmp_path):
    """Same seed + budget => byte-identical corpus metadata and report."""
    outs = []
    for sub in ("a", "b"):
        d = str(tmp_path / sub)
        run_fuzz(FuzzConfig(seed=5, budget=2, corpus_dir=d, jobs=1,
                            faults=FAULTS, shrink_budget=8))
        blob = {}
        for root, _, files in os.walk(d):
            for f in sorted(files):
                if f == "checkpoint.jsonl":   # fsync journal, order-only
                    continue
                rel = os.path.relpath(os.path.join(root, f), d)
                with open(os.path.join(root, f), "rb") as fh:
                    blob[rel] = fh.read()
        outs.append(blob)
    assert outs[0] == outs[1]


def test_faulted_campaign_dedups_and_replays(tmp_path):
    d = str(tmp_path / "c")
    rep = run_fuzz(FuzzConfig(seed=5, budget=2, corpus_dir=d, jobs=1,
                              faults=FAULTS, shrink_budget=8))
    assert rep.findings_total > 0
    assert rep.unique_signatures == len(rep.entries)
    assert sorted(rep.new_entries) == rep.entries
    for slug in rep.entries:
        meta = _read(os.path.join(d, "findings", slug, "meta.json"))
        assert meta["faults"] == FAULTS
        assert "spec" in meta and "signature" in meta
    rows = replay_corpus(d)
    assert rows and all(r["ok"] for r in rows)


def test_resume_skips_finished_indices(tmp_path):
    d = str(tmp_path / "c")
    run_fuzz(FuzzConfig(seed=1, budget=2, corpus_dir=d, jobs=1))
    rep = run_fuzz(FuzzConfig(seed=1, budget=3, corpus_dir=d, jobs=1,
                              resume=True))
    assert rep.resumed == 2
    assert rep.programs == 3


def test_resume_survives_torn_checkpoint_line(tmp_path):
    d = str(tmp_path / "c")
    run_fuzz(FuzzConfig(seed=1, budget=2, corpus_dir=d, jobs=1))
    ck = os.path.join(d, "checkpoint.jsonl")
    with open(ck, "a") as f:
        f.write('{"key": "fuzz:1:2", "status": "ok", "resu')  # torn tail
    with pytest.warns(RuntimeWarning):
        rep = run_fuzz(FuzzConfig(seed=1, budget=3, corpus_dir=d, jobs=1,
                                  resume=True))
    assert rep.programs == 3
    assert rep.resumed == 2       # the torn index re-ran


def test_ok_record_without_result_reruns(tmp_path):
    d = str(tmp_path / "c")
    os.makedirs(d)
    with open(os.path.join(d, "checkpoint.jsonl"), "w") as f:
        f.write(json.dumps({"key": "fuzz:1:0", "status": "ok"}) + "\n")
    rep = run_fuzz(FuzzConfig(seed=1, budget=1, corpus_dir=d, jobs=1,
                              resume=True))
    assert rep.resumed == 0
    assert rep.programs == 1


# -- CLI ---------------------------------------------------------------------
def test_cli_clean_exit_zero(tmp_path, capsys):
    d = str(tmp_path / "c")
    rc = cli_main(["fuzz", "--seed", "1", "--budget", "2", "--corpus", d])
    out = capsys.readouterr().out
    assert rc == 0
    assert "fuzzed 2/2" in out


def test_cli_findings_exit_three_and_replay_zero(tmp_path, capsys):
    d = str(tmp_path / "c")
    rc = cli_main(["fuzz", "--seed", "5", "--budget", "2", "--corpus", d,
                   "--flip-rate", "2e-5", "--fault-seed", "9",
                   "--shrink-budget", "8"])
    assert rc == 3
    capsys.readouterr()
    rc = cli_main(["fuzz", "--replay", d])
    out = capsys.readouterr().out
    assert rc == 0
    assert "reproducers still fire" in out


def test_cli_replay_detects_rotted_reproducer(tmp_path, capsys):
    d = str(tmp_path / "c")
    cli_main(["fuzz", "--seed", "5", "--budget", "1", "--corpus", d,
              "--flip-rate", "2e-5", "--fault-seed", "9", "--no-shrink"])
    capsys.readouterr()
    slug = sorted(os.listdir(os.path.join(d, "findings")))[0]
    meta_path = os.path.join(d, "findings", slug, "meta.json")
    meta = _read(meta_path)
    meta["signature"] = "SanitizerViolation:shadow.reg:xNOPE@virec/lrc"
    with open(meta_path, "w") as f:
        json.dump(meta, f)
    rc = cli_main(["fuzz", "--replay", d])
    out = capsys.readouterr().out
    assert rc == 4
    assert "FAIL" in out


def test_checked_in_corpus_still_reproduces():
    """The committed reference corpus (also exercised by the CI
    fuzz-smoke job) must keep firing its recorded signatures."""
    root = os.path.join(os.path.dirname(__file__), "corpus")
    assert os.path.isdir(os.path.join(root, "findings"))
    rows = replay_corpus(root)
    assert rows
    bad = [r for r in rows if not r["ok"]]
    assert not bad, f"stale reproducers: {[r['slug'] for r in bad]}"
