"""The differential oracle: clean programs, wedges-as-findings, signatures."""

import pytest

from repro.fuzz.generator import GenSpec, sample_spec
from repro.fuzz.oracle import (
    DEFAULT_ARMS,
    REFERENCE_ARM,
    arm_name,
    classify,
    run_oracle,
)
from repro.errors import DeadlockError, SanitizerViolation, WatchdogTimeout

ONE_ARM = (("virec", "lrc"),)


def test_clean_program_has_no_findings():
    spec = GenSpec(seed=7, archetype="stride", n_body_ops=6)
    report = run_oracle(spec.as_dict())
    assert report.valid
    assert report.findings == []
    arms = {arm_name(*REFERENCE_ARM)} | {arm_name(*a) for a in DEFAULT_ARMS}
    assert set(report.arms) == arms
    # equal-instruction-count invariant holds across every arm
    counts = {s["instructions"] for s in report.arms.values()}
    assert len(counts) == 1


def test_oracle_is_deterministic():
    spec = sample_spec(4, 2).as_dict()
    a = run_oracle(spec, arms=ONE_ARM)
    b = run_oracle(spec, arms=ONE_ARM)
    assert a.valid == b.valid
    assert a.arms == b.arms
    assert [f.as_dict() for f in a.findings] == \
           [f.as_dict() for f in b.findings]


def test_wedge_is_a_finding_not_a_crash():
    """An exhausted cycle budget must surface as a classified finding."""
    spec = GenSpec(seed=7, archetype="pchase", n_body_ops=12)
    report = run_oracle(spec.as_dict(), max_cycles=100, arms=ONE_ARM)
    assert report.valid
    assert report.findings, "budget exhaustion vanished"
    for f in report.findings:
        assert f.kind == "exception"
        assert f.error_type == "DeadlockError"
        assert f.signature.startswith("DeadlockError:cycle-budget@")


def test_invalid_program_is_not_a_finding():
    spec = GenSpec(seed=1, archetype="stride")
    report = run_oracle(spec.as_dict(), asm="    bogus x1, x2\n    halt\n")
    assert not report.valid
    assert report.findings == []
    assert report.invalid_reason


def test_signatures_are_stable_and_site_keyed():
    arm = "virec/lrc"
    exc = SanitizerViolation("shadow mismatch", invariant="shadow.reg",
                             cycle=123, core_id=0, details={"reg": "x9"})
    f1 = classify(exc, arm)
    exc2 = SanitizerViolation("shadow mismatch", invariant="shadow.reg",
                              cycle=99_999, core_id=0, details={"reg": "x9"})
    # different cycle, same root cause -> same signature
    assert f1.signature == classify(exc2, arm).signature
    assert f1.signature == "SanitizerViolation:shadow.reg:x9@virec/lrc"

    d = classify(DeadlockError("cycle budget exceeded (9 > 5)",
                               commit_tail=9, committed=4), arm)
    assert d.signature == "DeadlockError:cycle-budget@virec/lrc"
    assert d.details["commit_tail"] == 9
    assert d.details["committed"] == 4

    w = classify(WatchdogTimeout("wall-clock limit of 1s exceeded"), arm)
    assert w.signature == "WatchdogTimeout@virec/lrc"


def test_faulted_run_produces_findings():
    spec = GenSpec(seed=3, archetype="gather", n_body_ops=10)
    report = run_oracle(spec.as_dict(),
                        faults={"rf_rate": 2e-5, "scheme": "none",
                                "seed": 11})
    assert report.valid
    assert report.findings
    assert all(f.error_type in ("SanitizerViolation", "FaultEscapeError",
                                "FunctionalCheckError")
               for f in report.findings)
    # findings are sorted by signature for deterministic reports
    sigs = [f.signature for f in report.findings]
    assert sigs == sorted(sigs)


def test_asm_override_matches_generated_run():
    """Running the generated text through the asm-override path must be
    indistinguishable from the generated run — the property replay and
    shrinking depend on."""
    from repro.fuzz.generator import generate

    spec = GenSpec(seed=3, archetype="gather", n_body_ops=10)
    kern = generate(spec)
    faults = {"rf_rate": 2e-5, "scheme": "none", "seed": 11}
    a = run_oracle(spec.as_dict(), faults=faults, arms=ONE_ARM)
    b = run_oracle(spec.as_dict(), faults=faults, arms=ONE_ARM,
                   asm=kern.asm)
    assert a.signatures == b.signatures
    assert a.arms == b.arms
