"""ddmin auto-shrinking against synthetic and real oracles."""

from repro.fuzz.shrink import shrink_program

SIG = "SanitizerViolation:shadow.reg:x9@virec/lrc"


def _mk_asm(n_filler):
    lines = ["start:"]
    lines += [f"    add x{(i % 4) + 8}, x8, #1" for i in range(n_filler)]
    lines += ["    eor x9, x9, x25", "    halt"]
    return "\n".join(lines)


def test_shrinks_to_essential_line():
    """Only the eor line matters; everything deletable should go."""
    asm = _mk_asm(12)

    def signatures_of(text):
        return [SIG] if "eor x9" in text else []

    res = shrink_program(asm, SIG, signatures_of, max_attempts=200)
    assert res.reproduced
    assert res.lines < res.orig_lines
    assert "eor x9" in res.asm
    # structural lines survive
    assert "start:" in res.asm
    assert "halt" in res.asm
    deletable = [l for l in res.asm.splitlines()
                 if l.strip() and not l.strip().endswith(":")
                 and l.strip() != "halt" and l.strip() != "nop"]
    assert deletable == ["    eor x9, x9, x25"]


def test_budget_bounds_oracle_trips():
    calls = [0]

    def signatures_of(text):
        calls[0] += 1
        return [SIG]

    shrink_program(_mk_asm(64), SIG, signatures_of, max_attempts=10)
    assert calls[0] <= 10


def test_flaky_original_is_kept_unshrunk():
    res = shrink_program(_mk_asm(6), SIG, lambda text: [], max_attempts=20)
    assert not res.reproduced
    assert res.asm == _mk_asm(6)
    assert res.attempts == 1


def test_signature_must_match_exactly():
    """A candidate that fires a different signature is not a reproduction."""
    asm = _mk_asm(4)

    def signatures_of(text):
        if "eor x9" in text and "add x8" in text:
            return [SIG]
        if "eor x9" in text:
            return ["SanitizerViolation:shadow.reg:x8@virec/lrc"]
        return []

    res = shrink_program(asm, SIG, signatures_of, max_attempts=100)
    assert res.reproduced
    assert "eor x9" in res.asm
    assert any("add x8" in l for l in res.asm.splitlines())


def test_real_oracle_shrink_reproduces():
    """End to end on the simulator: shrink a fault-seeded finding and
    check the minimized program still fires the same signature."""
    from repro.fuzz.generator import GenSpec, generate
    from repro.fuzz.oracle import run_oracle

    spec = GenSpec(seed=3, archetype="gather", n_body_ops=10)
    kern = generate(spec)
    faults = {"rf_rate": 2e-5, "scheme": "none", "seed": 11}
    arms = (("virec", "lrc"),)

    def signatures_of(text):
        return run_oracle(spec.as_dict(), asm=text, faults=faults,
                          arms=arms).signatures

    sigs = run_oracle(spec.as_dict(), faults=faults, arms=arms).signatures
    assert sigs, "fault campaign produced no finding to shrink"
    res = shrink_program(kern.asm, sigs[0], signatures_of, max_attempts=12)
    assert res.reproduced
    assert sigs[0] in signatures_of(res.asm)
