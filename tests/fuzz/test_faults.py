"""Acceptance: injected silent flips become deduplicated, shrunk,
replayable findings.

Mirrors ``tests/sanitizer/test_detection.py``: a control run with the
sanitizer off counts the bits that actually flipped in architectural
state; every program whose control run was silently corrupted must
surface at least one finding from the differential oracle (>= 95%, the
same floor the sanitizer contract documents).
"""

from repro.errors import SimulationError
from repro.fuzz.corpus import replay_corpus
from repro.fuzz.generator import sample_spec
from repro.fuzz.oracle import oracle_config, run_oracle
from repro.fuzz.runner import FuzzConfig, run_fuzz
from repro.system.simulator import run_config

ONE_ARM = (("virec", "lrc"),)
FAULTS = {"rf_rate": 4e-5, "scheme": "none", "seed": 13}


def _flips(result) -> int:
    return int(sum(v for k, v in result.stats.flat()
                   if k.endswith("faults.bits_flipped")))


def _silently_corrupted(spec_dict, core_type, policy) -> bool:
    cfg = oracle_config(spec_dict, core_type, policy, n_threads=4,
                        n_per_thread=16, max_cycles=400_000,
                        faults=FAULTS, sanitize=False)
    try:
        return _flips(run_config(cfg, check=False)) > 0
    except (SimulationError, RuntimeError, OverflowError, ValueError):
        return False      # loud crash without VSan: already not silent


def test_injected_flips_surface_as_findings():
    corrupted = caught = 0
    for index in range(10):
        spec = sample_spec(21, index).as_dict()
        arms_hit = [arm for arm in ONE_ARM
                    if _silently_corrupted(spec, *arm)]
        if not arms_hit:
            continue
        corrupted += 1
        report = run_oracle(spec, arms=ONE_ARM, faults=FAULTS)
        if report.valid and report.findings:
            caught += 1
    assert corrupted >= 3, "fault campaign too weak to exercise detection"
    assert caught / corrupted >= 0.95, \
        f"oracle caught only {caught}/{corrupted} corrupted programs"


def test_campaign_findings_are_deduped_shrunk_and_replayable(tmp_path):
    d = str(tmp_path / "corpus")
    rep = run_fuzz(FuzzConfig(seed=21, budget=3, corpus_dir=d, jobs=1,
                              faults=FAULTS, shrink_budget=10))
    assert rep.findings_total > 0
    # dedup: one corpus entry per unique signature
    assert rep.unique_signatures == len(rep.entries)
    rows = replay_corpus(d)
    assert rows
    bad = [r for r in rows if not r["ok"]]
    assert not bad, f"replays lost their signature: {bad}"
