"""Tests for the stride prefetcher, crossbar, and hierarchy wiring."""

from repro.memory import (
    Cache,
    CacheConfig,
    Crossbar,
    HostMemorySystem,
    MainMemory,
    NDPMemorySystem,
    StridePrefetcher,
)
from repro.stats.counters import Stats


class FixedLatencyBackend:
    def __init__(self, latency=50):
        self.latency = latency
        self.accesses = []

    def access(self, now, line_addr, is_write=False, requestor=0):
        self.accesses.append((now, line_addr, is_write))
        return now + self.latency


def test_stride_detection_issues_degree_prefetches():
    be = FixedLatencyBackend()
    pf = StridePrefetcher(degree=8)
    c = Cache(CacheConfig(size_bytes=64 * 1024, assoc=8), be, Stats("l2"), prefetcher=pf)
    # three misses with stride 64 -> confidence 2 -> prefetch
    c.access(0, 0)
    c.access(10, 64)
    c.access(20, 128)
    assert pf.stats["issued"] == 8
    # prefetched lines are now present
    assert c.contains(128 + 64)
    assert c.contains(128 + 8 * 64)


def test_prefetched_line_hits_later():
    be = FixedLatencyBackend(latency=40)
    pf = StridePrefetcher(degree=2)
    c = Cache(CacheConfig(size_bytes=64 * 1024, assoc=8), be, Stats("l2"), prefetcher=pf)
    c.access(0, 0)
    c.access(10, 64)
    c.access(20, 128)
    r = c.access(500, 192)  # covered by prefetch, fill long done
    assert r.hit and not r.under_fill


def test_no_prefetch_on_random_strides():
    pf = StridePrefetcher(degree=4)
    c = Cache(CacheConfig(size_bytes=64 * 1024, assoc=8), FixedLatencyBackend(),
              Stats("l2"), prefetcher=pf)
    for i, a in enumerate([0, 640, 64, 8192, 256]):
        c.access(i * 10, a)
    assert pf.stats["issued"] == 0


def test_crossbar_adds_latency():
    be = FixedLatencyBackend(latency=30)
    xbar = Crossbar(be, latency=6)
    done = xbar.access(0, 0)
    assert done == 6 + 30


def test_crossbar_serializes_bandwidth():
    be = FixedLatencyBackend(latency=0)
    xbar = Crossbar(be, latency=0, requests_per_cycle=1)
    times = [xbar.access(0, i * 64) for i in range(4)]
    assert times == sorted(times)
    assert times[-1] >= 3  # queued behind 3 earlier requests


def test_ndp_memory_system_shape():
    sys = NDPMemorySystem(n_cores=4)
    assert len(sys.cores) == 4
    p0 = sys.ports(0)
    assert p0.dcache.config.size_bytes == 8 * 1024
    assert p0.icache.config.size_bytes == 32 * 1024
    # all cores share the crossbar and DRAM
    assert sys.ports(1).dcache.next_level is sys.crossbar


def test_ndp_cores_contend_via_crossbar():
    sys = NDPMemorySystem(n_cores=2, crossbar_latency=4)
    r0 = sys.ports(0).dcache.access(0, 0x10000, is_load_data=True)
    r1 = sys.ports(1).dcache.access(0, 0x90000, is_load_data=True)
    # second request observes crossbar/bank occupancy from the first
    assert r1.complete_at >= r0.complete_at


def test_host_memory_system_l2_prefetcher():
    host = HostMemorySystem()
    ports = host.ports()
    assert ports.dcache.next_level is host.l2
    assert host.l2.prefetcher is not None


def test_main_memory_alignment_and_arrays():
    m = MainMemory()
    m.write_array(0x100, [1, 2, 3])
    assert m.read_array(0x100, 3) == [1, 2, 3]
    assert m.load(0x110) == 3
    import pytest
    with pytest.raises(ValueError):
        m.load(0x101)
