"""Tests for the set-associative cache with MSHRs and register-line pinning."""

import pytest

from repro.memory import Cache, CacheConfig
from repro.stats.counters import Stats


class FixedLatencyBackend:
    """Next-level stub with constant latency; records traffic."""

    def __init__(self, latency=50):
        self.latency = latency
        self.accesses = []

    def access(self, now, line_addr, is_write=False, requestor=0):
        self.accesses.append((now, line_addr, is_write))
        return now + self.latency


def make_cache(size=1024, assoc=2, latency=2, mshrs=4, backend=None):
    backend = backend or FixedLatencyBackend()
    c = Cache(CacheConfig(name="d", size_bytes=size, assoc=assoc, latency=latency,
                          mshrs=mshrs), backend, Stats("d"))
    return c, backend


def test_miss_then_hit():
    c, be = make_cache()
    r1 = c.access(0, 0x1000)
    assert not r1.hit and r1.complete_at == 2 + 50
    r2 = c.access(r1.complete_at, 0x1000)
    assert r2.hit and r2.complete_at == r1.complete_at + 2


def test_same_line_different_words_hit():
    c, _ = make_cache()
    r1 = c.access(0, 0x1000)
    r2 = c.access(r1.complete_at, 0x1038)  # last word of same 64B line
    assert r2.hit


def test_under_fill_merge():
    c, _ = make_cache()
    r1 = c.access(0, 0x1000)
    r2 = c.access(1, 0x1000)  # line still being filled
    assert r2.hit and r2.under_fill
    assert r2.complete_at == r1.complete_at
    assert c.stats["under_fill_hits"] == 1


def test_lru_eviction_within_set():
    # size 1024, assoc 2, 64B lines -> 8 sets; lines mapping to set 0 are
    # multiples of 8*64 = 512 bytes
    c, be = make_cache()
    c.warm(0x0000)
    c.warm(0x0200)  # same set, both ways full
    c.access(10, 0x0200)  # touch -> 0x0000 becomes LRU
    r = c.access(20, 0x0400)  # forces eviction of 0x0000
    assert not r.hit
    assert not c.contains(0x0000)
    assert c.contains(0x0200)


def test_dirty_writeback_on_eviction():
    c, be = make_cache()
    c.warm(0x0000, dirty=True)
    c.warm(0x0200)
    c.access(0, 0x0200)
    c.access(10, 0x0400)  # evicts dirty 0x0000
    writebacks = [a for a in be.accesses if a[2]]
    assert len(writebacks) == 1
    assert writebacks[0][1] == 0x0000


def test_mshr_limit_returns_retry():
    c, _ = make_cache(mshrs=2, size=4096, assoc=4)
    c.access(0, 0x0000)
    c.access(0, 0x1040)
    r = c.access(0, 0x2080)
    assert not r.accepted and r.retry_at is not None
    assert c.stats["mshr_full"] == 1


def test_mshr_entries_freed_after_fill():
    c, _ = make_cache(mshrs=1)
    r1 = c.access(0, 0x0000)
    r = c.access(r1.complete_at + 1, 0x2040)
    assert r.accepted


def test_switch_signal_on_data_load_miss_only():
    c, _ = make_cache()
    r = c.access(0, 0x5000, is_load_data=True)
    assert r.switch_signal
    r2 = c.access(r.complete_at, 0x5000, is_load_data=True)
    assert r2.hit and not r2.switch_signal
    # plain (non-load-data) miss: no switch signal
    r3 = c.access(1000, 0x9000)
    assert not r3.switch_signal


def test_register_region_suppresses_switch_signal():
    c, _ = make_cache()
    c.register_region = (0x8000, 0x9000)
    r = c.access(0, 0x8040, is_load_data=True)
    assert not r.switch_signal
    assert c.in_register_region(0x8040)
    assert not c.in_register_region(0x9000)


def test_register_line_pinning_blocks_eviction():
    c, _ = make_cache()
    c.warm(0x0000, is_reg=True, pin=1)
    c.warm(0x0200)
    c.access(5, 0x0000, is_register=True)  # keep it MRU? no - touch other
    c.access(6, 0x0200)
    # 0x0000 pinned; eviction must pick 0x0200 even though 0x0000 is LRU
    c.access(10, 0x0400)
    assert c.contains(0x0000)
    assert not c.contains(0x0200)


def test_pin_counter_increments_and_decrements():
    c, _ = make_cache()
    r = c.access(0, 0x0000, is_register=True, pin_delta=1)
    line = c.line_state(0x0000)
    assert line.pin == 1 and line.is_reg
    c.access(r.complete_at, 0x0000, is_register=True, pin_delta=1)
    assert line.pin == 2
    c.access(r.complete_at + 5, 0x0000, is_write=True, is_register=True, pin_delta=-1)
    c.access(r.complete_at + 6, 0x0000, is_write=True, is_register=True, pin_delta=-1)
    assert line.pin == 0


def test_pin_saturates_at_7():
    c, _ = make_cache()
    c.warm(0x0000, is_reg=True)
    for i in range(10):
        c.access(i + 1, 0x0000, is_register=True, pin_delta=1)
    assert c.line_state(0x0000).pin == 7


def test_forced_eviction_when_all_ways_pinned():
    c, _ = make_cache()
    c.warm(0x0000, is_reg=True, pin=1)
    c.warm(0x0200, is_reg=True, pin=1)
    r = c.access(0, 0x0400)
    assert r.accepted
    assert c.stats["forced_pinned_evictions"] == 1


def test_write_allocates_and_dirties():
    c, _ = make_cache()
    r = c.access(0, 0x3000, is_write=True)
    assert not r.hit
    assert c.line_state(0x3000).dirty


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        Cache(CacheConfig(size_bytes=1000, assoc=3), FixedLatencyBackend())


def test_resident_lines_counting():
    c, _ = make_cache()
    assert c.resident_lines() == 0
    c.warm(0x0000)
    c.warm(0x1000)
    assert c.resident_lines() == 2


def test_write_through_no_allocate():
    be = FixedLatencyBackend(30)
    c = Cache(CacheConfig(name="wt", size_bytes=1024, assoc=2,
                          write_policy="wt"), be, Stats("wt"))
    r = c.access(0, 0x4000, is_write=True)
    assert not r.hit
    assert not c.contains(0x4000)          # no allocation
    assert c.stats["write_through"] == 1
    assert any(a[2] for a in be.accesses)  # write went downstream
    # read after write-through misses (line was never filled)
    r2 = c.access(100, 0x4000)
    assert not r2.hit


def test_write_through_hit_updates_line():
    be = FixedLatencyBackend(30)
    c = Cache(CacheConfig(name="wt", size_bytes=1024, assoc=2,
                          write_policy="wt"), be, Stats("wt"))
    c.warm(0x4000)
    r = c.access(0, 0x4000, is_write=True)
    assert r.hit


def test_invalid_write_policy_rejected():
    with pytest.raises(ValueError):
        CacheConfig(write_policy="random")
