"""Tests for the DDR5-like DRAM timing model."""

from repro.memory import DRAM, DRAMConfig
from repro.stats.counters import Stats


def make_dram(**kw):
    return DRAM(DRAMConfig(**kw), Stats("dram"))


def test_first_access_is_row_empty():
    d = make_dram()
    cfg = d.config
    done = d.access(0, 0)
    assert done == cfg.t_controller + cfg.t_rcd + cfg.t_cl + cfg.t_burst
    assert d.stats["row_empty"] == 1


def test_row_hit_is_faster_than_row_miss():
    d = make_dram()
    cfg = d.config
    base = d.access(0, 0)
    # same channel/bank/row: next line in same row = addr + channels*banks*64
    same_row_addr = cfg.channels * cfg.banks_per_channel * 64
    t_hit = d.access(1000, same_row_addr) - 1000
    assert d.stats["row_hits"] == 1
    # force a row conflict: different row, same bank
    rows_per_bank_stride = cfg.channels * cfg.banks_per_channel * cfg.row_bytes
    t_miss = d.access(2000, rows_per_bank_stride) - 2000
    assert d.stats["row_misses"] == 1
    assert t_miss > t_hit


def test_channel_interleave_of_consecutive_lines():
    d = make_dram()
    c0, _, _ = d.map_address(0)
    c1, _, _ = d.map_address(64)
    assert c0 != c1


def test_bank_serialization():
    d = make_dram()
    a = d.access(0, 0)
    b = d.access(0, 0)  # same bank, same cycle: must serialize
    assert b > a


def test_independent_banks_overlap():
    d = make_dram(channels=1, banks_per_channel=8)
    a = d.access(0, 0)
    b = d.access(0, 64 * 1)  # different bank (channels=1)
    # bank prep overlaps; only the burst serializes on the bus
    assert b - a <= d.config.t_burst + 1


def test_contention_raises_latency():
    d = make_dram(channels=1, banks_per_channel=1)
    lat_first = d.access(0, 0)
    lat_queued = d.access(0, 0) - 0
    assert lat_queued > lat_first


def test_min_latency_matches_row_hit():
    d = make_dram()
    d.access(0, 0)
    cfg = d.config
    same_row = cfg.channels * cfg.banks_per_channel * 64
    t = d.access(10_000, same_row) - 10_000
    assert t == d.min_latency()


def test_writes_counted():
    d = make_dram()
    d.access(0, 0, is_write=True)
    assert d.stats["writes"] == 1 and d.stats["reads"] == 0
