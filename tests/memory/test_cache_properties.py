"""Property-based tests (hypothesis) for the cache model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import Cache, CacheConfig
from repro.stats.counters import Stats


class FixedLatencyBackend:
    def __init__(self, latency=50):
        self.latency = latency
        self.accesses = 0

    def access(self, now, line_addr, is_write=False, requestor=0):
        self.accesses += 1
        return now + self.latency


def make_cache(size=2048, assoc=4, mshrs=8):
    be = FixedLatencyBackend()
    return Cache(CacheConfig(name="c", size_bytes=size, assoc=assoc, latency=2,
                             mshrs=mshrs), be, Stats("c")), be


addr_strategy = st.integers(min_value=0, max_value=255).map(lambda x: x * 64)
trace_strategy = st.lists(st.tuples(addr_strategy, st.booleans()),
                          min_size=1, max_size=300)


@given(trace_strategy)
@settings(max_examples=50, deadline=None)
def test_capacity_never_exceeded(trace):
    cache, _ = make_cache()
    now = 0
    max_lines = cache.num_sets * cache.config.assoc
    for addr, is_write in trace:
        now += 3
        r = cache.access(now, addr, is_write)
        assert cache.resident_lines() <= max_lines


@given(trace_strategy)
@settings(max_examples=50, deadline=None)
def test_completion_never_before_request(trace):
    cache, _ = make_cache()
    now = 0
    for addr, is_write in trace:
        now += 3
        r = cache.access(now, addr, is_write)
        if r.accepted:
            assert r.complete_at >= now
        else:
            assert r.retry_at is not None


@given(trace_strategy)
@settings(max_examples=50, deadline=None)
def test_second_access_to_same_line_is_hit(trace):
    """After any accepted access settles, an immediate re-access hits."""
    cache, _ = make_cache()
    now = 0
    for addr, is_write in trace:
        now += 3
        r = cache.access(now, addr, is_write)
        if r.accepted:
            r2 = cache.access(max(now + 1, r.complete_at), addr)
            assert r2.hit


@given(trace_strategy)
@settings(max_examples=30, deadline=None)
def test_hits_plus_misses_equals_accepted_accesses(trace):
    cache, _ = make_cache()
    now = 0
    accepted = 0
    for addr, is_write in trace:
        now += 3
        if cache.access(now, addr, is_write).accepted:
            accepted += 1
    s = cache.stats
    assert s["hits"] + s["under_fill_hits"] + s["misses"] == accepted


@given(trace_strategy, st.integers(min_value=1, max_value=6))
@settings(max_examples=30, deadline=None)
def test_bigger_cache_never_misses_more(trace, sets_pow):
    """Miss count is monotone non-increasing in capacity for LRU (inclusion
    property on a per-set basis holds because sets partition lines)."""
    small, _ = make_cache(size=1024, assoc=2)
    big, _ = make_cache(size=1024 * 8, assoc=16)
    now = 0
    for addr, is_write in trace:
        now += 3
        small.access(now, addr, is_write)
        big.access(now, addr, is_write)
    # allowance: requests the small cache *rejected* (MSHRs exhausted or all
    # ways in flight) never became misses there but do in the big cache
    rejected = small.stats["mshr_full"] + small.stats["set_busy"]
    assert big.stats["misses"] <= small.stats["misses"] + rejected


@given(st.lists(addr_strategy, min_size=1, max_size=100))
@settings(max_examples=30, deadline=None)
def test_pinned_lines_survive_any_traffic(addrs):
    cache, _ = make_cache(size=1024, assoc=2)
    pinned_addr = 0x10000
    cache.warm(pinned_addr, is_reg=True, pin=1)
    now = 0
    for addr in addrs:
        now += 3
        # avoid the pinned line's own set being 100% pinned-traffic
        cache.access(now, addr)
    # the pinned line survives unless a forced eviction was required
    if cache.stats["forced_pinned_evictions"] == 0:
        assert cache.contains(pinned_addr)
