"""Tests for the register-system energy model."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import build_gather_core  # noqa: E402

from repro.area.energy import (  # noqa: E402
    banked_access_energy,
    banked_run_energy,
    energy_from_stats,
    fill_spill_energy,
    virec_access_energy,
    virec_run_energy,
)
from repro.core.cgmt import BankedCore  # noqa: E402
from repro.virec import ViReCConfig, ViReCCore  # noqa: E402


def test_banked_access_energy_grows_with_registers():
    assert banked_access_energy(512) > banked_access_energy(64)
    assert banked_access_energy(64, is_write=True) > banked_access_energy(64)


def test_virec_access_energy_grows_with_entries():
    assert virec_access_energy(128) > virec_access_energy(16)


def test_small_virec_cheaper_per_access_than_big_banked():
    """The energy argument for caching: a 32-entry CAM+FA access costs less
    than a 512-register banked access."""
    assert virec_access_energy(32) < banked_access_energy(512)


def test_fill_spill_dominates_access():
    assert fill_spill_energy() > 5 * virec_access_energy(64)


def test_run_energy_reports_sum():
    r = virec_run_energy(accesses=1000, fills=50, spills=40, cycles=5000,
                         rf_entries=32)
    assert r.total_pj == pytest.approx(r.access_pj + r.traffic_pj + r.leakage_pj)
    assert r.traffic_pj == pytest.approx(90 * fill_spill_energy())


def test_banked_run_has_no_traffic_energy():
    r = banked_run_energy(accesses=1000, cycles=5000, n_threads=8)
    assert r.traffic_pj == 0.0


def test_validation():
    with pytest.raises(ValueError):
        banked_access_energy(0)
    with pytest.raises(ValueError):
        virec_access_energy(0)
    with pytest.raises(ValueError):
        energy_from_stats(None, "gpu", 8)


def test_energy_from_real_runs_virec_wins_at_low_contention():
    """At 100% context (few fills), ViReC's small structure beats the big
    banked RF on register-system energy; leakage of 512 idle registers is
    the banked design's problem."""
    banked, *_ = build_gather_core(BankedCore, n_threads=8, n=128)
    bs = banked.run()
    virec, *_ = build_gather_core(ViReCCore, n_threads=8, n=128,
                                  virec=ViReCConfig(rf_size=56))
    vs = virec.run()
    be = energy_from_stats(banked.stats, "banked", n_threads=8)
    ve = energy_from_stats(virec.stats, "virec", n_threads=8, rf_entries=56)
    assert ve.total_pj < be.total_pj
    # but ViReC pays traffic energy the banked design does not
    assert ve.traffic_pj > 0 and be.traffic_pj == 0
