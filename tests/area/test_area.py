"""Tests for the area/delay model against the paper's Section 6.2 numbers."""

import pytest

from repro.area import (
    area_table,
    banked_core_area,
    banked_rf_area,
    inorder_core_area,
    ooo_core_area,
    rf_delay_ns,
    virec_breakdown,
    virec_core_area,
    virec_rf_area,
)


def test_banked_endpoints_match_paper():
    """Banked core: 2.8-3.9 mm² at 8-16 threads (Section 6.2)."""
    assert banked_core_area(8) == pytest.approx(2.8, abs=0.1)
    assert banked_core_area(16) == pytest.approx(3.9, abs=0.1)


def test_virec_20pct_overhead_at_64_entries():
    """ViReC with 8 regs/thread x 8 threads ~ 1.7 mm², +20% over baseline."""
    area = virec_core_area(64)
    base = inorder_core_area()
    assert area == pytest.approx(1.7, abs=0.1)
    assert (area - base) / base == pytest.approx(0.20, abs=0.08)


def test_virec_saves_40pct_vs_banked():
    """Headline: up to 40% area savings over a banked design."""
    saving = 1 - virec_core_area(64) / banked_core_area(8)
    assert saving == pytest.approx(0.40, abs=0.05)


def test_ooo_ratio():
    assert ooo_core_area() / inorder_core_area() == pytest.approx(19.1)


def test_virec_grows_faster_and_crosses_banked():
    """Figure 14: fully-associative storage of complete contexts costs more
    than banking them."""
    assert virec_core_area(64) < banked_core_area(8)
    assert virec_core_area(512) > banked_core_area(8)
    # monotone superlinear growth
    deltas = [virec_rf_area(n * 2) - virec_rf_area(n) for n in (32, 64, 128, 256)]
    assert all(b > a for a, b in zip(deltas, deltas[1:]))


def test_banked_linear_in_banks():
    d1 = banked_rf_area(128) - banked_rf_area(64)
    d2 = banked_rf_area(1024) - banked_rf_area(960)
    assert d1 == pytest.approx(d2)


def test_delay_matches_section_62():
    assert rf_delay_ns("baseline") == pytest.approx(0.22)
    assert rf_delay_ns("virec", 80) == pytest.approx(0.24, abs=0.005)
    # ~10% overhead at 80 entries, equal to a banked core
    assert rf_delay_ns("virec", 80) == pytest.approx(rf_delay_ns("banked"), abs=0.005)
    # starts lower, grows faster
    assert rf_delay_ns("virec", 24) < rf_delay_ns("banked")
    assert rf_delay_ns("virec", 200) > rf_delay_ns("banked")


def test_breakdown_sums_and_rollback_small():
    b = virec_breakdown(64)
    assert b["total_mm2"] == pytest.approx(virec_rf_area(64))
    # "rollback queue and other VRMU logic constitute less than 10% of the RF"
    assert b["rollback_and_logic_mm2"] <= 0.11 * (b["data_array_mm2"] + b["tag_store_mm2"])


def test_area_table_shape():
    rows = area_table(max_threads=16)
    assert [r["threads"] for r in rows] == [1, 2, 4, 8, 16]
    for row in rows:
        assert row["virec_8_regs_mm2"] < row["banked_mm2"]


def test_invalid_inputs():
    with pytest.raises(ValueError):
        banked_rf_area(-1)
    with pytest.raises(ValueError):
        virec_rf_area(-5)
    with pytest.raises(ValueError):
        banked_core_area(0)
    with pytest.raises(ValueError):
        rf_delay_ns("gpu")
