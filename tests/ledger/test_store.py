"""The run ledger store: schema, Recorder/LedgerReader, cache servability.

Real (tiny) simulation results exercise the round-trip so the pickled
blob path is tested against the actual RunResult shape; everything
longitudinal runs on cheap synthetic ``record_row`` entries.
"""

import json
import threading

import pytest

from repro.ledger import (LEDGER_ENV, LedgerReader, Recorder, SCHEMA_VERSION,
                          default_ledger_path, engine_key_of)
from repro.ledger import store as store_mod
from repro.ledger.store import counters_of, open_recorder
from repro.system import RunConfig, RunManifest, run_config
from repro.system.manifest import config_key

CFG = RunConfig(workload="gather", core_type="banked", n_threads=2,
                n_per_thread=4)


@pytest.fixture(scope="module")
def result():
    return run_config(CFG)


def digest_of(*results):
    m = RunManifest()
    for r in results:
        m.add(r)
    return m.results_digest


# -- paths and keys -----------------------------------------------------------
def test_default_ledger_path(monkeypatch, tmp_path):
    monkeypatch.delenv(LEDGER_ENV, raising=False)
    assert default_ledger_path() == "ledger.sqlite"
    assert default_ledger_path(str(tmp_path)) == str(tmp_path / "ledger.sqlite")
    monkeypatch.setenv(LEDGER_ENV, "/elsewhere/runs.db")
    assert default_ledger_path(str(tmp_path)) == "/elsewhere/runs.db"


def test_engine_key_of():
    assert engine_key_of(CFG) == "default"
    assert engine_key_of(CFG.with_(engine="compiled")) == "compiled"


# -- record_result round-trip -------------------------------------------------
def test_record_result_row_columns(tmp_path, result):
    path = str(tmp_path / "ledger.sqlite")
    with Recorder(path) as rec:
        rec.record_result(result, source="sweep")
    with LedgerReader(path) as reader:
        assert reader.count() == 1
        (row,) = reader.runs()
    assert row["digest"] == config_key(CFG)
    assert row["engine_key"] == "default"
    assert row["schema_version"] == SCHEMA_VERSION
    assert row["source"] == "sweep" and row["checked"] == 1
    assert row["workload"] == "gather" and row["core_type"] == "banked"
    assert row["cycles"] == result.cycles
    assert row["instructions"] == result.instructions
    assert json.loads(row["config_json"])["workload"] == "gather"
    counters = counters_of(row)
    assert counters and all(v for v in counters.values())


def test_lookup_result_round_trips_byte_identically(tmp_path, result):
    path = str(tmp_path / "ledger.sqlite")
    with Recorder(path) as rec:
        rec.record_result(result)
    with LedgerReader(path) as reader:
        cached = reader.lookup_result(config_key(CFG))
    assert cached is not None
    assert digest_of(cached) == digest_of(result)
    assert cached.stats.as_dict() == result.stats.as_dict()


def test_recording_does_not_disturb_the_caller(tmp_path):
    """record_result strips a *copy*: the live result keeps its handles."""
    r = run_config(CFG.with_(telemetry={"events": True, "interval": 50}))
    assert r.telemetry is not None
    with Recorder(str(tmp_path / "l.sqlite")) as rec:
        rec.record_result(r)
    assert r.telemetry is not None


# -- servability grading ------------------------------------------------------
def test_lookup_misses_on_unknown_digest(tmp_path):
    with LedgerReader(str(tmp_path / "l.sqlite")) as reader:
        assert reader.lookup_result("0" * 16) is None
        assert not reader.has_digest("0" * 16)


def test_flipped_engine_key_is_not_servable(tmp_path, result):
    path = str(tmp_path / "l.sqlite")
    with Recorder(path) as rec:
        rec.record_result(result)
    with LedgerReader(path) as reader:
        assert reader.lookup_result(config_key(CFG),
                                    engine_key="compiled") is None
        assert reader.has_digest(config_key(CFG))  # stale, not miss


def test_schema_version_bump_invalidates(tmp_path, result, monkeypatch):
    path = str(tmp_path / "l.sqlite")
    with Recorder(path) as rec:
        rec.record_result(result)
    monkeypatch.setattr(store_mod, "SCHEMA_VERSION", SCHEMA_VERSION + 1)
    with LedgerReader(path) as reader:
        assert reader.lookup_result(config_key(CFG)) is None
        assert reader.has_digest(config_key(CFG))


def test_unchecked_rows_not_served_to_checked_requests(tmp_path, result):
    path = str(tmp_path / "l.sqlite")
    with Recorder(path) as rec:
        rec.record_result(result, checked=False)
    with LedgerReader(path) as reader:
        assert reader.lookup_result(config_key(CFG)) is None
        assert reader.lookup_result(config_key(CFG),
                                    require_checked=False) is not None


def test_garbled_blob_treated_as_miss(tmp_path, result):
    path = str(tmp_path / "l.sqlite")
    with Recorder(path) as rec:
        rec.record_result(result)
        rec._conn.execute("UPDATE runs SET result_blob = ?", (b"garbage",))
        rec._conn.commit()
    with LedgerReader(path) as reader:
        assert reader.lookup_result(config_key(CFG)) is None


# -- record_row (fuzz/bench/synthetic) ---------------------------------------
def test_record_row_never_cache_servable(tmp_path):
    path = str(tmp_path / "l.sqlite")
    with Recorder(path) as rec:
        rec.record_row("bench:virec", source="bench", core_type="virec",
                       host_rate=12345.0, wall_s=0.5,
                       counters={"instr_per_s": 12345.0})
    with LedgerReader(path) as reader:
        assert reader.has_digest("bench:virec")
        assert reader.lookup_result("bench:virec") is None
        assert reader.lookup_result("bench:virec",
                                    require_checked=False) is None
        (row,) = reader.runs(digest="bench:virec")
    assert row["checked"] == 0 and row["source"] == "bench"
    assert row["host_rate"] == 12345.0


def test_rows_carry_provenance(tmp_path):
    path = str(tmp_path / "l.sqlite")
    with Recorder(path) as rec:
        rec.record_row("bench:x", source="bench")
    with LedgerReader(path) as reader:
        (row,) = reader.runs()
    assert row["created_utc"] and "T" in row["created_utc"]
    assert row["repro_version"]
    assert row["git_sha"] is not None  # '' outside a repo is fine


# -- queries ------------------------------------------------------------------
def test_runs_filters_and_order(tmp_path):
    path = str(tmp_path / "l.sqlite")
    with Recorder(path) as rec:
        for i in range(5):
            rec.record_row("synt:a", source="bench", cycles=100 + i)
        rec.record_row("synt:b", source="fuzz", cycles=7)
    with LedgerReader(path) as reader:
        rows = reader.runs(digest="synt:a")
        assert [r["cycles"] for r in rows] == [100, 101, 102, 103, 104]
        assert [r["cycles"] for r in reader.runs(digest="synt:a", limit=2)] \
            == [103, 104]  # newest two, still oldest-first
        assert len(reader.runs(source="fuzz")) == 1
        summaries = reader.digests()
    assert [s["digest"] for s in summaries] == ["synt:b", "synt:a"]
    assert summaries[1]["runs"] == 5


def test_counters_of_tolerates_garbage():
    assert counters_of({"counters_json": None}) == {}
    assert counters_of({"counters_json": "not json"}) == {}
    assert counters_of({"counters_json": "[1, 2]"}) == {}
    assert counters_of({"counters_json": '{"a": 1}'}) == {"a": 1}


# -- open_recorder resolution -------------------------------------------------
def test_open_recorder_resolution(tmp_path):
    assert open_recorder(None) == (None, False)
    path = str(tmp_path / "l.sqlite")
    rec, owns = open_recorder(path)
    assert owns and isinstance(rec, Recorder)
    rec.close()
    with Recorder(path) as existing:
        borrowed, owns = open_recorder(existing)
        assert borrowed is existing and not owns


def test_open_recorder_defers_to_cached_backend(tmp_path):
    from repro.ledger import CachedBackend
    path = str(tmp_path / "l.sqlite")
    backend = CachedBackend(path)
    try:
        assert open_recorder(path, backend) == (None, False)
    finally:
        backend.close()


# -- concurrency --------------------------------------------------------------
def test_concurrent_recorders_lose_no_rows(tmp_path):
    """WAL + append-only: many writers, no lost and no duplicated rows."""
    path = str(tmp_path / "l.sqlite")
    n_writers, n_rows = 4, 25
    errors = []

    def writer(k):
        try:
            with Recorder(path) as rec:
                for i in range(n_rows):
                    rec.record_row(f"synt:{k}", source="bench",
                                   cycles=k * 1000 + i)
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(k,))
               for k in range(n_writers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    with LedgerReader(path) as reader:
        assert reader.count() == n_writers * n_rows
        for k in range(n_writers):
            cycles = [r["cycles"] for r in reader.runs(digest=f"synt:{k}")]
            assert sorted(cycles) == [k * 1000 + i for i in range(n_rows)]
