"""``repro history`` analytics: trajectories, compare, regression check.

Everything runs on synthetic ``record_row`` entries — history consumes
plain row dicts, never blobs, so no simulation is needed here.
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.ledger import LedgerReader, Recorder
from repro.ledger.history import (check_history, compare_digests,
                                  history_series, render_check_text,
                                  render_compare_text, render_history_text,
                                  render_trajectory_text, trajectory)


def fill(path, digest, rates, source="sweep", **kw):
    with Recorder(path) as rec:
        for rate in rates:
            rec.record_row(digest, source=source, host_rate=rate, **kw)


@pytest.fixture
def ledger(tmp_path):
    return str(tmp_path / "ledger.sqlite")


# -- trajectory / series ------------------------------------------------------
def test_trajectory_series(ledger):
    fill(ledger, "synt:a", [100.0, None, 120.0], workload="gather",
         core_type="virec")
    with LedgerReader(ledger) as reader:
        traj = trajectory(reader, "synt:a")
    assert len(traj["rows"]) == 3
    assert traj["rates"] == [100.0, 120.0]  # None rows dropped from series


def test_history_series_skips_rateless_digests(ledger):
    fill(ledger, "synt:rated", [10.0, 11.0], workload="gather",
         core_type="virec")
    fill(ledger, "synt:bare", [None])
    with LedgerReader(ledger) as reader:
        series = history_series(reader)
    assert [s["digest"] for s in series] == ["synt:rated"]
    assert series[0]["label"] == "gather virec"
    assert series[0]["last_rate"] == 11.0


# -- compare ------------------------------------------------------------------
def test_compare_digests_deltas(ledger):
    with Recorder(ledger) as rec:
        rec.record_row("synt:a", source="sweep", cycles=1000,
                       counters={"rf_hits": 80, "only_a": 5})
        rec.record_row("synt:b", source="sweep", cycles=800,
                       counters={"rf_hits": 100})
    with LedgerReader(ledger) as reader:
        cmp = compare_digests(reader, "synt:a", "synt:b")
    assert cmp["found_a"] and cmp["found_b"]
    scalars = {r["name"]: r for r in cmp["scalars"]}
    assert scalars["cycles"]["delta"] == -200
    assert scalars["cycles"]["rel"] == pytest.approx(-0.2)
    counters = {r["name"]: r for r in cmp["counters"]}
    assert counters["rf_hits"]["delta"] == 20
    assert counters["only_a"]["b"] == 0  # absent on one side deltas vs 0
    text = render_compare_text(cmp)
    assert "synt:a" in text and "rf_hits" in text


def test_compare_missing_side(ledger):
    fill(ledger, "synt:a", [1.0])
    with LedgerReader(ledger) as reader:
        cmp = compare_digests(reader, "synt:a", "synt:nope")
    assert cmp["found_a"] and not cmp["found_b"]
    assert "no ledger rows" in render_compare_text(cmp)


# -- check --------------------------------------------------------------------
def test_check_stable_trajectory_is_ok(ledger):
    fill(ledger, "synt:a", [100.0, 102.0, 99.0, 101.0])
    with LedgerReader(ledger) as reader:
        chk = check_history(reader)
    assert chk["worst"] == "ok" and chk["checked"] == 1
    (finding,) = [f for f in chk["findings"] if f["kind"] == "host_rate"]
    assert finding["severity"] == "ok"


def test_check_detects_injected_regression(ledger):
    """The acceptance trajectory: >=3 good runs, then a big slowdown."""
    fill(ledger, "synt:a", [100.0, 101.0, 99.0, 30.0])
    with LedgerReader(ledger) as reader:
        chk = check_history(reader)
    assert chk["worst"] == "regression"
    worst = chk["findings"][0]              # sorted most-severe first
    assert worst["kind"] == "host_rate"
    assert worst["delta"] == pytest.approx(-0.7, abs=0.01)
    assert "[regression]" in render_check_text(chk)


def test_check_warn_band(ledger):
    # threshold 0.5: a 30% drop lands between threshold/2 and threshold
    fill(ledger, "synt:a", [100.0, 100.0, 100.0, 70.0])
    with LedgerReader(ledger) as reader:
        chk = check_history(reader)
    assert chk["worst"] == "warn"


def test_check_median_baseline_shrugs_off_one_outlier(ledger):
    # one noisy predecessor does not drag the median baseline down
    fill(ledger, "synt:a", [100.0, 5.0, 100.0, 100.0, 98.0])
    with LedgerReader(ledger) as reader:
        chk = check_history(reader)
    assert chk["worst"] == "ok"


def test_check_skips_short_trajectories(ledger):
    fill(ledger, "synt:a", [100.0, 30.0])  # only 2 rated rows
    with LedgerReader(ledger) as reader:
        chk = check_history(reader)
    assert chk["checked"] == 0 and chk["worst"] == "ok"
    with LedgerReader(ledger) as reader:
        chk = check_history(reader, min_runs=2)
    assert chk["worst"] == "regression"


def test_check_single_digest_filter(ledger):
    fill(ledger, "synt:good", [100.0, 100.0, 100.0])
    fill(ledger, "synt:bad", [100.0, 100.0, 100.0, 10.0])
    with LedgerReader(ledger) as reader:
        chk = check_history(reader, digest="synt:good")
    assert chk["worst"] == "ok" and chk["checked"] == 1


def test_determinism_alarm(ledger):
    """Same digest+engine+schema disagreeing on cycles: unconditional
    regression (the digest-determines-results contract broke)."""
    with Recorder(ledger) as rec:
        rec.record_row("synt:a", source="sweep", cycles=1000)
        rec.record_row("synt:a", source="sweep", cycles=1001)
    with LedgerReader(ledger) as reader:
        chk = check_history(reader)
    assert chk["worst"] == "regression"
    (finding,) = chk["findings"]
    assert finding["kind"] == "determinism"
    assert finding["cycles_seen"] == [1000, 1001]
    assert "determinism" in render_check_text(chk)


def test_differing_cycles_across_engines_is_fine(ledger):
    with Recorder(ledger) as rec:
        rec.record_row("synt:a", source="sweep", cycles=1000)
        rec.record_row("synt:a", source="sweep", cycles=1000,
                       engine_key="compiled")
    with LedgerReader(ledger) as reader:
        assert check_history(reader)["worst"] == "ok"


# -- renderers ----------------------------------------------------------------
def test_render_history_and_trajectory(ledger):
    fill(ledger, "synt:a", [100.0, 120.0, 90.0], workload="gather",
         core_type="virec", cycles=5000)
    with LedgerReader(ledger) as reader:
        overview = render_history_text(reader)
        traj = render_trajectory_text(trajectory(reader, "synt:a"))
    assert "synt:a" in overview and "3" in overview
    assert "gather" in overview
    assert "3 runs" in traj and "5000" in traj


# -- the CLI verb -------------------------------------------------------------
def test_cli_history_missing_ledger_hints(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert cli_main(["history"]) == 2
    err = capsys.readouterr().err
    assert "no run ledger" in err and "repro sweep" in err


def test_cli_history_views(ledger, capsys):
    fill(ledger, "synt:a", [100.0, 101.0, 99.0], workload="gather",
         core_type="virec")
    fill(ledger, "synt:b", [50.0])

    assert cli_main(["history", "--ledger", ledger]) == 0
    assert "synt:a" in capsys.readouterr().out

    assert cli_main(["history", "--ledger", ledger,
                     "--digest", "synt:a"]) == 0
    assert "3 runs" in capsys.readouterr().out

    assert cli_main(["history", "--ledger", ledger, "--digest",
                     "synt:nope"]) == 2

    assert cli_main(["history", "--ledger", ledger,
                     "--compare", "synt:a", "synt:b"]) == 0
    assert "synt:b" in capsys.readouterr().out

    assert cli_main(["history", "--ledger", ledger, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert {d["digest"] for d in payload} == {"synt:a", "synt:b"}


def test_cli_history_check_exit_codes(ledger, capsys):
    fill(ledger, "synt:a", [100.0, 101.0, 99.0])
    assert cli_main(["history", "--ledger", ledger, "--check"]) == 0
    capsys.readouterr()
    fill(ledger, "synt:a", [20.0])          # inject the slowdown
    assert cli_main(["history", "--ledger", ledger, "--check"]) == 4
    assert "regression" in capsys.readouterr().out
    assert cli_main(["history", "--ledger", ledger, "--check",
                     "--json"]) == 4
