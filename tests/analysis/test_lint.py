"""The ``repro lint`` determinism linter: rules, suppression, output, CLI."""

import json
from pathlib import Path

import pytest

from repro.analysis import lint as L
from repro.cli import main as cli_main

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


def ids(findings, include_suppressed=False):
    return sorted({f.rule.id for f in findings
                   if include_suppressed or not f.suppressed})


# -- rule detection ----------------------------------------------------------
def test_vrc001_unseeded_random():
    hits = L.lint_source(
        "import random\n"
        "r = random.Random()\n"
        "x = random.randint(0, 7)\n")
    assert ids(hits) == ["VRC001"]
    assert len(hits) == 2


def test_vrc001_numpy_global_state():
    hits = L.lint_source(
        "import numpy as np\n"
        "a = np.random.rand(4)\n"
        "rng = np.random.default_rng()\n")
    assert ids(hits) == ["VRC001"]
    assert len(hits) == 2


def test_vrc001_seeded_random_ok():
    hits = L.lint_source(
        "import random\n"
        "import numpy as np\n"
        "r = random.Random(7)\n"
        "rng = np.random.default_rng(7)\n"
        "x = r.randint(0, 7)\n")
    assert hits == []


def test_vrc002_wall_clock():
    hits = L.lint_source(
        "import time\n"
        "t = time.time()\n"
        "p = time.perf_counter()\n", path="src/repro/core/base.py")
    assert ids(hits) == ["VRC002"]
    assert len(hits) == 2


def test_vrc002_exempt_in_telemetry_and_profiler():
    src = "import time\nt = time.perf_counter()\n"
    assert L.lint_source(src, path="src/repro/telemetry/session.py") == []
    assert L.lint_source(src, path="src/repro/profiler.py") == []
    assert L.lint_source(src, path="tests/system/test_sweeps.py") == []


def test_vrc003_set_iteration():
    hits = L.lint_source(
        "for x in {1, 2, 3}:\n"
        "    pass\n"
        "ys = [y for y in set(range(4))]\n"
        "zs = list(set(range(4)))\n"          # bare conversion: allowed
        "for z in list(set(range(4))):\n"     # iterating it: flagged
        "    pass\n")
    assert ids(hits) == ["VRC003"]
    assert len(hits) == 3


def test_vrc003_sorted_set_ok():
    hits = L.lint_source(
        "for x in sorted({3, 1, 2}):\n"
        "    pass\n"
        "for y in sorted(set(range(4))):\n"
        "    pass\n")
    assert hits == []


def test_vrc004_bare_assert():
    hits = L.lint_source("def f(x):\n    assert x > 0, 'bad'\n    return x\n")
    assert ids(hits) == ["VRC004"]


def test_vrc005_mutable_defaults():
    hits = L.lint_source(
        "def f(a=[], b={}, c=dict(), *, d=set()):\n"
        "    return a, b, c, d\n"
        "def g(a=None, b=(), c=0):\n"
        "    return a, b, c\n")
    assert ids(hits) == ["VRC005"]
    assert len(hits) == 4


def test_syntax_error_reported_not_raised():
    hits = L.lint_source("def f(:\n")
    assert len(hits) == 1
    assert hits[0].rule.id == "VRC000"


# -- suppression -------------------------------------------------------------
@pytest.mark.parametrize("comment", ["# noqa: VRC004",
                                     "# lint: ignore[VRC004]",
                                     "# noqa"])
def test_inline_suppression(comment):
    hits = L.lint_source(f"assert True  {comment}\n")
    assert len(hits) == 1
    assert hits[0].suppressed


def test_suppression_is_rule_specific():
    hits = L.lint_source("assert True  # noqa: VRC001\n")
    assert len(hits) == 1
    assert not hits[0].suppressed


def test_suppressed_findings_do_not_fail():
    hits = L.lint_source("assert True  # lint: ignore[VRC004]\n")
    assert L.exit_code(hits, fail_on="error") == 0


# -- selection and gating ----------------------------------------------------
BAD = ("import random, time\n"
       "def f(x=[]):\n"
       "    assert x\n"
       "    for s in {1, 2}:\n"
       "        pass\n"
       "    return random.random() + time.time()\n")


def test_select_and_ignore():
    assert ids(L.lint_source(BAD, select=["VRC001"])) == ["VRC001"]
    assert "VRC004" not in ids(L.lint_source(BAD, ignore=["VRC004"]))
    with pytest.raises(ValueError, match="unknown lint rule"):
        L.lint_source(BAD, select=["VRC999"])


def test_exit_code_thresholds():
    warning_only = L.lint_source("for x in {1, 2}:\n    pass\n")
    assert ids(warning_only) == ["VRC003"]
    assert L.exit_code(warning_only, fail_on="error") == 0
    assert L.exit_code(warning_only, fail_on="warning") == 1
    assert L.exit_code(warning_only, fail_on="none") == 0
    errors = L.lint_source("assert True\n")
    assert L.exit_code(errors, fail_on="error") == 1


# -- output formats ----------------------------------------------------------
def test_json_render():
    payload = json.loads(L.render_json(L.lint_source(BAD, path="bad.py")))
    assert payload["summary"]["error"] >= 4
    assert payload["summary"]["warning"] == 1
    rules = {f["rule"] for f in payload["findings"]}
    assert {"VRC001", "VRC002", "VRC003", "VRC004", "VRC005"} <= rules
    first = payload["findings"][0]
    assert {"rule", "severity", "path", "line", "col",
            "message", "suppressed"} <= set(first)


def test_text_render_mentions_rule_and_location():
    text = L.render_text(L.lint_source("assert True\n", path="mod.py"))
    assert "mod.py:1:1: VRC004 [error]" in text
    assert "finding(s)" in text


# -- the CLI verb ------------------------------------------------------------
def test_cli_lint_exit_codes(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD)
    assert cli_main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "VRC001" in out and "VRC004" in out

    clean = tmp_path / "clean.py"
    clean.write_text("def f(a=None):\n    return a\n")
    assert cli_main(["lint", str(clean)]) == 0


def test_cli_lint_json_format(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD)
    assert cli_main(["lint", str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["total"] >= 5


def test_cli_lint_unknown_rule_is_usage_error(tmp_path, capsys):
    f = tmp_path / "x.py"
    f.write_text("pass\n")
    assert cli_main(["lint", str(f), "--select", "VRC999"]) == 2


# -- the tree itself ---------------------------------------------------------
def test_src_tree_is_clean():
    """`repro lint src/` must stay clean (the CI gate); the only allowed
    suppressions are the documented host-side watchdog reads and the
    worker pickling probes."""
    findings = L.lint_paths([str(SRC_DIR)])
    active = [f for f in findings if not f.suppressed]
    assert active == [], "\n".join(f.render() for f in active)
    suppressed = [f for f in findings if f.suppressed]
    assert all("sweeps.py" in f.path or "exec/workers.py" in f.path
               for f in suppressed)


def test_vrc006_print_in_library():
    hits = L.lint_source(
        "def f(x):\n"
        "    print('debug', x)\n"
        "    return x\n", path="src/repro/core/base.py")
    assert ids(hits) == ["VRC006"]
    assert len(hits) == 1


def test_vrc006_exempt_surfaces():
    src = "print('hello')\n"
    # user-facing surfaces and non-library trees may print directly
    for path in ("src/repro/cli.py", "src/repro/stats/reporting.py",
                 "src/repro/system/monitor.py", "experiments/common.py",
                 "tests/system/test_cli.py", "benchmarks/bench_x.py"):
        assert L.lint_source(src, path=path) == [], path


def test_vrc006_method_named_print_ok():
    # only the bare builtin is flagged; obj.print() is someone's API
    hits = L.lint_source(
        "def f(w):\n"
        "    w.print('fine')\n", path="src/repro/core/base.py")
    assert hits == []


def test_vrc006_suppressible():
    hits = L.lint_source(
        "print('meant it')  # noqa: VRC006\n",
        path="src/repro/core/base.py")
    assert len(hits) == 1
    assert hits[0].suppressed


def test_vrc007_bare_except():
    hits = L.lint_source(
        "try:\n"
        "    run()\n"
        "except:\n"
        "    pass\n", path="src/repro/core/base.py")
    assert ids(hits) == ["VRC007"]


def test_vrc007_except_exception_and_tuple():
    hits = L.lint_source(
        "try:\n"
        "    run()\n"
        "except Exception:\n"
        "    log()\n"
        "try:\n"
        "    run()\n"
        "except (ValueError, BaseException):\n"
        "    log()\n", path="src/repro/system/sweeps.py")
    assert ids(hits) == ["VRC007"]
    assert len(hits) == 2


def test_vrc007_reraise_ok():
    # a handler that re-raises (even conditionally) propagates the failure
    hits = L.lint_source(
        "try:\n"
        "    run()\n"
        "except Exception as exc:\n"
        "    if transient(exc):\n"
        "        raise\n"
        "    note(exc)\n", path="src/repro/core/base.py")
    assert hits == []


def test_vrc007_specific_types_ok():
    hits = L.lint_source(
        "try:\n"
        "    run()\n"
        "except (OSError, ValueError):\n"
        "    pass\n", path="src/repro/core/base.py")
    assert hits == []


def test_vrc007_exempt_trees_and_suppression():
    src = "try:\n    run()\nexcept Exception:\n    pass\n"
    for path in ("tests/system/test_x.py", "experiments/common.py",
                 "scripts/tool.py"):
        assert L.lint_source(src, path=path) == [], path
    hits = L.lint_source(
        "try:\n"
        "    run()\n"
        "except Exception:  # noqa: VRC007\n"
        "    pass\n", path="src/repro/exec/workers.py")
    assert len(hits) == 1
    assert hits[0].suppressed


def test_vrc008_unregistered_counter_key():
    hits = L.lint_source(
        "class C:\n"
        "    def f(self):\n"
        "        self.stats.inc('cyclez')\n"          # typo: flagged
        "        self.stats.set('hitz', 3)\n"         # typo: flagged
        "        self.stats.max('cycles', 7)\n"       # registered: ok
        "        core_stats.inc('hits')\n"            # registered: ok
        "        self.registry.inc('whatever')\n"     # not a Stats tree
        "        self.stats.inc(key)\n",              # dynamic key: ok
        path="src/repro/core/base.py")
    assert ids(hits) == ["VRC008"]
    assert len(hits) == 2
    assert "cyclez" in hits[0].message


def test_vrc008_child_chain_receiver():
    hits = L.lint_source(
        "self.stats.child('cycle_causes').set('dataflw', 1)\n",
        path="src/repro/core/ooo.py")
    assert ids(hits) == ["VRC008"]
    ok = L.lint_source(
        "self.stats.child('cycle_causes').set('dataflow', 1)\n",
        path="src/repro/core/ooo.py")
    assert ok == []


def test_vrc008_exempt_trees_and_suppression():
    src = "self.stats.inc('scratch_counter')\n"
    for path in ("tests/core/test_x.py", "benchmarks/bench_x.py",
                 "scripts/tool.py"):
        assert L.lint_source(src, path=path) == [], path
    hits = L.lint_source(
        "self.stats.inc('scratch_counter')  # noqa: VRC008\n",
        path="src/repro/core/base.py")
    assert len(hits) == 1
    assert hits[0].suppressed


def test_vrc008_registry_agrees_with_the_tree():
    """Every literal counter key in src/ is registered (the CI gate), and
    is_registered mirrors membership."""
    from repro.stats.names import COUNTER_NAMES, is_registered
    findings = [f for f in L.lint_paths([str(SRC_DIR)])
                if f.rule.id == "VRC008" and not f.suppressed]
    assert findings == [], "\n".join(f.render() for f in findings)
    assert is_registered("cycles")
    assert not is_registered("cyclez")
    assert COUNTER_NAMES  # non-empty, frozen


# -- VRC009: ad-hoc ReplacementPolicy construction ---------------------------
def test_vrc009_direct_construction_flagged():
    hits = L.lint_source(
        "from repro.virec.policies import LRC, DeadFirstLRC\n"
        "p = LRC(16)\n"
        "q = DeadFirstLRC(capacity)\n",
        path="src/repro/virec/vrmu.py")
    assert ids(hits) == ["VRC009"]
    assert len(hits) == 2
    assert "from_spec" in hits[0].message


def test_vrc009_attribute_leaf_flagged():
    hits = L.lint_source(
        "import repro.virec.policies as pol\n"
        "p = pol.PLRU(8)\n",
        path="src/repro/system/simulator.py")
    assert ids(hits) == ["VRC009"]


def test_vrc009_factory_and_unrelated_calls_ok():
    assert L.lint_source(
        "from repro.virec.policies import ReplacementPolicy, make_policy\n"
        "p = make_policy('lrc', 16)\n"
        "q = ReplacementPolicy.from_spec('dead-first', 16)\n"
        "r = LRCsomething(16)\n",
        path="src/repro/virec/vrmu.py") == []


def test_vrc009_exempt_trees_and_suppression():
    src = "p = LRC(16)\n"
    for path in ("tests/virec/test_x.py", "benchmarks/bench_x.py",
                 "src/repro/virec/policies.py"):
        assert L.lint_source(src, path=path) == [], path
    hits = L.lint_source("p = LRC(16)  # noqa: VRC009\n",
                         path="src/repro/virec/vrmu.py")
    assert len(hits) == 1 and hits[0].suppressed


def test_vrc009_library_tree_is_clean():
    """No ad-hoc policy construction anywhere in src/ (the CI gate)."""
    findings = [f for f in L.lint_paths([str(SRC_DIR)])
                if f.rule.id == "VRC009" and not f.suppressed]
    assert findings == [], "\n".join(f.render() for f in findings)


# -- VRC010: closures capturing InstrumentBus slot values --------------------
_VRC010_BAD = """
def factory(core):
    faults = core.bus.faults
    def step(thread):
        if faults is not None:
            faults.on_instruction(thread)
        return 1
    return step
"""

_VRC010_GOOD = """
def factory(core):
    def step(thread):
        f = core.bus.faults
        if f is not None:
            f.on_instruction(thread)
        return 1
    return step
"""


def test_vrc010_captured_slot_value_flagged():
    hits = L.lint_source(_VRC010_BAD, path="src/repro/isa/compiled.py")
    assert ids(hits) == ["VRC010"]
    assert len(hits) == 2              # both closure references flagged
    assert "bus.faults" in hits[0].message


def test_vrc010_per_call_read_ok():
    assert L.lint_source(_VRC010_GOOD,
                         path="src/repro/isa/compiled.py") == []


def test_vrc010_lambda_capture_flagged():
    hits = L.lint_source(
        "def factory(core):\n"
        "    profile = core.bus.profile\n"
        "    return lambda t: profile.on_commit(t)\n",
        path="src/repro/core/base.py")
    assert ids(hits) == ["VRC010"]


def test_vrc010_shadowed_name_ok():
    # the nested function rebinds the name: no capture, no staleness
    assert L.lint_source(
        "def factory(core):\n"
        "    profile = core.bus.profile\n"
        "    def step(thread, profile):\n"
        "        return profile\n"
        "    return step\n",
        path="src/repro/core/base.py") == []


def test_vrc010_non_bus_attribute_ok():
    # only bus-chained slot reads are rebindable; config.profile is not
    assert L.lint_source(
        "def factory(cfg):\n"
        "    profile = cfg.profile\n"
        "    def step(thread):\n"
        "        return profile\n"
        "    return step\n",
        path="src/repro/core/base.py") == []


def test_vrc010_exempt_trees_and_suppression():
    for path in ("tests/core/test_x.py", "benchmarks/bench_x.py"):
        assert L.lint_source(_VRC010_BAD, path=path) == [], path
    hits = L.lint_source(
        "def factory(core):\n"
        "    faults = core.bus.faults\n"
        "    def step(thread):\n"
        "        return faults  # noqa: VRC010\n"
        "    return step\n",
        path="src/repro/isa/compiled.py")
    assert len(hits) == 1 and hits[0].suppressed


def test_vrc010_library_tree_is_clean():
    """No compiled-engine closure freezes a bus slot (the CI gate — the
    threaded-code engine contract of repro/isa/compiled.py)."""
    findings = [f for f in L.lint_paths([str(SRC_DIR)])
                if f.rule.id == "VRC010" and not f.suppressed]
    assert findings == [], "\n".join(f.render() for f in findings)


# -- VRC011: raw sqlite3.connect outside the ledger package ------------------
def test_vrc011_raw_connect_flagged():
    hits = L.lint_source(
        "import sqlite3\n"
        "conn = sqlite3.connect('results.db')\n",
        path="src/repro/system/sweeps.py")
    assert ids(hits) == ["VRC011"]
    assert hits[0].rule.severity == "error"
    assert "Recorder/LedgerReader" in hits[0].message


def test_vrc011_aliased_module_flagged():
    hits = L.lint_source(
        "import sqlite3 as sql3\n"
        "conn = sql3.sqlite3.connect('x.db')\n",
        path="src/repro/core/base.py")
    # only the dotted leaf module matters: <...>.sqlite3.connect is flagged
    assert ids(hits) == ["VRC011"]


def test_vrc011_other_connects_ok():
    assert L.lint_source(
        "conn = server.connect('host')\n"
        "c = sqlite3.Connection('x.db')\n",
        path="src/repro/core/base.py") == []


def test_vrc011_ledger_package_exempt():
    src = "import sqlite3\nconn = sqlite3.connect(path)\n"
    for path in ("src/repro/ledger/store.py",
                 "tests/ledger/test_store.py",
                 "benchmarks/bench_x.py",
                 "scripts/inspect_db.py"):
        assert L.lint_source(src, path=path) == [], path


def test_vrc011_suppressible():
    hits = L.lint_source(
        "conn = sqlite3.connect(p)  # noqa: VRC011\n",
        path="src/repro/system/sweeps.py")
    assert len(hits) == 1 and hits[0].suppressed


def test_vrc011_library_tree_is_clean():
    """All ledger access in src/ goes through the Recorder/LedgerReader
    API (the CI gate)."""
    findings = [f for f in L.lint_paths([str(SRC_DIR)])
                if f.rule.id == "VRC011" and not f.suppressed]
    assert findings == [], "\n".join(f.render() for f in findings)
