"""Backward liveness: per-op facts, annotation caching, and dynamic
soundness of the dead/last-use hints against the functional simulator.

The soundness property (acceptance-critical): if the static analysis
marks a register dead at an op (``kill_flats``), then on *any* dynamic
execution trace that register is never read again before being
redefined.  Violations would let the dead-hint replacement policies
corrupt architectural state, so this is checked on every builtin kernel
and on 100+ fixed-seed fuzz programs.
"""

import pytest

from repro import workloads
from repro.analysis.dataflow import (
    FLAGS_FLAT,
    annotate,
    compute_liveness,
)
from repro.isa import assemble
from repro.isa.decoded import DecodedProgram
from repro.isa.func_sim import FunctionalSimulator

SRC = """
start:
    mov  x2, #4
    mov  x3, #0
    mov  x4, #9
loop:
    add  x3, x3, x4
    cmp  x3, x2
    b.lt loop
    add  x5, x3, #1
    halt
"""


def test_per_op_facts():
    prog = assemble(SRC)
    res = compute_liveness(prog)
    # pc 0: defines x2, live through the loop (cmp at pc 4 reads it)
    ol0 = res.at(0)
    assert ol0.defs == frozenset({2})
    assert 2 in ol0.live_after and not ol0.kill
    # pc 4 (cmp): defines flags, read by b.lt -> flags live after
    ol4 = res.at(4)
    assert FLAGS_FLAT in ol4.defs and FLAGS_FLAT in ol4.live_after
    # pc 6 (add x5, x3, #1): x3's final read, x5 never read -> both dead
    ol6 = res.at(6)
    assert ol6.last_use == frozenset({3})
    assert ol6.dead_dests == frozenset({5})
    assert ol6.kill == frozenset({3, 5})
    # pc 7 (halt): nothing live after the program stops
    assert res.at(7).live_after == frozenset()


def test_loop_carried_values_stay_live():
    prog = assemble(SRC)
    res = compute_liveness(prog)
    loop_block = res.cfg.block_at[3]
    # x2 (bound), x3 (acc), x4 (step) are live around the loop
    assert {2, 3, 4} <= res.block_live_in[loop_block]


def test_unreachable_ops_have_none_facts_empty_hints():
    prog = assemble("start:\n    b join\n    mov x3, #1\njoin:\n    halt\n")
    res = compute_liveness(prog)
    assert res.at(1) is None
    dprog = DecodedProgram.of(prog, 64)
    annotate(dprog)
    assert dprog[1].kill_flats == ()
    assert dprog[1].last_use_flats == ()
    assert dprog[1].dead_dest_flats == ()


def test_annotate_caches_and_is_idempotent():
    prog = assemble(SRC)
    dprog = DecodedProgram.of(prog, 64)
    res1 = annotate(dprog)
    res2 = annotate(dprog)
    assert res1 is res2 and dprog.liveness is res1
    assert dprog[6].kill_flats == (3, 5)
    assert dprog[6].last_use_flats == (3,)
    assert dprog[6].dead_dest_flats == (5,)


def test_hints_exclude_flags_pseudo_register():
    prog = assemble(SRC)
    dprog = DecodedProgram.of(prog, 64)
    annotate(dprog)
    for op in dprog.ops:
        for flats in (op.kill_flats, op.last_use_flats, op.dead_dest_flats):
            assert all(f < FLAGS_FLAT for f in flats)


def test_max_pressure_positive_on_loop_block():
    prog = assemble(SRC)
    res = compute_liveness(prog)
    loop_block = res.cfg.block_at[3]
    assert res.max_pressure(loop_block) >= 3


# -- dynamic soundness oracle ------------------------------------------------

def _assert_hints_sound(program, init_regs, max_instructions=200_000):
    """Step the functional simulator; a flat marked dead at a committed op
    must never be read again before a redefinition."""
    dprog = DecodedProgram.of(program, 64)
    annotate(dprog)
    sim = FunctionalSimulator(program, max_instructions=max_instructions)
    for reg, value in init_regs.items():
        sim.state.write(reg, value)
    dead = set()
    while not sim.state.halted:
        pc = sim.state.pc
        inst = program[pc]
        read = {r.flat for r in inst.srcs} & dead
        assert not read, (f"{program.name}: pc {pc} reads "
                          f"statically-dead register flat(s) {sorted(read)}")
        dead -= {r.flat for r in inst.dests}
        alive = sim.step()
        dead |= set(dprog[pc].kill_flats)
        if not alive:
            break
        assert sim.instructions_executed <= max_instructions, \
            f"{program.name}: runaway program"


@pytest.mark.parametrize("name", sorted(set(workloads.names()) - {"fuzz"}))
def test_soundness_on_builtin_kernels(name):
    inst = workloads.get(name).build(n_threads=4, n_per_thread=16)
    for tid in range(inst.n_threads):
        _assert_hints_sound(inst.program, inst.init_regs[tid])


def test_soundness_on_fuzz_programs():
    """100 fixed-seed generated programs, every thread's trace."""
    from repro.fuzz.generator import sample_spec

    checked = 0
    for index in range(100):
        spec = sample_spec(run_seed=1234, index=index)
        inst = workloads.get("fuzz").build(
            n_threads=2, n_per_thread=8, gen=spec.as_dict())
        for tid in range(inst.n_threads):
            _assert_hints_sound(inst.program, inst.init_regs[tid])
        checked += 1
    assert checked == 100
