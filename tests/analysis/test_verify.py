"""The kernel verifier behind ``repro check``: findings, pressure
tables, report rendering, and the CLI verb's exit codes."""

import dataclasses
import json

from repro import workloads
from repro.analysis.dataflow import verify_program
from repro.cli import main
from repro.isa import assemble

CLEAN_SRC = """
start:
    mov  x2, #4
    mov  x3, #0
loop:
    add  x3, x3, #1
    cmp  x3, x2
    b.lt loop
    halt
"""

CORRUPT_SRC = """
start:
    add  x2, x3, x4
    mov  x6, #7
    halt
dead:
    add  x6, x6, x6
    halt
"""


def test_clean_program_ok():
    report = verify_program(assemble(CLEAN_SRC))
    assert report.ok and not report.findings
    assert report.n_reachable == report.n_blocks == 3
    assert len(report.pressure) == 3


def test_read_uninitialized_and_unreachable():
    report = verify_program(assemble(CORRUPT_SRC))
    kinds = sorted(f.kind for f in report.findings)
    assert kinds == ["read-uninitialized", "read-uninitialized",
                     "unreachable-code"]
    assert not report.ok
    assert len(report.errors) == 2 and len(report.warnings) == 1
    # x3/x4 at pc 0; the unreachable block starts at pc 3
    assert {f.pc for f in report.errors} == {0}
    assert report.warnings[0].pc == 3


def test_init_flats_suppress_uninitialized_reads():
    report = verify_program(assemble(CORRUPT_SRC), init_flats={3, 4})
    assert not report.errors and len(report.warnings) == 1


def test_uninitialized_flags_read():
    prog = assemble("start:\n    b.lt start\n    halt\n")
    report = verify_program(prog)
    assert any(f.kind == "read-uninitialized" and "flags" in f.message
               for f in report.findings)


def test_write_on_one_path_only_is_flagged():
    src = """
start:
    mov  x2, #1
    cmp  x2, x0
    b.lt join
    mov  x3, #5
join:
    add  x4, x3, #1
    halt
"""
    report = verify_program(src_prog := assemble(src), init_flats={0})
    assert any(f.kind == "read-uninitialized" and "x3" in f.message
               for f in report.errors)
    assert len(src_prog) == 6


def test_bad_branch_target_and_fallthrough():
    prog = assemble(CLEAN_SRC)
    prog.instructions[4] = dataclasses.replace(prog.instructions[4],
                                               target=77)
    prog.instructions.pop()                   # drop the halt
    report = verify_program(prog)
    kinds = {f.kind for f in report.findings}
    assert "bad-branch-target" in kinds
    assert "fallthrough-end" in kinds


def test_pressure_table_counts():
    report = verify_program(assemble(CLEAN_SRC))
    loop_row = next(p for p in report.pressure if p.start == 2)
    assert loop_row.live_in == 2                # x2, x3
    assert loop_row.max_live >= 2
    assert loop_row.working_set == 2


def test_report_round_trips_to_json():
    report = verify_program(assemble(CORRUPT_SRC), name="corrupt")
    d = json.loads(json.dumps(report.as_dict()))
    assert d["name"] == "corrupt"
    assert d["errors"] == 2 and d["warnings"] == 1
    # pressure rows cover reachable blocks only (the dead block is skipped)
    assert len(d["findings"]) == 3 and len(d["pressure"]) == 1


def test_render_mentions_instruction_text():
    prog = assemble(CORRUPT_SRC)
    text = verify_program(prog, name="corrupt").render(program=prog)
    assert "corrupt:" in text and "add" in text
    assert "read-uninitialized" in text


# -- CLI verb ----------------------------------------------------------------

def test_cli_check_builtins_clean(capsys):
    assert main(["check"]) == 0
    out = capsys.readouterr().out
    assert "0 error(s)" in out.splitlines()[-1]


def test_cli_check_corrupt_asm_nonzero(tmp_path, capsys):
    path = tmp_path / "corrupt.asm"
    path.write_text(CORRUPT_SRC)
    assert main(["check", "--asm", str(path)]) == 1
    out = capsys.readouterr().out
    assert "read-uninitialized" in out


def test_cli_check_fail_on_thresholds(tmp_path, capsys):
    path = tmp_path / "warn_only.asm"
    path.write_text(CORRUPT_SRC)
    # zero-init downgrades the program to warning-only (unreachable block)
    argv = ["check", "--asm", str(path), "--assume-zero-init"]
    assert main(argv) == 0
    assert main(argv + ["--fail-on", "warning"]) == 1
    assert main(argv + ["--fail-on", "none"]) == 0
    capsys.readouterr()


def test_cli_check_json_and_pressure(capsys):
    assert main(["check", "gather", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert len(data) == 1 and data[0]["name"] == "gather"
    assert data[0]["pressure"]
    assert main(["check", "gather", "--pressure"]) == 0
    assert "working-set" in capsys.readouterr().out


def test_cli_check_unknown_workload(capsys):
    assert main(["check", "not-a-workload"]) == 2
    capsys.readouterr()


def test_every_builtin_kernel_verifies_clean():
    for name in workloads.names():
        inst = workloads.get(name).build(n_threads=4, n_per_thread=16)
        init = {r.flat for d in inst.init_regs for r in d}
        report = verify_program(inst.program, init_flats=init, name=name)
        assert report.ok and not report.warnings, \
            f"{name}: {[f.message for f in report.findings]}"
