"""CFG construction: leaders, edges, reachability, dominators, loops."""

import dataclasses

from repro.analysis.dataflow import backward_branch_spans, build_cfg
from repro.compiler.liveness import find_loops
from repro.isa import assemble

LOOP_SRC = """
start:
    mov  x2, #4
    mov  x3, #0
loop:
    add  x3, x3, #1
    cmp  x3, x2
    b.lt loop
    halt
"""

DIAMOND_SRC = """
start:
    mov  x2, #1
    cmp  x2, x0
    b.lt else_
    mov  x3, #1
    b    join
else_:
    mov  x3, #2
join:
    halt
"""

DEAD_CODE_SRC = """
start:
    b    join
    mov  x3, #1
join:
    halt
"""


def test_loop_blocks_and_edges():
    cfg = build_cfg(assemble(LOOP_SRC))
    # leaders: entry 0, branch target 2, post-branch 5
    assert [(b.start, b.end) for b in cfg.blocks] == [(0, 2), (2, 5), (5, 6)]
    assert cfg.blocks[0].succs == [1]
    # conditional: fallthrough first, then the taken edge
    assert cfg.blocks[1].succs == [2, 1]
    assert cfg.blocks[2].succs == []          # halt: no successors
    assert cfg.blocks[1].preds == [0, 1]
    assert cfg.block_at == [0, 0, 1, 1, 1, 2]
    assert not cfg.bad_targets and not cfg.falls_off_end


def test_loop_reachability_dominators_back_edges():
    cfg = build_cfg(assemble(LOOP_SRC))
    assert cfg.reachable == frozenset({0, 1, 2})
    dom = cfg.dominators()
    assert dom[0] == frozenset({0})
    assert dom[1] == frozenset({0, 1})
    assert dom[2] == frozenset({0, 1, 2})
    # the loop's backward branch: block 1 -> block 1 (self back edge)
    assert cfg.back_edges() == [(1, 1)]


def test_diamond_join_dominated_only_by_entry():
    cfg = build_cfg(assemble(DIAMOND_SRC))
    # blocks: [0,3) cond, [3,5) then, [5,6) else, [6,7) join
    assert len(cfg.blocks) == 4
    join = cfg.block_at[6]
    dom = cfg.dominators()
    # neither arm dominates the join
    assert dom[join] == frozenset({cfg.entry_block, join})
    assert sorted(cfg.blocks[join].preds) == [1, 2]
    assert cfg.back_edges() == []


def test_unreachable_block_detected():
    cfg = build_cfg(assemble(DEAD_CODE_SRC))
    dead = cfg.block_at[1]
    assert dead not in cfg.reachable
    assert cfg.block_at[0] in cfg.reachable
    assert cfg.block_at[2] in cfg.reachable
    # dominators only cover the reachable subgraph
    assert dead not in cfg.dominators()


def test_bad_branch_target_recorded_not_raised():
    prog = assemble(LOOP_SRC)
    bad = dataclasses.replace(prog.instructions[4], target=99)
    prog.instructions[4] = bad
    cfg = build_cfg(prog)
    assert (4, 99) in cfg.bad_targets
    # the bad edge contributes nothing; the fallthrough edge survives
    assert cfg.blocks[cfg.block_at[4]].succs == [cfg.block_at[5]]


def test_missing_halt_falls_off_end():
    prog = assemble("start:\n    mov x2, #1\n    add x3, x2, x2\n")
    cfg = build_cfg(prog)
    assert cfg.falls_off_end == [1]


def test_empty_program():
    prog = assemble("start:\n")
    cfg = build_cfg(prog)
    assert cfg.blocks == [] and cfg.reachable == frozenset()
    assert cfg.rpo() == [] and cfg.dominators() == {}


def test_backward_branch_spans_match_compiler_loops():
    for src in (LOOP_SRC, DIAMOND_SRC, DEAD_CODE_SRC):
        prog = assemble(src)
        spans = backward_branch_spans(prog)
        loops = find_loops(prog)
        assert spans == sorted((l.head, l.tail) for l in loops)
    assert backward_branch_spans(assemble(LOOP_SRC)) == [(2, 4)]
