"""Tests for the pipeline tracer."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import build_gather_core  # noqa: E402

from repro.core import BankedCore, PipelineTracer  # noqa: E402
from repro.core.trace import TraceRecord  # noqa: E402
from repro.virec import ViReCConfig, ViReCCore  # noqa: E402


def test_tracer_records_every_commit():
    core, *_ = build_gather_core(BankedCore, n_threads=2, n=16)
    tracer = PipelineTracer()
    core.tracer = tracer
    stats = core.run()
    assert len(tracer.records) == stats["instructions"]


def test_trace_timestamps_monotone_per_record():
    core, *_ = build_gather_core(BankedCore, n_threads=2, n=16)
    core.tracer = PipelineTracer()
    core.run()
    for r in core.tracer.records:
        assert r.t_decode <= r.t_issue <= r.t_ex_done <= r.t_data <= r.t_commit


def test_commit_order_is_globally_monotone():
    core, *_ = build_gather_core(BankedCore, n_threads=4, n=32)
    core.tracer = PipelineTracer()
    core.run()
    commits = [r.t_commit for r in core.tracer.records]
    assert commits == sorted(commits)


def test_mem_stalls_attributed_on_misses():
    core, *_ = build_gather_core(BankedCore, n_threads=1, n=16,
                                 mem_latency=200)
    core.tracer = PipelineTracer()
    core.run()
    summary = core.tracer.stall_summary()
    assert summary["mem_stall_cycles"] > 100
    assert any("mem+" in r.dominant_stall for r in core.tracer.records)


def test_virec_register_stalls_attributed():
    core, *_ = build_gather_core(ViReCCore, n_threads=4, n=32,
                                 virec=ViReCConfig(rf_size=12))
    core.tracer = PipelineTracer()
    core.run()
    assert core.tracer.stall_summary()["reg_stall_cycles"] > 0


def test_trace_formatting_and_limit():
    core, *_ = build_gather_core(BankedCore, n_threads=2, n=32)
    core.tracer = PipelineTracer(limit=10)
    stats = core.run()
    assert len(core.tracer.records) == 10
    assert core.tracer.dropped == stats["instructions"] - 10
    text = core.tracer.format()
    assert "overwritten" in text and "C@" in text
    assert len(core.tracer.format(last=3).splitlines()) == 4  # 3 + ring note


def test_trace_ring_keeps_most_recent():
    """The ring must retain the *newest* records, not the oldest."""
    core, *_ = build_gather_core(BankedCore, n_threads=2, n=32)
    full = PipelineTracer()
    core.tracer = full
    core.run()

    core2, *_ = build_gather_core(BankedCore, n_threads=2, n=32)
    ring = PipelineTracer(limit=7)
    core2.tracer = ring
    core2.run()

    tail = [(r.tid, r.pc, r.t_commit) for r in full.records[-7:]]
    kept = [(r.tid, r.pc, r.t_commit) for r in ring.records]
    assert kept == tail
    commits = [r.t_commit for r in ring.records]
    assert commits == sorted(commits)  # chronological order preserved


def test_trace_ring_summary_counts_window():
    tracer = PipelineTracer(limit=3)
    for i in range(10):
        tracer.record(tid=0, pc=i, text="nop", t_decode=i, t_issue=i + 1,
                      t_ex_done=i + 2, t_data=i + 2, t_commit=i + 3)
    summary = tracer.stall_summary()
    assert summary["instructions"] == 3
    assert summary["dropped"] == 7
    assert [r.pc for r in tracer.records] == [7, 8, 9]


def test_trace_record_fields():
    r = TraceRecord(tid=1, pc=5, text="add x0, x0, #1", t_decode=10,
                    t_issue=11, t_ex_done=12, t_data=12, t_commit=13)
    assert r.decode_stall == 0 and r.mem_stall == 0
    assert r.dominant_stall == ""
    assert "add x0" in r.format()
