"""Tests for CGMT cores: banked register file and software context switching."""

import numpy as np
import pytest

from repro.core.base import CoreConfig, ThreadState, TimelineCore
from repro.core.cgmt import BankedCore, ContextLayout, SoftwareSwitchCore, make_threads
from repro.isa import X, assemble
from repro.memory import Cache, CacheConfig, MainMemory
from repro.stats.counters import Stats


class FixedLatencyBackend:
    def __init__(self, latency=80):
        self.latency = latency

    def access(self, now, line_addr, is_write=False, requestor=0):
        return now + self.latency


GATHER_SRC = """
start:
    ; x0 = tid, x1 = nthreads, chunk/idx/data/out are symbols
    mov  x2, #chunk
    mul  x3, x0, x2        ; i = tid * chunk
    add  x4, x3, x2        ; end
    adr  x5, idx
    adr  x6, data
    adr  x7, out
loop:
    ldr  x8, [x5, x3, lsl #3]
    ldr  x9, [x6, x8, lsl #3]
    str  x9, [x7, x3, lsl #3]
    add  x3, x3, #1
    cmp  x3, x4
    b.lt loop
    halt
"""


def build_gather(core_cls, n_threads=4, n=64, mem_latency=80, seed=1, **core_kw):
    rng = np.random.default_rng(seed)
    data_n = 4096
    idx = rng.integers(0, data_n, size=n)
    data = rng.integers(0, 1 << 30, size=data_n)
    mem = MainMemory()
    sym = {"idx": 0x100000, "data": 0x200000, "out": 0x300000,
           "chunk": n // n_threads}
    mem.write_array(sym["idx"], idx)
    mem.write_array(sym["data"], data)
    prog = assemble(GATHER_SRC, symbols=sym)
    backend = FixedLatencyBackend(mem_latency)
    ic = Cache(CacheConfig(name="ic", size_bytes=32 * 1024, assoc=4, latency=2),
               backend, Stats("ic"))
    dc = Cache(CacheConfig(name="dc", size_bytes=8 * 1024, assoc=4, latency=2,
                           mshrs=24), backend, Stats("dc"))
    init = [{X(0): t, X(1): n_threads} for t in range(n_threads)]
    threads = make_threads(n_threads, init_regs=init)
    core = core_cls(prog, ic, dc, mem, threads, **core_kw)
    expected = [int(data[i]) for i in idx]
    return core, mem, sym, expected


def test_banked_core_correctness():
    core, mem, sym, expected = build_gather(BankedCore)
    core.run()
    assert mem.read_array(sym["out"], len(expected)) == expected
    assert all(t.state == ThreadState.DONE for t in core.threads)


def test_banked_core_switches_on_misses():
    core, *_ = build_gather(BankedCore)
    stats = core.run()
    assert stats["context_switches"] > 10
    assert stats["threads_completed"] == 4


def test_multithreading_hides_latency():
    """4 threads must beat 1 thread on the same total work (TLP latency hiding)."""
    core4, *_ = build_gather(BankedCore, n_threads=4, n=64)
    core1, *_ = build_gather(
        BankedCore, n_threads=1, n=64)
    c4 = core4.run()["cycles"]
    c1 = core1.run()["cycles"]
    assert c4 < c1 * 0.7


def test_banked_rejects_more_than_8_threads():
    with pytest.raises(ValueError):
        build_gather(BankedCore, n_threads=9, n=72)


def test_banked_initial_context_fetch_counted():
    core, *_ = build_gather(BankedCore)
    stats = core.run()
    assert stats["context_fetches"] == 4


def test_software_switching_slower_than_banked():
    layout = ContextLayout(used_regs=tuple(range(10)))
    b, *_ = build_gather(BankedCore, layout=layout)
    s, *_ = build_gather(SoftwareSwitchCore, layout=layout)
    cb = b.run()["cycles"]
    cs = s.run()["cycles"]
    assert cs > cb  # save/restore overhead


def test_software_switching_correct():
    core, mem, sym, expected = build_gather(SoftwareSwitchCore)
    core.run()
    assert mem.read_array(sym["out"], len(expected)) == expected


def test_round_robin_schedule_order():
    core, *_ = build_gather(BankedCore, n_threads=4)
    seen = []
    orig = core._schedule

    def spy(t):
        ok = orig(t)
        if ok:
            seen.append(core.current.tid)
        return ok

    core._schedule = spy
    core.run()
    # first four scheduled threads are round-robin 0,1,2,3
    assert seen[:4] == [0, 1, 2, 3]


def test_switch_suppressed_when_no_commits():
    """Back-to-back misses without intervening commits must not thrash."""
    core, *_ = build_gather(BankedCore, n_threads=2, n=32, mem_latency=300)
    stats = core.run()
    # suppression mask fires at least sometimes under long latency
    assert stats["context_switches"] >= 2
    # and the run completes without deadlock
    assert stats["threads_completed"] == 2


def test_context_layout_addresses():
    lay = ContextLayout(base=0x8000_0000, used_regs=(0, 1, 2, 8, 33))
    assert lay.reg_addr(0, 0) == 0x8000_0000
    assert lay.reg_addr(0, 8) == 0x8000_0000 + 64
    assert lay.touched_gp_lines == (0, 1, 4)
    assert lay.reg_addr(1, 0) == 0x8000_0000 + lay.bytes_per_thread
    lo, hi = lay.region(4)
    assert hi - lo == 4 * lay.bytes_per_thread
    assert lay.sysreg_addr(0) == 0x8000_0000 + 8 * 64


def test_threads_partition_work_disjointly():
    core, mem, sym, expected = build_gather(BankedCore, n_threads=8, n=64)
    core.run()
    per_thread = [t.instructions for t in core.threads]
    assert all(abs(a - per_thread[0]) <= 1 for a in per_thread)
