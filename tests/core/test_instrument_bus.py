"""The InstrumentBus contract of the timeline engine.

Three things must hold (see ``repro/core/instrument.py``):

* **Compiled fast path** — with nothing attached the engine binds the
  uninstrumented step body; attaching/detaching any instrument rebinds it.
* **Fixed dispatch order** — attached instruments fire per instruction as
  faults -> telemetry -> metrics -> profile -> sanitizer -> tracer, at
  their pipeline positions.
* **Cycle identity** — observational instruments never change a timestamp:
  the instrumented path commits on exactly the fast path's clock.
"""

import pytest

from repro.core.base import TimelineCore
from repro.core.cgmt import BankedCore
from repro.core.instrument import DISPATCH_ORDER, InstrumentBus
from repro.core.trace import PipelineTracer

from ..helpers import build_gather_core


def build_core(**kw):
    kw.setdefault("n_threads", 4)
    kw.setdefault("n", 32)
    core, _, _, _ = build_gather_core(BankedCore, **kw)
    return core


# ------------------------------------------------------ recording instruments
class Log(list):
    """Shared event log; each instrument appends (slot, event) tuples."""


class RecordingFaults:
    def __init__(self, log):
        self.log = log

    def on_instruction(self, thread, inst, t_fetch):
        self.log.append(("faults", "on_instruction"))
        return t_fetch  # observational here: adds no recovery cycles


class RecordingTelemetry:
    def __init__(self, log):
        self.log = log

    def on_run_begin(self, tid, t):
        self.log.append(("telemetry", "on_run_begin"))

    def on_commit(self, t_c):
        self.log.append(("telemetry", "on_commit"))

    def on_stall_in_place(self, tid, t_from, t_to, reason):
        self.log.append(("telemetry", "on_stall_in_place"))

    def on_switch(self, tid_out, t, tid_in, reason):
        self.log.append(("telemetry", "on_switch"))

    def on_thread_done(self, tid, t_c):
        self.log.append(("telemetry", "on_thread_done"))

    def on_context_move(self, kind, tid, t, done):
        self.log.append(("telemetry", "on_context_move"))


class RecordingMetrics:
    def __init__(self, log):
        self.log = log

    def on_commit(self, thread, d, t_c):
        self.log.append(("metrics", "on_commit"))


class RecordingProfile:
    def __init__(self, log):
        self.log = log

    def on_schedule(self, tid, t_req, t_sched):
        self.log.append(("profile", "on_schedule"))

    def on_switch_in(self, tid, t_fetch):
        self.log.append(("profile", "on_switch_in"))

    def on_switch_hold(self, tid, t_sw, t_hold):
        self.log.append(("profile", "on_switch_hold"))

    def on_spill_window(self, tid, done):
        self.log.append(("profile", "on_spill_window"))

    def on_commit_timing(self, tid, pc0, d, t_d, t_ops, t_regs, t_ex_done,
                         data_at, t_c, icache_missed, load_missed,
                         spill_wait=0):
        self.log.append(("profile", "on_commit_timing"))


class RecordingSanitizer:
    def __init__(self, log):
        self.log = log

    def on_commit(self, thread, inst, result, t_c):
        self.log.append(("sanitizer", "on_commit"))


class RecordingTracer:
    def __init__(self, log):
        self.log = log

    def record(self, tid, pc, text, t_d, t_issue, t_ex, t_mem, t_c):
        self.log.append(("tracer", "record"))


def attach_all(core, log):
    core.fault_hook = RecordingFaults(log)
    core.telemetry = RecordingTelemetry(log)
    core.metrics = RecordingMetrics(log)
    core.profile = RecordingProfile(log)
    core.sanitizer = RecordingSanitizer(log)
    core.tracer = RecordingTracer(log)


# ------------------------------------------------------------- compiled step
def step_body(core):
    return core._process_instruction.__func__


def test_fast_path_bound_when_bus_empty():
    core = build_core()
    assert core.bus.empty
    assert step_body(core) is TimelineCore._process_instruction_fast


def test_attach_rebinds_to_instrumented_and_back():
    core = build_core()
    core.tracer = PipelineTracer()
    assert not core.bus.empty
    assert step_body(core) is TimelineCore._process_instruction_instrumented
    core.tracer = None
    assert core.bus.empty
    assert step_body(core) is TimelineCore._process_instruction_fast


@pytest.mark.parametrize("slot,attr", [("faults", "fault_hook"),
                                       ("telemetry", "telemetry"),
                                       ("metrics", "metrics"),
                                       ("profile", "profile"),
                                       ("sanitizer", "sanitizer"),
                                       ("tracer", "tracer")])
def test_legacy_attributes_delegate_to_bus(slot, attr):
    core = build_core()
    probe = object()
    setattr(core, attr, probe)
    assert getattr(core.bus, slot) is probe
    assert getattr(core, attr) is probe
    assert step_body(core) is TimelineCore._process_instruction_instrumented
    setattr(core, attr, None)
    assert getattr(core.bus, slot) is None
    assert step_body(core) is TimelineCore._process_instruction_fast


def test_bus_set_checks_slot_name():
    bus = InstrumentBus()
    with pytest.raises(ValueError, match="unknown instrument slot"):
        bus.set("profiler", object())
    bus.set("tracer", probe := object())
    assert bus.tracer is probe


def test_attached_lists_in_dispatch_order():
    core = build_core()
    log = Log()
    attach_all(core, log)
    assert [name for name, _ in core.bus.attached()] == list(DISPATCH_ORDER)
    assert DISPATCH_ORDER == ("faults", "telemetry", "metrics", "profile",
                              "sanitizer", "tracer")


def test_external_step_wrapper_survives_recompile():
    """An externally installed wrapper (the task-pool idiom) must not be
    clobbered by attach/detach; instruments reach it via ``_step_impl``."""
    core = build_core()
    calls = []

    def wrapper(thread):
        calls.append(thread.tid)
        core._step_impl(thread)

    core._process_instruction = wrapper
    core.tracer = PipelineTracer()          # recompile under the wrapper
    assert core._process_instruction is wrapper
    assert (core._step_impl.__func__
            is TimelineCore._process_instruction_instrumented)
    core.run()
    assert calls, "wrapper was bypassed"
    assert core.tracer.records, "instrument attached after wrapping was lost"


# ------------------------------------------------------------ dispatch order
def test_dispatch_order_per_instruction():
    core = build_core(n_threads=1)
    log = Log()
    attach_all(core, log)
    core.run()

    # the banked core schedules and charges the initial context fetch
    # (profile sees the schedule first), then the run begins
    assert ("telemetry", "on_run_begin") in log[:3]
    body = [e for e in log if e[1] in ("on_instruction", "on_commit",
                                       "on_commit_timing", "record")]
    # every committed instruction dispatches faults -> telemetry ->
    # metrics -> profile -> sanitizer -> tracer; the halt commits without
    # a tracer record
    per_inst = [("faults", "on_instruction"), ("telemetry", "on_commit"),
                ("metrics", "on_commit"), ("profile", "on_commit_timing"),
                ("sanitizer", "on_commit"), ("tracer", "record")]
    n = core.threads[0].instructions
    assert body[:6 * n] == per_inst * n
    assert body[6 * n:] == per_inst[:5]     # the halt: no tracer record
    assert log[-1] == ("telemetry", "on_thread_done")


# ------------------------------------------------------------- cycle identity
def test_instrumented_path_is_cycle_identical_to_fast_path():
    bare = build_core()
    bare.run()

    instrumented = build_core()
    attach_all(instrumented, Log())
    instrumented.run()

    assert instrumented.commit_tail == bare.commit_tail
    assert instrumented.stats.as_dict() == bare.stats.as_dict()
    for a, b in zip(instrumented.threads, bare.threads):
        assert a.instructions == b.instructions
        assert a.xregs == b.xregs


def test_mid_run_attach_detach_keeps_the_clock():
    """Flipping between the fast and instrumented bodies mid-run must not
    disturb the timeline: a run that toggles a tracer on and off commits on
    the same clock as an untouched run."""
    bare = build_core()
    bare.run()

    toggled = build_core()
    for i in range(40):
        if not toggled.step():
            break
        if i == 10:
            toggled.tracer = PipelineTracer()
        elif i == 20:
            toggled.tracer = None
    while toggled.step():
        pass
    toggled.finalize_stats()
    assert toggled.commit_tail == bare.commit_tail
    assert toggled.stats.as_dict() == bare.stats.as_dict()
