"""Tests for the fine-grain (barrel) multithreaded core."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import build_gather_core  # noqa: E402

from repro.core.cgmt import BankedCore  # noqa: E402
from repro.core.fgmt import FGMTCore  # noqa: E402


def test_fgmt_correctness():
    core, mem, sym, expected = build_gather_core(FGMTCore, n_threads=4, n=64)
    core.run()
    assert mem.read_array(sym["out"], len(expected)) == expected


def test_fgmt_single_thread_correct():
    core, mem, sym, expected = build_gather_core(FGMTCore, n_threads=1, n=32)
    core.run()
    assert mem.read_array(sym["out"], len(expected)) == expected


def test_fgmt_hides_latency_with_threads():
    one, *_ = build_gather_core(FGMTCore, n_threads=1, n=64, mem_latency=150)
    eight, *_ = build_gather_core(FGMTCore, n_threads=8, n=64, mem_latency=150)
    c1 = one.run()["cycles"]
    c8 = eight.run()["cycles"]
    assert c8 < 0.6 * c1


def test_fgmt_no_context_switch_cost():
    """Barrel rotation records no context switches at all."""
    core, *_ = build_gather_core(FGMTCore, n_threads=4, n=64)
    stats = core.run()
    assert stats["context_switches"] == 0
    assert stats["instructions"] > 0


def test_fgmt_competitive_with_banked_cgmt_on_miss_heavy():
    """On a miss-dominated kernel the two classic MT styles should land in
    the same performance ballpark (neither 2x the other)."""
    fgmt, *_ = build_gather_core(FGMTCore, n_threads=8, n=128)
    banked, *_ = build_gather_core(BankedCore, n_threads=8, n=128)
    cf = fgmt.run()["cycles"]
    cb = banked.run()["cycles"]
    assert 0.4 < cf / cb < 2.5


def test_fgmt_bank_cap():
    with pytest.raises(ValueError):
        build_gather_core(FGMTCore, n_threads=9, n=72)


def test_fgmt_instruction_counts_match_banked():
    fgmt, *_ = build_gather_core(FGMTCore, n_threads=4, n=32)
    banked, *_ = build_gather_core(BankedCore, n_threads=4, n=32)
    assert fgmt.run()["instructions"] == banked.run()["instructions"]


def test_fgmt_ipc_bounded():
    core, *_ = build_gather_core(FGMTCore, n_threads=8, n=64)
    stats = core.run()
    assert 0 < stats["ipc"] <= 1.0
