"""Additional OoO-model coverage: queues, FU pools, commit discipline."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.core.ooo import OoOConfig, OoOCore, _UnitPool  # noqa: E402
from repro.isa import X, assemble  # noqa: E402
from repro.memory import HostMemorySystem, MainMemory  # noqa: E402


def build(src, cfg=None, symbols=None, mem=None):
    host = HostMemorySystem()
    return OoOCore(assemble(src, symbols=symbols), host.icache, host.dcache,
                   mem or MainMemory(), cfg)


def test_unit_pool_round_robin_reservation():
    pool = _UnitPool(2)
    assert pool.reserve(0) == 0
    assert pool.reserve(0) == 0   # second unit
    assert pool.reserve(0) == 1   # both busy at t=0 -> next cycle
    assert pool.reserve(5) == 5


def test_fp_pool_narrower_than_alu():
    fp_heavy = "fmov d0, #1.0\n" + "\n".join(
        f"fadd d{1 + i % 6}, d0, d0" for i in range(120)) + "\nhalt"
    int_heavy = "mov x0, #1\n" + "\n".join(
        f"add x{1 + i % 6}, x0, x0" for i in range(120)) + "\nhalt"
    cf = build(fp_heavy).run()["cycles"]
    ci = build(int_heavy).run()["cycles"]
    assert cf > ci  # 2 FP pipes vs 4 ALU pipes (plus FP latency)


def test_load_queue_bounds_mlp():
    # many independent missing loads: a tiny LQ throttles overlap
    body = "\n".join(f"ldr x{2 + i % 8}, [x1, #{i * 512}]" for i in range(64))
    src = f"adr x1, a\n{body}\nhalt"
    sym = {"a": 0x100000}
    big = build(src, OoOConfig(), symbols=sym).run()["cycles"]
    small = build(src, OoOConfig(lq_entries=2), symbols=sym).run()["cycles"]
    assert small > big


def test_store_queue_capacity():
    body = "\n".join(f"str x0, [x1, #{i * 512}]" for i in range(64))
    src = f"adr x1, a\nmov x0, #1\n{body}\nhalt"
    sym = {"a": 0x100000}
    big = build(src, OoOConfig(), symbols=sym).run()["cycles"]
    small = build(src, OoOConfig(sq_entries=2), symbols=sym).run()["cycles"]
    assert small >= big


def test_stats_shape():
    stats = build("mov x0, #1\nadd x1, x0, #2\nhalt").run()
    assert stats["instructions"] == 2
    assert stats["cycles"] >= 1
    assert stats["ipc"] > 0


def test_flags_serialize_dependent_branches():
    loop = """
        mov x0, #0
        loop:
        add x0, x0, #1
        cmp x0, #50
        b.lt loop
        halt
    """
    core = build(loop)
    stats = core.run()
    # dependent cmp->branch chain caps IPC well under the 8-wide peak
    assert stats["ipc"] < 4.0


def test_init_regs_respected():
    core = build("add x2, x0, x1\nhalt")
    core.run({X(0): 40, X(1): 2})
    # the functional write happened inside run(); verify via memory round trip
    core2 = build("add x2, x0, x1\nadr x3, out\nstr x2, [x3, #0]\nhalt",
                  symbols={"out": 0x5000})
    mem = core2.memory
    core2.run({X(0): 40, X(1): 2})
    assert mem.load(0x5000) == 42
