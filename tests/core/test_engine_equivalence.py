"""Compiled vs interpreted engine: byte-identical by construction.

The threaded-code engine (:mod:`repro.isa.compiled`) is a host-side
execution strategy, never a model change — so for every timeline core
type, every InstrumentBus slot combination, and a corpus of fixed-seed
fuzz programs, a compiled run and an interpreted run of the same
RunConfig must produce **byte-identical stats digests** (every counter,
every cycle, every architectural result).  This suite is the contract
behind excluding ``engine`` from config/manifest digests
(:data:`repro.system.manifest._DIGEST_EXCLUDED_FIELDS`) and behind the
fuzz oracle's engine-divergence arm.
"""

import hashlib
import json

import pytest

from repro.fuzz.generator import sample_spec
from repro.system import RunConfig, run_config

from ..helpers import time_limit

#: every timeline core type (ooo is excluded by construction: it has no
#: timeline step to compile, and run_config rejects engine="compiled")
TIMELINE_CORE_TYPES = ("inorder", "banked", "swctx", "virec", "nsf",
                      "prefetch-full", "prefetch-exact", "fgmt")

#: one RunConfig field-set per InstrumentBus slot, plus all-attached.
#: telemetry with pipeline_trace covers the tracer slot; faults uses the
#: silent scheme so the campaign is identical work on both engines.
SLOT_CONFIGS = {
    "none": {},
    "faults": {"faults": {"rf_rate": 2e-4, "scheme": "none", "seed": 3}},
    "telemetry": {"telemetry": {"events": True, "interval": 50}},
    "tracer": {"telemetry": {"pipeline_trace": True}},
    "metrics": {"metrics": True},
    "profile": {"profile": True},
    "sanitizer": {"sanitize": True},
    "all": {"faults": {"rf_rate": 2e-4, "scheme": "none", "seed": 3},
            "telemetry": {"events": True, "interval": 50,
                          "pipeline_trace": True},
            "metrics": True, "profile": True, "sanitize": True},
}


def stats_digest(result) -> str:
    """Canonical digest of everything a run observed."""
    payload = {
        "cycles": result.cycles,
        "instructions": result.instructions,
        "ipc": round(result.ipc, 9),
        "rf_hit_rate": result.rf_hit_rate,
        "correct": result.correct,
        "stats": sorted((k, v) for k, v in result.stats.flat()),
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def one_digest(cfg: RunConfig) -> str:
    """Digest of the run — or of its failure: a fault campaign may
    corrupt an address register into a crash, and then *the same crash*
    (type and message) must fire on both engines."""
    try:
        return stats_digest(run_config(cfg))
    except Exception as exc:
        return f"error:{type(exc).__name__}:{exc}"


def digests_of(cfg: RunConfig):
    return (one_digest(cfg.with_(engine="compiled")),
            one_digest(cfg.with_(engine="interpreted")))


@pytest.mark.parametrize("core_type", TIMELINE_CORE_TYPES)
def test_core_types_byte_identical(core_type):
    nt = 1 if core_type == "inorder" else 4
    cfg = RunConfig(workload="gather", core_type=core_type,
                    n_threads=nt, n_per_thread=24)
    with time_limit(120):
        compiled, interpreted = digests_of(cfg)
    assert compiled == interpreted


@pytest.mark.parametrize("slot", sorted(SLOT_CONFIGS))
@pytest.mark.parametrize("core_type", ["banked", "virec", "fgmt"])
def test_bus_slots_byte_identical(core_type, slot):
    cfg = RunConfig(workload="gather", core_type=core_type,
                    n_threads=4, n_per_thread=16, **SLOT_CONFIGS[slot])
    with time_limit(120):
        compiled, interpreted = digests_of(cfg)
    assert compiled == interpreted


@pytest.mark.parametrize("index", range(50))
def test_fuzz_programs_byte_identical(index):
    """50 fixed-seed generated programs, core type rotated for breadth."""
    core_type = ("banked", "virec", "fgmt", "swctx")[index % 4]
    spec = sample_spec(1234, index).as_dict()
    cfg = RunConfig(workload="fuzz", core_type=core_type,
                    n_threads=4, n_per_thread=16,
                    seed=int(spec["seed"]) & 0x7FFFFFFF,
                    workload_kwargs={"gen": spec},
                    max_cycles=400_000)
    with time_limit(120):
        compiled, interpreted = digests_of(cfg)
    assert compiled == interpreted


@pytest.mark.parametrize("core_type", ["banked", "virec", "fgmt"])
def test_multicore_byte_identical(core_type):
    """n_cores > 1: the node interleaves cores per step, so the simulator
    disables superop chaining and the compiled engine must reproduce the
    interpreted crossbar/DRAM contention order exactly."""
    cfg = RunConfig(workload="spmv", core_type=core_type,
                    n_threads=4, n_per_thread=8, n_cores=2)
    with time_limit(120):
        compiled, interpreted = digests_of(cfg)
    assert compiled == interpreted


def test_multicore_disables_chaining_single_core_keeps_it():
    """The chaining decision is observable on the compile key."""
    from repro.isa.compiled import EngineVariant
    from repro.core.cgmt import BankedCore

    from ..helpers import build_gather_core

    core, _, _, _ = build_gather_core(BankedCore, n_threads=2, n=16,
                                      engine="compiled")
    assert core._engine_variant(False).chained
    core.set_step_chaining(False)
    assert not core._engine_variant(False).chained
    # instrumented tables never chain, so the flag normalizes away there
    assert core._engine_variant(True) == EngineVariant(
        family="timeline", miss_switch=True, instrumented=True)
    core.set_step_chaining(True)
    core.run()


def test_workload_coverage_byte_identical():
    """A second workload (stride) so equivalence isn't gather-specific."""
    for core_type in ("banked", "virec"):
        cfg = RunConfig(workload="stride", core_type=core_type,
                        n_threads=4, n_per_thread=16)
        compiled, interpreted = digests_of(cfg)
        assert compiled == interpreted


def test_mid_run_engine_switch_converges():
    """set_engine() mid-run converts scoreboard keys and finishes with
    the same architectural totals as a single-engine run."""
    from repro.core.cgmt import BankedCore

    from ..helpers import build_gather_core

    ref, _, _, _ = build_gather_core(BankedCore, n_threads=4, n=32,
                                     engine="compiled")
    ref.run()

    core, _, _, _ = build_gather_core(BankedCore, n_threads=4, n=32,
                                      engine="compiled")
    for _ in range(40):
        core.step()
    core.set_engine("interpreted")
    for _ in range(40):
        core.step()
    core.set_engine("compiled")
    core.run()
    assert core.now == ref.now
    assert (sum(th.instructions for th in core.threads)
            == sum(th.instructions for th in ref.threads))
