"""DeadlockError guard paths in the timeline cores.

These raises are bug guards, not modelled behavior, so they are reached by
driving the cores into deliberately inconsistent or under-budgeted states.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import build_gather_core  # noqa: E402

from repro.core.base import CoreConfig, ThreadState  # noqa: E402
from repro.core.cgmt import BankedCore  # noqa: E402
from repro.core.fgmt import FGMTCore  # noqa: E402
from repro.errors import DeadlockError  # noqa: E402


class TestNoRunnableThread:
    def test_step_raises_when_scheduler_finds_nothing(self):
        core, *_ = build_gather_core(BankedCore, n_threads=2, n=8)
        # a live-but-RUNNING thread with no core.current is an inconsistent
        # state the round-robin scheduler cannot resolve: it is neither
        # schedulable (not READY/BLOCKED) nor DONE
        core.threads[0].state = ThreadState.RUNNING
        core.threads[1].state = ThreadState.DONE
        core.current = None
        with pytest.raises(DeadlockError, match="no runnable thread"):
            core.step()

    def test_deadlock_error_still_catches_as_runtime_error(self):
        core, *_ = build_gather_core(BankedCore, n_threads=2, n=8)
        core.threads[0].state = ThreadState.RUNNING
        core.threads[1].state = ThreadState.DONE
        core.current = None
        with pytest.raises(RuntimeError):
            core.step()


class TestInstructionBudget:
    def test_run_raises_when_instruction_budget_exceeded(self):
        core, *_ = build_gather_core(
            BankedCore, n_threads=4, n=64,
            config=CoreConfig(max_instructions=2, max_cycles=None))
        with pytest.raises(DeadlockError, match="instruction budget"):
            core.run()

    def test_run_raises_when_cycle_budget_exceeded(self):
        # max_cycles now bounds the simulated commit clock (commit_tail),
        # not committed instructions — the historical mislabelling
        core, *_ = build_gather_core(BankedCore, n_threads=4, n=64,
                                     config=CoreConfig(max_cycles=2))
        with pytest.raises(DeadlockError, match="cycle budget"):
            core.run()

    def test_cycle_watchdog_reports_commit_clock(self):
        core, *_ = build_gather_core(BankedCore, n_threads=4, n=64,
                                     config=CoreConfig(max_cycles=2))
        with pytest.raises(DeadlockError, match="commit clock"):
            core.run()

    def test_sufficient_budget_completes(self):
        core, mem, sym, expected = build_gather_core(
            BankedCore, n_threads=2, n=8,
            config=CoreConfig(max_cycles=100_000))
        core.run()
        out = [int(v) for v in mem.read_array(sym["out"], len(expected))]
        assert out == expected

    def test_disabled_watchdogs_complete(self):
        core, mem, sym, expected = build_gather_core(
            BankedCore, n_threads=2, n=8,
            config=CoreConfig(max_cycles=None, max_instructions=None))
        core.run()
        out = [int(v) for v in mem.read_array(sym["out"], len(expected))]
        assert out == expected


class TestFGMTBudget:
    def test_fgmt_run_raises_when_cycle_budget_exceeded(self):
        core, *_ = build_gather_core(FGMTCore, n_threads=4, n=64,
                                     config=CoreConfig(max_cycles=2))
        with pytest.raises(DeadlockError, match="cycle budget"):
            core.run()

    def test_fgmt_run_raises_when_instruction_budget_exceeded(self):
        core, *_ = build_gather_core(
            FGMTCore, n_threads=4, n=64,
            config=CoreConfig(max_instructions=2, max_cycles=None))
        with pytest.raises(DeadlockError, match="instruction budget"):
            core.run()

    def test_fgmt_budget_error_is_transient_classified(self):
        from repro.errors import TRANSIENT_ERRORS
        core, *_ = build_gather_core(FGMTCore, n_threads=4, n=64,
                                     config=CoreConfig(max_cycles=2))
        with pytest.raises(TRANSIENT_ERRORS):
            core.run()
