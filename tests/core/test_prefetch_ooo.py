"""Tests for the RF-prefetching cores and the simplified OoO model."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import GATHER_REGS, GATHER_SRC, build_gather_core  # noqa: E402

import numpy as np  # noqa: E402

from repro.core.cgmt import BankedCore, ContextLayout  # noqa: E402
from repro.core.ooo import OoOConfig, OoOCore  # noqa: E402
from repro.core.prefetch import ExactPrefetchCore, FullContextPrefetchCore  # noqa: E402
from repro.isa import X, assemble  # noqa: E402
from repro.memory import Cache, CacheConfig, HostMemorySystem, MainMemory  # noqa: E402
from repro.stats.counters import Stats  # noqa: E402


ACTIVE = (3, 4, 5, 6, 7, 8, 9)  # gather inner-loop registers


def test_full_prefetch_correct():
    core, mem, sym, expected = build_gather_core(FullContextPrefetchCore,
                                                 n_threads=4)
    core.run()
    assert mem.read_array(sym["out"], len(expected)) == expected


def test_exact_prefetch_correct():
    core, mem, sym, expected = build_gather_core(
        ExactPrefetchCore, n_threads=4, active_regs=ACTIVE)
    core.run()
    assert mem.read_array(sym["out"], len(expected)) == expected


def test_exact_beats_full_prefetch():
    """Figure 9: moving the full context every switch is the worst option."""
    full, *_ = build_gather_core(FullContextPrefetchCore, n_threads=4, n=128)
    exact, *_ = build_gather_core(ExactPrefetchCore, n_threads=4, n=128,
                                  active_regs=ACTIVE)
    cf = full.run()["cycles"]
    ce = exact.run()["cycles"]
    assert ce < cf


def test_full_prefetch_worse_than_banked():
    full, *_ = build_gather_core(FullContextPrefetchCore, n_threads=4, n=128)
    banked, *_ = build_gather_core(BankedCore, n_threads=4, n=128)
    assert banked.run()["cycles"] < full.run()["cycles"]


def test_prefetch_statistics_populated():
    core, *_ = build_gather_core(ExactPrefetchCore, n_threads=4,
                                 active_regs=ACTIVE)
    stats = core.run()
    assert stats["prefetches"] > 0
    assert stats["prefetched_switches"] > 0


def test_single_thread_prefetch_core_runs():
    core, mem, sym, expected = build_gather_core(
        ExactPrefetchCore, n_threads=1, active_regs=ACTIVE)
    core.run()
    assert mem.read_array(sym["out"], len(expected)) == expected


# -- OoO ---------------------------------------------------------------------

def build_ooo(n=256, seed=3):
    rng = np.random.default_rng(seed)
    data_n = 4096
    idx = rng.integers(0, data_n, size=n)
    data = rng.integers(0, 1 << 30, size=data_n)
    mem = MainMemory()
    sym = {"idx": 0x100000, "data": 0x200000, "out": 0x300000, "chunk": n}
    mem.write_array(sym["idx"], idx)
    mem.write_array(sym["data"], data)
    prog = assemble(GATHER_SRC, symbols=sym)
    host = HostMemorySystem()
    core = OoOCore(prog, host.icache, host.dcache, mem)
    expected = [int(data[i]) for i in idx]
    return core, mem, sym, expected


def test_ooo_correct():
    core, mem, sym, expected = build_ooo()
    core.run()
    assert mem.read_array(sym["out"], len(expected)) == expected


def test_ooo_faster_than_inorder_on_gather():
    """Figure 1: the OoO hides latency with ILP/MLP that the InO cannot."""
    from repro.core.inorder import InOrderCore
    ooo, *_ = build_ooo(n=256)
    ooo_cycles = ooo.run()["cycles"]
    ino, *_ = build_gather_core(InOrderCore, n_threads=1, n=256)
    ino_cycles = ino.run()["cycles"]
    assert ooo_cycles < ino_cycles / 2


def test_ooo_width_matters_on_independent_work():
    src = "mov x1, #1\n" + "\n".join(
        f"add x{2 + (i % 6)}, x1, #{i}" for i in range(240)) + "\nhalt"
    prog = assemble(src)

    def run(width):
        host = HostMemorySystem()
        core = OoOCore(prog, host.icache, host.dcache, MainMemory(),
                       OoOConfig(width=width))
        return core.run()["cycles"]

    assert run(8) < run(1)


def test_ooo_dependent_chain_limits_ilp():
    dep = "mov x1, #0\n" + "add x1, x1, #1\n" * 200 + "halt"
    indep = "mov x1, #0\n" + "\n".join(
        f"add x{2 + (i % 8)}, x1, #1" for i in range(200)) + "\nhalt"
    host1, host2 = HostMemorySystem(), HostMemorySystem()
    c_dep = OoOCore(assemble(dep), host1.icache, host1.dcache, MainMemory()).run()["cycles"]
    c_ind = OoOCore(assemble(indep), host2.icache, host2.dcache, MainMemory()).run()["cycles"]
    assert c_dep > c_ind * 2


def test_ooo_rob_bounds_runahead():
    """A tiny ROB throttles MLP on a miss-heavy stream."""
    src = GATHER_SRC
    big, *_ = build_ooo(n=256)
    big_c = big.run()["cycles"]
    small, mem, sym, _ = build_ooo(n=256)
    small.config = OoOConfig(rob_entries=4)
    small_c = small.run()["cycles"]
    assert small_c >= big_c
