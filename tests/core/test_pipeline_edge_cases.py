"""Edge-case tests for the timeline pipeline: replay semantics, flags across
switches, post-index writeback, halt ordering, store-load ordering."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import FixedLatencyBackend  # noqa: E402

import numpy as np  # noqa: E402

from repro.core.cgmt import BankedCore, ContextLayout, make_threads  # noqa: E402
from repro.isa import X, assemble  # noqa: E402
from repro.memory import Cache, CacheConfig, MainMemory  # noqa: E402
from repro.stats.counters import Stats  # noqa: E402
from repro.virec import ViReCConfig, ViReCCore  # noqa: E402


def build(src, symbols, core_cls, n_threads, mem, init=None, **kw):
    prog = assemble(src, symbols=symbols)
    be = FixedLatencyBackend(80)
    ic = Cache(CacheConfig(name="ic", size_bytes=32 * 1024, assoc=4, latency=2),
               be, Stats("ic"))
    dc = Cache(CacheConfig(name="dc", size_bytes=8 * 1024, assoc=4, latency=2,
                           mshrs=24), be, Stats("dc"))
    threads = make_threads(n_threads, init_regs=init)
    return core_cls(prog, ic, dc, mem, threads, **kw)


def test_post_index_writeback_not_double_applied_on_replay():
    """A post-index load that misses and replays must advance its base
    register exactly once (commit-time execution)."""
    mem = MainMemory()
    mem.write_array(0x10000, list(range(100, 100 + 16)))
    src = """
    start:
        adr  x1, arr
        mov  x2, #walkn
        mul  x3, x0, x2
        lsl  x3, x3, #3
        add  x1, x1, x3        ; per-thread start
        mov  x4, #0
    loop:
        ldr  x5, [x1], #8      ; post-index walk (misses cold)
        add  x4, x4, x5
        sub  x2, x2, #1
        cbnz x2, loop
        adr  x6, out
        str  x4, [x6, x0, lsl #3]
        halt
    """
    sym = {"arr": 0x10000, "out": 0x20000, "walkn": 8}
    core = build(src, sym, BankedCore, 2, mem,
                 init=[{X(0): t} for t in range(2)],
                 layout=ContextLayout(used_regs=tuple(range(7))))
    stats = core.run()
    assert stats["context_switches"] > 0  # replay actually happened
    assert mem.load(0x20000) == sum(range(100, 108))
    assert mem.load(0x20008) == sum(range(108, 116))


def test_flags_preserved_across_context_switches():
    """Each thread's NZCV flags are private context: a switch between a cmp
    and its dependent branch must not corrupt the outcome."""
    mem = MainMemory()
    mem.write_array(0x10000, [5, 50])  # per-thread thresholds
    src = """
    start:
        adr  x1, thr
        ldr  x2, [x1, x0, lsl #3]   ; thread-specific threshold (cold miss!)
        cmp  x2, #10
        b.lt small
        mov  x3, #2222
        b    done
    small:
        mov  x3, #1111
    done:
        adr  x4, out
        str  x3, [x4, x0, lsl #3]
        halt
    """
    sym = {"thr": 0x10000, "out": 0x20000}
    core = build(src, sym, BankedCore, 2, mem,
                 init=[{X(0): t} for t in range(2)],
                 layout=ContextLayout(used_regs=tuple(range(5))))
    core.run()
    assert mem.load(0x20000) == 1111   # threshold 5 -> small
    assert mem.load(0x20008) == 2222   # threshold 50 -> big


def test_store_then_load_same_address_sees_value():
    mem = MainMemory()
    src = """
        adr x1, buf
        mov x2, #77
        str x2, [x1, #0]
        ldr x3, [x1, #0]
        add x3, x3, #1
        halt
    """
    core = build(src, {"buf": 0x30000}, BankedCore, 1, mem,
                 layout=ContextLayout(used_regs=tuple(range(4))))
    core.run()
    assert core.threads[0].xregs[3] == 78


def test_virec_replay_preserves_vrmu_consistency():
    """After many flush/replay rounds the tag store still satisfies its
    structural invariants and all outputs are exact."""
    mem = MainMemory()
    rng = np.random.default_rng(3)
    idx = rng.integers(0, 2048, size=64)
    data = rng.integers(0, 1 << 20, size=2048)
    mem.write_array(0x100000, idx)
    mem.write_array(0x200000, data)
    src = """
    start:
        mov  x2, #chunk
        mul  x3, x0, x2
        add  x4, x3, x2
        adr  x5, idx
        adr  x6, data
        adr  x7, out
    loop:
        ldr  x8, [x5, x3, lsl #3]
        ldr  x9, [x6, x8, lsl #3]
        str  x9, [x7, x3, lsl #3]
        add  x3, x3, #1
        cmp  x3, x4
        b.lt loop
        halt
    """
    sym = {"idx": 0x100000, "data": 0x200000, "out": 0x300000, "chunk": 16}
    core = build(src, sym, ViReCCore, 4, mem,
                 init=[{X(0): t} for t in range(4)],
                 layout=ContextLayout(used_regs=tuple(range(10))),
                 virec=ViReCConfig(rf_size=14))
    stats = core.run()
    core.vrmu.tagstore.check_invariants()
    assert stats["context_switches"] > 10
    got = mem.read_array(sym["out"], 64)
    assert got == [int(data[i]) for i in idx]


def test_halt_waits_for_older_stores():
    """A store right before halt still lands in memory."""
    mem = MainMemory()
    src = """
        adr x1, buf
        mov x2, #5
        str x2, [x1, #0]
        halt
    """
    core = build(src, {"buf": 0x40000}, BankedCore, 1, mem,
                 layout=ContextLayout(used_regs=(1, 2)))
    core.run()
    assert mem.load(0x40000) == 5


def test_thread_instructions_exclude_flushed_replays():
    """Committed-instruction counts equal the functional execution count,
    however many flush/replay rounds occurred."""
    from repro.isa.func_sim import FunctionalSimulator

    mem = MainMemory()
    mem.write_array(0x10000, list(range(1, 33)))
    src = """
    start:
        adr x1, arr
        mov x3, #0
        mov x4, #0
    loop:
        ldr x5, [x1, x3, lsl #3]
        add x4, x4, x5
        add x3, x3, #8         ; one element per line -> miss per iter
        cmp x3, #32
        b.lt loop
        halt
    """
    prog_mem = mem
    core = build(src, {"arr": 0x10000}, BankedCore, 2, prog_mem,
                 init=[{X(0): t} for t in range(2)],
                 layout=ContextLayout(used_regs=tuple(range(6))))
    core.run()

    golden = FunctionalSimulator(assemble(src, symbols={"arr": 0x10000}),
                                 MainMemory())
    golden.memory.write_array(0x10000, list(range(1, 33)))
    golden.run()
    assert core.threads[0].instructions == golden.instructions_executed
