"""Tests for the timeline in-order pipeline engine."""

import pytest

from repro.core.base import CoreConfig, ThreadContext, TimelineCore
from repro.core.cgmt import make_threads
from repro.core.inorder import InOrderCore
from repro.isa import X, assemble, run_functional
from repro.memory import Cache, CacheConfig, MainMemory
from repro.stats.counters import Stats


class FixedLatencyBackend:
    def __init__(self, latency=40):
        self.latency = latency

    def access(self, now, line_addr, is_write=False, requestor=0):
        return now + self.latency


def build_core(src, symbols=None, n_threads=1, core_cls=InOrderCore,
               mem_latency=40, dcache_kb=8, **core_kw):
    prog = assemble(src, symbols=symbols)
    mem = MainMemory()
    backend = FixedLatencyBackend(mem_latency)
    ic = Cache(CacheConfig(name="ic", size_bytes=32 * 1024, assoc=4, latency=2),
               backend, Stats("ic"))
    dc = Cache(CacheConfig(name="dc", size_bytes=dcache_kb * 1024, assoc=4,
                           latency=2, mshrs=24), backend, Stats("dc"))
    threads = make_threads(n_threads)
    core = core_cls(prog, ic, dc, mem, threads, **core_kw)
    return core, mem


def test_alu_loop_ipc_near_one():
    # tight ALU loop: 1 instruction/cycle minus branch redirect bubbles
    core, _ = build_core(
        """
        mov x0, #0
        loop:
        add x0, x0, #1
        add x1, x1, #2
        add x2, x2, #3
        add x3, x3, #4
        cmp x0, #200
        b.lt loop
        halt
        """
    )
    stats = core.run()
    assert stats["instructions"] == 2 + 200 * 6 - 1
    ipc = stats["ipc"]
    assert 0.5 < ipc <= 1.0


def test_functional_equivalence_with_golden_model():
    src = """
        mov x0, #0
        mov x1, #0
        loop:
        madd x1, x0, x0, x1
        add x0, x0, #1
        cmp x0, #20
        b.lt loop
        halt
    """
    core, _ = build_core(src)
    core.run()
    golden = run_functional(assemble(src))
    assert core.threads[0].xregs[:4] == golden.state.xregs[:4]


def test_load_miss_stalls_single_thread():
    src = """
        adr x1, data
        ldr x2, [x1, #0]
        add x3, x2, #1
        halt
    """
    core, mem = build_core(src, symbols={"data": 0x10000}, mem_latency=100)
    mem.write_array(0x10000, [41])
    stats = core.run()
    assert core.threads[0].xregs[3] == 42
    assert stats["cycles"] > 100  # miss latency visible
    assert stats["context_switches"] == 0


def test_cache_hit_after_warm():
    src = """
        adr x1, data
        ldr x2, [x1, #0]
        ldr x3, [x1, #8]
        ldr x4, [x1, #16]
        halt
    """
    core, mem = build_core(src, symbols={"data": 0x10000}, mem_latency=100)
    mem.write_array(0x10000, [1, 2, 3])
    stats = core.run()
    # one miss (first load), then same-line hits
    assert core.dcache.stats["misses"] == 1
    assert stats["cycles"] < 260  # icache cold miss + one dcache miss


def test_two_outstanding_loads_overlap():
    # two independent missing loads to different lines overlap with
    # max_outstanding_loads=2 but serialize with 1
    src = """
        adr x1, a
        adr x2, b
        ldr x3, [x1, #0]
        ldr x4, [x2, #0]
        halt
    """
    sym = {"a": 0x10000, "b": 0x20000}
    core2, m2 = build_core(src, symbols=sym, mem_latency=100)
    c2 = core2.run()["cycles"]

    core1, m1 = build_core(
        src, symbols=sym, mem_latency=100, core_cls=TimelineCore,
        config=CoreConfig(name="1ld", max_outstanding_loads=1))
    c1 = core1.run()["cycles"]
    assert c2 < c1  # overlap saves time


def test_store_queue_capacity_backpressure():
    # more back-to-back stores than SQ entries must stall eventually
    body = "\n".join(f"str x0, [x1, #{i * 512}]" for i in range(12))
    src = f"adr x1, out\nmov x0, #7\n{body}\nhalt"
    core, mem = build_core(src, symbols={"out": 0x30000}, mem_latency=200)
    stats = core.run()
    assert stats["sq_full_stalls"] > 0
    for i in range(12):
        assert mem.load(0x30000 + i * 512) == 7


def test_taken_branch_redirect_costs_cycles():
    taken = """
        mov x0, #0
        loop:
        add x0, x0, #1
        cmp x0, #100
        b.lt loop
        halt
    """
    from repro.core.base import CoreConfig, TimelineCore
    c_pen, _ = build_core(taken, core_cls=TimelineCore,
                          config=CoreConfig(name="pen", redirect_penalty=3))
    c_free, _ = build_core(taken, core_cls=TimelineCore,
                           config=CoreConfig(name="free", redirect_penalty=0))
    assert c_pen.run()["cycles"] > c_free.run()["cycles"]


def test_multiply_latency_visible():
    muls = "mov x1, #3\nmov x0, #1\n" + "mul x0, x0, x1\n" * 50 + "halt"
    adds = "mov x1, #3\nmov x0, #1\n" + "add x0, x0, x1\n" * 50 + "halt"
    cm, _ = build_core(muls)
    ca, _ = build_core(adds)
    assert cm.run()["cycles"] > ca.run()["cycles"]
    assert cm.threads[0].xregs[0] == (3 ** 50) & ((1 << 64) - 1)


def test_inorder_core_rejects_multiple_threads():
    with pytest.raises(ValueError):
        build_core("halt", n_threads=2)


def test_stats_finalized():
    core, _ = build_core("mov x0, #1\nhalt")
    stats = core.run()
    assert stats["instructions"] == 1
    assert stats["cycles"] > 0
    assert 0 < stats["ipc"] <= 1
