"""API quality gates: every public item documented; exports importable."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro", "repro.isa", "repro.memory", "repro.core", "repro.virec",
    "repro.compiler", "repro.workloads", "repro.area", "repro.system",
    "repro.stats", "repro.experiments",
]


def iter_modules():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        yield pkg
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                if info.name == "__main__":  # importing it runs the CLI
                    continue
                yield importlib.import_module(f"{pkg_name}.{info.name}")


@pytest.mark.parametrize("module", list(iter_modules()),
                         ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), \
        f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("module", list(iter_modules()),
                         ids=lambda m: m.__name__)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports documented at their home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, \
        f"{module.__name__}: undocumented public items {undocumented}"


def test_all_exports_resolve():
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        for name in getattr(pkg, "__all__", []):
            assert hasattr(pkg, name), f"{pkg_name}.__all__ lists missing {name}"


def test_version_string():
    assert repro.__version__.count(".") == 2
