"""Unit tests for the statistics infrastructure."""

from repro.stats.counters import Stats


def test_inc_and_get():
    s = Stats("x")
    s.inc("a")
    s.inc("a", 2)
    assert s["a"] == 3
    assert s["missing"] == 0
    assert "a" in s and "missing" not in s


def test_set_and_max():
    s = Stats()
    s.set("v", 10)
    s.max("m", 3)
    s.max("m", 7)
    s.max("m", 5)
    assert s["v"] == 10 and s["m"] == 7


def test_ratio():
    s = Stats()
    s.inc("hits", 9)
    s.inc("total", 10)
    assert s.ratio("hits", "total") == 0.9
    assert s.ratio("hits", "nothing") == 0.0


def test_children_and_flat():
    root = Stats("core")
    root.inc("cycles", 100)
    root.child("dcache").inc("misses", 4)
    root.child("dcache").child("mshr").inc("full", 1)
    flat = root.as_dict()
    assert flat["core.cycles"] == 100
    assert flat["core.dcache.misses"] == 4
    assert flat["core.dcache.mshr.full"] == 1


def test_child_identity():
    s = Stats("a")
    assert s.child("b") is s.child("b")
    assert "b" in s.children()


def test_reset_recursive():
    s = Stats("a")
    s.inc("x", 5)
    s.child("b").inc("y", 6)
    s.reset()
    assert s["x"] == 0 and s.child("b")["y"] == 0


def test_flat_unnamed_root():
    s = Stats()
    s.inc("k", 1)
    assert dict(s.flat()) == {"k": 1}
