"""Unit tests for the statistics infrastructure."""

from repro.stats.counters import Stats


def test_inc_and_get():
    s = Stats("x")
    s.inc("a")
    s.inc("a", 2)
    assert s["a"] == 3
    assert s["missing"] == 0
    assert "a" in s and "missing" not in s


def test_set_and_max():
    s = Stats()
    s.set("v", 10)
    s.max("m", 3)
    s.max("m", 7)
    s.max("m", 5)
    assert s["v"] == 10 and s["m"] == 7


def test_ratio():
    s = Stats()
    s.inc("hits", 9)
    s.inc("total", 10)
    assert s.ratio("hits", "total") == 0.9
    assert s.ratio("hits", "nothing") == 0.0


def test_children_and_flat():
    root = Stats("core")
    root.inc("cycles", 100)
    root.child("dcache").inc("misses", 4)
    root.child("dcache").child("mshr").inc("full", 1)
    flat = root.as_dict()
    assert flat["core.cycles"] == 100
    assert flat["core.dcache.misses"] == 4
    assert flat["core.dcache.mshr.full"] == 1


def test_child_identity():
    s = Stats("a")
    assert s.child("b") is s.child("b")
    assert "b" in s.children()


def test_reset_recursive():
    s = Stats("a")
    s.inc("x", 5)
    s.child("b").inc("y", 6)
    s.reset()
    assert s["x"] == 0 and s.child("b")["y"] == 0


def test_flat_unnamed_root():
    s = Stats()
    s.inc("k", 1)
    assert dict(s.flat()) == {"k": 1}


def test_merge_adds_counters_recursively():
    a = Stats("core0")
    a.inc("cycles", 100)
    a.child("vrmu").inc("hits", 10)
    b = Stats("core1")
    b.inc("cycles", 50)
    b.inc("extra", 1)
    b.child("vrmu").inc("hits", 5)
    b.child("bsi").inc("spills", 3)

    out = a.merge(b)
    assert out is a  # chains
    assert a["cycles"] == 150 and a["extra"] == 1
    assert a.child("vrmu")["hits"] == 15
    assert a.child("bsi")["spills"] == 3
    # merge reads but never mutates the source tree
    assert b["cycles"] == 50 and b.child("vrmu")["hits"] == 5


def test_merge_into_empty_copies_structure():
    src = Stats("src")
    src.child("x").child("y").inc("n", 2)
    dst = Stats("agg").merge(src)
    assert dst.as_dict()["agg.x.y.n"] == 2


def test_snapshot_is_relative_and_immutable():
    s = Stats("core7")
    s.inc("cycles", 5)
    s.child("vrmu").inc("hits", 2)
    snap = s.snapshot()
    # keys relative to the node, not prefixed with its own name
    assert snap == {"cycles": 5, "vrmu.hits": 2}
    s.inc("cycles", 10)
    assert snap["cycles"] == 5  # a copy, not a view


def test_delta_against_snapshot():
    s = Stats("c")
    s.inc("cycles", 5)
    snap = s.snapshot()
    s.inc("cycles", 7)
    s.child("vrmu").inc("misses", 3)
    d = s.delta(snap)
    assert d["cycles"] == 7          # elapsed since snapshot
    assert d["vrmu.misses"] == 3     # created after snapshot -> vs zero
    # untouched counters stay present at 0 (stable column set)
    s2 = Stats("c2")
    s2.inc("k", 1)
    snap2 = s2.snapshot()
    assert s2.delta(snap2) == {"k": 0.0}


def test_node_merged_stats():
    from repro.system import RunConfig, run_config

    r = run_config(RunConfig(workload="gather", core_type="virec",
                             n_threads=4, n_per_thread=8, n_cores=2))
    merged = Stats("agg")
    per_core = {name: child for name, child in r.stats.children().items()
                if name.startswith("core")}
    assert len(per_core) == 2
    for child in per_core.values():
        merged.merge(child)
    total_instr = sum(child["instructions"] for child in per_core.values())
    assert merged["instructions"] == total_instr == r.instructions
