"""Fault-injection subsystem: config validation, schemes, determinism."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import build_gather_core  # noqa: E402

from repro.core.cgmt import BankedCore  # noqa: E402
from repro.errors import (FaultEscapeError, FunctionalCheckError,  # noqa: E402
                          SimulationError)
from repro.faults import (SCHEMES, SITES, FaultConfig,  # noqa: E402
                          FaultInjector, get_scheme)
from repro.system import RunConfig, run_config  # noqa: E402


def _cfg(**kw):
    base = dict(workload="gather", core_type="virec", n_threads=4,
                n_per_thread=8)
    base.update(kw)
    return RunConfig(**base)


def _fault_stat(result, name):
    return sum(v for k, v in result.stats.flat()
               if k.endswith(f"faults.{name}"))


# -- FaultConfig --------------------------------------------------------------
class TestFaultConfig:
    def test_defaults_disabled(self):
        assert not FaultConfig().enabled

    def test_any_rate_or_schedule_enables(self):
        assert FaultConfig(rf_rate=1e-6).enabled
        assert FaultConfig(tag_rate=1e-6).enabled
        assert FaultConfig(backing_rate=1e-6).enabled
        assert FaultConfig(scheduled=((10, "rf"),)).enabled

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(rf_rate=-1e-6)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(scheme="chilled")
        for name in ("none", "parity", "ecc", "refill"):
            assert get_scheme(name) is SCHEMES[name]

    def test_bad_schedule_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(scheduled=((10, "l2"),))
        with pytest.raises(ValueError):
            FaultConfig(scheduled=((-1, "rf"),))

    def test_from_spec_forms(self):
        assert not FaultConfig.from_spec(None).enabled
        fc = FaultConfig(rf_rate=1e-4)
        assert FaultConfig.from_spec(fc) is fc
        fc2 = FaultConfig.from_spec({"rf_rate": 1e-4, "scheme": "parity",
                                     "scheduled": [[5, "tag"]]})
        assert fc2.scheme == "parity"
        assert fc2.scheduled == ((5, "tag"),)

    def test_runconfig_validates_fault_spec(self):
        with pytest.raises(ValueError):
            _cfg(faults={"rf_rate": -1.0})
        with pytest.raises(TypeError):
            _cfg(faults={"bogus_field": 1.0})


# -- strict opt-in ------------------------------------------------------------
class TestOptIn:
    def test_rate_zero_bit_identical(self):
        clean = run_config(_cfg())
        gated = run_config(_cfg(faults={"rf_rate": 0.0, "tag_rate": 0.0,
                                        "backing_rate": 0.0}))
        assert (gated.cycles, gated.instructions) == \
               (clean.cycles, clean.instructions)
        assert _fault_stat(gated, "faults_injected") == 0

    def test_rate_zero_banked_bit_identical(self):
        clean = run_config(_cfg(core_type="banked"))
        gated = run_config(_cfg(core_type="banked", faults={"rf_rate": 0.0}))
        assert (gated.cycles, gated.instructions) == \
               (clean.cycles, clean.instructions)


# -- protection schemes -------------------------------------------------------
class TestSchemes:
    def test_parity_detect_only_escapes(self):
        with pytest.raises(FaultEscapeError) as info:
            run_config(_cfg(faults={"rf_rate": 1e-3, "scheme": "parity"}))
        assert info.value.site in SITES
        assert isinstance(info.value, SimulationError)

    def test_ecc_corrects_with_bounded_overhead(self):
        clean = run_config(_cfg())
        r = run_config(_cfg(faults={"rf_rate": 1e-3, "scheme": "ecc"}))
        assert r.correct
        assert _fault_stat(r, "faults_corrected") > 0
        assert _fault_stat(r, "faults_corrected") == \
               _fault_stat(r, "faults_detected")
        assert clean.cycles < r.cycles < clean.cycles * 1.5

    def test_refill_recovers_through_backing_store(self):
        r = run_config(_cfg(faults={"rf_rate": 1e-3, "scheme": "refill"}))
        assert r.correct
        assert _fault_stat(r, "recovery_refills") > 0
        assert _fault_stat(r, "recovery_cycles") > 0

    def test_unprotected_corruption_fails_functional_check(self):
        with pytest.raises(FunctionalCheckError):
            run_config(_cfg(faults={"rf_rate": 1e-3, "scheme": "none"}))

    def test_backing_site_detected_under_spill_pressure(self):
        r = run_config(_cfg(n_threads=8, n_per_thread=16,
                            context_fraction=0.3,
                            faults={"backing_rate": 3e-3, "scheme": "ecc",
                                    "seed": 3}))
        assert r.correct
        assert _fault_stat(r, "faults_injected_backing") > 0
        assert _fault_stat(r, "faults_corrected") > 0

    def test_tag_site_detected(self):
        r = run_config(_cfg(faults={"tag_rate": 1e-3, "scheme": "ecc"}))
        assert r.correct
        assert _fault_stat(r, "faults_injected_tag") > 0


# -- determinism --------------------------------------------------------------
class TestDeterminism:
    def test_same_config_same_outcome(self):
        cfg = _cfg(faults={"rf_rate": 3e-4, "tag_rate": 3e-4,
                           "scheme": "ecc", "seed": 11})
        a, b = run_config(cfg), run_config(cfg)
        assert a.cycles == b.cycles
        for name in ("faults_injected", "faults_detected",
                     "faults_corrected", "recovery_cycles"):
            assert _fault_stat(a, name) == _fault_stat(b, name)

    def test_scheduled_injection_fires_once(self):
        r = run_config(_cfg(faults={"scheduled": [[50, "rf"]],
                                    "scheme": "ecc"}))
        assert r.correct
        assert _fault_stat(r, "faults_injected") == 1
        assert _fault_stat(r, "faults_injected_rf") == 1


# -- direct attachment on a bare core ----------------------------------------
class TestDirectAttach:
    def test_attach_banked_core_and_recover(self):
        core, mem, sym, expected = build_gather_core(BankedCore, n_threads=4,
                                                     n=32)
        inj = FaultInjector.attach(core, FaultConfig(rf_rate=5e-4,
                                                     scheme="ecc", seed=2))
        assert core.fault_hook is inj
        core.run()
        out = [int(v) for v in
               mem.read_array(sym["out"], len(expected))]
        assert out == expected
        assert inj.stats["faults_injected"] > 0

    def test_pending_faults_reported_per_site(self):
        core, *_ = build_gather_core(BankedCore, n_threads=2, n=16)
        inj = FaultInjector.attach(core, FaultConfig(rf_rate=1e-3,
                                                     scheme="ecc"))
        core.run()
        pending = inj.pending_faults()
        assert set(pending) == {"rf", "tag", "backing"}
