"""Every fault-injection test runs under a hard wall-clock limit.

Injection bugs tend to manifest as hangs (a recovery that never completes,
a retry loop that never converges), so rather than depend on the
pytest-timeout plugin each test in this directory is wrapped in the
SIGALRM guard from ``tests/helpers.py``.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import time_limit  # noqa: E402


@pytest.fixture(autouse=True)
def _fault_test_time_limit():
    with time_limit(120.0):
        yield
