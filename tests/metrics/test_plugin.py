"""Per-run metrics wiring: opt-in discipline, digest identity, recorders.

The two hard promises tested here:

* **Digest identity.**  The ``metrics`` RunConfig field is excluded from
  config digests when ``None``, so every pre-metrics checkpoint journal
  and manifest digest stays valid — asserted against literal digest
  values captured before the field existed.
* **Observational purity.**  A run with metrics enabled is cycle-identical
  to the same run without them (the instruments only read commit state).
"""

import pytest

from repro.metrics import MetricsConfig, MetricsRegistry
from repro.system import RunConfig, RunManifest, run_config
from repro.system.manifest import config_key

GATHER_VIREC = RunConfig(workload="gather", core_type="virec", n_threads=4,
                         n_per_thread=8, context_fraction=0.6)
STRIDE_FGMT = RunConfig(workload="stride", core_type="fgmt", n_threads=4,
                        n_per_thread=8)

#: digests captured before the ``metrics`` field was added to RunConfig;
#: if any of these change, existing checkpoints/manifests break
PRE_METRICS_KEYS = {
    "gather_virec": "8b3e8662c560cc8e",
    "stride_fgmt": "67f444c0002cd61d",
}
PRE_METRICS_MANIFEST_DIGEST = "0a91e5553e244e12"


# -- digest identity ---------------------------------------------------------
def test_config_keys_unchanged_by_metrics_field():
    assert config_key(GATHER_VIREC) == PRE_METRICS_KEYS["gather_virec"]
    assert config_key(STRIDE_FGMT) == PRE_METRICS_KEYS["stride_fgmt"]


def test_manifest_digest_unchanged_by_metrics_field():
    m = RunManifest()
    m.add(run_config(GATHER_VIREC))
    m.add(run_config(STRIDE_FGMT))
    assert m.results_digest == PRE_METRICS_MANIFEST_DIGEST


def test_enabled_metrics_changes_config_key_only_explicitly():
    on = RunConfig(workload="gather", core_type="virec", metrics=True)
    off = RunConfig(workload="gather", core_type="virec")
    assert config_key(on) != config_key(off)


# -- observational purity ----------------------------------------------------
def test_metrics_run_is_cycle_identical():
    base = RunConfig(workload="gather", core_type="virec", n_threads=4,
                     n_per_thread=8)
    plain = run_config(base)
    metered = run_config(RunConfig(**{**base.__dict__, "metrics": True}))
    assert metered.cycles == plain.cycles
    assert metered.instructions == plain.instructions
    assert metered.ipc == plain.ipc
    assert plain.metrics is None
    assert metered.metrics is not None


def test_commit_counter_tracks_committed_work():
    r = run_config(RunConfig(workload="gather", core_type="virec",
                             n_threads=4, n_per_thread=8, metrics=True))
    reg = r.metrics.registry
    committed = reg.get("sim_instructions_committed")
    # the counter sees every commit (incl. bookkeeping ops the result's
    # instruction total may classify differently), never fewer
    assert committed.total() >= r.instructions > 0
    assert reg.get("sim_cycles").value(core="0") == r.cycles
    assert reg.get("sim_vrmu_hits").total() > 0


def test_by_kind_labels():
    r = run_config(RunConfig(workload="gather", core_type="virec",
                             n_threads=2, n_per_thread=8,
                             metrics={"by_kind": True}))
    c = r.metrics.registry.get("sim_instructions_committed")
    kinds = {key.split('kind="')[1].rstrip('"')
             for key in c.series() if 'kind="' in key}
    assert {"load", "alu"} <= kinds


def test_snapshot_merges_into_fleet_registry():
    r = run_config(RunConfig(workload="gather", core_type="virec",
                             n_threads=2, n_per_thread=8, metrics=True))
    fleet = MetricsRegistry()
    fleet.merge(r.metrics.snapshot())
    fleet.merge(r.metrics.snapshot())
    assert (fleet.get("sim_instructions_committed").total()
            == 2 * r.metrics.registry.get("sim_instructions_committed").total())


# -- config validation -------------------------------------------------------
def test_metrics_config_from_spec():
    assert MetricsConfig.from_spec(None).enabled is False
    assert MetricsConfig.from_spec(True).enabled is True
    assert MetricsConfig.from_spec({"by_kind": True}).by_kind is True
    with pytest.raises(ValueError):
        MetricsConfig.from_spec({"nope": 1})
    with pytest.raises(TypeError):
        MetricsConfig.from_spec("yes")
    with pytest.raises(ValueError):
        MetricsConfig(commits=False, by_kind=True)


def test_run_config_validates_metrics_eagerly():
    with pytest.raises(ValueError):
        RunConfig(workload="gather", metrics={"bogus": True})


def test_ooo_rejects_metrics():
    with pytest.raises(Exception) as err:
        run_config(RunConfig(workload="gather", core_type="ooo",
                             metrics=True))
    assert "metrics" in str(err.value)
