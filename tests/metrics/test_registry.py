"""The metrics registry: typed families, labels, snapshot/merge contract."""

import json

import pytest

from repro.metrics import (Counter, Gauge, Histogram, MetricsRegistry)


# -- counters ----------------------------------------------------------------
def test_counter_inc_and_labels():
    c = Counter("rows_total")
    c.inc()
    c.inc(2, status="ok")
    c.inc(status="ok")
    assert c.value() == 1
    assert c.value(status="ok") == 3
    assert c.value(status="fail") == 0
    assert c.total() == 4


def test_counter_rejects_negative():
    c = Counter("rows_total")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_counter_label_order_is_canonical():
    c = Counter("x")
    c.inc(a=1, b=2)
    c.inc(b=2, a=1)
    assert c.value(a=1, b=2) == 2
    assert list(c.series()) == ['a="1",b="2"']


def test_bad_metric_name_rejected():
    for name in ("", "has space", 'q"uote', "br{ace"):
        with pytest.raises(ValueError):
            Counter(name)


# -- gauges ------------------------------------------------------------------
def test_gauge_agg_rules():
    for agg, expected in (("max", 9.0), ("sum", 12.0), ("last", 3.0)):
        a, b = Gauge("g", agg=agg), Gauge("g", agg=agg)
        a.set(9, core="0")
        b.set(3, core="0")
        a.merge_series(b.series())
        assert a.value(core="0") == expected, agg


def test_gauge_unknown_agg():
    with pytest.raises(ValueError):
        Gauge("g", agg="median")


# -- histograms --------------------------------------------------------------
def test_histogram_buckets_and_overflow():
    h = Histogram("lat", buckets=(1, 10, 100))
    for v in (0.5, 1, 5, 50, 5000):
        h.observe(v)
    assert h.count() == 5
    assert h.mean() == pytest.approx((0.5 + 1 + 5 + 50 + 5000) / 5)
    counts = h.series()[""]["counts"]
    assert counts == [2, 1, 1, 1]  # <=1, <=10, <=100, +Inf


def test_histogram_merge_is_bucketwise():
    a, b = Histogram("lat", buckets=(1, 10)), Histogram("lat", buckets=(1, 10))
    a.observe(0.5, core="0")
    b.observe(5, core="0")
    b.observe(500, core="0")
    a.merge_series(b.series())
    assert a.count(core="0") == 3
    assert a.series()['core="0"']["counts"] == [1, 1, 1]


def test_histogram_bucket_mismatch_rejected():
    a, b = Histogram("lat", buckets=(1, 10)), Histogram("lat", buckets=(1,))
    b.observe(3)
    with pytest.raises(ValueError):
        a.merge_series(b.series())


# -- registry ----------------------------------------------------------------
def test_family_constructors_idempotent():
    reg = MetricsRegistry()
    assert reg.counter("c") is reg.counter("c")
    with pytest.raises(ValueError):
        reg.gauge("c")  # kind conflict
    with pytest.raises(ValueError):
        reg.gauge("g", agg="max") and reg.gauge("g", agg="sum")


def test_snapshot_is_sorted_json():
    reg = MetricsRegistry()
    reg.counter("zz").inc(core="1")
    reg.counter("aa").inc(core="0")
    snap = reg.snapshot()
    assert list(snap["metrics"]) == ["aa", "zz"]
    # a snapshot must survive a JSON round trip unchanged
    assert json.loads(json.dumps(snap, sort_keys=True)) == snap


def _loaded_registry(counter_val, gauge_val, hist_vals):
    reg = MetricsRegistry()
    reg.counter("rows").inc(counter_val, status="ok")
    reg.gauge("peak").set(gauge_val)
    h = reg.histogram("lat", buckets=(1, 10, 100))
    for v in hist_vals:
        h.observe(v)
    return reg


def test_merge_order_independent():
    """Counter/histogram merge is associative and commutative."""
    parts = [_loaded_registry(1, 3, [0.5]),
             _loaded_registry(2, 9, [5, 50]),
             _loaded_registry(4, 6, [5000])]
    snaps = [p.snapshot() for p in parts]
    fwd = MetricsRegistry()
    for s in snaps:
        fwd.merge(s)
    rev = MetricsRegistry()
    for s in reversed(snaps):
        rev.merge(s)
    assert fwd.snapshot() == rev.snapshot()
    assert fwd.counter("rows").value(status="ok") == 7
    assert fwd.gauge("peak").value() == 9  # max agg
    assert fwd.histogram("lat", buckets=(1, 10, 100)).count() == 4


def test_merge_creates_families_from_snapshot():
    snap = _loaded_registry(2, 5, [3]).snapshot()
    reg = MetricsRegistry.from_snapshot(snap)
    assert "rows" in reg and "peak" in reg and "lat" in reg
    assert reg.snapshot() == snap


def test_merge_kind_conflict_rejected():
    reg = MetricsRegistry()
    reg.counter("x").inc()
    other = MetricsRegistry()
    other.gauge("x").set(1)
    with pytest.raises(ValueError):
        reg.merge(other)


def test_merge_registry_and_empty():
    reg = MetricsRegistry()
    reg.counter("x").inc()
    assert reg.merge({}) is reg
    other = MetricsRegistry()
    other.counter("x").inc(4)
    reg.merge(other)
    assert reg.counter("x").value() == 5


def test_render_text_exposition():
    reg = _loaded_registry(2, 5, [3])
    text = reg.render_text()
    assert "# TYPE rows counter" in text
    assert 'rows{status="ok"} 2' in text
    assert "lat_count 1" in text and "lat_sum 3" in text
