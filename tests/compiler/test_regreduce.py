"""Tests for the register-reduction pass (Section 4.2)."""

import pytest

from repro.compiler import (
    RegReduceError,
    SPILL_BASE_REG,
    TEMP_REGS,
    inner_loop_regs,
    reduce_registers,
    used_regs,
)
from repro.isa import X, assemble, run_functional
from repro.isa.func_sim import FunctionalSimulator
from repro.memory.main_memory import MainMemory

SPILL_AREA = 0x0070_0000

NESTED = """
start:
    mov x10, #0            ; outer accumulator (outer-only)
    mov x11, #3            ; outer-only constant
    mov x12, #0            ; outer loop counter (outer-only)
outer:
    mov x3, #0
    mov x4, #0
inner:
    add x4, x4, x3
    add x3, x3, #1
    cmp x3, #8
    b.lt inner
    add x10, x10, x4
    add x10, x10, x11
    add x12, x12, #1
    cmp x12, #10
    b.lt outer
    str x10, [x0, #0]
    halt
"""


def build(src=NESTED, out=0x0060_0000):
    p = assemble(src, symbols={"out": out})
    return p


def run_with_out(prog, out=0x0060_0000):
    mem = MainMemory()
    sim = FunctionalSimulator(prog, mem)
    sim.state.write(X(0), out)
    sim.run()
    return mem.load(out), sim.instructions_executed


def test_reduction_preserves_semantics():
    p = build()
    base_val, base_count = run_with_out(p)
    red = reduce_registers(p, SPILL_AREA)
    new_val, new_count = run_with_out(red.program)
    assert new_val == base_val
    assert red.spilled  # something was demoted


def test_spilled_registers_leave_the_working_set():
    p = build()
    red = reduce_registers(p, SPILL_AREA)
    remaining = used_regs(red.program) - {SPILL_BASE_REG.flat} - \
        {r.flat for r in TEMP_REGS}
    for flat in red.spilled:
        assert flat not in remaining


def test_inner_loop_untouched():
    p = build()
    red = reduce_registers(p, SPILL_AREA)
    assert inner_loop_regs(red.program) >= inner_loop_regs(p) - set(red.spilled)
    for flat in red.spilled:
        assert flat not in inner_loop_regs(p)


def test_dynamic_overhead_below_paper_bound():
    """Section 4.2: reduction adds negligible dynamic instructions.

    The paper reports <0.1% on its full-length workloads; our miniature
    kernels run far fewer inner iterations, so the bound scales with the
    outer/inner iteration ratio — we assert the overhead is proportional to
    outer-loop executions only."""
    p = build()
    _, base_count = run_with_out(p)
    red = reduce_registers(p, SPILL_AREA)
    _, new_count = run_with_out(red.program)
    overhead = (new_count - base_count) / base_count
    # 10 outer iterations x ~6 spill ops vs ~400 total instructions
    assert overhead < 0.25
    # and per-outer-iteration cost is constant (no inner-loop pollution)
    # 8 spill ops per outer iteration + prologue + init stores + final reload
    assert (new_count - base_count) <= 10 * 8 + 6


def test_long_running_overhead_is_negligible():
    """With realistic inner-loop trip counts the overhead drops under 0.1%."""
    src = NESTED.replace("cmp x3, #8", "cmp x3, #4000")
    p = build(src)
    _, base_count = run_with_out(p)
    red = reduce_registers(p, SPILL_AREA)
    _, new_count = run_with_out(red.program)
    assert (new_count - base_count) / base_count < 0.001


def test_reserved_register_conflict_detected():
    src = "start:\nmov x25, #1\nloop:\nadd x0, x0, #1\ncmp x0, #3\nb.lt loop\nhalt"
    with pytest.raises(RegReduceError):
        reduce_registers(assemble(src), SPILL_AREA)


def test_no_spills_needed_is_identity():
    src = "start:\nloop:\nadd x0, x0, #1\ncmp x0, #3\nb.lt loop\nhalt"
    p = assemble(src)
    red = reduce_registers(p, SPILL_AREA)
    assert red.spilled == ()
    assert red.program is p


def test_extra_spills_forced():
    p = build()
    red = reduce_registers(p, SPILL_AREA, extra_spills={X(11).flat, X(12).flat})
    assert X(11).flat in red.spilled and X(12).flat in red.spilled
    val, _ = run_with_out(red.program)
    base, _ = run_with_out(p)
    assert val == base


def test_preserve_protects_registers():
    p = build()
    red = reduce_registers(p, SPILL_AREA, preserve={0, 1, X(10).flat})
    assert X(10).flat not in red.spilled


def test_branch_targets_remapped():
    p = build()
    red = reduce_registers(p, SPILL_AREA)
    for inst in red.program.instructions:
        if inst.is_branch and inst.target is not None:
            assert 0 <= inst.target < len(red.program)
            # targets still land on loop heads
    val, _ = run_with_out(red.program)
    base, _ = run_with_out(p)
    assert val == base
