"""Tests for loop detection and register-utilization analysis."""

from repro.compiler import (
    find_loops,
    inner_loop_regs,
    innermost_loops,
    outer_only_regs,
    used_regs,
    utilization,
)
from repro.isa import X, assemble

NESTED = """
start:
    mov x10, #0            ; outer counter
outer:
    mov x3, #0             ; inner counter
    mov x11, #5            ; outer-only constant
inner:
    add x4, x4, x3
    add x3, x3, #1
    cmp x3, #8
    b.lt inner
    add x10, x10, x11
    cmp x10, #20
    b.lt outer
    halt
"""


def test_find_loops_nested():
    p = assemble(NESTED)
    loops = find_loops(p)
    assert len(loops) == 2
    inner = innermost_loops(p)
    assert len(inner) == 1
    assert inner[0].head == p.labels["inner"]


def test_inner_loop_regs():
    p = assemble(NESTED)
    inner = inner_loop_regs(p)
    assert X(3).flat in inner and X(4).flat in inner
    assert X(10).flat not in inner and X(11).flat not in inner


def test_outer_only_regs():
    p = assemble(NESTED)
    outer = outer_only_regs(p)
    assert outer == {X(10).flat, X(11).flat}


def test_utilization_report():
    p = assemble(NESTED)
    r = utilization(p, "nested", total_context=64)
    assert r.used == 4 and r.inner == 2
    assert abs(r.inner_fraction - 2 / 64) < 1e-9
    assert abs(r.inner_of_used - 0.5) < 1e-9


def test_single_loop_program():
    p = assemble("start:\nmov x0, #0\nloop:\nadd x0, x0, #1\ncmp x0, #3\nb.lt loop\nhalt")
    assert len(innermost_loops(p)) == 1
    assert not outer_only_regs(p) - {X(0).flat}  # x0 is in the loop
    assert X(0).flat in inner_loop_regs(p)


def test_no_loops():
    p = assemble("mov x0, #1\nhalt")
    assert find_loops(p) == []
    assert inner_loop_regs(p) == set()
    assert used_regs(p) == {X(0).flat}


def test_workload_suite_utilization_matches_figure2():
    """Figure 2: many kernels use <30% of their context in the inner loop."""
    import repro.workloads as wl
    fractions = []
    for spec in wl.all_workloads():
        inst = spec.build(n_threads=2, n_per_thread=8)
        r = utilization(inst.program, spec.name)
        fractions.append(r.inner_fraction)
        assert 0 < r.inner_fraction < 0.5
    assert sum(f < 0.30 for f in fractions) >= len(fractions) // 2
