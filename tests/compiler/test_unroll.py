"""Tests for the counted-loop unroller."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import FixedLatencyBackend  # noqa: E402

from repro.compiler.unroll import unroll_program  # noqa: E402
from repro.core.cgmt import make_threads  # noqa: E402
from repro.core.inorder import InOrderCore  # noqa: E402
from repro.isa import X, assemble  # noqa: E402
from repro.isa.func_sim import FunctionalSimulator  # noqa: E402
from repro.memory import Cache, CacheConfig, MainMemory  # noqa: E402
from repro.stats.counters import Stats  # noqa: E402

SUM_LOOP = """
start:
    mov x0, #0
    mov x1, #0
loop:
    add x0, x0, x1
    add x1, x1, #1
    cmp x1, #{n}
    b.lt loop
    halt
"""


def run_prog(prog, mem=None):
    sim = FunctionalSimulator(prog, mem or MainMemory())
    sim.run()
    return sim


@pytest.mark.parametrize("n", [0, 1, 3, 4, 7, 8, 16, 17])
def test_unrolled_sum_exact_for_any_trip_count(n):
    prog = assemble(SUM_LOOP.format(n=n))
    res = unroll_program(prog, factor=4)
    assert res.unrolled_loops == 1
    base = run_prog(prog)
    opt = run_prog(res.program)
    assert opt.state.xregs[0] == base.state.xregs[0] == sum(range(n))


@pytest.mark.parametrize("factor", [2, 3, 4, 8])
def test_factors(factor):
    prog = assemble(SUM_LOOP.format(n=13))
    res = unroll_program(prog, factor=factor)
    assert run_prog(res.program).state.xregs[0] == sum(range(13))


def test_factor_validation():
    prog = assemble(SUM_LOOP.format(n=4))
    with pytest.raises(ValueError):
        unroll_program(prog, factor=1)


def test_no_match_returns_original():
    # loop with a non-constant step is left alone
    src = """
    start:
        mov x0, #0
        mov x1, #0
        mov x2, #1
    loop:
        add x0, x0, x1
        add x1, x1, x2
        cmp x1, #8
        b.lt loop
        halt
    """
    prog = assemble(src)
    res = unroll_program(prog)
    assert res.unrolled_loops == 0
    assert res.program is prog


def test_scratch_conflict_prevents_unroll():
    src = "start:\nmov x27, #1\nmov x1, #0\nloop:\nadd x1, x1, #1\ncmp x1, #8\nb.lt loop\nhalt"
    prog = assemble(src)
    res = unroll_program(prog)
    assert res.unrolled_loops == 0


def test_memory_loop_unrolls_correctly():
    mem = MainMemory()
    mem.write_array(0x1000, list(range(10, 30)))
    src = """
    start:
        adr x1, a
        adr x2, b
        mov x3, #0
    loop:
        ldr x4, [x1, x3, lsl #3]
        add x4, x4, #100
        str x4, [x2, x3, lsl #3]
        add x3, x3, #1
        cmp x3, #17
        b.lt loop
        halt
    """
    prog = assemble(src, symbols={"a": 0x1000, "b": 0x2000})
    res = unroll_program(prog, factor=4)
    assert res.unrolled_loops == 1
    run_prog(res.program, mem)
    assert mem.read_array(0x2000, 17) == list(range(110, 127))


def test_unrolling_reduces_dynamic_branches():
    prog = assemble(SUM_LOOP.format(n=64))
    res = unroll_program(prog, factor=4)
    base = run_prog(prog).instructions_executed
    opt = run_prog(res.program).instructions_executed
    # fewer cmp/branch executions despite guard overhead
    assert opt < base


def test_unrolling_improves_timed_inorder_ipc():
    prog = assemble(SUM_LOOP.format(n=256))
    res = unroll_program(prog, factor=4)

    def timed(p):
        be = FixedLatencyBackend(40)
        ic = Cache(CacheConfig(name="ic", size_bytes=32 * 1024, assoc=4,
                               latency=2), be, Stats("ic"))
        dc = Cache(CacheConfig(name="dc", size_bytes=8 * 1024, assoc=4,
                               latency=2), be, Stats("dc"))
        core = InOrderCore(p, ic, dc, MainMemory(), make_threads(1))
        return core.run()["cycles"]

    assert timed(res.program) < timed(prog)


def test_workload_gather_unrolls_and_stays_correct():
    import repro.workloads as wl
    inst = wl.get("gather").build(n_threads=2, n_per_thread=11)
    res = unroll_program(inst.program, factor=4)
    assert res.unrolled_loops == 1
    for tid in range(2):
        sim = FunctionalSimulator(res.program, inst.memory)
        sim.state.pc = res.program.entry
        for reg, val in inst.init_regs[tid].items():
            sim.state.write(reg, val)
        sim.run()
    assert inst.check()
