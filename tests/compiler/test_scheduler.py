"""Tests for the basic-block list scheduler."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from helpers import FixedLatencyBackend  # noqa: E402

from repro.compiler.scheduler import schedule_program  # noqa: E402
from repro.core.cgmt import ContextLayout, make_threads  # noqa: E402
from repro.core.inorder import InOrderCore  # noqa: E402
from repro.isa import X, assemble, run_functional  # noqa: E402
from repro.memory import Cache, CacheConfig, MainMemory  # noqa: E402
from repro.stats.counters import Stats  # noqa: E402


def run_timed(prog, mem=None, mem_latency=40):
    mem = mem or MainMemory()
    be = FixedLatencyBackend(mem_latency)
    ic = Cache(CacheConfig(name="ic", size_bytes=32 * 1024, assoc=4,
                           latency=2), be, Stats("ic"))
    dc = Cache(CacheConfig(name="dc", size_bytes=8 * 1024, assoc=4, latency=2,
                           mshrs=24), be, Stats("dc"))
    core = InOrderCore(prog, ic, dc, mem, make_threads(1))
    return core, core.run()


LOAD_USE = """
start:
    adr x1, a
    adr x2, b
    mov x9, #0
loop:
    ldr x3, [x1, x9, lsl #3]
    add x4, x3, #1          ; immediate consumer of the load
    mov x5, #10             ; independent work that could fill the shadow
    mov x6, #11
    mov x7, #12
    str x4, [x2, x9, lsl #3]
    add x9, x9, #1
    cmp x9, #32
    b.lt loop
    halt
"""


def build_load_use():
    mem = MainMemory()
    mem.write_array(0x10000, list(range(100, 132)))
    return assemble(LOAD_USE, symbols={"a": 0x10000, "b": 0x20000}), mem


def test_semantics_preserved():
    prog, mem = build_load_use()
    sched = schedule_program(prog).program
    m1, m2 = MainMemory(), MainMemory()
    m1.write_array(0x10000, list(range(100, 132)))
    m2.write_array(0x10000, list(range(100, 132)))
    from repro.isa.func_sim import FunctionalSimulator
    FunctionalSimulator(prog, m1).run()
    FunctionalSimulator(sched, m2).run()
    assert m1.read_array(0x20000, 32) == m2.read_array(0x20000, 32)


def test_scheduler_moves_independent_work_into_load_shadow():
    prog, mem = build_load_use()
    result = schedule_program(prog)
    assert result.moved_instructions > 0
    # the immediate consumer is no longer adjacent to its load
    body = result.program.instructions
    for pc, inst in enumerate(body[:-1]):
        if inst.is_load and inst.rd == X(3):
            assert body[pc + 1].rd != X(4), "consumer still in the load shadow"


def test_scheduling_improves_inorder_cycles():
    prog, mem1 = build_load_use()
    _, base = run_timed(prog, mem1)
    sched = schedule_program(prog).program
    _, mem2 = build_load_use()[0], None
    prog2, mem2 = build_load_use()
    sched2 = schedule_program(prog2).program
    _, opt = run_timed(sched2, mem2)
    assert opt["cycles"] <= base["cycles"]
    assert opt["instructions"] == base["instructions"]


def test_branches_stay_at_block_ends():
    prog, _ = build_load_use()
    sched = schedule_program(prog).program
    for pc, inst in enumerate(sched.instructions):
        if inst.is_branch and inst.target is not None:
            # the target is still a block leader (a label position)
            assert inst.target in set(sched.labels.values()) | {0}


def test_store_load_order_preserved():
    src = """
        adr x1, buf
        mov x2, #1
        str x2, [x1, #0]
        ldr x3, [x1, #0]     ; must still read 1
        mov x4, #99
        halt
    """
    prog = assemble(src, symbols={"buf": 0x30000})
    sched = schedule_program(prog).program
    sim = run_functional(sched)
    assert sim.state.xregs[3] == 1


def test_flags_dependences_respected():
    src = """
        mov x0, #5
        cmp x0, #3
        mov x1, #7          ; independent
        b.gt big
        mov x2, #111
        halt
    big:
        mov x2, #222
        halt
    """
    prog = assemble(src)
    sched = schedule_program(prog).program
    assert run_functional(sched).state.xregs[2] == 222


def test_workload_kernels_survive_scheduling():
    import repro.workloads as wl
    from repro.isa.func_sim import FunctionalSimulator
    for name in ("gather", "spmv", "histogram", "meabo"):
        inst = wl.get(name).build(n_threads=2, n_per_thread=8)
        sched = schedule_program(inst.program).program
        for tid in range(2):
            sim = FunctionalSimulator(sched, inst.memory)
            sim.state.pc = sched.entry
            for reg, val in inst.init_regs[tid].items():
                sim.state.write(reg, val)
            sim.run()
        assert inst.check(), f"{name} broken by scheduling"
