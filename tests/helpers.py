"""Shared test harness: builds kernels + cores over a simple memory stack."""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager

import numpy as np

from repro.core.cgmt import ContextLayout, make_threads
from repro.isa import X, assemble
from repro.memory import Cache, CacheConfig, MainMemory
from repro.stats.counters import Stats


@contextmanager
def time_limit(seconds: float = 120.0):
    """Fail a test that runs longer than ``seconds`` (no pytest-timeout dep).

    SIGALRM-based, so it only guards on the main thread of a POSIX run;
    elsewhere it is a no-op.
    """
    usable = (hasattr(signal, "SIGALRM")
              and threading.current_thread() is threading.main_thread())
    if not usable:
        yield
        return

    def _expire(signum, frame):
        raise TimeoutError(f"test exceeded its {seconds}s time limit")

    previous = signal.signal(signal.SIGALRM, _expire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


class FixedLatencyBackend:
    """Constant-latency memory behind the L1s (keeps unit tests deterministic)."""

    def __init__(self, latency: int = 80):
        self.latency = latency
        self.accesses = []

    def access(self, now, line_addr, is_write=False, requestor=0):
        self.accesses.append((now, line_addr, is_write))
        return now + self.latency


GATHER_SRC = """
start:
    ; x0 = tid, chunk/idx/data/out are symbols
    mov  x2, #chunk
    mul  x3, x0, x2        ; i = tid * chunk
    add  x4, x3, x2        ; end
    adr  x5, idx
    adr  x6, data
    adr  x7, out
loop:
    ldr  x8, [x5, x3, lsl #3]
    ldr  x9, [x6, x8, lsl #3]
    str  x9, [x7, x3, lsl #3]
    add  x3, x3, #1
    cmp  x3, x4
    b.lt loop
    halt
"""

#: flat indices of the registers the gather kernel touches (x0, x2..x9)
GATHER_REGS = (0, 2, 3, 4, 5, 6, 7, 8, 9)


def build_gather_core(core_cls, n_threads=4, n=64, mem_latency=80, seed=1,
                      dcache_kb=8, data_n=4096, **core_kw):
    """Assemble the gather kernel, build a core of ``core_cls``, return
    ``(core, mem, symbols, expected_output)``."""
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, data_n, size=n)
    data = rng.integers(0, 1 << 30, size=data_n)
    mem = MainMemory()
    sym = {"idx": 0x100000, "data": 0x200000, "out": 0x300000,
           "chunk": max(1, n // n_threads)}
    mem.write_array(sym["idx"], idx)
    mem.write_array(sym["data"], data)
    prog = assemble(GATHER_SRC, symbols=sym)
    backend = FixedLatencyBackend(mem_latency)
    ic = Cache(CacheConfig(name="ic", size_bytes=32 * 1024, assoc=4, latency=2),
               backend, Stats("ic"))
    dc = Cache(CacheConfig(name="dc", size_bytes=dcache_kb * 1024, assoc=4,
                           latency=2, mshrs=24), backend, Stats("dc"))
    init = [{X(0): t, X(1): n_threads} for t in range(n_threads)]
    threads = make_threads(n_threads, init_regs=init)
    core_kw.setdefault("layout", ContextLayout(used_regs=GATHER_REGS))
    core = core_cls(prog, ic, dc, mem, threads, **core_kw)
    expected = [int(data[i]) for i in idx]
    return core, mem, sym, expected
