"""Behavioural tests specific to the extended kernels (bfs, stencil,
hash_probe, transpose) beyond the generic correctness matrix."""

import numpy as np
import pytest

import repro.workloads as wl
from repro.isa.func_sim import FunctionalSimulator


def run_functional(inst):
    for tid in range(inst.n_threads):
        sim = FunctionalSimulator(inst.program, inst.memory)
        sim.state.pc = inst.program.entry
        for reg, val in inst.init_regs[tid].items():
            sim.state.write(reg, val)
        sim.run()
    return inst


# -- bfs_step ---------------------------------------------------------------

def test_bfs_every_frontier_vertex_expanded():
    inst = run_functional(wl.get("bfs_step").build(n_threads=4, n_per_thread=8))
    assert inst.check()


def test_bfs_parents_point_to_frontier():
    inst = wl.get("bfs_step").build(n_threads=2, n_per_thread=6, seed=99)
    frontier = set(inst.memory.read_array(inst.symbols["frontier"], 12))
    run_functional(inst)
    # every written parent is a frontier vertex
    base = inst.symbols["parent"]
    parents = {inst.memory.load(base + u * 8)
               for u in range(2000) if inst.memory.load(base + u * 8)}
    assert parents <= frontier


def test_bfs_degree_variation():
    for degree in (1, 2, 6):
        inst = run_functional(wl.get("bfs_step").build(
            n_threads=2, n_per_thread=4, degree=degree))
        assert inst.check()


# -- stencil -----------------------------------------------------------------

def test_stencil_values_match_numpy():
    inst = run_functional(wl.get("stencil").build(n_threads=2, n_per_thread=16))
    assert inst.check()


def test_stencil_boundary_reads_only_within_padded_array():
    inst = wl.get("stencil").build(n_threads=2, n_per_thread=8)
    n = 16
    a = np.array(inst.memory.read_array(inst.symbols["a"], n + 2))
    run_functional(inst)
    out = np.array(inst.memory.read_array(inst.symbols["out"], n))
    assert np.allclose(out, 0.25 * a[:-2] + 0.5 * a[1:-1] + 0.25 * a[2:])


# -- hash_probe -----------------------------------------------------------------

def test_hash_probe_hits_and_misses_mixed():
    inst = run_functional(wl.get("hash_probe").build(n_threads=2,
                                                     n_per_thread=32))
    assert inst.check()
    out = inst.memory.read_array(inst.symbols["out"], 64)
    assert any(v == 0 for v in out), "expected some absent keys"
    assert any(v != 0 for v in out), "expected some present keys"


def test_hash_probe_value_function():
    inst = run_functional(wl.get("hash_probe").build(n_threads=1,
                                                     n_per_thread=16))
    keys = inst.memory.read_array(inst.symbols["keys"], 16)
    out = inst.memory.read_array(inst.symbols["out"], 16)
    for k, v in zip(keys, out):
        if v:
            assert v == k * 7 + 1


def test_hash_probe_table_size_validation():
    with pytest.raises(ValueError):
        wl.get("hash_probe").build(table_size=1000)


def test_hash_probe_high_fill_still_terminates():
    inst = run_functional(wl.get("hash_probe").build(
        n_threads=2, n_per_thread=8, table_size=256, fill=0.9))
    assert inst.check()


# -- transpose --------------------------------------------------------------------

def test_transpose_matches_numpy():
    inst = run_functional(wl.get("transpose").build(n_threads=2,
                                                    n_per_thread=4, width=8))
    assert inst.check()


def test_transpose_shape_parameterization():
    for width in (4, 16, 32):
        inst = run_functional(wl.get("transpose").build(
            n_threads=2, n_per_thread=2, width=width))
        assert inst.check()


# -- timing sanity on the new kernels -------------------------------------------

def test_pointer_heavy_kernels_have_low_ipc():
    """hash_probe/bfs (dependent loads) should exhibit lower single-thread
    IPC than the streaming stencil."""
    from repro.system import RunConfig, run_config

    def ipc(workload):
        return run_config(RunConfig(workload=workload, core_type="banked",
                                    n_threads=1, n_per_thread=16)).ipc

    assert ipc("stencil") > ipc("hash_probe")
    assert ipc("stencil") > ipc("bfs_step")


def test_multithreading_helps_new_kernels():
    from repro.system import RunConfig, run_config
    for workload in ("bfs_step", "hash_probe", "transpose"):
        one = run_config(RunConfig(workload=workload, core_type="virec",
                                   n_threads=1, n_per_thread=32,
                                   context_fraction=1.5))
        eight = run_config(RunConfig(workload=workload, core_type="virec",
                                     n_threads=8, n_per_thread=4,
                                     context_fraction=0.8))
        assert eight.cycles < one.cycles, workload
