"""Workload suite tests: every kernel is functionally correct on the golden
model and on every core type (the cross-cutting integration matrix)."""

import pytest

import repro.workloads as wl
from repro.isa.func_sim import FunctionalSimulator
from repro.memory import Cache, CacheConfig
from repro.stats.counters import Stats

ALL = wl.names()


class FixedLatencyBackend:
    def __init__(self, latency=60):
        self.latency = latency

    def access(self, now, line_addr, is_write=False, requestor=0):
        return now + self.latency


def make_caches():
    be = FixedLatencyBackend()
    ic = Cache(CacheConfig(name="ic", size_bytes=32 * 1024, assoc=4, latency=2),
               be, Stats("ic"))
    dc = Cache(CacheConfig(name="dc", size_bytes=8 * 1024, assoc=4, latency=2,
                           mshrs=24), be, Stats("dc"))
    return ic, dc


def run_functional_instance(inst):
    """Run every thread of a workload instance on the golden model."""
    for tid in range(inst.n_threads):
        sim = FunctionalSimulator(inst.program, inst.memory)
        sim.state.pc = inst.program.entry
        for reg, val in inst.init_regs[tid].items():
            sim.state.write(reg, val)
        sim.run()
    return inst


def test_registry_contents():
    assert set(ALL) >= {"gather", "scatter", "gather_scatter", "stride",
                        "triad", "vecadd", "reduction", "meabo",
                        "pointer_chase", "spmv", "histogram"}
    spec = wl.get("gather")
    assert spec.suite == "spatter"
    with pytest.raises(KeyError):
        wl.get("nope")


@pytest.mark.parametrize("name", ALL)
def test_functional_correctness(name):
    inst = wl.get(name).build(n_threads=4, n_per_thread=16)
    run_functional_instance(inst)
    assert inst.check(), f"{name} outputs wrong on golden model"


@pytest.mark.parametrize("name", ALL)
def test_metadata_sane(name):
    inst = wl.get(name).build(n_threads=4, n_per_thread=8)
    assert set(inst.active_regs) <= set(inst.used_regs)
    assert 2 <= len(inst.active_regs) <= 16
    assert len(inst.used_regs) <= 24
    # every register the program actually names is declared in used_regs
    named = set()
    for i in inst.program.instructions:
        named.update(r.flat for r in i.regs)
    assert named <= set(inst.used_regs) | {0, 1}, f"{name} under-declares regs"


@pytest.mark.parametrize("name", ALL)
def test_banked_core_runs_all(name):
    from repro.core.cgmt import BankedCore
    inst = wl.get(name).build(n_threads=4, n_per_thread=12)
    ic, dc = make_caches()
    core = BankedCore(inst.program, ic, dc, inst.memory, inst.threads(),
                      layout=inst.layout())
    core.run()
    assert inst.check(), f"{name} wrong on banked core"


@pytest.mark.parametrize("name", ALL)
def test_virec_core_runs_all(name):
    from repro.virec import ViReCConfig, ViReCCore
    inst = wl.get(name).build(n_threads=4, n_per_thread=12)
    ic, dc = make_caches()
    rf = max(8, int(0.6 * 4 * len(inst.active_regs)))
    core = ViReCCore(inst.program, ic, dc, inst.memory, inst.threads(),
                     virec=ViReCConfig(rf_size=rf), layout=inst.layout())
    stats = core.run()
    assert inst.check(), f"{name} wrong on ViReC core"
    assert stats["rf_hit_rate"] > 0.3


@pytest.mark.parametrize("name", ["gather", "triad", "spmv"])
def test_prefetch_cores_run(name):
    from repro.core.prefetch import ExactPrefetchCore, FullContextPrefetchCore
    for cls in (ExactPrefetchCore, FullContextPrefetchCore):
        inst = wl.get(name).build(n_threads=4, n_per_thread=12)
        ic, dc = make_caches()
        kw = {"active_regs": inst.active_regs} if cls is ExactPrefetchCore else {}
        core = cls(inst.program, ic, dc, inst.memory, inst.threads(),
                   layout=inst.layout(), **kw)
        core.run()
        assert inst.check(), f"{name} wrong on {cls.__name__}"


def test_determinism_same_seed():
    a = wl.get("gather").build(n_threads=2, n_per_thread=8, seed=5)
    b = wl.get("gather").build(n_threads=2, n_per_thread=8, seed=5)
    assert a.memory.read_array(a.symbols["idx"], 16) == \
        b.memory.read_array(b.symbols["idx"], 16)


def test_different_seeds_differ():
    a = wl.get("gather").build(n_threads=2, n_per_thread=8, seed=5)
    b = wl.get("gather").build(n_threads=2, n_per_thread=8, seed=6)
    assert a.memory.read_array(a.symbols["idx"], 16) != \
        b.memory.read_array(b.symbols["idx"], 16)


def test_histogram_bucket_validation():
    with pytest.raises(ValueError):
        wl.get("histogram").build(n_threads=2, n_per_thread=8, buckets=63)
