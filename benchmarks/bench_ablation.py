"""Ablation bench: contribution of each ViReC mechanism (DESIGN.md index).

Asserted expectations:
* removing the LRC policy (PLRU) hurts the most among policy rows;
* the blocking BSI and disabled pinning cost performance on average;
* no ablation *improves* the geomean by more than noise (the full design
  is locally optimal), except possibly the future-work extensions.
"""

from conftest import run_once

from repro.experiments import ablation


def test_ablation(benchmark, scale):
    result = run_once(benchmark, ablation.run, scale)
    print()
    result.print()
    mean = next(r for r in result.rows if r["workload"] == "GEOMEAN")

    # removing core mechanisms costs performance (geomean slowdown >= ~1)
    for knob in ("no_pinning", "no_dummy_fill", "blocking_bsi",
                 "no_sysreg_buffer", "plru_policy"):
        assert mean[knob] > 0.97, f"{knob} should not speed things up"

    # the policy ablations: plru worse than mrt-plru worse-or-equal than full
    assert mean["plru_policy"] >= mean["mrt_plru_policy"] - 0.02
    assert mean["plru_policy"] > 1.01

    # future-work extensions stay within a few percent of the full design
    assert 0.9 < mean["group_evict_3"] < 1.15
    assert 0.9 < mean["context_prefetch"] < 1.15
