"""Figure 13: dcache latency and capacity sensitivity.

Shape claims asserted:
* both designs lose IPC as dcache latency grows;
* ViReC degrades *faster* with latency than banked (register fills ride
  the dcache);
* ViReC loses more than banked when capacity shrinks (pinned register
  lines steal capacity), and the gap narrows at large capacities.
"""

from conftest import run_once

from repro.experiments import fig13


def test_fig13_dcache_sensitivity(benchmark, scale):
    result = run_once(benchmark, fig13.run, scale)
    print()
    result.print()
    lat = {r["value"]: r for r in result.rows if r["sweep"] == "latency"}
    cap = {r["value"]: r for r in result.rows if r["sweep"] == "capacity_kb"}

    # monotone loss with latency for both
    lats = sorted(lat)
    for kind in ("virec_ipc", "banked_ipc"):
        assert lat[lats[0]][kind] > lat[lats[-1]][kind]

    # ViReC more latency-sensitive: larger relative drop from min to max
    v_drop = 1 - lat[lats[-1]]["virec_ipc"] / lat[lats[0]]["virec_ipc"]
    b_drop = 1 - lat[lats[-1]]["banked_ipc"] / lat[lats[0]]["banked_ipc"]
    assert v_drop > b_drop

    # capacity: ViReC suffers more at the smallest dcache
    caps = sorted(cap)
    small, large = cap[caps[0]], cap[caps[-1]]
    v_loss = 1 - small["virec_ipc"] / large["virec_ipc"]
    b_loss = 1 - small["banked_ipc"] / large["banked_ipc"]
    assert v_loss >= b_loss - 0.02
    # at the largest capacity ViReC is close to banked
    assert large["virec_ipc"] > 0.75 * large["banked_ipc"]
