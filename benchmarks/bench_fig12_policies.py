"""Figure 12: register-cache replacement policy comparison.

Shape claims asserted on the suite means:
* scheduling-aware policies (MRT-PLRU, MRT-LRU, LRC) beat the
  scheduling-oblivious ones (PLRU, LRU) on hit rate;
* LRC is within a whisker of the perfect MRT-LRU (paper: 0.3%);
* LRC's speedup over PLRU is large at low contention and positive at high
  contention (paper: +20.7% / +7.1%);
* hit rates are higher at 80% context than at 40%.
"""

from conftest import run_once

from repro.experiments import fig12


def test_fig12_policies(benchmark, scale):
    result = run_once(benchmark, fig12.run, scale)
    print()
    result.print()
    means = {r["context_%"]: r for r in result.rows if r["workload"] == "MEAN"}
    assert set(means) == {80, 40}

    for ctx, m in means.items():
        # thread-aware beats thread-oblivious
        assert m["hit_mrt-plru"] > m["hit_plru"]
        assert m["hit_mrt-lru"] > m["hit_lru"]
        assert m["hit_lrc"] > m["hit_plru"]
        # LRC close to the perfect MRT-LRU (within 3 points)
        assert abs(m["hit_lrc"] - m["hit_mrt-lru"]) < 0.03
        # LRC >= MRT-PLRU (the commit bit helps)
        assert m["hit_lrc"] >= m["hit_mrt-plru"] - 0.005
        # speedup over PLRU positive
        assert m["lrc_speedup_vs_plru"] > 1.0

    # more contention, lower hit rate
    assert means[80]["hit_lrc"] > means[40]["hit_lrc"]
    # low-contention advantage is at least as large (paper: 20.7% vs 7.1%)
    assert means[80]["lrc_speedup_vs_plru"] >= 0.95 * means[40]["lrc_speedup_vs_plru"]
