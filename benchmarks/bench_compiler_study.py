"""Compiler-pass bench: list scheduling on the in-order CGMT core.

Expectations: scheduling never slows a kernel down materially, moves a
visible fraction of static instructions, and buys the most on the kernel
with the largest basic blocks (spmv).
"""

from conftest import run_once

from repro.experiments import compiler_study


def test_compiler_scheduling(benchmark, scale):
    result = run_once(benchmark, compiler_study.run, scale)
    print()
    result.print()
    mean = next(r for r in result.rows if r["workload"] == "GEOMEAN")
    assert mean["speedup"] > 0.99          # never a net loss
    assert mean["static_moved_%"] > 5      # the pass actually does work
    per = {r["workload"]: r for r in result.rows if r["workload"] != "GEOMEAN"}
    assert all(r["speedup"] > 0.97 for r in per.values())
