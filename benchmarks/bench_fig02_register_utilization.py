"""Figure 2: register utilization of the workload suite.

Shape claim: many (at least half) of the kernels touch <30% of the
64-register context inside their innermost loop.
"""

from conftest import run_once

from repro.experiments import fig02


def test_fig02_register_utilization(benchmark, scale):
    result = run_once(benchmark, fig02.run, scale)
    print()
    result.print()
    fracs = result.series("inner_context_%")
    assert len(fracs) >= 10
    assert sum(f < 30.0 for f in fracs) >= len(fracs) // 2
    # the active contexts are small in absolute terms (5-16 registers)
    inner = result.series("inner_regs")
    assert all(2 <= v <= 16 for v in inner)
