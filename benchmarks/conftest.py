"""Benchmark harness configuration.

Each ``bench_figNN`` file regenerates one table/figure of the paper:
it runs the corresponding experiment driver once under pytest-benchmark,
prints the same rows/series the paper plots, and asserts the qualitative
shape claims (who wins, roughly by how much, where crossovers fall).

Scale control:  set ``REPRO_BENCH_SCALE`` to ``tiny`` (default; minutes),
``quick``, or ``full`` to trade fidelity for runtime.

Run with:  pytest benchmarks/ --benchmark-only -s
"""

import os

import pytest


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "tiny")


@pytest.fixture
def scale() -> str:
    return bench_scale()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
