"""Figure 10: performance-per-register tradeoff for gather.

Shape claims asserted:
* at every thread count ViReC's performance-per-register beats banked
  (a bank holds 64 registers, most unused);
* with few threads (latency not hidden) ViReC at reduced context is close
  to its full-context performance (misses overlap memory latency);
* ViReC runs 10 threads — beyond the banked core's 8-bank cap.
"""

from conftest import run_once

from repro.experiments import fig10


def test_fig10_perf_per_register(benchmark, scale):
    result = run_once(benchmark, fig10.run, scale)
    print()
    result.print()
    rows = result.rows

    by = {}
    for r in rows:
        by[(r["threads"], r["config"])] = r

    for t in (2, 4, 8):
        banked = by[(t, "banked")]
        for frac in (40, 60, 80, 100):
            v = by[(t, f"virec{frac}")]
            assert v["perf_per_reg"] > banked["perf_per_reg"], \
                f"{t} threads, {frac}%: ViReC must win perf/register"

    # few threads: 40% context costs little (<25% slowdown vs 100%)
    assert by[(2, "virec40")]["cycles"] < 1.4 * by[(2, "virec100")]["cycles"]

    # thread counts beyond the banked cap exist for ViReC only
    assert (10, "virec80") in by
    assert (10, "banked") not in by
