"""Provisioning-normalization bench (synthetic-workload extension).

Expectation: at equal provisioned *fraction* of the active context, the
register-cache hit rate is nearly independent of the absolute per-thread
working-set size (spread < 10 points), and hit rate rises monotonically
with the fraction — validating the paper's percent-of-context axis.
"""

from conftest import run_once

from repro.experiments import sizing


def test_sizing_normalization(benchmark, scale):
    result = run_once(benchmark, sizing.run, scale)
    print()
    result.print()
    spread = next(r for r in result.rows if r["working_set"] == "SPREAD")
    for key, value in spread.items():
        if not key.startswith("hit@"):
            continue
        # heaviest contention (40%) sees quantization effects at small
        # absolute capacities; the collapse is tight from 60% up
        limit = 0.20 if key == "hit@40%" else 0.10
        assert value < limit, f"{key}: spread {value:.3f} too wide"
    per_ws = [r for r in result.rows if r["working_set"] != "SPREAD"]
    for row in per_ws:
        hits = [row[f"hit@{p}%"] for p in (40, 60, 80, 100)]
        assert hits == sorted(hits), f"hit rate not monotone: {hits}"
