"""Fault study: injection overhead and escape-rate shape claims.

Shape claims asserted:
* rate 0 is bit-identical to a fault-free run (the subsystem is strictly
  opt-in) — zero overhead, zero injections;
* ECC overhead grows with the fault rate and stays bounded (correction is
  a few cycles per hit, not a re-run);
* parity (detect-only) shows a nonzero escape rate at the highest rate;
* ViReC's fault surface exceeds the banked design's at matched per-site
  rates: its context state spans RF + tag store + backing region, so it
  absorbs more injections per run, and its escape rate is at least
  banked's.
"""

from conftest import run_once

from repro.experiments import fault_study
from repro.system import RunConfig, run_config


def _cell(rows, core, scheme):
    return {float(r["rate"]): r for r in rows
            if r["core"] == core and r["scheme"] == scheme
            and r["context"] != 0.8}


def test_fault_study(benchmark, scale):
    result = run_once(benchmark, fault_study.run, scale)
    print()
    result.print()

    v_ecc = _cell(result.rows, "virec", "ecc")
    b_ecc = _cell(result.rows, "banked", "ecc")
    v_par = _cell(result.rows, "virec", "parity")
    b_par = _cell(result.rows, "banked", "parity")
    rates = sorted(v_ecc)
    top = rates[-1]

    # rate 0: strictly opt-in — no injections, no escapes, no overhead
    for cell in (v_ecc, b_ecc, v_par):
        assert cell[0.0]["injected"] == 0
        assert cell[0.0]["escapes"] == 0
        assert cell[0.0]["overhead"] == 0.0

    # ECC: overhead grows with rate and stays bounded
    assert v_ecc[top]["overhead"] > v_ecc[0.0]["overhead"]
    assert v_ecc[top]["overhead"] >= v_ecc[rates[1]]["overhead"]
    assert v_ecc[top]["overhead"] < 0.25
    assert v_ecc[top]["corrected"] > 0

    # parity: detect-only leaks at the highest rate
    assert v_par[top]["escape_rate"] > 0

    # ViReC's escape surface exceeds banked's at matched rates: more
    # injections absorbed per run (ecc cells complete, so counters exist)
    # and an escape rate at least as high under detect-only protection
    assert v_ecc[top]["injected"] > b_ecc[top]["injected"]
    assert v_par[top]["escape_rate"] >= b_par[top]["escape_rate"]


def test_rate_zero_bit_identical(benchmark, scale):
    """faults={rates: 0} must not perturb the simulation at all."""
    def both():
        base = RunConfig(workload="gather", core_type="virec", n_threads=6,
                         n_per_thread=12)
        clean = run_config(base)
        gated = run_config(base.with_(faults={"rf_rate": 0.0,
                                              "tag_rate": 0.0,
                                              "backing_rate": 0.0}))
        return clean, gated

    clean, gated = run_once(benchmark, both)
    assert gated.cycles == clean.cycles
    assert gated.instructions == clean.instructions
    assert gated.ipc == clean.ipc
