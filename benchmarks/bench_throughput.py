"""Steady-state task-throughput bench (thread-scalability extension).

Asserted expectations:
* throughput improves with hardware threads for both designs up to the
  banked cap;
* ViReC reaches at least the banked design's best throughput while also
  offering >8-thread points the banked design cannot provide.
"""

from conftest import run_once

from repro.experiments import throughput


def test_throughput_scaling(benchmark, scale):
    result = run_once(benchmark, throughput.run, scale)
    print()
    result.print()
    by = {(r["core"], r["hw_threads"]): r for r in result.rows}

    # multithreading pays for both designs
    for core in ("banked", "virec"):
        assert by[(core, 8)]["tasks_per_Mcycle"] > by[(core, 2)]["tasks_per_Mcycle"]

    # ViReC offers >8-thread configurations; banked does not
    assert ("virec", 10) in by
    assert ("banked", 10) not in by

    # ViReC's best is within 25% of banked's best (area-equivalent compare
    # would favour ViReC further)
    best_banked = max(r["tasks_per_Mcycle"] for (c, _), r in by.items()
                      if c == "banked")
    best_virec = max(r["tasks_per_Mcycle"] for (c, _), r in by.items()
                     if c == "virec")
    assert best_virec > 0.75 * best_banked
