"""Simulator throughput benchmarks (host instructions-per-second).

Not a paper figure — this measures the *reproduction tool itself* so
regressions in simulation speed are caught.  pytest-benchmark runs these
with real repetitions (unlike the single-shot figure benches).
"""

import pytest

from repro.system import RunConfig, run_config


def run_once(core_type, n_per_thread=48, threads=8, **kw):
    cfg = RunConfig(workload="gather", core_type=core_type,
                    n_threads=threads, n_per_thread=n_per_thread, **kw)
    return run_config(cfg)


@pytest.mark.parametrize("core_type", ["banked", "virec", "fgmt"])
def test_simulation_speed(benchmark, core_type):
    result = benchmark.pedantic(run_once, args=(core_type,),
                                rounds=3, iterations=1)
    instr = result.instructions
    seconds = benchmark.stats.stats.mean
    rate = instr / seconds
    print(f"\n{core_type}: {instr} instructions in {seconds * 1e3:.0f} ms "
          f"= {rate / 1e3:.0f}k instr/s")
    # regression guard: the timeline engine should stay above 3k instr/s
    # even on slow CI hosts
    assert rate > 3_000


def test_functional_sim_speed(benchmark):
    from repro import workloads
    from repro.isa.func_sim import FunctionalSimulator

    inst = workloads.get("gather").build(n_threads=1, n_per_thread=512)

    def run():
        sim = FunctionalSimulator(inst.program, inst.memory)
        sim.state.pc = inst.program.entry
        for reg, val in inst.init_regs[0].items():
            sim.state.write(reg, val)
        sim.run()
        return sim.instructions_executed

    count = benchmark.pedantic(run, rounds=3, iterations=1)
    rate = count / benchmark.stats.stats.mean
    print(f"\ngolden model: {rate / 1e3:.0f}k instr/s")
    assert rate > 20_000
