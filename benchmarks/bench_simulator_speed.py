"""Simulator throughput benchmarks (host instructions-per-second).

Not a paper figure — this measures the *reproduction tool itself* so
regressions in simulation speed are caught.  pytest-benchmark runs these
with real repetitions (unlike the single-shot figure benches).

Besides the interactive output, the module writes ``BENCH_simspeed.json``
(next to the current working directory) with the per-core-type rates so CI
can archive simulator-speed history alongside the figure artifacts.
"""

import json
import os

import pytest

from repro.system import RunConfig, run_config

#: collected {bench name: {"instructions", "seconds", "instr_per_s"}} rows,
#: flushed to BENCH_simspeed.json at session end
_RESULTS = {}
_OUT_PATH = os.environ.get("BENCH_SIMSPEED_JSON", "BENCH_simspeed.json")


def _record(name, instructions, seconds):
    _RESULTS[name] = {
        "instructions": int(instructions),
        "seconds": round(seconds, 6),
        "instr_per_s": round(instructions / seconds, 1) if seconds else None,
    }


@pytest.fixture(scope="module", autouse=True)
def _write_simspeed_json():
    """Flush the collected rates once the module's benches finish."""
    yield
    if not _RESULTS:
        return
    with open(_OUT_PATH, "w") as f:
        json.dump({"bench": "simspeed", "results": _RESULTS}, f,
                  indent=1, sort_keys=True)
        f.write("\n")


def run_once(core_type, n_per_thread=48, threads=8, **kw):
    cfg = RunConfig(workload="gather", core_type=core_type,
                    n_threads=threads, n_per_thread=n_per_thread, **kw)
    return run_config(cfg)


@pytest.mark.parametrize("core_type", ["banked", "virec", "fgmt"])
def test_simulation_speed(benchmark, core_type):
    result = benchmark.pedantic(run_once, args=(core_type,),
                                rounds=3, iterations=1)
    instr = result.instructions
    seconds = benchmark.stats.stats.mean
    rate = instr / seconds
    _record(core_type, instr, seconds)
    print(f"\n{core_type}: {instr} instructions in {seconds * 1e3:.0f} ms "
          f"= {rate / 1e3:.0f}k instr/s")
    # regression guard: the timeline engine should stay above 3k instr/s
    # even on slow CI hosts
    assert rate > 3_000


def test_telemetry_overhead(benchmark):
    """Same virec run with full telemetry on — quantifies the tracing tax.

    Only a smoke bound here (docs/observability.md discusses the measured
    numbers); the hard guarantee is cycle-count identity, covered by
    tests/telemetry/test_noop.py.
    """
    telemetry = {"events": True, "interval": 100, "pipeline_trace": True}
    result = benchmark.pedantic(run_once, args=("virec",),
                                kwargs={"telemetry": telemetry},
                                rounds=3, iterations=1)
    instr = result.instructions
    seconds = benchmark.stats.stats.mean
    rate = instr / seconds
    _record("virec+telemetry", instr, seconds)
    print(f"\nvirec+telemetry: {instr} instructions in "
          f"{seconds * 1e3:.0f} ms = {rate / 1e3:.0f}k instr/s")
    assert rate > 1_500


def test_functional_sim_speed(benchmark):
    from repro import workloads
    from repro.isa.func_sim import FunctionalSimulator

    inst = workloads.get("gather").build(n_threads=1, n_per_thread=512)

    def run():
        sim = FunctionalSimulator(inst.program, inst.memory)
        sim.state.pc = inst.program.entry
        for reg, val in inst.init_regs[0].items():
            sim.state.write(reg, val)
        sim.run()
        return sim.instructions_executed

    count = benchmark.pedantic(run, rounds=3, iterations=1)
    rate = count / benchmark.stats.stats.mean
    _record("functional", count, benchmark.stats.stats.mean)
    print(f"\ngolden model: {rate / 1e3:.0f}k instr/s")
    assert rate > 20_000
