"""Simulator throughput benchmarks (host instructions-per-second).

Not a paper figure — this measures the *reproduction tool itself* so
regressions in simulation speed are caught.  pytest-benchmark runs these
with real repetitions (unlike the single-shot figure benches).

Besides the interactive output, the module writes ``BENCH_simspeed.json``
(next to the current working directory) with the per-core-type rates so CI
can archive simulator-speed history alongside the figure artifacts.
"""

import json
import os
import sqlite3
import time

import pytest

from repro.system import RunConfig, run_config

#: collected {bench name: {"instructions", "seconds", "instr_per_s"}} rows,
#: flushed to BENCH_simspeed.json at session end
_RESULTS = {}
_OUT_PATH = os.environ.get("BENCH_SIMSPEED_JSON", "BENCH_simspeed.json")


def _record(name, instructions, seconds):
    _RESULTS[name] = {
        "instructions": int(instructions),
        "seconds": round(seconds, 6),
        "instr_per_s": round(instructions / seconds, 1) if seconds else None,
    }


def _ledger_append(results):
    """Append each bench rate into the run ledger (``digest bench:<name>``).

    ``BENCH_simspeed.json`` is a single overwritten snapshot; the ledger
    rows behind it are what give ``repro history --check`` a trajectory to
    gate on.  Best-effort: a read-only filesystem must not fail the bench.
    """
    from repro.ledger import Recorder, default_ledger_path

    try:
        with Recorder(default_ledger_path()) as rec:
            for name, entry in sorted(results.items()):
                rec.record_row(
                    f"bench:{name}", source="bench", workload="gather",
                    core_type=name, host_rate=entry.get("instr_per_s"),
                    wall_s=entry.get("seconds"),
                    counters={k: v for k, v in entry.items()
                              if isinstance(v, (int, float))
                              and v is not None})
    except (OSError, sqlite3.Error) as exc:
        print(f"note: could not append bench rates to run ledger: {exc}")


@pytest.fixture(scope="module", autouse=True)
def _write_simspeed_json():
    """Flush the collected rates once the module's benches finish.

    Each record is stamped with the git sha and an ISO-UTC timestamp
    (provenance for archived snapshots), and the whole record set is also
    appended to the run ledger so ``repro history`` sees the trajectory.
    """
    yield
    if not _RESULTS:
        return
    from repro.ledger.store import git_sha, utc_now_iso

    sha, stamp = git_sha(), utc_now_iso()
    for entry in _RESULTS.values():
        entry["git_sha"] = sha
        entry["timestamp_utc"] = stamp
    with open(_OUT_PATH, "w") as f:
        json.dump({"bench": "simspeed", "results": _RESULTS}, f,
                  indent=1, sort_keys=True)
        f.write("\n")
    _ledger_append(_RESULTS)


def run_once(core_type, n_per_thread=48, threads=8, **kw):
    cfg = RunConfig(workload="gather", core_type=core_type,
                    n_threads=threads, n_per_thread=n_per_thread, **kw)
    return run_config(cfg)


@pytest.mark.parametrize("core_type", ["banked", "virec", "fgmt"])
def test_simulation_speed(benchmark, core_type):
    result = benchmark.pedantic(run_once, args=(core_type,),
                                rounds=3, iterations=1)
    instr = result.instructions
    seconds = benchmark.stats.stats.mean
    rate = instr / seconds
    _record(core_type, instr, seconds)
    print(f"\n{core_type}: {instr} instructions in {seconds * 1e3:.0f} ms "
          f"= {rate / 1e3:.0f}k instr/s")
    # regression guard: the timeline engine should stay above 3k instr/s
    # even on slow CI hosts
    assert rate > 3_000


# ------------------------------------------------- engine-only hot path
#
# The per-instruction step with an empty InstrumentBus (the compiled fast
# path, see repro/core/instrument.py), measured over core.run() alone —
# no workload build, no DRAM model, no functional check — behind a fixed-
# latency memory backend so the number isolates the engine itself.

#: engine-only instr/s of the seed engine (before the pre-decode +
#: instrument-bus fast path), best-of-interleaved-rounds on the reference
#: 1-cpu dev container.  Wall-clock rates are machine-dependent: the
#: before/after *ratio* is the meaningful number, and on a new host both
#: sides must be re-measured with this same bench.
SEED_HOT_PATH_INSTR_PER_S = {
    "banked": 56093.2,
    "virec": 28337.3,
    "fgmt": 58590.7,
}


class _FixedLatencyBackend:
    """Constant-latency memory behind the L1s (keeps the bench engine-bound)."""

    def __init__(self, latency: int = 80):
        self.latency = latency

    def access(self, now, line_addr, is_write=False, requestor=0):
        return now + self.latency


def build_engine_core(core_type, threads=4, n_per_thread=2048,
                      mem_latency=80, engine="interpreted"):
    from repro import workloads
    from repro.memory import Cache
    from repro.stats.counters import Stats
    from repro.system import ndp_dcache, ndp_icache
    from repro.system.simulator import _make_core

    cfg = RunConfig(workload="gather", core_type=core_type,
                    n_threads=threads, n_per_thread=n_per_thread,
                    engine=engine)
    inst = workloads.get("gather").build(n_threads=threads,
                                         n_per_thread=n_per_thread)
    backend = _FixedLatencyBackend(mem_latency)
    stats = Stats("bench")
    ic = Cache(ndp_icache(), backend, stats.child("ic"))
    dc = Cache(ndp_dcache(), backend, stats.child("dc"))
    return _make_core(cfg, inst, ic, dc, stats=stats.child("core"))


@pytest.mark.parametrize("core_type", ["banked", "virec", "fgmt"])
def test_hot_path_speed(benchmark, core_type):
    """Uninstrumented engine throughput, before/after the fast path."""
    rates = []

    def once():
        core = build_engine_core(core_type)
        assert core.bus.empty            # nothing attached: fast path
        t0 = time.perf_counter()
        core.run()
        dt = time.perf_counter() - t0
        rates.append(sum(th.instructions for th in core.threads) / dt)

    benchmark.pedantic(once, rounds=3, iterations=1)
    rate = max(rates)                    # best-of: least host interference
    before = SEED_HOT_PATH_INSTR_PER_S[core_type]
    _RESULTS[f"hotpath_{core_type}"] = {
        "instr_per_s": round(rate, 1),
        "seed_instr_per_s": before,
        "speedup_vs_seed": round(rate / before, 3),
    }
    print(f"\n{core_type} hot path: {rate / 1e3:.1f}k instr/s "
          f"(seed {before / 1e3:.1f}k, {rate / before:.2f}x)")
    # loose floor only — absolute wall-clock is machine-dependent; the
    # recorded speedup_vs_seed in BENCH_simspeed.json is the tracked number
    assert rate > 3_000


# --------------------------------------------- threaded-code engine
#
# The same engine-only workload on the compiled closure-chain engine
# (repro/isa/compiled.py) vs the interpreted reference loop, measured
# back-to-back in one process so the ratio cancels host speed.  The
# speedup_vs_hotpath ratio is the CI-gated number (repro report --check,
# see repro/stats/report_html.py): banked and fgmt chain whole basic
# blocks, so they carry the full 1.8x floor; virec's step is dominated
# by the VRMU decode hook the closures must still call, so its floor is
# lower and recorded per-entry.
THREADED_SPEEDUP_FLOORS = {
    "banked": 1.8,
    "fgmt": 1.8,
    "virec": 1.25,
}


@pytest.mark.parametrize("core_type", ["banked", "virec", "fgmt"])
def test_threaded_engine_speed(benchmark, core_type):
    """Compiled closure-chain engine throughput vs the interpreted loop."""
    rates = {"compiled": [], "interpreted": []}

    def once(engine):
        core = build_engine_core(core_type, engine=engine)
        assert core.bus.empty            # uninstrumented: fast variants
        t0 = time.perf_counter()
        core.run()
        dt = time.perf_counter() - t0
        rates[engine].append(sum(th.instructions for th in core.threads) / dt)

    def pair():
        once("interpreted")
        once("compiled")

    benchmark.pedantic(pair, rounds=3, iterations=1)
    compiled = max(rates["compiled"])        # best-of: least interference
    interpreted = max(rates["interpreted"])
    speedup = compiled / interpreted
    floor = THREADED_SPEEDUP_FLOORS[core_type]
    _RESULTS[f"threaded_{core_type}"] = {
        "instr_per_s": round(compiled, 1),
        "hotpath_instr_per_s": round(interpreted, 1),
        "speedup_vs_hotpath": round(speedup, 3),
        "floor": floor,
    }
    print(f"\n{core_type} threaded: {compiled / 1e3:.1f}k instr/s "
          f"(interpreted {interpreted / 1e3:.1f}k, {speedup:.2f}x, "
          f"floor {floor}x)")
    assert rate_floor_ok(speedup, floor)


def rate_floor_ok(speedup, floor, slack=0.85):
    """In-bench smoke bound only: the hard gate is ``repro report
    --check`` over the recorded JSON; here a single noisy round gets
    ``slack`` headroom so the bench itself stays repetition-friendly."""
    return speedup >= floor * slack


def test_telemetry_overhead(benchmark):
    """Same virec run with full telemetry on — quantifies the tracing tax.

    Only a smoke bound here (docs/observability.md discusses the measured
    numbers); the hard guarantee is cycle-count identity, covered by
    tests/telemetry/test_noop.py.
    """
    telemetry = {"events": True, "interval": 100, "pipeline_trace": True}
    result = benchmark.pedantic(run_once, args=("virec",),
                                kwargs={"telemetry": telemetry},
                                rounds=3, iterations=1)
    instr = result.instructions
    seconds = benchmark.stats.stats.mean
    rate = instr / seconds
    _record("virec+telemetry", instr, seconds)
    print(f"\nvirec+telemetry: {instr} instructions in "
          f"{seconds * 1e3:.0f} ms = {rate / 1e3:.0f}k instr/s")
    assert rate > 1_500


def test_functional_sim_speed(benchmark):
    from repro import workloads
    from repro.isa.func_sim import FunctionalSimulator

    inst = workloads.get("gather").build(n_threads=1, n_per_thread=512)

    def run():
        sim = FunctionalSimulator(inst.program, inst.memory)
        sim.state.pc = inst.program.entry
        for reg, val in inst.init_regs[0].items():
            sim.state.write(reg, val)
        sim.run()
        return sim.instructions_executed

    count = benchmark.pedantic(run, rounds=3, iterations=1)
    rate = count / benchmark.stats.stats.mean
    _record("functional", count, benchmark.stats.stats.mean)
    print(f"\ngolden model: {rate / 1e3:.0f}k instr/s")
    assert rate > 20_000
