"""Figure 1: performance-area Pareto for gather.

Paper shape claims asserted:
* the OoO beats the single InO substantially but at ~19x the area (worst
  performance-per-area on the chart);
* banked CGMT beats replicated single-thread InO cores on area efficiency;
* ViReC at 100% context is within a few percent of banked at ~40% less
  area, making it the Pareto frontier;
* ViReC degrades gracefully as context storage shrinks to 40%.
"""

from conftest import run_once

from repro.experiments import fig01


def test_fig01_pareto(benchmark, scale):
    result = run_once(benchmark, fig01.run, scale)
    print()
    result.print()
    rows = {r["config"]: r for r in result.rows}

    # OoO: big speedup, terrible perf/area
    assert rows["ooo"]["speedup"] > 2.0
    assert rows["ooo"]["perf_per_area"] < rows["inorder-1"]["perf_per_area"]

    # banked multithreading is more area-efficient than replicating cores
    assert rows["banked-4t"]["perf_per_area"] > rows["inorder-x4"]["perf_per_area"]

    # ViReC at full context ~ banked performance (within 15%), much less area
    for t in (4, 8):
        v, b = rows[f"virec-{t}t-100%"], rows[f"banked-{t}t"]
        assert v["speedup"] > 0.85 * b["speedup"]
        assert v["area_mm2"] < 0.75 * b["area_mm2"]
        assert v["perf_per_area"] > b["perf_per_area"]

    # graceful degradation with shrinking context
    for t in (4, 8):
        sp = [rows[f"virec-{t}t-{p}%"]["speedup"] for p in (40, 60, 80, 100)]
        assert sp == sorted(sp) or max(sp) - min(sp) < 0.8 * max(sp)
        assert sp[0] > 0.5 * sp[-1]
