"""Figure 9: ViReC vs banked vs NSF vs RF prefetching across the suite.

Shape claims asserted (geomean rows):
* ViReC degrades gracefully: virec80 > virec60 > virec40 relative speedup;
* ViReC at 80% context is within ~20% of banked;
* ViReC beats the NSF [41] at matching context sizes (paper: 2.3x/2.25x);
* full-context prefetching is the worst strategy;
* oracle exact prefetching lands between full prefetching and ViReC@80.
"""

from conftest import run_once

from repro.experiments import fig09


def test_fig09_performance(benchmark, scale):
    result = run_once(benchmark, fig09.run, scale)
    print()
    result.print()
    means = {r["threads"]: r for r in result.rows if r["workload"] == "GEOMEAN"}
    assert set(means) == {4, 6, 8}

    for t, m in means.items():
        # graceful degradation with register-cache contention
        assert m["virec80"] >= m["virec60"] >= m["virec40"] > 0.4
        # near-banked at low contention
        assert m["virec80"] > 0.78
        # ViReC >> NSF at the same context size
        assert m["virec80"] > 1.2 * m["nsf80"]
        assert m["virec40"] > 1.2 * m["nsf40"]
        # full-context prefetch is almost always worst
        assert m["pf_full"] < m["virec40"]
        assert m["pf_full"] < m["pf_exact"]
        # oracle prefetch cannot beat low-contention ViReC
        assert m["pf_exact"] < m["virec80"]

    # the mean performance drop grows with thread count at fixed context
    drop = {t: 1 - means[t]["virec80"] for t in (4, 6, 8)}
    assert drop[8] >= drop[4] - 0.05
