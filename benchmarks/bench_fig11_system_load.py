"""Figure 11: performance scaling with increased system load.

Shape claims asserted:
* observed DRAM latency grows with the number of active processors;
* the optimal thread count does not shrink when going from light load
  (1 core) to the mid-load regime (4 cores) — more load needs more threads
  (the paper's 8->10 crossover appears at 4->6 in our scaled memory system;
  see EXPERIMENTS.md).
"""

from conftest import run_once

from repro.experiments import fig11


def test_fig11_system_load(benchmark, scale):
    result = run_once(benchmark, fig11.run, scale)
    print()
    result.print()
    sweep = [r for r in result.rows if isinstance(r["threads"], int)]
    best = {r["cores"]: int(str(r["threads"]).split("=")[1])
            for r in result.rows if isinstance(r["threads"], str)}

    # observed latency rises with system activity (at the best thread count)
    lat = {}
    for cores in (1, 4):
        rows_c = [r for r in sweep if r["cores"] == cores]
        lat[cores] = min(rows_c, key=lambda r: r["cycles"])["observed_latency"]
    assert lat[4] > lat[1]

    # mid/high load never wants fewer threads than light load (2-thread
    # tolerance: neighbouring thread counts are within noise at small scale)
    assert best[4] >= best[1] - 2
    assert best[8] >= best[1] - 2
    # and multithreading always pays: the best point is never single-digit-low
    assert best[4] >= 4 and best[8] >= 4
