"""Figure 14 + Section 6.2: area vs thread count and RF delay.

Exact claims asserted (the area model is calibrated, so these are tight):
* banked core: 2.8 / 3.9 mm^2 at 8 / 16 threads;
* ViReC with 8 entries/thread at 8 threads: ~1.7 mm^2, ~40% savings,
  ~20% overhead over the baseline core;
* ViReC area grows superlinearly and overtakes banked for complete
  contexts;
* RF delay: ViReC ~0.24 ns at 80 entries = banked, +~10% over baseline.
"""

from conftest import run_once

from repro.area import banked_core_area, inorder_core_area, virec_core_area
from repro.experiments import fig14


def test_fig14_area_and_delay(benchmark, scale):
    result = run_once(benchmark, fig14.run, scale)
    print()
    result.print()

    assert abs(banked_core_area(8) - 2.8) < 0.1
    assert abs(banked_core_area(16) - 3.9) < 0.1
    assert abs(virec_core_area(64) - 1.7) < 0.1
    assert 0.12 < virec_core_area(64) / inorder_core_area() - 1 < 0.28
    assert 1 - virec_core_area(64) / banked_core_area(8) > 0.35
    # fully-associative complete contexts cost more than banks
    assert virec_core_area(8 * 64) > banked_core_area(8)

    # delay rows present and crossing at ~80 entries
    delays = [r for r in result.rows if str(r.get("threads", "")).startswith("delay@")]
    assert delays
    d80 = next(r for r in delays if r["threads"] == "delay@80")
    assert abs(d80["virec_delay_ns"] - d80["banked_delay_ns"]) < 0.01
