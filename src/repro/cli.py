"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``experiments [names...] [--scale S]``
    Run experiment drivers (default: all) and print their tables.
``run --workload W --core C [--threads N] [--context F] ...``
    Simulate one configuration and print its stats.
``workloads``
    List the registered workloads with metadata.
``disasm --workload W``
    Print a workload kernel's assembly listing.
``area``
    Print the Figure 14 area table.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import workloads
from .experiments import ALL_EXPERIMENTS
from .system import CORE_TYPES, RunConfig, run_config


def _cmd_experiments(args) -> int:
    names = args.names or sorted(ALL_EXPERIMENTS)
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}; available: "
                  f"{sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
            return 2
    for name in names:
        result = ALL_EXPERIMENTS[name](args.scale)
        result.print()
        print()
    return 0


def _cmd_run(args) -> int:
    cfg = RunConfig(workload=args.workload, core_type=args.core,
                    n_threads=args.threads, n_cores=args.cores,
                    n_per_thread=args.per_thread,
                    context_fraction=args.context, policy=args.policy,
                    dcache_kb=args.dcache_kb, seed=args.seed)
    r = run_config(cfg)
    print(f"workload={cfg.workload} core={cfg.core_type} threads={cfg.n_threads} "
          f"cores={cfg.n_cores}")
    print(f"  cycles       = {r.cycles}")
    print(f"  instructions = {r.instructions}")
    print(f"  IPC          = {r.ipc:.4f}")
    if r.rf_hit_rate is not None:
        print(f"  RF hit rate  = {r.rf_hit_rate:.2%}")
    if args.verbose:
        for key, value in r.stats.flat():
            if value:
                print(f"  {key} = {value:g}")
    return 0


def _cmd_workloads(args) -> int:
    print(f"{'name':<16} {'suite':<9} {'pattern':<10} {'loads/iter':>10}  description")
    for spec in workloads.all_workloads():
        print(f"{spec.name:<16} {spec.suite:<9} {spec.pattern:<10} "
              f"{spec.loads_per_iter:>10}  {spec.description}")
    return 0


def _cmd_disasm(args) -> int:
    inst = workloads.get(args.workload).build(n_threads=2, n_per_thread=8)
    print(inst.program.disassemble())
    print(f"\nused registers:   {inst.used_regs}")
    print(f"active registers: {inst.active_regs}")
    return 0


def _cmd_area(args) -> int:
    from .experiments import fig14
    fig14.run().print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (one subcommand per verb)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="ViReC reproduction command-line interface")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("experiments", help="run experiment drivers")
    p.add_argument("names", nargs="*", help="figure ids (default: all)")
    p.add_argument("--scale", default="quick",
                   help="tiny | quick | full | <int elements per thread>")
    p.set_defaults(fn=_cmd_experiments)

    p = sub.add_parser("run", help="simulate one configuration")
    p.add_argument("--workload", default="gather", choices=workloads.names())
    p.add_argument("--core", default="virec", choices=list(CORE_TYPES))
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--cores", type=int, default=1)
    p.add_argument("--per-thread", type=int, default=64)
    p.add_argument("--context", type=float, default=0.8)
    p.add_argument("--policy", default="lrc")
    p.add_argument("--dcache-kb", type=int, default=8)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("workloads", help="list registered workloads")
    p.set_defaults(fn=_cmd_workloads)

    p = sub.add_parser("disasm", help="disassemble a workload kernel")
    p.add_argument("--workload", default="gather", choices=workloads.names())
    p.set_defaults(fn=_cmd_disasm)

    p = sub.add_parser("area", help="print the area/delay tables")
    p.set_defaults(fn=_cmd_area)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        scale = args.scale
        if isinstance(scale, str) and scale.isdigit():
            args.scale = int(scale)
    except AttributeError:
        pass
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
