"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``experiments [names...] [--scale S]``
    Run experiment drivers (default: all) and print their tables.
``run --workload W --core C [--threads N] [--context F] ...``
    Simulate one configuration and print its stats.
``sweep --axis FIELD=V1,V2,... [--dir D] [--live] [--metrics] ...``
    Run a parameter grid with per-config error isolation, watchdogs,
    retries, and a crash-safe checkpoint journal.  ``--dir`` roots the
    sweep's observability surface (event log, heartbeats, merged
    parent+workers Chrome trace, manifest, fleet metrics); ``--live``
    renders a refreshing progress panel while it runs.  ``--ledger``
    appends every finished run to the persistent run ledger; ``--cache``
    additionally serves digest-keyed hits from it (byte-identical to
    recomputation, ``ledger.hit``/``miss``/``stale`` in the metrics).
``history [--ledger P] [--digest D] [--compare A B] [--check]``
    Longitudinal analytics over the run ledger: per-digest trajectories
    with host-rate sparklines, per-counter compares between two digests,
    and trajectory-aware regression gating (current vs median of the
    last N runs, severity-graded like ``repro report --check``).
``monitor DIR [--follow]``
    Re-attach a progress panel to a sweep directory (live or post-hoc).
``report DIR [--baseline P] [--out report.html] [--check]``
    Render a self-contained HTML report from a sweep directory's
    manifest, fleet metrics, and event log; with ``--check``, exit
    non-zero when a tracked metric regresses past the baseline.
``trace --workload W --core C [--out trace.json] [--interval N] ...``
    Run one configuration with event telemetry and export a Chrome
    trace-event JSON (opens in Perfetto / chrome://tracing).
``timeline --workload W --core C [--interval N] [--jsonl P] ...``
    Run one configuration with interval sampling and print sparkline
    time-series of IPC, VRMU hit rate, occupancy, and spill/fill traffic.
``profile --workload W --core C [--top N] [--diff CORE2] ...``
    Run one configuration with cycle attribution (every core cycle
    classified into the top-down stall taxonomy, exact-sum enforced) and
    print the per-cause table plus the hottest per-PC rows; ``--diff``
    re-runs with a second core type and prints the per-cause/per-PC
    cycle deltas (``--diff-policy`` does the same along the replacement-
    policy axis); ``--flame`` writes folded flamegraph stacks and
    ``--json`` the raw attribution snapshot.
``check [workloads...] [--corpus DIR] [--asm PATH] [--pressure] [--json]``
    Statically verify kernels with the CFG + liveness framework
    (:mod:`repro.analysis.dataflow`): out-of-range branch targets,
    fall-through past the program end, reads of never-written registers,
    unreachable blocks, and per-block register-pressure tables.
``lint [paths...] [--format json] [--fail-on SEV]``
    Run the repro-specific determinism linter (see
    :mod:`repro.analysis.lint`) over source trees.
``fuzz [--seed S] [--budget N] [--jobs K] [--corpus DIR] ...``
    Property-based differential fuzzing: seeded random programs through
    the banked-reference / ViReC / FGMT matrix under the VSan oracle,
    with auto-shrinking, a deduplicated on-disk crash corpus, and
    checkpoint/resume.  ``--replay DIR`` re-verifies stored reproducers.
    Exit codes: 0 clean, 3 findings, 4 worker crashes / failed replays.
``workloads``
    List the registered workloads with metadata.
``disasm --workload W``
    Print a workload kernel's assembly listing.
``area``
    Print the Figure 14 area table.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import workloads
from .core.engine import ENGINES
from .experiments import ALL_EXPERIMENTS
from .system import CORE_TYPES, RunConfig, run_config


def _cmd_experiments(args) -> int:
    names = args.names or sorted(ALL_EXPERIMENTS)
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}; available: "
                  f"{sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
            return 2
    for name in names:
        result = ALL_EXPERIMENTS[name](args.scale)
        result.print()
        print()
    return 0


def _base_config(args, **extra) -> RunConfig:
    """RunConfig from the shared configuration options (see
    :func:`_add_config_options`)."""
    if getattr(args, "sanitize", None) and "sanitize" not in extra:
        extra["sanitize"] = {"granularity": args.sanitize}
    if getattr(args, "engine", None) and "engine" not in extra:
        extra["engine"] = args.engine
    return RunConfig(workload=args.workload, core_type=args.core,
                     n_threads=args.threads, n_cores=args.cores,
                     n_per_thread=args.per_thread,
                     context_fraction=args.context, policy=args.policy,
                     dcache_kb=args.dcache_kb, seed=args.seed, **extra)


def _cmd_run(args) -> int:
    cfg = _base_config(args)
    r = run_config(cfg)
    print(f"workload={cfg.workload} core={cfg.core_type} threads={cfg.n_threads} "
          f"cores={cfg.n_cores}")
    print(f"  cycles       = {r.cycles}")
    print(f"  instructions = {r.instructions}")
    print(f"  IPC          = {r.ipc:.4f}")
    if r.rf_hit_rate is not None:
        print(f"  RF hit rate  = {r.rf_hit_rate:.2%}")
    if args.verbose:
        for key, value in r.stats.flat():
            if value:
                print(f"  {key} = {value:g}")
    return 0


def _parse_axis_value(text: str):
    """Best-effort scalar parse: int, then float, then bare string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _cmd_sweep(args) -> int:
    import os
    from .system import run_grid, sweep_grid
    from .stats.reporting import rows_to_csv

    extra = {"metrics": True} if args.metrics else {}
    base = _base_config(args, **extra)
    checkpoint, observe, manifest = args.checkpoint, None, None
    if args.dir:
        os.makedirs(args.dir, exist_ok=True)
        if not checkpoint:
            checkpoint = os.path.join(args.dir, "checkpoint.jsonl")
        observe = args.dir
        from .system.manifest import RunManifest
        manifest = RunManifest()
    if args.live and not args.dir:
        print("--live requires --dir", file=sys.stderr)
        return 2
    if args.resume and not checkpoint:
        print("--resume requires --checkpoint (or --dir)", file=sys.stderr)
        return 2
    axes = {}
    for spec in args.axis or []:
        name, eq, values = spec.partition("=")
        if not eq or not name or not values:
            print(f"bad --axis {spec!r}: expected FIELD=V1,V2,...",
                  file=sys.stderr)
            return 2
        axes[name] = [_parse_axis_value(v) for v in values.split(",")]
    try:
        grid = sweep_grid(base, **axes)
    except (TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def progress(i, total, result):
        # run_grid reports a RunFailure for failed configs and None for
        # rows replayed from the checkpoint journal
        if hasattr(result, "error_type"):
            status = f"FAIL ({result.error_type})"
        elif result is None:
            status = "ok (resumed)"
        else:
            status = "ok"
        print(f"  [{i}/{total}] {status}", file=sys.stderr)

    ledger_path = args.ledger
    if args.cache and not ledger_path:
        # --cache implies a ledger; root it in the sweep dir when present
        ledger_path = (os.path.join(args.dir, "ledger.sqlite")
                       if args.dir else "ledger.sqlite")
    backend = cached = None
    if args.cache:
        from .exec import resolve_backend
        from .ledger import CachedBackend
        cached = CachedBackend(ledger_path, inner=resolve_backend(args.jobs))
        backend = cached

    live_thread = None
    if args.live:
        import threading
        from .system.monitor import monitor_loop
        live_thread = threading.Thread(
            target=monitor_loop, args=(args.dir,),
            kwargs={"refresh": args.refresh, "follow": True}, daemon=True)
        live_thread.start()
    rows = run_grid(grid, progress=progress if args.verbose else None,
                    retries=args.retries, timeout_s=args.timeout_s,
                    max_cycles=args.max_cycles,
                    checkpoint=checkpoint, resume=args.resume,
                    jobs=args.jobs, backend=backend, observe=observe,
                    manifest=manifest,
                    ledger=None if cached else ledger_path)
    if cached is not None:
        c = cached.counts
        print(f"ledger cache {ledger_path}: {c['hit']} hit / "
              f"{c['miss']} miss / {c['stale']} stale")
        cached.close()
    if live_thread is not None:
        # the monitor thread exits on its own once it reads sweep_end
        live_thread.join(timeout=2 * args.refresh + 1.0)
    if args.dir:
        if manifest is not None and manifest.configs:
            manifest.save(os.path.join(args.dir, "manifest.json"))
        print(f"sweep directory: {args.dir} (checkpoint, manifest, "
              f"metrics, trace, events, heartbeats)")
    if args.csv:
        with open(args.csv, "w") as f:
            f.write(rows_to_csv(rows))
        print(f"wrote {len(rows)} rows to {args.csv}")
    else:
        for row in rows:
            print(row)
    print(f"{len(rows)} ok ({rows.resumed} resumed from checkpoint), "
          f"{len(rows.failures)} failed")
    for failure in rows.failures:
        print(f"  FAILED [{failure.index}] {failure.error_type}: "
              f"{failure.message} (attempts={failure.attempts})")
    if rows.failures:
        if args.dir:
            print(f"re-run with --dir {args.dir} --resume to retry only "
                  f"the failed configs")
        elif checkpoint:
            print(f"re-run with --checkpoint {checkpoint} --resume "
                  f"to retry only the failed configs")
        return 3
    return 0


def _check_sweep_dir(path: str) -> Optional[str]:
    """One-line usage hint when ``path`` is not a usable sweep directory.

    Returns None when the directory exists and carries a sweep event log;
    otherwise the message ``repro monitor`` / ``repro report`` print
    before exiting cleanly (instead of tracebacking on absent artifacts).
    """
    import os
    from .system.monitor import EVENTS_NAME

    if not os.path.isdir(path):
        return (f"no such sweep directory: {path} "
                f"(create one with: repro sweep --dir {path} ...)")
    if not os.listdir(path):
        return (f"sweep directory {path} is empty "
                f"(populate it with: repro sweep --dir {path} ...)")
    if not os.path.exists(os.path.join(path, EVENTS_NAME)):
        return (f"{path} has no {EVENTS_NAME} — not a sweep directory "
                f"(expected output of: repro sweep --dir {path} ...)")
    return None


def _cmd_monitor(args) -> int:
    from .system.monitor import monitor_loop

    hint = _check_sweep_dir(args.dir)
    if hint is not None:
        print(hint, file=sys.stderr)
        return 2
    state = monitor_loop(args.dir, refresh=args.refresh,
                         follow=args.follow)
    return 0 if state.failed == 0 else 3


def _check_baseline_file(path: str) -> Optional[str]:
    """One-line hint when a baseline file cannot feed the perf gate.

    Missing, empty, unparsable, or entry-less baselines used to traceback
    deep inside ``load_baseline``; a broken perf gate should say what is
    wrong with its input and exit with a usage error instead.
    """
    import json
    import os
    from .stats.report_html import load_baseline

    if not os.path.exists(path):
        return (f"baseline file {path} does not exist "
                f"(generate one with: pytest benchmarks/"
                f"bench_simulator_speed.py)")
    if os.path.getsize(path) == 0:
        return (f"baseline file {path} is empty — regenerate it with: "
                f"pytest benchmarks/bench_simulator_speed.py")
    try:
        entries = load_baseline(path)
    except (json.JSONDecodeError, OSError, AttributeError) as exc:
        return f"baseline file {path} is not valid JSON ({exc})"
    if not entries:
        return (f"baseline file {path} has no usable rate entries — "
                f"regenerate it with: pytest benchmarks/"
                f"bench_simulator_speed.py")
    return None


def _cmd_report(args) -> int:
    import os
    from .stats.report_html import EXIT_REGRESSION, write_report

    hint = _check_sweep_dir(args.dir)
    if hint is not None:
        print(hint, file=sys.stderr)
        return 2
    baseline = args.baseline
    if baseline is None:
        # auto-detect a benchmark baseline next to the sweep, then in cwd
        for candidate in (os.path.join(args.dir, "BENCH_simspeed.json"),
                          "BENCH_simspeed.json"):
            if os.path.exists(candidate):
                baseline = candidate
                break
    if baseline is not None:
        hint = _check_baseline_file(baseline)
        if hint is not None:
            print(hint, file=sys.stderr)
            return 2
    out = args.out or os.path.join(args.dir, "report.html")
    report = write_report(args.dir, out, baseline=baseline,
                          threshold=args.threshold, ledger=args.ledger)
    s = report["summary"]
    print(f"wrote {out}: {s['ok']} ok / {s['failed']} failed rows, "
          f"{len(report['deltas'])} tracked metric(s)")
    for d in report["deltas"]:
        delta = (f"{d['delta'] * 100:+.1f}%" if d["delta"] is not None
                 else "n/a")
        print(f"  [{d['severity']:<10}] {d['name']}: {d['current']} "
              f"vs {d['baseline']} ({delta})")
    for g in report.get("engine_gate", []):
        print(f"  [{g['severity']:<10}] {g['name']}: "
              f"{g['speedup']:.2f}x vs floor {g['floor']:.2f}x")
    if args.check and report["has_regression"]:
        print(f"regression beyond {args.threshold * 100:.0f}% threshold",
              file=sys.stderr)
        return EXIT_REGRESSION
    return 0


def _cmd_history(args) -> int:
    import json
    import os
    from .ledger import LedgerReader, default_ledger_path
    from .ledger.history import (check_history, compare_digests,
                                 render_check_text, render_compare_text,
                                 render_history_text, render_trajectory_text,
                                 trajectory)
    from .stats.report_html import EXIT_REGRESSION

    path = args.ledger or default_ledger_path()
    if not os.path.exists(path):
        print(f"no run ledger at {path} — record one with: repro sweep "
              f"--ledger {path} ... (or --cache), or point --ledger / "
              f"$REPRO_LEDGER at an existing file", file=sys.stderr)
        return 2
    with LedgerReader(path) as reader:
        if reader.count() == 0:
            print(f"run ledger {path} has no rows yet — record runs with: "
                  f"repro sweep --ledger {path} ...", file=sys.stderr)
            return 2
        if args.compare:
            cmp = compare_digests(reader, args.compare[0], args.compare[1])
            if args.json:
                print(json.dumps(cmp, indent=2))
            else:
                print(render_compare_text(cmp))
            return 0 if (cmp["found_a"] and cmp["found_b"]) else 2
        if args.check:
            chk = check_history(reader, threshold=args.threshold,
                                window=args.window,
                                min_runs=args.min_runs,
                                digest=args.digest)
            if args.json:
                print(json.dumps(chk, indent=2))
            else:
                print(render_check_text(chk))
            return EXIT_REGRESSION if chk["worst"] == "regression" else 0
        if args.digest:
            traj = trajectory(reader, args.digest, limit=args.limit)
            if not traj["rows"]:
                print(f"digest {args.digest} has no rows in {path}",
                      file=sys.stderr)
                return 2
            if args.json:
                print(json.dumps(traj, indent=2))
            else:
                print(render_trajectory_text(traj))
            return 0
        if args.json:
            print(json.dumps(reader.digests(), indent=2))
        else:
            print(render_history_text(reader, limit=args.limit))
    return 0


#: default metric columns of ``repro timeline``; columns absent from a run
#: (e.g. VRMU metrics on a banked core) are skipped by the renderer
_TIMELINE_COLUMNS = ("ipc", "vrmu_hit_rate", "occupancy_total",
                     "spill_fill_per_kcycle", "dcache_misses",
                     "context_switches")


def _cmd_trace(args) -> int:
    cfg = _base_config(args, telemetry={
        "events": True, "interval": args.interval,
        "pipeline_trace": args.pipeline,
        "max_events": args.max_events,
        "flow_events": not args.no_flow})
    r = run_config(cfg)
    session = r.telemetry
    session.write_chrome_trace(args.out, metadata={
        "workload": cfg.workload, "core_type": cfg.core_type,
        "n_threads": cfg.n_threads, "n_cores": cfg.n_cores,
        "seed": cfg.seed})
    print(f"wrote {session.event_count} events to {args.out} "
          f"(open in https://ui.perfetto.dev or chrome://tracing)")
    if args.metrics:
        session.write_metrics_jsonl(args.metrics)
        print(f"wrote {len(session.interval_rows())} interval rows "
              f"to {args.metrics}")
    print()
    print(session.report())
    if r.host_profile and r.host_profile.get("instr_per_s"):
        print(f"host: {r.host_profile['total_s']:.2f}s wall, "
              f"{r.host_profile['instr_per_s']:,.0f} instr/s")
    return 0


def _cmd_timeline(args) -> int:
    from .stats.reporting import render_intervals

    cfg = _base_config(args, telemetry={
        "events": False, "interval": args.interval})
    r = run_config(cfg)
    session = r.telemetry
    rows = session.interval_rows()
    print(f"workload={cfg.workload} core={cfg.core_type} "
          f"threads={cfg.n_threads} cores={cfg.n_cores} "
          f"interval={args.interval}")
    columns = (args.columns.split(",") if args.columns
               else list(_TIMELINE_COLUMNS))
    print(render_intervals(rows, columns, width=args.width))
    if args.jsonl:
        session.write_metrics_jsonl(args.jsonl)
        print(f"wrote {len(rows)} rows to {args.jsonl}")
    return 0


def _cmd_profile(args) -> int:
    from .profiling import diff_snapshots
    from .stats.reporting import (render_attribution_diff,
                                  render_attribution_table)

    cfg = _base_config(args, profile=True)
    try:
        r = run_config(cfg)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    session = r.profile
    snapshot = session.snapshot()
    print(f"workload={cfg.workload} core={cfg.core_type} "
          f"threads={cfg.n_threads} cores={cfg.n_cores}")
    print(render_attribution_table(snapshot, top=args.top))
    if args.flame:
        session.write_collapsed(args.flame)
        n = len(session.collapsed().splitlines())
        print(f"wrote {n} folded stack(s) to {args.flame} "
              f"(flamegraph.pl / speedscope collapsed format)")
    if args.json:
        session.write_json(args.json)
        print(f"wrote attribution snapshot to {args.json}")
    if args.diff:
        cfg2 = cfg.with_(core_type=args.diff)
        try:
            r2 = run_config(cfg2)
        except ValueError as exc:
            print(f"error: --diff {args.diff}: {exc}", file=sys.stderr)
            return 2
        other = r2.profile.snapshot()
        print()
        print(render_attribution_diff(diff_snapshots(snapshot, other),
                                      base_label=cfg.core_type,
                                      other_label=args.diff,
                                      top=args.top))
    if args.diff_policy:
        cfg3 = cfg.with_(policy=args.diff_policy)
        try:
            r3 = run_config(cfg3)
        except ValueError as exc:
            print(f"error: --diff-policy {args.diff_policy}: {exc}",
                  file=sys.stderr)
            return 2
        other = r3.profile.snapshot()
        print()
        print(render_attribution_diff(diff_snapshots(snapshot, other),
                                      base_label=f"policy={cfg.policy}",
                                      other_label=f"policy={args.diff_policy}",
                                      top=args.top))
    return 0


def _check_instance(inst, name: str, zero_init: bool = False):
    """Verify one WorkloadInstance (kernel + declared init registers)."""
    from .analysis.dataflow import verify_program
    from .isa.registers import NUM_ARCH_REGS

    init = {r.flat for d in inst.init_regs for r in d}
    if zero_init:
        init = set(range(NUM_ARCH_REGS))
    return verify_program(inst.program, init_flats=init, name=name), \
        inst.program


def _cmd_check(args) -> int:
    import json

    from .analysis.dataflow import verify_program
    from .isa.registers import parse_reg

    checked = []  # (VerifyReport, Program) pairs
    explicit = bool(args.targets or args.asm or args.corpus)
    names = list(args.targets)
    if not explicit:
        names = list(workloads.names())
    for name in names:
        if name not in workloads.names():
            print(f"unknown workload {name!r}; available: "
                  f"{workloads.names()}", file=sys.stderr)
            return 2
        inst = workloads.get(name).build(n_threads=args.threads,
                                         n_per_thread=args.per_thread)
        checked.append(_check_instance(inst, name,
                                       zero_init=args.assume_zero_init))

    if args.asm:
        try:
            from pathlib import Path

            from .isa.assembler import assemble
            source = Path(args.asm).read_text()
            init = {parse_reg(tok.strip()).flat
                    for tok in args.init.split(",") if tok.strip()}
            if args.assume_zero_init:
                from .isa.registers import NUM_ARCH_REGS
                init = set(range(NUM_ARCH_REGS))
            program = assemble(source, name=args.asm)
        except (OSError, ValueError) as exc:
            print(f"error: --asm {args.asm}: {exc}", file=sys.stderr)
            return 2
        checked.append((verify_program(program, init_flats=init,
                                       name=args.asm), program))

    if args.corpus:
        from .fuzz.corpus import Corpus

        corpus = Corpus(args.corpus)
        slugs = corpus.entries()
        if not slugs:
            print(f"note: no corpus entries under {args.corpus}",
                  file=sys.stderr)
        for slug in slugs:
            asm, meta = corpus.load(slug)
            inst = workloads.get("fuzz").build(
                n_threads=meta.get("n_threads", args.threads),
                n_per_thread=meta.get("n_per_thread", args.per_thread),
                gen=meta.get("spec") or {}, asm=asm)
            checked.append(_check_instance(
                inst, f"corpus:{slug}", zero_init=args.assume_zero_init))

    if args.json:
        print(json.dumps([rep.as_dict() for rep, _ in checked], indent=2))
    else:
        for i, (rep, program) in enumerate(checked):
            if i:
                print()
            print(rep.render(show_pressure=args.pressure, program=program))
        n_err = sum(len(rep.errors) for rep, _ in checked)
        n_warn = sum(len(rep.warnings) for rep, _ in checked)
        print(f"\nchecked {len(checked)} program(s): "
              f"{n_err} error(s), {n_warn} warning(s)")

    if args.fail_on == "none":
        return 0
    for rep, _ in checked:
        if rep.errors or (args.fail_on == "warning" and rep.warnings):
            return 1
    return 0


def _cmd_lint(args) -> int:
    from .analysis import lint as lint_mod

    try:
        findings = lint_mod.lint_paths(
            args.paths,
            select=args.select.split(",") if args.select else None,
            ignore=args.ignore.split(",") if args.ignore else None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(lint_mod.render_json(findings))
    else:
        print(lint_mod.render_text(findings,
                                   show_suppressed=args.show_suppressed))
    return lint_mod.exit_code(findings, fail_on=args.fail_on)


def _cmd_workloads(args) -> int:
    print(f"{'name':<16} {'suite':<9} {'pattern':<10} {'loads/iter':>10}  description")
    for spec in workloads.all_workloads():
        print(f"{spec.name:<16} {spec.suite:<9} {spec.pattern:<10} "
              f"{spec.loads_per_iter:>10}  {spec.description}")
    return 0


def _cmd_disasm(args) -> int:
    inst = workloads.get(args.workload).build(n_threads=2, n_per_thread=8)
    print(inst.program.disassemble())
    print(f"\nused registers:   {inst.used_regs}")
    print(f"active registers: {inst.active_regs}")
    return 0


def _cmd_area(args) -> int:
    from .experiments import fig14
    fig14.run().print()
    return 0


def _cmd_fuzz(args) -> int:
    from .fuzz import FuzzConfig, replay_corpus, run_fuzz

    if args.replay:
        rows = replay_corpus(args.replay)
        bad = [r for r in rows if not r["ok"]]
        for r in rows:
            mark = "ok  " if r["ok"] else "FAIL"
            print(f"{mark} {r['slug']}")
            if not r["ok"]:
                print(f"     expected {r['expected']}")
                print(f"     got      {r['got']}")
        print(f"\n{len(rows) - len(bad)}/{len(rows)} reproducers "
              f"still fire their signature")
        return 4 if bad else 0

    faults = None
    if args.flip_rate:
        faults = {"rf_rate": args.flip_rate, "scheme": "none",
                  "seed": args.fault_seed}
    fcfg = FuzzConfig(
        seed=args.seed, budget=args.budget, corpus_dir=args.corpus,
        jobs=args.jobs, n_threads=args.threads,
        n_per_thread=args.per_thread,
        shrink=not args.no_shrink, shrink_budget=args.shrink_budget,
        resume=args.resume, faults=faults, engine=args.engine,
        ledger=args.ledger)
    if args.max_cycles:
        fcfg.max_cycles = args.max_cycles

    def progress(i: int, total: int, record) -> None:
        if not args.verbose:
            return
        if record is None:
            print(f"[{i}/{total}] worker crashed (will retry on --resume)")
        elif not record["valid"]:
            print(f"[{i}/{total}] invalid: {record['invalid_reason']}")
        elif record["findings"]:
            sigs = sorted({f["signature"] for f in record["findings"]})
            print(f"[{i}/{total}] {len(sigs)} finding(s): {sigs}")

    report = run_fuzz(fcfg, progress=progress)
    d = report.as_dict()
    print(f"fuzzed {d['programs']}/{d['budget']} programs "
          f"(resumed {d['resumed']}, invalid {d['invalid']}, "
          f"crashed {d['crashed']})")
    print(f"{d['findings_total']} findings, "
          f"{d['unique_signatures']} unique signatures, "
          f"{len(d['new_entries'])} new corpus entries")
    for slug in d["new_entries"]:
        print(f"  + findings/{slug}")
    print(f"corpus: {fcfg.corpus_dir} "
          f"({len(d['entries'])} entries, report in fuzz_report.json)")
    if report.crashed:
        return 4
    return 3 if report.findings_total else 0


def _add_config_options(p: argparse.ArgumentParser) -> None:
    """The shared ``RunConfig`` options (see :func:`_base_config`)."""
    p.add_argument("--workload", default="gather", choices=workloads.names())
    p.add_argument("--core", default="virec", choices=list(CORE_TYPES))
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--cores", type=int, default=1)
    p.add_argument("--per-thread", type=int, default=64)
    p.add_argument("--context", type=float, default=0.8)
    p.add_argument("--policy", default="lrc")
    p.add_argument("--dcache-kb", type=int, default=8)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--sanitize", nargs="?", const="commit", default=None,
                   choices=["commit", "interval", "run"], metavar="GRAN",
                   help="enable the VSan shadow-state sanitizer (optional "
                        "check granularity: commit | interval | run)")
    p.add_argument("--engine", default=None, choices=list(ENGINES),
                   help="step engine: compiled threaded-code closures "
                        "(default) or the interpreted reference loop; "
                        "byte-identical results either way")


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (one subcommand per verb)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="ViReC reproduction command-line interface")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("experiments", help="run experiment drivers")
    p.add_argument("names", nargs="*", help="figure ids (default: all)")
    p.add_argument("--scale", default="quick",
                   help="tiny | quick | full | <int elements per thread>")
    p.set_defaults(fn=_cmd_experiments)

    p = sub.add_parser("run", help="simulate one configuration")
    _add_config_options(p)
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("trace",
                       help="run with event telemetry; export a Perfetto-"
                            "loadable Chrome trace")
    _add_config_options(p)
    p.add_argument("--out", default="trace.json", metavar="PATH",
                   help="Chrome trace-event JSON output path")
    p.add_argument("--interval", type=int, default=0, metavar="N",
                   help="also sample interval metrics every N cycles")
    p.add_argument("--metrics", metavar="PATH",
                   help="write interval metrics as JSONL (with --interval)")
    p.add_argument("--pipeline", action="store_true",
                   help="attach per-instruction pipeline tracers and report "
                        "stall attribution")
    p.add_argument("--max-events", type=int, default=200_000,
                   help="event ring capacity (oldest overwritten past it)")
    p.add_argument("--no-flow", action="store_true",
                   help="omit spill/fill flow arrows")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("timeline",
                       help="run with interval sampling; print sparkline "
                            "time-series")
    _add_config_options(p)
    p.add_argument("--interval", type=int, default=500, metavar="N",
                   help="cycles per sample")
    p.add_argument("--columns", metavar="C1,C2,...",
                   help=f"metric columns (default: "
                        f"{','.join(_TIMELINE_COLUMNS)})")
    p.add_argument("--width", type=int, default=60,
                   help="sparkline width in characters")
    p.add_argument("--jsonl", metavar="PATH",
                   help="also write the interval rows as JSONL")
    p.set_defaults(fn=_cmd_timeline)

    p = sub.add_parser("profile",
                       help="run with cycle attribution; print per-cause "
                            "and per-PC hotspot tables, optionally diff "
                            "two core types")
    _add_config_options(p)
    p.add_argument("--top", type=int, default=10, metavar="N",
                   help="hotspot / per-PC-delta rows to print (default 10)")
    p.add_argument("--diff", metavar="CORE", choices=list(CORE_TYPES),
                   help="re-run with this core type and print per-cause/"
                        "per-PC cycle deltas (other vs base)")
    p.add_argument("--diff-policy", metavar="POLICY",
                   help="re-run with this replacement policy and print "
                        "per-cause/per-PC cycle deltas (other vs base)")
    p.add_argument("--flame", metavar="PATH",
                   help="write folded flamegraph stacks (Brendan Gregg "
                        "collapsed format)")
    p.add_argument("--json", metavar="PATH",
                   help="write the raw attribution snapshot as JSON "
                        "(feeds the HTML report's attribution section)")
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser("sweep", help="run a resilient parameter grid")
    _add_config_options(p)
    p.add_argument("--axis", action="append", metavar="FIELD=V1,V2,...",
                   help="sweep axis over a RunConfig field (repeatable)")
    p.add_argument("--checkpoint", metavar="PATH",
                   help="append finished rows to a crash-safe JSONL journal")
    p.add_argument("--resume", action="store_true",
                   help="replay completed rows from --checkpoint; re-run "
                        "only failed or missing configs")
    p.add_argument("--retries", type=int, default=0,
                   help="reseeded retries for transient failures")
    p.add_argument("--timeout-s", type=float, default=None,
                   help="per-config wall-clock watchdog (seconds)")
    p.add_argument("--max-cycles", type=int, default=None,
                   help="per-config simulated-cycle budget")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="run configs over N parallel worker processes "
                        "(0 = all cores; default serial, or $REPRO_JOBS); "
                        "results are identical to a serial sweep")
    p.add_argument("--csv", metavar="PATH", help="write result rows as CSV")
    p.add_argument("--dir", metavar="DIR",
                   help="sweep directory: checkpoint journal, live event "
                        "log, worker heartbeats, merged Chrome trace, "
                        "manifest.json, and metrics.json all land here")
    p.add_argument("--live", action="store_true",
                   help="render a refreshing progress panel while the "
                        "sweep runs (requires --dir)")
    p.add_argument("--refresh", type=float, default=1.0, metavar="S",
                   help="--live panel refresh period in seconds")
    p.add_argument("--metrics", action="store_true",
                   help="enable the per-run metrics registry "
                        "(RunConfig.metrics=True) and aggregate a fleet "
                        "registry across the grid")
    p.add_argument("--ledger", metavar="PATH",
                   help="append every finished run to this run-ledger "
                        "SQLite file (see repro history)")
    p.add_argument("--cache", action="store_true",
                   help="serve digest-keyed hits from the run ledger "
                        "instead of re-simulating (byte-identical results; "
                        "implies --ledger, default DIR/ledger.sqlite)")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser("monitor",
                       help="attach a live progress panel to a running "
                            "(or finished) sweep directory")
    p.add_argument("dir", help="sweep directory (from repro sweep --dir)")
    p.add_argument("--follow", action="store_true",
                   help="keep refreshing until the sweep ends "
                        "(default: one snapshot)")
    p.add_argument("--refresh", type=float, default=1.0, metavar="S",
                   help="refresh period in seconds (with --follow)")
    p.set_defaults(fn=_cmd_monitor)

    p = sub.add_parser("report",
                       help="render a self-contained HTML report from a "
                            "sweep directory; optionally gate on baseline "
                            "regressions")
    p.add_argument("dir", help="sweep directory (from repro sweep --dir)")
    p.add_argument("--baseline", metavar="PATH",
                   help="BENCH_simspeed.json-style baseline (default: "
                        "auto-detect in the sweep dir, then cwd)")
    p.add_argument("--out", metavar="PATH",
                   help="HTML output path (default: DIR/report.html)")
    p.add_argument("--check", action="store_true",
                   help="exit non-zero when a tracked metric regresses "
                        "beyond --threshold (CI perf gate)")
    p.add_argument("--threshold", type=float, default=0.5, metavar="F",
                   help="relative regression threshold (default 0.5 = 50%%; "
                        "loose because CI hosts vary)")
    p.add_argument("--ledger", metavar="PATH",
                   help="run ledger feeding the History section (default: "
                        "auto-detect ledger.sqlite in DIR, then cwd)")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser(
        "history",
        help="longitudinal run-ledger analytics: trajectories, compares, "
             "and trajectory-aware regression gating")
    p.add_argument("--ledger", metavar="PATH",
                   help="run-ledger SQLite file (default: $REPRO_LEDGER, "
                        "then ./ledger.sqlite)")
    p.add_argument("--digest", metavar="D",
                   help="show one digest's full run trajectory")
    p.add_argument("--compare", nargs=2, metavar=("A", "B"),
                   help="per-counter deltas between the newest rows of "
                        "two digests")
    p.add_argument("--check", action="store_true",
                   help="grade every digest's newest host rate against the "
                        "median of its last --window runs; exit non-zero "
                        "on regression (trajectory-aware perf gate)")
    p.add_argument("--threshold", type=float, default=0.5, metavar="F",
                   help="relative regression threshold for --check "
                        "(default 0.5, like repro report --check)")
    p.add_argument("--window", type=int, default=5, metavar="N",
                   help="median window of predecessor runs for --check "
                        "(default 5)")
    p.add_argument("--min-runs", type=int, default=3, metavar="N",
                   help="skip digests with fewer rated runs than this "
                        "(default 3)")
    p.add_argument("--limit", type=int, default=None, metavar="N",
                   help="cap listed digests / trajectory rows")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable JSON instead of text")
    p.set_defaults(fn=_cmd_history)

    p = sub.add_parser(
        "check",
        help="statically verify kernels (CFG + liveness): bad branch "
             "targets, fall-through past the program end, reads of "
             "never-written registers, unreachable blocks, plus per-block "
             "register-pressure tables")
    p.add_argument("targets", nargs="*", metavar="WORKLOAD",
                   help="workload names (default: every registered "
                        "workload unless --asm/--corpus is given)")
    p.add_argument("--corpus", metavar="DIR",
                   help="also verify every fuzz-corpus reproducer in DIR")
    p.add_argument("--asm", metavar="PATH",
                   help="also verify a raw assembly file")
    p.add_argument("--init", default="x0,x1", metavar="REGS",
                   help="registers assumed written before entry for --asm "
                        "(default x0,x1 — the tid / n_threads ABI)")
    p.add_argument("--assume-zero-init", action="store_true",
                   help="treat every register as initialized (machine "
                        "reset semantics zero every register, so reads "
                        "before a write are well-defined; shrunk fuzz "
                        "reproducers rely on this after instruction "
                        "deletion removes the writes)")
    p.add_argument("--threads", type=int, default=4,
                   help="threads used to materialize kernels (default 4)")
    p.add_argument("--per-thread", type=int, default=16,
                   help="elements per thread when building (default 16)")
    p.add_argument("--pressure", action="store_true",
                   help="print per-block register-pressure / working-set "
                        "tables")
    p.add_argument("--json", action="store_true",
                   help="emit the reports as JSON instead of text")
    p.add_argument("--fail-on", choices=["error", "warning", "none"],
                   default="error",
                   help="exit non-zero on findings at/above this severity")
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser("lint",
                       help="run the repro-specific determinism linter")
    p.add_argument("paths", nargs="*", default=["src"],
                   help="files or directories to lint (default: src)")
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument("--fail-on", choices=["error", "warning", "info", "none"],
                   default="error",
                   help="exit non-zero on findings at/above this severity")
    p.add_argument("--select", metavar="IDS",
                   help="comma-separated rule ids to enable (default: all)")
    p.add_argument("--ignore", metavar="IDS",
                   help="comma-separated rule ids to disable")
    p.add_argument("--show-suppressed", action="store_true",
                   help="also print findings silenced by inline comments")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser("workloads", help="list registered workloads")
    p.set_defaults(fn=_cmd_workloads)

    p = sub.add_parser("disasm", help="disassemble a workload kernel")
    p.add_argument("--workload", default="gather", choices=workloads.names())
    p.set_defaults(fn=_cmd_disasm)

    p = sub.add_parser("area", help="print the area/delay tables")
    p.set_defaults(fn=_cmd_area)

    p = sub.add_parser(
        "fuzz",
        help="differential fuzzing: generated programs through the "
             "banked/ViReC/FGMT matrix under the VSan oracle")
    p.add_argument("--seed", type=int, default=1,
                   help="campaign seed; same seed + budget => "
                        "byte-identical corpus (default 1)")
    p.add_argument("--budget", type=int, default=100,
                   help="number of generated programs (default 100)")
    p.add_argument("--corpus", default="fuzz-corpus", metavar="DIR",
                   help="corpus directory: checkpoint journal, report, "
                        "metrics, findings/<slug>/ reproducers")
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="fan programs over N worker processes "
                        "(0 = all cores; default serial, or $REPRO_JOBS); "
                        "results are identical to a serial run")
    p.add_argument("--resume", action="store_true",
                   help="replay finished programs from the corpus "
                        "checkpoint; only missing indices re-run")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--per-thread", type=int, default=16)
    p.add_argument("--max-cycles", type=int, default=None,
                   help="per-arm cycle budget; exhaustion is a wedge "
                        "finding (default 400000)")
    p.add_argument("--flip-rate", type=float, default=0.0, metavar="R",
                   help="inject silent register-file bit flips at rate R "
                        "(fault-detection acceptance mode)")
    p.add_argument("--fault-seed", type=int, default=1,
                   help="fault-campaign seed (with --flip-rate)")
    p.add_argument("--engine", default=None, choices=list(ENGINES),
                   help="step engine every arm runs on; the oracle "
                        "cross-checks the reference arm on the other "
                        "engine either way")
    p.add_argument("--no-shrink", action="store_true",
                   help="store findings unshrunk")
    p.add_argument("--shrink-budget", type=int, default=48,
                   help="oracle trips per shrink (default 48)")
    p.add_argument("--replay", metavar="DIR",
                   help="re-run every reproducer in a corpus directory "
                        "and verify its signature still fires")
    p.add_argument("--ledger", metavar="PATH",
                   help="append per-arm cycle counts of every fresh "
                        "program to this run ledger (see repro history)")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=_cmd_fuzz)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        scale = args.scale
        if isinstance(scale, str) and scale.isdigit():
            args.scale = int(scale)
    except AttributeError:
        pass
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
