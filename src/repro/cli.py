"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``experiments [names...] [--scale S]``
    Run experiment drivers (default: all) and print their tables.
``run --workload W --core C [--threads N] [--context F] ...``
    Simulate one configuration and print its stats.
``sweep --axis FIELD=V1,V2,... [--checkpoint P] [--resume] ...``
    Run a parameter grid with per-config error isolation, watchdogs,
    retries, and a crash-safe checkpoint journal.
``workloads``
    List the registered workloads with metadata.
``disasm --workload W``
    Print a workload kernel's assembly listing.
``area``
    Print the Figure 14 area table.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import workloads
from .experiments import ALL_EXPERIMENTS
from .system import CORE_TYPES, RunConfig, run_config


def _cmd_experiments(args) -> int:
    names = args.names or sorted(ALL_EXPERIMENTS)
    for name in names:
        if name not in ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}; available: "
                  f"{sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
            return 2
    for name in names:
        result = ALL_EXPERIMENTS[name](args.scale)
        result.print()
        print()
    return 0


def _cmd_run(args) -> int:
    cfg = RunConfig(workload=args.workload, core_type=args.core,
                    n_threads=args.threads, n_cores=args.cores,
                    n_per_thread=args.per_thread,
                    context_fraction=args.context, policy=args.policy,
                    dcache_kb=args.dcache_kb, seed=args.seed)
    r = run_config(cfg)
    print(f"workload={cfg.workload} core={cfg.core_type} threads={cfg.n_threads} "
          f"cores={cfg.n_cores}")
    print(f"  cycles       = {r.cycles}")
    print(f"  instructions = {r.instructions}")
    print(f"  IPC          = {r.ipc:.4f}")
    if r.rf_hit_rate is not None:
        print(f"  RF hit rate  = {r.rf_hit_rate:.2%}")
    if args.verbose:
        for key, value in r.stats.flat():
            if value:
                print(f"  {key} = {value:g}")
    return 0


def _parse_axis_value(text: str):
    """Best-effort scalar parse: int, then float, then bare string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _cmd_sweep(args) -> int:
    from .system import run_grid, sweep_grid
    from .stats.reporting import rows_to_csv

    base = RunConfig(workload=args.workload, core_type=args.core,
                     n_threads=args.threads, n_cores=args.cores,
                     n_per_thread=args.per_thread,
                     context_fraction=args.context, policy=args.policy,
                     dcache_kb=args.dcache_kb, seed=args.seed)
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    axes = {}
    for spec in args.axis or []:
        name, eq, values = spec.partition("=")
        if not eq or not name or not values:
            print(f"bad --axis {spec!r}: expected FIELD=V1,V2,...",
                  file=sys.stderr)
            return 2
        axes[name] = [_parse_axis_value(v) for v in values.split(",")]
    try:
        grid = sweep_grid(base, **axes)
    except (TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def progress(i, total, result):
        # run_grid reports a RunFailure for failed configs and None for
        # rows replayed from the checkpoint journal
        if hasattr(result, "error_type"):
            status = f"FAIL ({result.error_type})"
        elif result is None:
            status = "ok (resumed)"
        else:
            status = "ok"
        print(f"  [{i}/{total}] {status}", file=sys.stderr)

    rows = run_grid(grid, progress=progress if args.verbose else None,
                    retries=args.retries, timeout_s=args.timeout_s,
                    max_cycles=args.max_cycles,
                    checkpoint=args.checkpoint, resume=args.resume)
    if args.csv:
        with open(args.csv, "w") as f:
            f.write(rows_to_csv(rows))
        print(f"wrote {len(rows)} rows to {args.csv}")
    else:
        for row in rows:
            print(row)
    print(f"{len(rows)} ok ({rows.resumed} resumed from checkpoint), "
          f"{len(rows.failures)} failed")
    for failure in rows.failures:
        print(f"  FAILED [{failure.index}] {failure.error_type}: "
              f"{failure.message} (attempts={failure.attempts})")
    if rows.failures:
        if args.checkpoint:
            print(f"re-run with --checkpoint {args.checkpoint} --resume "
                  f"to retry only the failed configs")
        return 3
    return 0


def _cmd_workloads(args) -> int:
    print(f"{'name':<16} {'suite':<9} {'pattern':<10} {'loads/iter':>10}  description")
    for spec in workloads.all_workloads():
        print(f"{spec.name:<16} {spec.suite:<9} {spec.pattern:<10} "
              f"{spec.loads_per_iter:>10}  {spec.description}")
    return 0


def _cmd_disasm(args) -> int:
    inst = workloads.get(args.workload).build(n_threads=2, n_per_thread=8)
    print(inst.program.disassemble())
    print(f"\nused registers:   {inst.used_regs}")
    print(f"active registers: {inst.active_regs}")
    return 0


def _cmd_area(args) -> int:
    from .experiments import fig14
    fig14.run().print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser (one subcommand per verb)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="ViReC reproduction command-line interface")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("experiments", help="run experiment drivers")
    p.add_argument("names", nargs="*", help="figure ids (default: all)")
    p.add_argument("--scale", default="quick",
                   help="tiny | quick | full | <int elements per thread>")
    p.set_defaults(fn=_cmd_experiments)

    p = sub.add_parser("run", help="simulate one configuration")
    p.add_argument("--workload", default="gather", choices=workloads.names())
    p.add_argument("--core", default="virec", choices=list(CORE_TYPES))
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--cores", type=int, default=1)
    p.add_argument("--per-thread", type=int, default=64)
    p.add_argument("--context", type=float, default=0.8)
    p.add_argument("--policy", default="lrc")
    p.add_argument("--dcache-kb", type=int, default=8)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("sweep", help="run a resilient parameter grid")
    p.add_argument("--workload", default="gather", choices=workloads.names())
    p.add_argument("--core", default="virec", choices=list(CORE_TYPES))
    p.add_argument("--threads", type=int, default=8)
    p.add_argument("--cores", type=int, default=1)
    p.add_argument("--per-thread", type=int, default=64)
    p.add_argument("--context", type=float, default=0.8)
    p.add_argument("--policy", default="lrc")
    p.add_argument("--dcache-kb", type=int, default=8)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--axis", action="append", metavar="FIELD=V1,V2,...",
                   help="sweep axis over a RunConfig field (repeatable)")
    p.add_argument("--checkpoint", metavar="PATH",
                   help="append finished rows to a crash-safe JSONL journal")
    p.add_argument("--resume", action="store_true",
                   help="replay completed rows from --checkpoint; re-run "
                        "only failed or missing configs")
    p.add_argument("--retries", type=int, default=0,
                   help="reseeded retries for transient failures")
    p.add_argument("--timeout-s", type=float, default=None,
                   help="per-config wall-clock watchdog (seconds)")
    p.add_argument("--max-cycles", type=int, default=None,
                   help="per-config simulated-cycle budget")
    p.add_argument("--csv", metavar="PATH", help="write result rows as CSV")
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser("workloads", help="list registered workloads")
    p.set_defaults(fn=_cmd_workloads)

    p = sub.add_parser("disasm", help="disassemble a workload kernel")
    p.add_argument("--workload", default="gather", choices=workloads.names())
    p.set_defaults(fn=_cmd_disasm)

    p = sub.add_parser("area", help="print the area/delay tables")
    p.set_defaults(fn=_cmd_area)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        scale = args.scale
        if isinstance(scale, str) and scale.isdigit():
            args.scale = int(scale)
    except AttributeError:
        pass
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
