"""1-D 3-point stencil (CORAL-2-style structured-grid kernel).

``out[i] = 0.25*a[i-1] + 0.5*a[i] + 0.25*a[i+1]`` — the highest spatial
locality in the suite (every loaded line is used by ~8 consecutive
iterations and shared with the neighbours), so it is the kernel where a
single thread already keeps the pipeline fairly busy and multithreading
gains the least.  Useful as the low-memory-intensity anchor of the sweep.
"""

from __future__ import annotations

import numpy as np

from ..isa import D, X
from ..memory.main_memory import MainMemory
from .registry import (
    WorkloadInstance,
    WorkloadSpec,
    array_base,
    make_instance,
    partition_header,
    register,
)


def build_stencil(n_threads: int = 8, n_per_thread: int = 64,
                  seed: int = 59) -> WorkloadInstance:
    """``out[i] = 0.25*a[i-1] + 0.5*a[i] + 0.25*a[i+1]`` over a padded grid."""
    n = n_threads * n_per_thread
    rng = np.random.default_rng(seed)
    a = rng.random(n + 2)
    mem = MainMemory()
    sym = {"a": array_base(0), "out": array_base(1), "chunk": n_per_thread}
    mem.write_array(sym["a"], a)
    src = partition_header() + """
    adr  x5, a
    adr  x6, out
    fmov d0, #0.25
    fmov d1, #0.5
loop:
    ldr  d2, [x5, x3, lsl #3]       ; a[i-1] (grid is offset by one)
    add  x7, x3, #1
    ldr  d3, [x5, x7, lsl #3]       ; a[i]
    add  x7, x7, #1
    ldr  d4, [x5, x7, lsl #3]       ; a[i+1]
    fmul d5, d2, d0
    fmadd d5, d3, d1, d5
    fmadd d5, d4, d0, d5
    str  d5, [x6, x3, lsl #3]
    add  x3, x3, #1
    cmp  x3, x4
    b.lt loop
    halt
"""
    expected = 0.25 * a[:-2] + 0.5 * a[1:-1] + 0.25 * a[2:]

    def check(m: MainMemory) -> bool:
        got = m.read_array(sym["out"], n)
        return all(abs(g - e) < 1e-12 for g, e in zip(got, expected))

    used = tuple(X(i).flat for i in (0, 2, 3, 4, 5, 6, 7)) + \
        tuple(D(i).flat for i in (0, 1, 2, 3, 4, 5))
    active = tuple(X(i).flat for i in (3, 4, 5, 6, 7)) + \
        tuple(D(i).flat for i in (0, 1, 2, 3, 4, 5))
    return make_instance("stencil", src, sym, mem, n_threads, used, active,
                         check)


register(WorkloadSpec("stencil", "coral-2", "1-D 3-point FP stencil",
                      build_stencil, loads_per_iter=3, pattern="streaming"))
