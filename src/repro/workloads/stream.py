"""CORAL-2/PrIM-style streaming kernels: triad (FP), vecadd, reduction.

Higher spatial locality than the Spatter kernels — eight useful elements per
cache line — so memory latency is hidden with fewer threads (the workloads
for which the paper notes ViReC can store full contexts and just save area).
"""

from __future__ import annotations

import numpy as np

from ..isa import D, X
from ..memory.main_memory import MainMemory
from .registry import (
    DATA_BASE,
    array_base,
    WorkloadInstance,
    WorkloadSpec,
    make_instance,
    partition_header,
    register,
)


def build_triad(n_threads: int = 8, n_per_thread: int = 64,
                seed: int = 23) -> WorkloadInstance:
    """STREAM triad: ``a[i] = b[i] + q * c[i]`` in floating point."""
    n = n_threads * n_per_thread
    rng = np.random.default_rng(seed)
    b = rng.random(n)
    c = rng.random(n)
    q = 3.0
    mem = MainMemory()
    sym = {"a": array_base(0), "b": array_base(1),
           "c": array_base(2), "chunk": n_per_thread}
    mem.write_array(sym["b"], b)
    mem.write_array(sym["c"], c)
    src = partition_header() + """
    adr  x5, a
    adr  x6, b
    adr  x7, c
    fmov d0, #3.0
loop:
    ldr  d1, [x6, x3, lsl #3]
    ldr  d2, [x7, x3, lsl #3]
    fmadd d3, d2, d0, d1
    str  d3, [x5, x3, lsl #3]
    add  x3, x3, #1
    cmp  x3, x4
    b.lt loop
    halt
"""
    expected = b + q * c

    def check(m: MainMemory) -> bool:
        got = m.read_array(sym["a"], n)
        return all(abs(g - e) < 1e-12 for g, e in zip(got, expected))

    used = tuple(X(i).flat for i in (0, 2, 3, 4, 5, 6, 7)) + \
        tuple(D(i).flat for i in (0, 1, 2, 3))
    active = tuple(X(i).flat for i in (3, 4, 5, 6, 7)) + \
        tuple(D(i).flat for i in (0, 1, 2, 3))
    return make_instance("triad", src, sym, mem, n_threads, used, active, check)


def build_vecadd(n_threads: int = 8, n_per_thread: int = 64,
                 seed: int = 29) -> WorkloadInstance:
    """PrIM vecadd: ``c[i] = a[i] + b[i]`` (integer)."""
    n = n_threads * n_per_thread
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << 30, size=n)
    b = rng.integers(0, 1 << 30, size=n)
    mem = MainMemory()
    sym = {"a": array_base(0), "b": array_base(1),
           "c": array_base(2), "chunk": n_per_thread}
    mem.write_array(sym["a"], a)
    mem.write_array(sym["b"], b)
    src = partition_header() + """
    adr  x5, a
    adr  x6, b
    adr  x7, c
loop:
    ldr  x8, [x5, x3, lsl #3]
    ldr  x9, [x6, x3, lsl #3]
    add  x8, x8, x9
    str  x8, [x7, x3, lsl #3]
    add  x3, x3, #1
    cmp  x3, x4
    b.lt loop
    halt
"""
    expected = a + b

    def check(m: MainMemory) -> bool:
        return m.read_array(sym["c"], n) == [int(v) for v in expected]

    used = tuple(X(i).flat for i in (0, 2, 3, 4, 5, 6, 7, 8, 9))
    active = tuple(X(i).flat for i in (3, 4, 5, 6, 7, 8, 9))
    return make_instance("vecadd", src, sym, mem, n_threads, used, active, check)


def build_reduction(n_threads: int = 8, n_per_thread: int = 64,
                    seed: int = 31) -> WorkloadInstance:
    """PrIM reduction: per-thread partial sums written to ``out[tid]``."""
    n = n_threads * n_per_thread
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 1 << 20, size=n)
    mem = MainMemory()
    sym = {"a": array_base(0), "out": array_base(1),
           "chunk": n_per_thread}
    mem.write_array(sym["a"], a)
    src = partition_header() + """
    adr  x5, a
    adr  x6, out
    mov  x7, #0            ; acc
loop:
    ldr  x8, [x5, x3, lsl #3]
    add  x7, x7, x8
    add  x3, x3, #1
    cmp  x3, x4
    b.lt loop
    str  x7, [x6, x0, lsl #3]
    halt
"""
    chunk = n_per_thread
    expected = [int(a[t * chunk:(t + 1) * chunk].sum()) for t in range(n_threads)]

    def check(m: MainMemory) -> bool:
        return m.read_array(sym["out"], n_threads) == expected

    used = tuple(X(i).flat for i in (0, 2, 3, 4, 5, 6, 7, 8))
    active = tuple(X(i).flat for i in (3, 4, 5, 7, 8))
    return make_instance("reduction", src, sym, mem, n_threads, used, active, check)


register(WorkloadSpec("triad", "coral-2", "STREAM triad a = b + q*c (FP)",
                      build_triad, loads_per_iter=2, pattern="streaming"))
register(WorkloadSpec("vecadd", "prim", "elementwise integer vector add",
                      build_vecadd, loads_per_iter=2, pattern="streaming"))
register(WorkloadSpec("reduction", "prim", "per-thread sum reduction",
                      build_reduction, loads_per_iter=1, pattern="streaming"))
