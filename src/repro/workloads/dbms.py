"""Database-style kernels: hash-join probe and columnar transpose.

The near-data-processing-for-databases motivation the paper cites ([54],
"Beyond the wall") centres on probe-heavy joins and layout transforms:

* :func:`build_hash_probe` — probe a bucketed hash table with a stream of
  keys (open addressing, linear probing).  Dependent loads inside a
  data-dependent while-loop: low arithmetic intensity, unpredictable reuse.
* :func:`build_transpose` — tiled matrix transpose: perfectly strided reads
  against unit-stride writes (the classic data-rearrangement offload).
"""

from __future__ import annotations

import numpy as np

from ..isa import X
from ..memory.main_memory import MainMemory
from .registry import (
    WorkloadInstance,
    WorkloadSpec,
    array_base,
    make_instance,
    partition_header,
    register,
)


def build_hash_probe(n_threads: int = 8, n_per_thread: int = 32,
                     table_size: int = 4096, fill: float = 0.5,
                     seed: int = 61) -> WorkloadInstance:
    """``out[i] = value of keys[i] in an open-addressed table (0 if absent)``.

    ``table_size`` must be a power of two.  Layout: two parallel arrays
    ``tkeys``/``tvals``; empty slots hold key 0.
    """
    if table_size & (table_size - 1):
        raise ValueError("table_size must be a power of two")
    n = n_threads * n_per_thread
    rng = np.random.default_rng(seed)
    n_entries = int(table_size * fill)
    stored_keys = rng.permutation(np.arange(1, table_size * 4))[:n_entries]
    tkeys = np.zeros(table_size, dtype=np.int64)
    tvals = np.zeros(table_size, dtype=np.int64)
    mask = table_size - 1
    for k in stored_keys:
        slot = int(k) & mask
        while tkeys[slot] != 0:
            slot = (slot + 1) & mask
        tkeys[slot] = int(k)
        tvals[slot] = int(k) * 7 + 1

    # probe stream: ~75% present keys, rest absent
    present = rng.choice(stored_keys, size=n)
    absent = rng.permutation(np.arange(table_size * 4, table_size * 5))[:n]
    use_present = rng.random(n) < 0.75
    keys = np.where(use_present, present, absent)

    mem = MainMemory()
    sym = {"keys": array_base(0), "tkeys": array_base(1),
           "tvals": array_base(2), "out": array_base(3),
           "chunk": n_per_thread, "mask": mask}
    mem.write_array(sym["keys"], keys)
    mem.write_array(sym["tkeys"], tkeys)
    mem.write_array(sym["tvals"], tvals)
    src = partition_header() + """
    adr  x5, keys
    adr  x6, tkeys
    adr  x7, tvals
    adr  x8, out
    mov  x9, #mask
loop:
    ldr  x10, [x5, x3, lsl #3]      ; k = keys[i]
    and  x11, x10, x9               ; slot = k & mask
probe:
    ldr  x12, [x6, x11, lsl #3]     ; tk = tkeys[slot]
    cbz  x12, miss                  ; empty slot -> absent
    cmp  x12, x10
    b.eq hit
    add  x11, x11, #1               ; linear probe
    and  x11, x11, x9
    b    probe
hit:
    ldr  x12, [x7, x11, lsl #3]     ; value
    str  x12, [x8, x3, lsl #3]
    b    next
miss:
    mov  x12, #0
    str  x12, [x8, x3, lsl #3]
next:
    add  x3, x3, #1
    cmp  x3, x4
    b.lt loop
    halt
"""
    lookup = {int(k): int(k) * 7 + 1 for k in stored_keys}
    expected = [lookup.get(int(k), 0) for k in keys]

    def check(m: MainMemory) -> bool:
        return m.read_array(sym["out"], n) == expected

    used = tuple(X(i).flat for i in (0, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12))
    active = tuple(X(i).flat for i in (3, 4, 5, 6, 7, 8, 9, 10, 11, 12))
    return make_instance("hash_probe", src, sym, mem, n_threads, used, active,
                         check)


def build_transpose(n_threads: int = 8, n_per_thread: int = 16,
                    width: int = 32, seed: int = 67) -> WorkloadInstance:
    """Transpose rows of an ``n_rows x width`` matrix: ``out[c, r] = a[r, c]``.

    Each thread transposes ``n_per_thread`` source rows; writes stride by
    ``n_rows`` words — one destination line touched per element, the
    data-rearrangement pattern PLANAR-style near-memory engines target.
    """
    n_rows = n_threads * n_per_thread
    rng = np.random.default_rng(seed)
    a = rng.integers(1, 1 << 30, size=(n_rows, width))
    mem = MainMemory()
    sym = {"a": array_base(0), "out": array_base(1),
           "chunk": n_per_thread, "width": width, "nrows": n_rows}
    mem.write_array(sym["a"], a.ravel())
    src = partition_header() + """
    adr  x5, a
    adr  x6, out
    mov  x7, #width
    mov  x10, #nrows
    mul  x8, x3, x7        ; src index = r * width
row_loop:
    mov  x9, #0            ; c = 0
col_loop:
    ldr  x11, [x5, x8, lsl #3]     ; a[r, c]
    madd x12, x9, x10, x3          ; dst = c * nrows + r
    str  x11, [x6, x12, lsl #3]
    add  x8, x8, #1
    add  x9, x9, #1
    cmp  x9, x7
    b.lt col_loop
    add  x3, x3, #1
    cmp  x3, x4
    b.lt row_loop
    halt
"""
    expected = a.T

    def check(m: MainMemory) -> bool:
        got = m.read_array(sym["out"], n_rows * width)
        return got == [int(v) for v in expected.ravel()]

    used = tuple(X(i).flat for i in (0, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12))
    active = tuple(X(i).flat for i in (3, 5, 6, 7, 8, 9, 10, 11, 12))
    return make_instance("transpose", src, sym, mem, n_threads, used, active,
                         check)


register(WorkloadSpec("hash_probe", "dbms", "open-addressing hash-join probe",
                      build_hash_probe, loads_per_iter=2, pattern="dependent"))
register(WorkloadSpec("transpose", "spatter", "tiled matrix transpose",
                      build_transpose, loads_per_iter=1, pattern="strided"))
