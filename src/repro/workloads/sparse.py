"""Sparse/irregular kernels: CSR SpMV and histogram.

SpMV has a nested loop (rows / nonzeros), giving it the largest register
context of the suite — the workload class whose outer-loop registers the
compiler register-reduction pass (Section 4.2) spills to memory.  Histogram
performs dependent read-modify-write updates through an index.
"""

from __future__ import annotations

import numpy as np

from ..isa import D, X
from ..memory.main_memory import MainMemory
from .registry import (
    DATA_BASE,
    array_base,
    WorkloadInstance,
    WorkloadSpec,
    make_instance,
    register,
)


def build_spmv(n_threads: int = 8, n_per_thread: int = 16,
               nnz_per_row: int = 8, n_cols: int = 2048,
               seed: int = 43) -> WorkloadInstance:
    """CSR ``y = A @ x``; threads partition rows (``n_per_thread`` rows each)."""
    n_rows = n_threads * n_per_thread
    rng = np.random.default_rng(seed)
    cols = rng.integers(0, n_cols, size=n_rows * nnz_per_row)
    vals = rng.random(n_rows * nnz_per_row)
    x = rng.random(n_cols)
    rowptr = np.arange(n_rows + 1) * nnz_per_row
    mem = MainMemory()
    sym = {"rowptr": array_base(0), "cols": array_base(1),
           "vals": array_base(2), "x": array_base(3),
           "y": array_base(4), "chunk": n_per_thread}
    mem.write_array(sym["rowptr"], rowptr)
    mem.write_array(sym["cols"], cols)
    mem.write_array(sym["vals"], vals)
    mem.write_array(sym["x"], x)
    src = """
start:
    mov  x2, #chunk
    mul  x3, x0, x2        ; row = tid * chunk
    add  x4, x3, x2        ; row_end
    adr  x5, rowptr
    adr  x6, cols
    adr  x7, vals
    adr  x8, x
    adr  x9, y
row_loop:
    ldr  x10, [x5, x3, lsl #3]      ; j = rowptr[row]
    add  x12, x3, #1
    ldr  x11, [x5, x12, lsl #3]     ; j_end = rowptr[row+1]
    fmov d0, #0.0                   ; acc
inner:
    ldr  x12, [x6, x10, lsl #3]     ; col
    ldr  d1, [x7, x10, lsl #3]      ; val
    ldr  d2, [x8, x12, lsl #3]      ; x[col]
    fmadd d0, d1, d2, d0
    add  x10, x10, #1
    cmp  x10, x11
    b.lt inner
    str  d0, [x9, x3, lsl #3]
    add  x3, x3, #1
    cmp  x3, x4
    b.lt row_loop
    halt
"""
    expected = np.zeros(n_rows)
    for r in range(n_rows):
        sl = slice(rowptr[r], rowptr[r + 1])
        expected[r] = (vals[sl] * x[cols[sl]]).sum()

    def check(m: MainMemory) -> bool:
        got = m.read_array(sym["y"], n_rows)
        return all(abs(g - e) < 1e-9 for g, e in zip(got, expected))

    used = tuple(X(i).flat for i in (0, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)) \
        + tuple(D(i).flat for i in (0, 1, 2))
    active = tuple(X(i).flat for i in (6, 7, 8, 10, 11, 12)) \
        + tuple(D(i).flat for i in (0, 1, 2))
    return make_instance("spmv", src, sym, mem, n_threads, used, active, check)


def build_histogram(n_threads: int = 8, n_per_thread: int = 64,
                    buckets: int = 64, seed: int = 47) -> WorkloadInstance:
    """Per-thread private histograms: ``hist[tid][key[i] % buckets] += 1``.

    ``buckets`` must be a power of two (the kernel masks with AND).
    """
    if buckets & (buckets - 1):
        raise ValueError("buckets must be a power of two")
    n = n_threads * n_per_thread
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 1 << 20, size=n)
    mem = MainMemory()
    sym = {"keys": array_base(0), "hist": array_base(1),
           "chunk": n_per_thread, "mask": buckets - 1, "buckets": buckets}
    mem.write_array(sym["keys"], keys)
    src = """
start:
    mov  x2, #chunk
    mul  x3, x0, x2
    add  x4, x3, x2
    adr  x5, keys
    adr  x6, hist
    mov  x7, #buckets
    lsl  x7, x7, #3        ; buckets * 8 bytes
    madd x6, x0, x7, x6    ; hist_base = hist + tid*buckets*8
    mov  x7, #mask
loop:
    ldr  x8, [x5, x3, lsl #3]
    and  x8, x8, x7        ; bucket
    ldr  x9, [x6, x8, lsl #3]
    add  x9, x9, #1
    str  x9, [x6, x8, lsl #3]
    add  x3, x3, #1
    cmp  x3, x4
    b.lt loop
    halt
"""
    chunk = n_per_thread
    expected = {}
    for tid in range(n_threads):
        h = np.zeros(buckets, dtype=int)
        for k in keys[tid * chunk:(tid + 1) * chunk]:
            h[int(k) & (buckets - 1)] += 1
        expected[tid] = h

    def check(m: MainMemory) -> bool:
        for tid, h in expected.items():
            base = sym["hist"] + tid * buckets * 8
            got = m.read_array(base, buckets)
            if got != [int(v) for v in h]:
                return False
        return True

    used = tuple(X(i).flat for i in (0, 2, 3, 4, 5, 6, 7, 8, 9))
    active = tuple(X(i).flat for i in (3, 4, 5, 6, 7, 8, 9))
    return make_instance("histogram", src, sym, mem, n_threads, used, active, check)


register(WorkloadSpec("spmv", "coral-2", "CSR sparse matrix-vector product",
                      build_spmv, loads_per_iter=3, pattern="indirect"))
register(WorkloadSpec("histogram", "prim", "indexed read-modify-write counting",
                      build_histogram, loads_per_iter=2, pattern="indirect"))
