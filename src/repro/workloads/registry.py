"""Workload framework: near-memory kernels with generators and checkers.

Each workload corresponds to a kernel family from the benchmark suites the
paper evaluates (Spatter [36], Arm meabo [7], CORAL-2 [1], PrIM [28]) and
provides:

* assembly source for the mini-ISA, written so every hardware thread
  partitions the iteration space by its thread id (``x0``) — the task-level
  offload convention of Section 6;
* a deterministic data generator (seeded numpy);
* an output checker computed independently with numpy;
* register metadata: ``used_regs`` (the whole context the kernel touches,
  after compiler register reduction of outer-loop values, Section 4.2) and
  ``active_regs`` (the inner-loop working set that drives Figure 2 and the
  ViReC context-percentage sweeps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.cgmt import ContextLayout, make_threads
from ..isa import Program, X, assemble
from ..memory.main_memory import MainMemory


@dataclass
class WorkloadInstance:
    """A fully materialized run: program + initialized memory + expectations."""

    name: str
    program: Program
    memory: MainMemory
    n_threads: int
    init_regs: List[Dict]                    # per-thread offloaded context
    used_regs: Tuple[int, ...]               # flat indices, whole kernel
    active_regs: Tuple[int, ...]             # flat indices, inner loop
    checker: Callable[[MainMemory], bool]
    symbols: Dict[str, int] = field(default_factory=dict)

    def layout(self, base: int = 0x8000_0000) -> ContextLayout:
        return ContextLayout(base=base, used_regs=self.used_regs)

    def threads(self):
        return make_threads(self.n_threads, entry_pc=self.program.entry,
                            init_regs=self.init_regs)

    def check(self) -> bool:
        """Verify the kernel's outputs in memory against the numpy oracle."""
        return self.checker(self.memory)


@dataclass(frozen=True)
class WorkloadSpec:
    """Registered workload: metadata + builder."""

    name: str
    suite: str                      # spatter / meabo / coral-2 / prim
    description: str
    build: Callable[..., WorkloadInstance]
    #: loads in the innermost loop (characterization, Table/figure text)
    loads_per_iter: int
    #: qualitative access pattern tag
    pattern: str


_REGISTRY: Dict[str, WorkloadSpec] = {}


def register(spec: WorkloadSpec) -> WorkloadSpec:
    """Add a workload to the global registry (module-import time)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate workload {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> WorkloadSpec:
    """Look up a registered workload by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown workload {name!r}; available: {sorted(_REGISTRY)}")


def all_workloads() -> List[WorkloadSpec]:
    """Every registered workload, sorted by name."""
    return [spec for _, spec in sorted(_REGISTRY.items())]


def names() -> List[str]:
    """Sorted names of all registered workloads."""
    return sorted(_REGISTRY)


# -- shared helpers -----------------------------------------------------------

DATA_BASE = 0x0100_0000     # workload arrays live well below the register region


def array_base(k: int) -> int:
    """Byte address for the k-th array of a workload.

    Arrays are 1 MiB apart plus a 7-line stagger so same-index elements of
    different arrays do not alias onto one dcache set (the padding any real
    allocator/benchmark uses to avoid pathological set conflicts)."""
    return DATA_BASE + k * 0x10_0000 + k * 0x1C0


def flats(*regs) -> Tuple[int, ...]:
    """Flat indices of a register list (accepts Reg objects)."""
    return tuple(sorted(r.flat for r in regs))


def partition_header(chunk_sym: str = "chunk") -> str:
    """Standard prologue: compute [start, end) from tid in x0."""
    return f"""
start:
    mov  x2, #{chunk_sym}
    mul  x3, x0, x2        ; i = tid * chunk
    add  x4, x3, x2        ; end = i + chunk
"""


def make_instance(name, src, symbols, mem, n_threads, used, active, checker,
                  extra_init=None) -> WorkloadInstance:
    """Assemble a kernel and wrap it with per-thread contexts + metadata."""
    program = assemble(src, symbols=symbols, name=name)
    init = []
    for tid in range(n_threads):
        regs = {X(0): tid, X(1): n_threads}
        if extra_init:
            regs.update(extra_init(tid))
        init.append(regs)
    return WorkloadInstance(
        name=name, program=program, memory=mem, n_threads=n_threads,
        init_regs=init, used_regs=tuple(sorted(used)),
        active_regs=tuple(sorted(active)), checker=checker, symbols=symbols)
