"""meabo-style mixed-phase kernel (Arm meabo [7]; "maebo" in the paper text).

Alternates two inner phases that touch *different register subsets* — an
FP multiply-accumulate phase and an integer indirect phase — reproducing the
paper's observation that for meabo "subsets of each context are accessed
each time the thread is run", the workload where scheduling-aware policies
must preserve partial contexts across runs (Section 6.1, Figure 12).
"""

from __future__ import annotations

import numpy as np

from ..isa import D, X
from ..memory.main_memory import MainMemory
from .registry import (
    DATA_BASE,
    array_base,
    WorkloadInstance,
    WorkloadSpec,
    make_instance,
    partition_header,
    register,
)


def build_meabo(n_threads: int = 8, n_per_thread: int = 64,
                footprint_words: int = 4096, seed: int = 37) -> WorkloadInstance:
    """Even iterations: ``fa[i] = fb[i] * q + fa[i]``;
    odd iterations: ``out[i] = data[idx[i]] + i``."""
    n = n_threads * n_per_thread
    rng = np.random.default_rng(seed)
    fb = rng.random(n)
    fa0 = rng.random(n)
    idx = rng.integers(0, footprint_words, size=n)
    data = rng.integers(1, 1 << 28, size=footprint_words)
    mem = MainMemory()
    sym = {"fa": array_base(0), "fb": array_base(1),
           "idx": array_base(2), "data": array_base(3),
           "out": array_base(4), "chunk": n_per_thread}
    mem.write_array(sym["fa"], fa0)
    mem.write_array(sym["fb"], fb)
    mem.write_array(sym["idx"], idx)
    mem.write_array(sym["data"], data)
    src = partition_header() + """
    adr  x5, fa
    adr  x6, fb
    adr  x7, idx
    adr  x8, data
    adr  x9, out
    fmov d0, #1.5
    mov  x10, #1
loop:
    and  x11, x3, x10      ; phase = i & 1
    cbnz x11, int_phase
    ; -- FP phase: fa[i] = fb[i]*q + fa[i]
    ldr  d1, [x6, x3, lsl #3]
    ldr  d2, [x5, x3, lsl #3]
    fmadd d3, d1, d0, d2
    str  d3, [x5, x3, lsl #3]
    b    next
int_phase:
    ; -- integer indirect phase: out[i] = data[idx[i]] + i
    ldr  x12, [x7, x3, lsl #3]
    ldr  x13, [x8, x12, lsl #3]
    add  x13, x13, x3
    str  x13, [x9, x3, lsl #3]
next:
    add  x3, x3, #1
    cmp  x3, x4
    b.lt loop
    halt
"""
    exp_fa = np.where(np.arange(n) % 2 == 0, fb * 1.5 + fa0, fa0)
    odd = np.arange(n) % 2 == 1
    exp_out = data[idx] + np.arange(n)

    def check(m: MainMemory) -> bool:
        fa_got = m.read_array(sym["fa"], n)
        if any(abs(g - e) > 1e-12 for g, e in zip(fa_got, exp_fa)):
            return False
        return all(m.load(sym["out"] + i * 8) == int(exp_out[i])
                   for i in range(n) if odd[i])

    used = tuple(X(i).flat for i in (0, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13)) \
        + tuple(D(i).flat for i in (0, 1, 2, 3))
    active = tuple(X(i).flat for i in (3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13)) \
        + tuple(D(i).flat for i in (0, 1, 2, 3))
    return make_instance("meabo", src, sym, mem, n_threads, used, active, check)


register(WorkloadSpec("meabo", "meabo",
                      "alternating FP-compute / integer-indirect phases",
                      build_meabo, loads_per_iter=2, pattern="mixed"))
