"""The ``fuzz`` workload: a bridge from the fuzzer into the registry.

Registering generated programs as a regular workload means the entire
existing machinery — :func:`repro.system.simulator.run_config`, plugins,
fault injection, the sanitizer, spawn-based parallel backends, checkpoint
keys — works on fuzz programs unchanged.  The program's *content* is
fully determined by ``workload_kwargs["gen"]`` (a
:class:`~repro.fuzz.generator.GenSpec` mapping); the ``seed`` argument
every workload build receives is deliberately ignored so that retries
under a perturbed run seed re-run the *same* program.

``workload_kwargs["asm"]`` optionally overrides the generated assembly
while keeping the spec's data arrays and symbols — the hook the shrinker
and corpus replay use to run minimized candidates.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..isa import X, assemble
from ..memory.main_memory import MainMemory
from .registry import WorkloadInstance, WorkloadSpec, register


def build_fuzz(n_threads: int = 4, n_per_thread: int = 16, seed: int = 0,
               gen: Optional[Dict] = None, asm: Optional[str] = None,
               **_ignored) -> WorkloadInstance:
    """Materialize one generated program as a WorkloadInstance.

    ``gen`` holds the :class:`~repro.fuzz.generator.GenSpec` fields
    (defaults apply when omitted); ``asm`` optionally replaces the
    generated assembly (shrink candidates, corpus reproducers).
    """
    # imported lazily: repro.workloads imports this module at registration
    # time, and repro.fuzz.generator needs repro.workloads.registry
    from ..fuzz.generator import GenSpec, generate, make_checker

    spec = GenSpec(**(gen or {}))
    kern = generate(spec, n_threads=n_threads, n_per_thread=n_per_thread)
    src = kern.asm if asm is None else asm
    program = assemble(src, symbols=kern.symbols,
                       name=f"fuzz-{spec.archetype}-{spec.seed}")
    mem = MainMemory()
    for name in sorted(kern.arrays):
        mem.write_array(kern.symbols[name], kern.arrays[name])
    pristine = mem.copy()
    init = [{X(0): tid, X(1): n_threads} for tid in range(n_threads)]
    checker = make_checker(program, pristine, init, n_threads)
    # the spec's register layout applies even under an ``asm`` override:
    # RF sizing, fault-injection sites, and the sanitizer's shadow scope
    # all key off used/active regs, so a shrunk reproducer (always a
    # line-subset of the generated program) must keep the original layout
    # for its replay to match the run that found the bug
    return WorkloadInstance(
        name="fuzz", program=program, memory=mem, n_threads=n_threads,
        init_regs=init, used_regs=kern.used_regs,
        active_regs=kern.active_regs, checker=checker, symbols=kern.symbols)


register(WorkloadSpec("fuzz", "fuzzer",
                      "seeded random differential-fuzzing kernel",
                      build_fuzz, loads_per_iter=2, pattern="randomized"))
