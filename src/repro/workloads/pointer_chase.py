"""Pointer-chasing kernel (PrIM-style linked-list traversal).

Fully serialized loads: each element's address depends on the previous load,
so a single thread exposes zero memory-level parallelism — the workload that
*most* needs thread-level parallelism and context switching to keep the core
busy.  Each thread walks its own private chain.
"""

from __future__ import annotations

import numpy as np

from ..isa import X
from ..memory.main_memory import MainMemory
from .registry import (
    DATA_BASE,
    array_base,
    WorkloadInstance,
    WorkloadSpec,
    make_instance,
    register,
)


def build_pointer_chase(n_threads: int = 8, n_per_thread: int = 64,
                        footprint_words: int = 4096,
                        seed: int = 41) -> WorkloadInstance:
    """Walk a scattered linked list; store the hop count's final node value."""
    rng = np.random.default_rng(seed)
    mem = MainMemory()
    node_base = DATA_BASE
    heads = []
    finals = []
    # build one private chain per thread over a scattered node pool
    pool = rng.permutation(footprint_words)
    per = footprint_words // n_threads
    for tid in range(n_threads):
        nodes = pool[tid * per:(tid + 1) * per][:n_per_thread + 1]
        for a, b in zip(nodes[:-1], nodes[1:]):
            mem.store(node_base + int(a) * 8, node_base + int(b) * 8)
        mem.store(node_base + int(nodes[-1]) * 8, 0)
        heads.append(node_base + int(nodes[0]) * 8)
        finals.append(node_base + int(nodes[-1]) * 8)
    mem.write_array(array_base(4), heads)

    sym = {"heads": array_base(4), "out": array_base(5),
           "hops": n_per_thread}
    src = """
start:
    adr  x5, heads
    ldr  x3, [x5, x0, lsl #3]   ; p = heads[tid]
    mov  x4, #hops
    adr  x6, out
loop:
    ldr  x3, [x3, #0]           ; p = *p
    sub  x4, x4, #1
    cbnz x4, loop
    str  x3, [x6, x0, lsl #3]
    halt
"""
    # oracle: walk each chain in python for the same hop count
    expected = []
    for head in heads:
        p = head
        for _ in range(n_per_thread):
            p = mem.load(p)
        expected.append(p)

    def check(m: MainMemory) -> bool:
        return m.read_array(sym["out"], n_threads) == expected

    used = tuple(X(i).flat for i in (0, 3, 4, 5, 6))
    active = tuple(X(i).flat for i in (3, 4))
    return make_instance("pointer_chase", src, sym, mem, n_threads, used,
                         active, check)


register(WorkloadSpec("pointer_chase", "prim", "serialized linked-list walk",
                      build_pointer_chase, loads_per_iter=1, pattern="dependent"))
