"""Parameterized synthetic kernel generator.

The named kernels pin down specific points in workload space; this module
generates kernels *anywhere* in it, controlled by three knobs:

``working_set``
    registers kept live in the inner loop (2-16) — the x-axis of the
    register-provisioning study;
``alu_per_load``
    arithmetic intensity: ALU ops executed per load (0-16);
``indirection``
    False = streaming load (``data[i]``), True = indirect (``data[idx[i]]``).

The generated inner loop rotates through ``working_set`` accumulator
registers so each is genuinely live across iterations (a register allocator
could not shrink the set), which makes the generator a precise instrument
for ViReC sizing questions: at what provisioned fraction of
``threads x working_set`` does the hit rate collapse?
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..isa import X
from ..memory.main_memory import MainMemory
from .registry import (
    WorkloadInstance,
    WorkloadSpec,
    array_base,
    make_instance,
    register,
)

#: registers available for accumulators: x8..x23 (x0-x7 are kernel plumbing)
_ACC_BASE = 8
_MAX_WORKING_SET = 16


def build_synthetic(n_threads: int = 8, n_per_thread: int = 64,
                    working_set: int = 6, alu_per_load: int = 2,
                    indirection: bool = True,
                    footprint_words: int = 4096,
                    seed: int = 71) -> WorkloadInstance:
    """Generate a kernel with the requested register/arithmetic profile.

    Semantics: accumulators ``a0..a{w-1}`` start at 0; iteration ``i``
    loads ``v`` (direct or indirect), then performs ``alu_per_load``
    additions rotating through the accumulators (``a[(i*alu+j) % w] += v+j``
    in spirit — exact reference computed by the oracle below); at the end
    each thread stores the xor-sum of its accumulators.
    """
    if not 2 <= working_set <= _MAX_WORKING_SET:
        raise ValueError(f"working_set must be in [2, {_MAX_WORKING_SET}]")
    if alu_per_load < 0:
        raise ValueError("alu_per_load must be >= 0")
    n = n_threads * n_per_thread
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, footprint_words, size=n)
    data = rng.integers(1, 1 << 20, size=footprint_words)

    mem = MainMemory()
    sym = {"idx": array_base(0), "data": array_base(1),
           "out": array_base(2), "chunk": n_per_thread}
    mem.write_array(sym["idx"], idx)
    mem.write_array(sym["data"], data)

    accs = [X(_ACC_BASE + i) for i in range(working_set)]
    load_tmp = X(_ACC_BASE + _MAX_WORKING_SET)      # x24
    idx_tmp = X(7)

    lines: List[str] = ["start:",
                        "    mov  x2, #chunk",
                        "    mul  x3, x0, x2",
                        "    add  x4, x3, x2",
                        "    adr  x5, idx",
                        "    adr  x6, data"]
    for acc in accs:
        lines.append(f"    mov  {acc.name}, #0")
    lines.append("loop:")
    if indirection:
        lines.append(f"    ldr  {idx_tmp.name}, [x5, x3, lsl #3]")
        lines.append(f"    ldr  {load_tmp.name}, [x6, {idx_tmp.name}, lsl #3]")
    else:
        lines.append(f"    ldr  {load_tmp.name}, [x6, x3, lsl #3]")
    for j in range(alu_per_load):
        acc = accs[j % working_set]
        lines.append(f"    add  {acc.name}, {acc.name}, {load_tmp.name}")
    if alu_per_load == 0:
        lines.append(f"    add  {accs[0].name}, {accs[0].name}, "
                     f"{load_tmp.name}")
    lines.append("    add  x3, x3, #1")
    lines.append("    cmp  x3, x4")
    lines.append("    b.lt loop")
    # epilogue: combine accumulators and store per-thread result
    lines.append(f"    mov  {idx_tmp.name}, #0")
    for acc in accs:
        lines.append(f"    add  {idx_tmp.name}, {idx_tmp.name}, {acc.name}")
    lines.append("    adr  x6, out")
    lines.append(f"    str  {idx_tmp.name}, [x6, x0, lsl #3]")
    lines.append("    halt")
    src = "\n".join(lines)

    # oracle
    eff_alu = max(1, alu_per_load)
    expected = []
    for tid in range(n_threads):
        lo, hi = tid * n_per_thread, (tid + 1) * n_per_thread
        vals = data[idx[lo:hi]] if indirection else data[lo:hi]
        total = int(vals.sum()) * eff_alu
        expected.append(total & ((1 << 64) - 1))

    def check(m: MainMemory) -> bool:
        return m.read_array(sym["out"], n_threads) == expected

    plumbing = [X(i).flat for i in (0, 2, 3, 4, 5, 6, 7)]
    used = tuple(sorted(set(plumbing + [a.flat for a in accs]
                            + [load_tmp.flat])))
    active = tuple(sorted({X(3).flat, X(4).flat, X(5).flat, X(6).flat,
                           X(7).flat, load_tmp.flat}
                          | {a.flat for a in accs}))
    return make_instance("synthetic", src, sym, mem, n_threads, used,
                         active, check)


register(WorkloadSpec("synthetic", "generator",
                      "parameterized register/arithmetic profile kernel",
                      build_synthetic, loads_per_iter=2, pattern="tunable"))
