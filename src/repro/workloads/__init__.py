"""Near-memory workload suite (Spatter, meabo, CORAL-2, PrIM kernels)."""

from . import dbms, fuzzgen, graph, meabo, pointer_chase, sparse, spatter, stencil, stream, synthetic  # noqa: F401 (registration)
from .registry import (
    WorkloadInstance,
    WorkloadSpec,
    all_workloads,
    get,
    names,
)

__all__ = ["WorkloadInstance", "WorkloadSpec", "all_workloads", "get", "names"]
