"""Spatter-style kernels [36]: gather, scatter, gather-scatter, stride.

These are the canonical low-arithmetic-intensity, indirect-access kernels of
the paper's motivation (Figures 1 and 10 use *gather*).  The ``locality``
knob interpolates between fully-uniform random indices (worst case) and a
sliding clustered window (Spatter's patterned traces).
"""

from __future__ import annotations

import numpy as np

from ..isa import X
from ..memory.main_memory import MainMemory
from .registry import (
    DATA_BASE,
    array_base,
    WorkloadInstance,
    WorkloadSpec,
    make_instance,
    partition_header,
    register,
)


def _indices(rng: np.random.Generator, n: int, footprint: int,
             locality: float) -> np.ndarray:
    """Random indices with a tunable clustered-locality fraction."""
    idx = rng.integers(0, footprint, size=n)
    if locality > 0:
        window = max(8, footprint // 64)
        local = (np.arange(n) * 3) % max(1, footprint - window)
        mask = rng.random(n) < locality
        idx[mask] = local[mask] + rng.integers(0, window, size=n)[mask]
    return idx


def build_gather(n_threads: int = 8, n_per_thread: int = 64,
                 footprint_words: int = 4096, seed: int = 7,
                 locality: float = 0.5) -> WorkloadInstance:
    """``out[i] = data[idx[i]]`` — streaming indirect loads."""
    n = n_threads * n_per_thread
    rng = np.random.default_rng(seed)
    idx = _indices(rng, n, footprint_words, locality)
    data = rng.integers(1, 1 << 30, size=footprint_words)
    mem = MainMemory()
    sym = {"idx": array_base(0), "data": array_base(1),
           "out": array_base(2), "chunk": n_per_thread}
    mem.write_array(sym["idx"], idx)
    mem.write_array(sym["data"], data)
    src = partition_header() + """
    adr  x5, idx
    adr  x6, data
    adr  x7, out
loop:
    ldr  x8, [x5, x3, lsl #3]
    ldr  x9, [x6, x8, lsl #3]
    str  x9, [x7, x3, lsl #3]
    add  x3, x3, #1
    cmp  x3, x4
    b.lt loop
    halt
"""
    expected = data[idx]

    def check(m: MainMemory) -> bool:
        return m.read_array(sym["out"], n) == [int(v) for v in expected]

    used = (X(0).flat, X(2).flat, X(3).flat, X(4).flat, X(5).flat,
            X(6).flat, X(7).flat, X(8).flat, X(9).flat)
    active = (X(3).flat, X(4).flat, X(5).flat, X(6).flat, X(7).flat,
              X(8).flat, X(9).flat)
    return make_instance("gather", src, sym, mem, n_threads, used, active, check)


def build_scatter(n_threads: int = 8, n_per_thread: int = 64,
                  footprint_words: int = 4096, seed: int = 11,
                  locality: float = 0.5) -> WorkloadInstance:
    """``out[idx[i]] = data[i]`` — streaming indirect stores."""
    n = n_threads * n_per_thread
    rng = np.random.default_rng(seed)
    # unique indices so the result is deterministic under any thread order
    idx = rng.permutation(footprint_words)[:n]
    data = rng.integers(1, 1 << 30, size=n)
    mem = MainMemory()
    sym = {"idx": array_base(0), "data": array_base(1),
           "out": array_base(2), "chunk": n_per_thread}
    mem.write_array(sym["idx"], idx)
    mem.write_array(sym["data"], data)
    src = partition_header() + """
    adr  x5, idx
    adr  x6, data
    adr  x7, out
loop:
    ldr  x8, [x5, x3, lsl #3]
    ldr  x9, [x6, x3, lsl #3]
    str  x9, [x7, x8, lsl #3]
    add  x3, x3, #1
    cmp  x3, x4
    b.lt loop
    halt
"""
    def check(m: MainMemory) -> bool:
        return all(m.load(sym["out"] + int(i) * 8) == int(v)
                   for i, v in zip(idx, data))

    used = (X(0).flat, X(2).flat, X(3).flat, X(4).flat, X(5).flat,
            X(6).flat, X(7).flat, X(8).flat, X(9).flat)
    active = (X(3).flat, X(4).flat, X(5).flat, X(6).flat, X(7).flat,
              X(8).flat, X(9).flat)
    return make_instance("scatter", src, sym, mem, n_threads, used, active, check)


def build_gather_scatter(n_threads: int = 8, n_per_thread: int = 64,
                         footprint_words: int = 4096, seed: int = 13,
                         locality: float = 0.5) -> WorkloadInstance:
    """``out[oidx[i]] = data[iidx[i]]`` — indirection on both sides."""
    n = n_threads * n_per_thread
    rng = np.random.default_rng(seed)
    iidx = _indices(rng, n, footprint_words, locality)
    oidx = rng.permutation(footprint_words)[:n]
    data = rng.integers(1, 1 << 30, size=footprint_words)
    mem = MainMemory()
    sym = {"iidx": array_base(0), "oidx": array_base(1),
           "data": array_base(2), "out": array_base(3),
           "chunk": n_per_thread}
    mem.write_array(sym["iidx"], iidx)
    mem.write_array(sym["oidx"], oidx)
    mem.write_array(sym["data"], data)
    src = partition_header() + """
    adr  x5, iidx
    adr  x6, oidx
    adr  x7, data
    adr  x8, out
loop:
    ldr  x9, [x5, x3, lsl #3]
    ldr  x10, [x6, x3, lsl #3]
    ldr  x11, [x7, x9, lsl #3]
    str  x11, [x8, x10, lsl #3]
    add  x3, x3, #1
    cmp  x3, x4
    b.lt loop
    halt
"""
    def check(m: MainMemory) -> bool:
        return all(m.load(sym["out"] + int(o) * 8) == int(data[i])
                   for i, o in zip(iidx, oidx))

    used = tuple(X(i).flat for i in (0, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11))
    active = tuple(X(i).flat for i in (3, 4, 5, 6, 7, 8, 9, 10, 11))
    return make_instance("gather_scatter", src, sym, mem, n_threads, used,
                         active, check)


def build_stride(n_threads: int = 8, n_per_thread: int = 64,
                 stride: int = 8, pad_lines: int = 1,
                 seed: int = 17) -> WorkloadInstance:
    """``out[i] = data[i * stride + tid * pad]`` — one fresh cache line per
    element.  ``pad_lines`` staggers each thread's partition by whole cache
    lines so perfectly aligned chunks do not alias onto the same dcache set
    (the standard padding idiom for partitioned streaming kernels)."""
    n = n_threads * n_per_thread
    rng = np.random.default_rng(seed)
    pad_words = pad_lines * 8
    data = rng.integers(1, 1 << 30, size=n * stride + n_threads * pad_words + 1)
    mem = MainMemory()
    sym = {"data": array_base(0), "out": array_base(4),
           "chunk": n_per_thread, "stride": stride,
           "padbytes": pad_words * 8}
    mem.write_array(sym["data"], data)
    src = partition_header() + """
    adr  x5, data
    mov  x9, #padbytes
    madd x5, x0, x9, x5    ; per-thread line padding
    adr  x6, out
    mov  x7, #stride
    mul  x8, x3, x7        ; j = i * stride
loop:
    ldr  x9, [x5, x8, lsl #3]
    str  x9, [x6, x3, lsl #3]
    add  x3, x3, #1
    add  x8, x8, x7
    cmp  x3, x4
    b.lt loop
    halt
"""
    tid = np.arange(n) // n_per_thread
    expected = data[np.arange(n) * stride + tid * pad_words]

    def check(m: MainMemory) -> bool:
        return m.read_array(sym["out"], n) == [int(v) for v in expected]

    used = tuple(X(i).flat for i in (0, 2, 3, 4, 5, 6, 7, 8, 9))
    active = tuple(X(i).flat for i in (3, 4, 5, 6, 7, 8, 9))
    return make_instance("stride", src, sym, mem, n_threads, used, active, check)


register(WorkloadSpec("gather", "spatter", "streaming indirect gather",
                      build_gather, loads_per_iter=2, pattern="indirect"))
register(WorkloadSpec("scatter", "spatter", "streaming indirect scatter",
                      build_scatter, loads_per_iter=2, pattern="indirect"))
register(WorkloadSpec("gather_scatter", "spatter",
                      "indirect on both source and destination",
                      build_gather_scatter, loads_per_iter=3, pattern="indirect"))
register(WorkloadSpec("stride", "spatter", "strided line-per-element stream",
                      build_stride, loads_per_iter=1, pattern="strided"))
