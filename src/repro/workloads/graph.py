"""Graph traversal kernel: frontier-based BFS step (PrIM-style).

Each thread expands its slice of the current frontier: for every frontier
vertex it walks the CSR adjacency list and records first-visit parents.
Irregular on three levels — frontier indirection, row-pointer lookups, and
scattered neighbour accesses — with a data-dependent inner loop, making it
the most branch- and indirection-heavy kernel in the suite.

Threads own disjoint frontier slices and (by construction of the generated
graph) disjoint neighbour sets, so results are deterministic under any
thread interleaving.
"""

from __future__ import annotations

import numpy as np

from ..isa import X
from ..memory.main_memory import MainMemory
from .registry import (
    WorkloadInstance,
    WorkloadSpec,
    array_base,
    make_instance,
    register,
)


def build_bfs_step(n_threads: int = 8, n_per_thread: int = 16,
                   degree: int = 4, seed: int = 53) -> WorkloadInstance:
    """One BFS frontier expansion over a generated disjoint-partition graph."""
    frontier_n = n_threads * n_per_thread
    n_vertices = frontier_n * (degree + 1) + 1
    rng = np.random.default_rng(seed)

    # partition the non-frontier vertices among frontier vertices so each
    # neighbour appears exactly once (deterministic parents)
    frontier = rng.permutation(n_vertices - 1)[:frontier_n] + 1
    others = np.setdiff1d(np.arange(1, n_vertices), frontier)
    rng.shuffle(others)
    rowptr = np.zeros(n_vertices + 1, dtype=np.int64)
    cols = np.zeros(frontier_n * degree, dtype=np.int64)
    nnz = 0
    take = 0
    deg_of = {}
    for v in frontier:
        d = int(rng.integers(1, degree + 1))
        d = min(d, len(others) - take)
        deg_of[int(v)] = d
        cols[nnz:nnz + d] = others[take:take + d]
        nnz += d
        take += d
    # build CSR rowptr for all vertices (non-frontier rows are empty)
    counts = np.zeros(n_vertices, dtype=np.int64)
    pos = 0
    cols_csr = np.zeros(nnz, dtype=np.int64)
    for v in frontier:
        counts[int(v)] = deg_of[int(v)]
    rowptr[1:] = np.cumsum(counts)
    cursor = rowptr[:-1].copy()
    pos = 0
    for v in frontier:
        d = deg_of[int(v)]
        cols_csr[cursor[int(v)]:cursor[int(v)] + d] = cols[pos:pos + d]
        pos += d

    mem = MainMemory()
    sym = {"frontier": array_base(0), "rowptr": array_base(1),
           "cols": array_base(2), "parent": array_base(3),
           "chunk": n_per_thread}
    mem.write_array(sym["frontier"], frontier)
    mem.write_array(sym["rowptr"], rowptr)
    if nnz:
        mem.write_array(sym["cols"], cols_csr[:nnz])

    src = """
start:
    mov  x2, #chunk
    mul  x3, x0, x2         ; i = tid * chunk
    add  x4, x3, x2
    adr  x5, frontier
    adr  x6, rowptr
    adr  x7, cols
    adr  x8, parent
vloop:
    ldr  x9, [x5, x3, lsl #3]       ; v = frontier[i]
    ldr  x10, [x6, x9, lsl #3]      ; j = rowptr[v]
    add  x12, x9, #1
    ldr  x11, [x6, x12, lsl #3]     ; j_end = rowptr[v+1]
    cmp  x10, x11
    b.ge next_v
nloop:
    ldr  x12, [x7, x10, lsl #3]     ; u = cols[j]
    str  x9, [x8, x12, lsl #3]      ; parent[u] = v
    add  x10, x10, #1
    cmp  x10, x11
    b.lt nloop
next_v:
    add  x3, x3, #1
    cmp  x3, x4
    b.lt vloop
    halt
"""
    expected = {}
    for v in frontier:
        v = int(v)
        for j in range(rowptr[v], rowptr[v + 1]):
            expected[int(cols_csr[j])] = v

    def check(m: MainMemory) -> bool:
        return all(m.load(sym["parent"] + u * 8) == v
                   for u, v in expected.items())

    used = tuple(X(i).flat for i in (0, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12))
    active = tuple(X(i).flat for i in (7, 8, 9, 10, 11, 12))
    return make_instance("bfs_step", src, sym, mem, n_threads, used, active,
                         check)


register(WorkloadSpec("bfs_step", "prim", "BFS frontier expansion over CSR",
                      build_bfs_step, loads_per_iter=2, pattern="dependent"))
