"""Differential executor: one program, several cores, VSan as the judge.

Each generated program runs on a **banked reference core** and on a set
of candidate arms (ViReC under different eviction policies, FGMT), every
run with the VSan shadow sanitizer enabled and the workload's race-aware
golden-model check on.  Three classes of divergence become findings:

* **exceptions** — a :class:`~repro.errors.SimulationError` from any arm
  (sanitizer violation, functional-check failure, deadlock/watchdog
  wedge, fault escape).  A generated program wedging a core *is* a real
  bug, so budget exhaustion is a finding, never a harness crash;
* **instruction divergence** — committed instruction counts must be
  bit-equal across core types (they execute the same architectural
  program);
* **timing divergence** — the candidate/reference cycle ratio must stay
  inside the declared :data:`RATIO_BOUNDS` (pinned on the fixed kernel
  set by ``tests/fuzz/test_cycle_ratio.py`` before fuzzing relies on it).
  A timing finding arrives with a cycle-attribution cause breakdown in
  its details (``causes`` / ``ref_causes`` / ``dominant``) from
  deterministic profiled re-runs of both arms, so a ratio violation
  already names the stall class that blew the bound.

Failures are classified by a **stable signature** — exception type +
violated invariant + divergence site + arm, with no cycle numbers or
other run-volatile data — which is what the corpus dedups on and the
shrinker preserves.

Shrink candidates are arbitrary mutilations of valid programs, so the
oracle also recognises *invalid* programs (assembler rejections, pc
overruns, value-domain overflows — anything outside the simulator's
failure taxonomy) and reports them as ``valid=False`` instead of
findings.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.engine import resolve_engine
from ..errors import (
    DeadlockError,
    FaultEscapeError,
    SanitizerViolation,
    SimulationError,
    WatchdogTimeout,
)
from ..isa import AssemblerError
from ..system import RunConfig
from ..system import simulator as _simulator

#: the reference arm every candidate is compared against
REFERENCE_ARM: Tuple[str, str] = ("banked", "lrc")

#: candidate (core_type, policy) arms of the default differential matrix
DEFAULT_ARMS: Tuple[Tuple[str, str], ...] = (
    ("virec", "lrc"), ("virec", "plru"), ("fgmt", "lrc"))

#: declared candidate/reference cycle-ratio bounds per core type.  The
#: fixed-kernel calibration (gather/stride/spmv, 4x16) measures
#: virec/banked in [1.02, 1.09] and fgmt/banked in [0.62, 0.79]; the
#: bounds are deliberately generous because fuzzed programs roam far
#: wider in ILP and memory intensity than the paper kernels.
RATIO_BOUNDS: Dict[str, Tuple[float, float]] = {
    "virec": (0.2, 6.0),
    "fgmt": (0.1, 6.0),
}
_FALLBACK_BOUNDS: Tuple[float, float] = (0.05, 20.0)

#: per-arm simulated-cycle budget: generated programs terminate by
#: construction, so hitting this is a wedge finding, not noise
DEFAULT_MAX_CYCLES = 400_000

#: exception types that mark a *program* as invalid (shrink candidates
#: can break assembly, run off the end of the program, or push values
#: outside the domain an int register conversion accepts) — everything
#: in the simulator's own taxonomy is caught before these
_INVALID_ERRORS = (AssemblerError, OverflowError, ValueError, TypeError,
                   KeyError, IndexError, ZeroDivisionError, RecursionError,
                   RuntimeError)


def arm_name(core_type: str, policy: str) -> str:
    return f"{core_type}/{policy}"


@dataclass
class Finding:
    """One classified divergence, keyed by its stable signature."""

    signature: str
    kind: str                    # exception | instruction-divergence |
    arm: str                     # timing-divergence
    error_type: str = ""
    message: str = ""
    details: Dict = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {k: v for k, v in sorted(asdict(self).items())}


@dataclass
class OracleReport:
    """Outcome of one program's trip through the differential matrix."""

    valid: bool
    findings: List[Finding] = field(default_factory=list)
    #: arm name -> {"cycles", "instructions", "bits_flipped"} for arms
    #: that completed
    arms: Dict[str, Dict] = field(default_factory=dict)
    invalid_reason: str = ""

    @property
    def signatures(self) -> List[str]:
        return sorted({f.signature for f in self.findings})


def _deadlock_site(message: str) -> str:
    if "cycle budget" in message:
        return "cycle-budget"
    if "instruction budget" in message:
        return "instruction-budget"
    if "no runnable" in message:
        return "no-runnable-thread"
    return "wedge"


def classify(exc: SimulationError, arm: str) -> Finding:
    """Stable-signature finding for a simulation error on ``arm``.

    Signatures carry the exception type, the violated invariant, and the
    divergence site — never cycle numbers or values, so the same root
    cause always dedups onto the same corpus entry.
    """
    name = type(exc).__name__
    details: Dict = {}
    if isinstance(exc, SanitizerViolation):
        d = exc.details
        site = str(d.get("reg") or d.get("site") or "")
        details = {"invariant": exc.invariant, "site": site}
        sig = f"{name}:{exc.invariant}:{site}@{arm}"
    elif isinstance(exc, DeadlockError):
        site = _deadlock_site(str(exc))
        details = {"site": site,
                   "commit_tail": getattr(exc, "commit_tail", -1),
                   "committed": getattr(exc, "committed", -1)}
        sig = f"{name}:{site}@{arm}"
    elif isinstance(exc, WatchdogTimeout):
        details = {"commit_tail": getattr(exc, "commit_tail", -1),
                   "committed": getattr(exc, "committed", -1)}
        sig = f"{name}@{arm}"
    elif isinstance(exc, FaultEscapeError):
        details = {"site": exc.site}
        sig = f"{name}:{exc.site}@{arm}"
    else:
        sig = f"{name}@{arm}"
    return Finding(signature=sig, kind="exception", arm=arm,
                   error_type=name, message=str(exc), details=details)


def oracle_config(spec_dict: Dict, core_type: str, policy: str, *,
                  n_threads: int, n_per_thread: int, max_cycles: int,
                  faults: Optional[Dict] = None,
                  asm: Optional[str] = None,
                  sanitize: bool = True,
                  engine: Optional[str] = None) -> RunConfig:
    """The RunConfig of one arm for one generated program."""
    wk: Dict = {"gen": dict(spec_dict)}
    if asm is not None:
        wk["asm"] = asm
    return RunConfig(
        workload="fuzz", core_type=core_type, policy=policy,
        n_threads=n_threads, n_per_thread=n_per_thread,
        seed=int(spec_dict.get("seed", 0)) & 0x7FFFFFFF,
        workload_kwargs=wk, max_cycles=max_cycles,
        faults=dict(faults) if faults else None,
        sanitize={"granularity": "commit"} if sanitize else None,
        engine=engine)


def _flips(result) -> int:
    return int(sum(v for k, v in result.stats.flat()
                   if k.endswith("faults.bits_flipped")))


def _attribution_causes(cfg: RunConfig) -> Dict[str, int]:
    """Per-cause cycle totals of one arm, re-run with profiling wired.

    Profiling is cycle-identical, so the deterministic re-run reproduces
    the diverging run exactly and the breakdown explains *that* ratio.
    Best-effort: an attribution failure never masks the finding itself,
    and the breakdown is deterministic data, so corpus bytes stay
    reproducible run-over-run.
    """
    try:
        result = _simulator.run_config(cfg.with_(profile=True), check=False)
        return dict(result.profile.snapshot().get("causes", {}))
    except SimulationError:
        return {}


def _run_arm(cfg: RunConfig, arm: str):
    """(stats, finding, invalid_reason) — exactly one of the three set."""
    try:
        result = _simulator.run_config(cfg, check=True)
    except SimulationError as exc:
        return None, classify(exc, arm), ""
    except _INVALID_ERRORS as exc:
        return None, None, f"{type(exc).__name__}: {exc}"
    return {"cycles": result.cycles, "instructions": result.instructions,
            "bits_flipped": _flips(result)}, None, ""


def run_oracle(spec_dict: Dict, *, n_threads: int = 4, n_per_thread: int = 16,
               arms: Sequence[Tuple[str, str]] = DEFAULT_ARMS,
               ratio_bounds: Optional[Dict] = None,
               max_cycles: int = DEFAULT_MAX_CYCLES,
               faults: Optional[Dict] = None,
               asm: Optional[str] = None,
               engine: Optional[str] = None,
               engine_check: bool = True) -> OracleReport:
    """Run one program differentially; classify every divergence.

    ``spec_dict`` holds :class:`~repro.fuzz.generator.GenSpec` fields;
    ``asm`` optionally overrides the generated assembly (shrink
    candidates, replay).  ``faults`` wires a silent-flip campaign into
    every arm (the fault-detection acceptance mode).  ``engine`` selects
    the step engine every arm runs on; with ``engine_check`` (the
    default) the reference arm additionally re-runs on the *other* step
    engine and any cycle or instruction-count difference becomes an
    ``engine-divergence`` finding — the compiled threaded-code engine is
    pinned against the interpreted reference loop by every fuzzed
    program, not just the fixed equivalence suite.
    """
    bounds = dict(RATIO_BOUNDS)
    if ratio_bounds:
        bounds.update(ratio_bounds)
    report = OracleReport(valid=True)

    ref = arm_name(*REFERENCE_ARM)
    cfg = oracle_config(spec_dict, *REFERENCE_ARM, n_threads=n_threads,
                        n_per_thread=n_per_thread, max_cycles=max_cycles,
                        faults=faults, asm=asm, engine=engine)
    ref_cfg = cfg
    ref_stats, finding, invalid = _run_arm(cfg, ref)
    if invalid:
        return OracleReport(valid=False, invalid_reason=invalid)
    if finding is not None:
        report.findings.append(finding)
    else:
        report.arms[ref] = ref_stats

    if engine_check and ref_stats is not None:
        other = ("interpreted" if resolve_engine(engine) == "compiled"
                 else "compiled")
        xarm = f"{ref}#{other}"
        xstats, finding, invalid = _run_arm(cfg.with_(engine=other), xarm)
        if invalid:
            return OracleReport(valid=False, invalid_reason=invalid)
        if finding is not None:
            report.findings.append(finding)
        else:
            for key in ("cycles", "instructions"):
                if xstats[key] != ref_stats[key]:
                    report.findings.append(Finding(
                        signature=f"EngineDivergence:{key}@{xarm}",
                        kind="engine-divergence", arm=xarm,
                        message=(f"{key} {xstats[key]} on {other} vs "
                                 f"{ref_stats[key]} on "
                                 f"{resolve_engine(engine)}")))

    for core_type, policy in arms:
        arm = arm_name(core_type, policy)
        cfg = oracle_config(spec_dict, core_type, policy,
                            n_threads=n_threads, n_per_thread=n_per_thread,
                            max_cycles=max_cycles, faults=faults, asm=asm,
                            engine=engine)
        stats, finding, invalid = _run_arm(cfg, arm)
        if invalid:
            return OracleReport(valid=False, invalid_reason=invalid)
        if finding is not None:
            report.findings.append(finding)
            continue
        report.arms[arm] = stats
        if ref_stats is None:
            continue
        if stats["instructions"] != ref_stats["instructions"]:
            report.findings.append(Finding(
                signature=f"InstructionDivergence@{arm}",
                kind="instruction-divergence", arm=arm,
                message=(f"{stats['instructions']} committed vs "
                         f"{ref_stats['instructions']} on {ref}")))
        lo, hi = bounds.get(core_type, _FALLBACK_BOUNDS)
        ratio = (stats["cycles"] / ref_stats["cycles"]
                 if ref_stats["cycles"] else 0.0)
        if not lo <= ratio <= hi:
            side = "high" if ratio > hi else "low"
            causes = _attribution_causes(cfg)
            ref_causes = _attribution_causes(ref_cfg)
            deltas = {c: causes.get(c, 0) - ref_causes.get(c, 0)
                      for c in sorted(set(causes) | set(ref_causes))}
            report.findings.append(Finding(
                signature=f"TimingDivergence:{side}@{arm}",
                kind="timing-divergence", arm=arm,
                message=(f"cycle ratio {ratio:.3f} vs {ref} outside "
                         f"[{lo}, {hi}]"),
                details={"causes": causes, "ref_causes": ref_causes,
                         "dominant": [c for c, d in
                                      sorted(deltas.items(),
                                             key=lambda kv: -abs(kv[1]))
                                      if d][:5]}))

    report.findings.sort(key=lambda f: f.signature)
    return report
