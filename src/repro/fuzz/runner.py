"""The resilient fuzz loop behind ``repro fuzz``.

Built on the same machinery as the sweep runner: program indices fan out
over :mod:`repro.exec` backends (``--jobs``), every finished index is
appended to a crash-safe JSONL checkpoint journal (``--resume`` replays
it), and results are folded **in index order** regardless of completion
order — so the corpus, report, and metrics of a fixed-seed run are
byte-identical whether it ran serial, parallel, interrupted-and-resumed,
or in one shot.

New signatures are shrunk in the parent process (shrinking re-runs the
oracle many times; doing it inline keeps workers cheap and the dedup
order deterministic) and stored in the on-disk corpus.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..exec import WorkerCrash, resolve_backend
from ..metrics import MetricsRegistry
from ..system.sweeps import _Journal, _load_journal
from .corpus import Corpus
from .generator import generate, sample_spec
from .oracle import DEFAULT_MAX_CYCLES, run_oracle
from .shrink import shrink_program


@dataclass
class FuzzConfig:
    """One fuzz campaign: seed, budget, geometry, and resilience knobs."""

    seed: int = 1
    budget: int = 100
    corpus_dir: str = "fuzz-corpus"
    jobs: Optional[int] = None
    n_threads: int = 4
    n_per_thread: int = 16
    max_cycles: int = DEFAULT_MAX_CYCLES
    shrink: bool = True
    shrink_budget: int = 48
    resume: bool = False
    #: optional silent-flip fault campaign injected into every arm
    #: (:class:`~repro.faults.FaultConfig` fields, scheme "none")
    faults: Optional[Dict] = None
    #: step engine every arm runs on ("compiled" | "interpreted"; None =
    #: the default).  Whichever is picked, the oracle's engine-divergence
    #: check re-runs the reference arm on the *other* engine and flags
    #: any cycle or instruction difference — see
    #: :func:`repro.fuzz.oracle.run_oracle`.
    engine: Optional[str] = None
    #: optional run-ledger path: every freshly fuzzed program appends one
    #: row per oracle arm (digest ``fuzz:<program-digest>:<arm>``), so
    #: campaign cycle counts join the ``repro history`` time axis.
    #: Resumed programs are not re-recorded.
    ledger: Optional[str] = None


@dataclass
class FuzzReport:
    """Summary of one fuzz run (written as ``fuzz_report.json``)."""

    seed: int
    budget: int
    programs: int = 0
    resumed: int = 0
    invalid: int = 0
    crashed: int = 0
    findings_total: int = 0
    unique_signatures: int = 0
    new_entries: List[str] = field(default_factory=list)
    entries: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict:
        return {
            "budget": self.budget, "crashed": self.crashed,
            "entries": sorted(self.entries),
            "findings_total": self.findings_total,
            "invalid": self.invalid, "new_entries": sorted(self.new_entries),
            "programs": self.programs, "resumed": self.resumed,
            "seed": self.seed,
            "unique_signatures": self.unique_signatures,
        }


def fuzz_worker(task: Dict) -> Dict:
    """Run one generated program through the oracle (pool-safe).

    Module top level and plain-dict in/out, so it pickles by reference
    across spawn workers.  Simulation errors are *findings* inside the
    report, never exceptions — an exception escaping here is a genuine
    harness bug and should abort the map.
    """
    report = run_oracle(
        task["spec"],
        n_threads=task["n_threads"], n_per_thread=task["n_per_thread"],
        max_cycles=task["max_cycles"], faults=task.get("faults"),
        engine=task.get("engine"))
    return {
        "index": task["index"], "valid": report.valid,
        "invalid_reason": report.invalid_reason,
        "findings": [f.as_dict() for f in report.findings],
        "arms": report.arms,
    }


def _journal_key(seed: int, index: int) -> str:
    return f"fuzz:{seed}:{index}"


def _arm_digest(spec_dict: Dict, arm: str, n_threads: int,
                n_per_thread: int) -> str:
    """Namespaced ledger digest of one (generated program, arm) pair.

    Deterministic in exactly the inputs that determine the arm's cycle
    count, so re-fuzzing the same seed extends each arm's trajectory
    instead of forking a new one.
    """
    payload = json.dumps([spec_dict, arm, n_threads, n_per_thread],
                         sort_keys=True)
    return "fuzz:" + hashlib.sha256(payload.encode()).hexdigest()[:16]


def run_fuzz(fcfg: FuzzConfig, progress=None) -> FuzzReport:
    """Run the campaign; returns the report (also written to disk).

    ``progress(i, total, record)`` is called after each program folds in.
    """
    os.makedirs(fcfg.corpus_dir, exist_ok=True)
    corpus = Corpus(fcfg.corpus_dir)
    checkpoint = os.path.join(fcfg.corpus_dir, "checkpoint.jsonl")
    previous = _load_journal(checkpoint) if fcfg.resume else {}
    journal = _Journal(checkpoint)
    metrics = MetricsRegistry()
    programs = metrics.counter("fuzz_programs_total",
                               "generated programs by outcome")
    found = metrics.counter("fuzz_findings_total",
                            "oracle findings by kind")
    recorder = None
    if fcfg.ledger:
        from ..ledger.store import Recorder
        recorder = Recorder(fcfg.ledger)

    specs = [sample_spec(fcfg.seed, i) for i in range(fcfg.budget)]
    keys = [_journal_key(fcfg.seed, i) for i in range(fcfg.budget)]
    pending = []
    for i in range(fcfg.budget):
        done = previous.get(keys[i])
        if done is not None and done.get("status") == "ok" \
                and "result" in done:
            continue
        pending.append({
            "index": i, "spec": specs[i].as_dict(),
            "n_threads": fcfg.n_threads, "n_per_thread": fcfg.n_per_thread,
            "max_cycles": fcfg.max_cycles, "faults": fcfg.faults,
            "engine": fcfg.engine,
        })

    backend = resolve_backend(fcfg.jobs)
    fresh: Dict[int, object] = {}
    for task, out in zip(pending, backend.map(fuzz_worker, pending)):
        fresh[task["index"]] = out

    report = FuzzReport(seed=fcfg.seed, budget=fcfg.budget)
    seen: Dict[str, int] = {}
    try:
        for i in range(fcfg.budget):
            if i in fresh:
                out = fresh[i]
                if isinstance(out, WorkerCrash):
                    # host trouble, not a program outcome: skip without
                    # journalling so a resume retries this index
                    report.crashed += 1
                    programs.inc(status="crashed")
                    if progress is not None:
                        progress(i + 1, fcfg.budget, None)
                    continue
                journal.append({"key": keys[i], "index": i, "status": "ok",
                                "result": out})
                if recorder is not None and out["valid"]:
                    for arm, counts in sorted((out.get("arms") or {})
                                              .items()):
                        recorder.record_row(
                            _arm_digest(specs[i].as_dict(), arm,
                                        fcfg.n_threads, fcfg.n_per_thread),
                            source="fuzz", workload="fuzz", core_type=arm,
                            cycles=counts.get("cycles"),
                            instructions=counts.get("instructions"),
                            counters={"bits_flipped":
                                      counts.get("bits_flipped", 0)})
            else:
                out = previous[keys[i]]["result"]
                report.resumed += 1
            report.programs += 1
            if not out["valid"]:
                report.invalid += 1
                programs.inc(status="invalid")
            else:
                programs.inc(status="ok")
            for f in out["findings"]:
                report.findings_total += 1
                found.inc(kind=f["kind"])
                sig = f["signature"]
                if sig in seen:
                    continue
                seen[sig] = i
                slug = _store_finding(fcfg, corpus, specs[i], i, f)
                report.new_entries.append(slug)
            if progress is not None:
                progress(i + 1, fcfg.budget, out)
    finally:
        journal.close()
        if recorder is not None:
            recorder.close()
    report.unique_signatures = len(seen)
    report.entries = corpus.entries()
    _write_json(os.path.join(fcfg.corpus_dir, "fuzz_report.json"),
                report.as_dict())
    _write_json(os.path.join(fcfg.corpus_dir, "metrics.json"),
                metrics.snapshot())
    return report


def _store_finding(fcfg: FuzzConfig, corpus: Corpus, spec, index: int,
                   finding: Dict) -> str:
    """Shrink a newly seen signature and write its corpus entry."""
    kern = generate(spec, n_threads=fcfg.n_threads,
                    n_per_thread=fcfg.n_per_thread)
    sig = finding["signature"]
    asm, shrunk_meta = kern.asm, {}
    if fcfg.shrink and fcfg.shrink_budget > 0:
        def signatures_of(candidate_asm: str) -> List[str]:
            return run_oracle(
                spec.as_dict(), asm=candidate_asm,
                n_threads=fcfg.n_threads, n_per_thread=fcfg.n_per_thread,
                max_cycles=fcfg.max_cycles, faults=fcfg.faults,
                engine=fcfg.engine).signatures

        result = shrink_program(kern.asm, sig, signatures_of,
                                max_attempts=fcfg.shrink_budget)
        asm = result.asm
        shrunk_meta = {"shrunk": result.reproduced,
                       "shrink_attempts": result.attempts,
                       "orig_lines": result.orig_lines,
                       "lines": result.lines}
    meta = {
        "signature": sig, "kind": finding["kind"], "arm": finding["arm"],
        "error_type": finding.get("error_type", ""),
        "message": finding.get("message", ""),
        "details": finding.get("details", {}),
        "spec": spec.as_dict(), "index": index, "run_seed": fcfg.seed,
        "n_threads": fcfg.n_threads, "n_per_thread": fcfg.n_per_thread,
        "max_cycles": fcfg.max_cycles, "faults": fcfg.faults,
        "engine": fcfg.engine,
    }
    meta.update(shrunk_meta)
    return corpus.add(sig, asm, meta)


def _write_json(path: str, payload: Dict) -> None:
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
