"""Property-based differential fuzzing for the simulator.

The subsystem that turns the VSan shadow sanitizer from a per-run
assertion into a fuzzing harness (see ``docs/correctness.md``):

:mod:`repro.fuzz.generator`
    deterministic, seeded random-program generator over the mini-ISA,
    weighted by op-class mix, register working-set size, branch density,
    and access-pattern archetype (stride / gather / pointer-chase / CSR);
:mod:`repro.fuzz.oracle`
    differential executor — each program runs on a banked reference core
    and on ViReC/FGMT candidates with the sanitizer enabled, and every
    failure is classified by a stable signature;
:mod:`repro.fuzz.shrink`
    ddmin-style auto-minimizer that deletes instruction spans and
    simplifies operands while the signature still reproduces;
:mod:`repro.fuzz.corpus` / :mod:`repro.fuzz.runner`
    per-signature deduplicated on-disk corpus and the resilient
    ``repro fuzz`` loop (checkpoint/resume, parallel jobs, replay).
"""

from .corpus import Corpus, replay_corpus, slug_for
from .generator import ARCHETYPES, FuzzKernel, GenSpec, generate, sample_spec
from .oracle import (
    DEFAULT_ARMS,
    DEFAULT_MAX_CYCLES,
    Finding,
    OracleReport,
    RATIO_BOUNDS,
    REFERENCE_ARM,
    run_oracle,
)
from .runner import FuzzConfig, FuzzReport, run_fuzz
from .shrink import ShrinkResult, shrink_program

__all__ = [
    "ARCHETYPES", "Corpus", "DEFAULT_ARMS", "DEFAULT_MAX_CYCLES",
    "Finding", "FuzzConfig", "FuzzKernel", "FuzzReport", "GenSpec",
    "OracleReport", "RATIO_BOUNDS", "REFERENCE_ARM", "ShrinkResult",
    "generate", "replay_corpus", "run_fuzz", "run_oracle", "sample_spec",
    "shrink_program", "slug_for",
]
