"""On-disk crash corpus: one deduplicated entry per stable signature.

Layout (everything under the fuzz run's ``--corpus`` directory)::

    corpus/
      checkpoint.jsonl          # per-program journal (resume source)
      fuzz_report.json          # deterministic run summary
      metrics.json              # fuzz_programs_total / fuzz_findings_total
      findings/
        <slug>/
          repro.asm             # (shrunk) reproducer assembly
          meta.json             # signature, spec, geometry, fault campaign

``<slug>`` is the sanitized signature plus a short content hash of it, so
the same root cause lands in the same directory across runs and machines.
``meta.json`` carries everything replay needs and nothing run-volatile
(no paths, timestamps, or host data) — a fixed-seed fuzz run produces a
byte-identical corpus every time.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from typing import Dict, List, Optional, Tuple


def slug_for(signature: str) -> str:
    """Filesystem-safe, collision-resistant directory name for a signature."""
    safe = re.sub(r"[^A-Za-z0-9._-]+", "-", signature).strip("-")[:60]
    digest = hashlib.sha256(signature.encode()).hexdigest()[:8]
    return f"{safe}-{digest}" if safe else digest


class Corpus:
    """The ``findings/`` tree of a fuzz corpus directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.findings_dir = os.path.join(root, "findings")

    def entries(self) -> List[str]:
        """Sorted slugs of every stored reproducer."""
        if not os.path.isdir(self.findings_dir):
            return []
        return sorted(
            d for d in os.listdir(self.findings_dir)
            if os.path.isfile(os.path.join(self.findings_dir, d, "meta.json")))

    def has(self, signature: str) -> bool:
        return os.path.isfile(os.path.join(
            self.findings_dir, slug_for(signature), "meta.json"))

    def add(self, signature: str, asm: str, meta: Dict) -> str:
        """Store (or overwrite) the reproducer for ``signature``."""
        slug = slug_for(signature)
        entry = os.path.join(self.findings_dir, slug)
        os.makedirs(entry, exist_ok=True)
        with open(os.path.join(entry, "repro.asm"), "w") as f:
            f.write(asm if asm.endswith("\n") else asm + "\n")
        with open(os.path.join(entry, "meta.json"), "w") as f:
            json.dump(meta, f, indent=2, sort_keys=True)
            f.write("\n")
        return slug

    def load(self, slug: str) -> Tuple[str, Dict]:
        entry = os.path.join(self.findings_dir, slug)
        with open(os.path.join(entry, "repro.asm")) as f:
            asm = f.read()
        with open(os.path.join(entry, "meta.json")) as f:
            meta = json.load(f)
        return asm, meta


def replay_entry(asm: str, meta: Dict,
                 max_cycles: Optional[int] = None) -> Tuple[bool, List[str]]:
    """Re-run one reproducer; True when its signature still fires."""
    from .oracle import DEFAULT_MAX_CYCLES, run_oracle

    report = run_oracle(
        meta["spec"], asm=asm,
        n_threads=int(meta.get("n_threads", 4)),
        n_per_thread=int(meta.get("n_per_thread", 16)),
        max_cycles=int(max_cycles or meta.get("max_cycles",
                                              DEFAULT_MAX_CYCLES)),
        faults=meta.get("faults"))
    if not report.valid:
        return False, [f"<invalid: {report.invalid_reason}>"]
    return meta["signature"] in report.signatures, report.signatures


def replay_corpus(root: str) -> List[Dict]:
    """Replay every reproducer under ``root``; one result row per entry."""
    corpus = Corpus(root)
    results = []
    for slug in corpus.entries():
        asm, meta = corpus.load(slug)
        ok, got = replay_entry(asm, meta)
        results.append({"slug": slug, "ok": ok,
                        "expected": meta.get("signature", ""),
                        "got": list(got)})
    return results
