"""Deterministic, seeded random-program generator over the mini-ISA.

Every program is derived from a :class:`GenSpec` alone — the same spec
always yields byte-identical assembly, data arrays, and metadata, which is
what makes fuzz findings reproducible and the corpus deterministic.

The generator is weighted along the axes that drive the paper's results:

``archetype``
    the access pattern of the inner loop — ``stride`` (unit progression),
    ``gather`` (one level of indirection through an index array),
    ``pchase`` (serially dependent pointer chasing through a permutation),
    ``csr`` (a CSR row traversal with a data-dependent inner loop);
``working_set`` / ``fp_working_set``
    integer / FP accumulator registers kept live across iterations — the
    register-pressure axis of the ViReC context-percentage sweeps;
``branch_density`` / ``mem_density`` / ``store_fraction``
    op-class mix of the loop body (forward conditional skips, extra
    masked loads, per-iteration stores).

Termination is guaranteed by construction: the only backward branches are
the structured loops (the main iteration loop and the CSR inner loop),
both driven by monotonically increasing induction variables that no body
op may write.  Loads are masked into ``[0, footprint_words)``, so every
access is aligned and in-bounds.

The race-aware checker replays the program per thread on the functional
golden model, records read/write sets, and only compares memory when no
cross-thread conflict exists — so a shrunk program that loses its
tid-partitioning arithmetic can never produce a false functional-check
finding.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..isa import D, X, parse_reg
from ..isa.func_sim import FunctionalSimulator
from ..memory.main_memory import MainMemory

ARCHETYPES = ("stride", "gather", "pchase", "csr")

# -- register map (fixed across every generated program) ---------------------
# x0 tid, x1 n_threads, x2 chunk, x3 i, x4 end: kernel plumbing
# x5 data base, x6 aux base, x7 colidx base (csr)
# x8..x18: integer accumulator pool
# x20 chase pointer / csr k, x21 csr row start, x22 csr row end
# x23 out base, x24 scratch base, x25 footprint mask, x26/x27 temporaries
# d0..d7: FP accumulator pool, d8: FP combine temporary
_INT_ACC_BASE, _INT_ACC_MAX = 8, 11
_FP_ACC_MAX = 8

#: data-array slots (see repro.workloads.registry.array_base)
_ARRAY_SLOTS = ("data", "aux", "colidx", "out", "scratch")


@dataclass(frozen=True)
class GenSpec:
    """Shape of one generated program (everything but thread geometry)."""

    seed: int = 0
    archetype: str = "stride"
    #: random body constructs per loop iteration
    n_body_ops: int = 8
    #: live integer accumulators (1..11)
    working_set: int = 4
    #: live FP accumulators (0..8)
    fp_working_set: int = 2
    #: fraction of body constructs that are forward conditional skips
    branch_density: float = 0.10
    #: fraction of body constructs that are memory ops
    mem_density: float = 0.25
    #: fraction of memory body constructs that are stores
    store_fraction: float = 0.35
    #: words in the data footprint (power of two; loads are masked into it)
    footprint_words: int = 1024
    #: maximum nonzeros per CSR row
    row_max_nnz: int = 4

    def __post_init__(self) -> None:
        if self.archetype not in ARCHETYPES:
            raise ValueError(f"unknown archetype {self.archetype!r}; "
                             f"choose from {ARCHETYPES}")
        if not 1 <= self.working_set <= _INT_ACC_MAX:
            raise ValueError(f"working_set must be in [1, {_INT_ACC_MAX}]")
        if not 0 <= self.fp_working_set <= _FP_ACC_MAX:
            raise ValueError(f"fp_working_set must be in [0, {_FP_ACC_MAX}]")
        if self.n_body_ops < 0:
            raise ValueError("n_body_ops must be >= 0")
        if self.footprint_words < 8 or (self.footprint_words
                                        & (self.footprint_words - 1)):
            raise ValueError("footprint_words must be a power of two >= 8")
        if not 1 <= self.row_max_nnz <= 16:
            raise ValueError("row_max_nnz must be in [1, 16]")
        for name in ("branch_density", "mem_density", "store_fraction"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")

    def as_dict(self) -> Dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def sample_spec(run_seed: int, index: int) -> GenSpec:
    """The ``index``-th program spec of a fuzz run seeded ``run_seed``.

    Derivation is pure: the same (run_seed, index) pair always yields the
    same spec, independent of sampling order or process — which is what
    lets a parallel fuzz loop checkpoint and resume by index alone.
    """
    rng = random.Random((run_seed * 0x9E3779B1) ^ (index * 0x85EBCA77) ^ 0x5EED)
    footprint = rng.choice((256, 1024, 4096))
    return GenSpec(
        seed=rng.getrandbits(32),
        archetype=rng.choice(ARCHETYPES),
        n_body_ops=rng.randint(4, 20),
        working_set=rng.randint(2, 8),
        fp_working_set=rng.choice((0, 0, 2, 3, 4, 6)),
        branch_density=rng.choice((0.0, 0.05, 0.1, 0.2, 0.3)),
        mem_density=rng.choice((0.1, 0.2, 0.3, 0.4, 0.5)),
        store_fraction=rng.choice((0.0, 0.25, 0.5)),
        footprint_words=footprint,
        row_max_nnz=rng.randint(1, 6),
    )


@dataclass
class FuzzKernel:
    """A fully generated program: assembly + data + metadata."""

    asm: str
    symbols: Dict[str, int]
    #: symbol name -> word values to place in memory before the run
    arrays: Dict[str, List[int]]
    n_threads: int
    n_per_thread: int
    used_regs: Tuple[int, ...]
    active_regs: Tuple[int, ...]
    meta: Dict = field(default_factory=dict)


# -- generation ---------------------------------------------------------------
class _Emitter:
    """Collects assembly lines and tracks which registers they touch."""

    def __init__(self) -> None:
        self.lines: List[str] = []
        self.regs: Set[str] = set()
        self.loop_regs: Set[str] = set()
        self.counts = {"int_alu": 0, "fp_alu": 0, "load": 0, "store": 0,
                       "branch": 0}
        self._in_loop = False
        self._labels = 0

    def label(self) -> str:
        self._labels += 1
        return f"L{self._labels}"

    def emit(self, line: str, *regs: str) -> None:
        self.lines.append(line)
        for r in regs:
            self.regs.add(r)
            if self._in_loop:
                self.loop_regs.add(r)


def _pick_weights(rng: random.Random, spec: GenSpec) -> str:
    r = rng.random()
    if r < spec.mem_density:
        return ("store" if rng.random() < spec.store_fraction else "load")
    if r < spec.mem_density + spec.branch_density:
        return "branch"
    total = spec.working_set + spec.fp_working_set
    return "fp_alu" if rng.random() < spec.fp_working_set / total else "int_alu"


def _emit_int_alu(em: _Emitter, rng: random.Random, accs: List[str]) -> None:
    op = rng.choice(("add", "add", "sub", "eor", "eor", "orr", "and",
                     "mul", "lsl", "lsr", "asr", "madd"))
    rd, rn = rng.choice(accs), rng.choice(accs)
    em.counts["int_alu"] += 1
    if op == "madd":
        rm, ra = rng.choice(accs), rng.choice(accs)
        em.emit(f"    madd {rd}, {rn}, {rm}, {ra}", rd, rn, rm, ra)
    elif op in ("lsl", "lsr", "asr"):
        em.emit(f"    {op}  {rd}, {rn}, #{rng.randint(0, 7)}", rd, rn)
    elif rng.random() < 0.3:
        em.emit(f"    {op}  {rd}, {rn}, #{rng.randint(0, 255)}", rd, rn)
    else:
        rm = rng.choice(accs)
        em.emit(f"    {op}  {rd}, {rn}, {rm}", rd, rn, rm)


def _emit_fp_alu(em: _Emitter, rng: random.Random, faccs: List[str]) -> None:
    op = rng.choice(("fadd", "fadd", "fsub", "fmul", "fmadd", "fmov"))
    rd = rng.choice(faccs)
    em.counts["fp_alu"] += 1
    if op == "fmov":
        em.emit(f"    fmov {rd}, #{round(rng.uniform(-4.0, 4.0), 3)}", rd)
    elif op == "fmadd":
        rn, rm, ra = (rng.choice(faccs) for _ in range(3))
        em.emit(f"    fmadd {rd}, {rn}, {rm}, {ra}", rd, rn, rm, ra)
    else:
        rn, rm = rng.choice(faccs), rng.choice(faccs)
        em.emit(f"    {op} {rd}, {rn}, {rm}", rd, rn, rm)


def _emit_load(em: _Emitter, rng: random.Random, accs: List[str]) -> None:
    src, dst = rng.choice(accs), rng.choice(accs)
    fold = rng.choice(("add", "eor", "orr", "sub"))
    em.counts["load"] += 1
    em.emit(f"    and  x26, {src}, x25", "x26", src, "x25")
    em.emit("    ldr  x27, [x5, x26, lsl #3]", "x27", "x5", "x26")
    em.emit(f"    {fold}  {dst}, {dst}, x27", dst, "x27")


def _emit_store(em: _Emitter, rng: random.Random, accs: List[str],
                faccs: List[str]) -> None:
    pool = accs + faccs
    value = rng.choice(pool)
    em.counts["store"] += 1
    em.emit(f"    str  {value}, [x24, x3, lsl #3]", value, "x24", "x3")


def _emit_branch(em: _Emitter, rng: random.Random, accs: List[str]) -> None:
    """Forward conditional skip over 1-3 ALU ops (never a backward edge)."""
    skip = em.label()
    reg = rng.choice(accs)
    em.counts["branch"] += 1
    form = rng.choice(("cbz", "cbnz", "bcond"))
    if form == "bcond":
        cond = rng.choice(("lt", "le", "gt", "ge", "eq", "ne"))
        em.emit(f"    cmp  {reg}, #{rng.randint(0, 64)}", reg)
        em.emit(f"    b.{cond} {skip}")
    else:
        em.emit(f"    {form} {reg}, {skip}", reg)
    for _ in range(rng.randint(1, 3)):
        _emit_int_alu(em, rng, accs)
    em.emit(f"{skip}:")


def _archetype_arrays(spec: GenSpec, rng: random.Random) -> Dict[str, List[int]]:
    """Deterministic data arrays for the spec's access pattern."""
    fp = spec.footprint_words
    arrays = {"data": [rng.getrandbits(64) for _ in range(fp)]}
    if spec.archetype == "gather":
        arrays["aux"] = [rng.randrange(fp) for _ in range(fp)]
    elif spec.archetype == "pchase":
        perm = list(range(fp))
        rng.shuffle(perm)
        arrays["aux"] = perm
    elif spec.archetype == "csr":
        nnz = [rng.randint(0, spec.row_max_nnz) for _ in range(fp)]
        rowptr, total = [0], 0
        for n in nnz:
            total += n
            rowptr.append(total)
        arrays["aux"] = rowptr
        arrays["colidx"] = [rng.randrange(fp) for _ in range(max(total, 1))]
    return arrays


def _emit_archetype(em: _Emitter, spec: GenSpec, accs: List[str]) -> None:
    """Per-iteration load section of the inner loop."""
    a0 = accs[0]
    if spec.archetype == "stride":
        em.emit("    and  x26, x3, x25", "x26", "x3", "x25")
        em.emit("    ldr  x27, [x5, x26, lsl #3]", "x27", "x5", "x26")
        em.emit(f"    add  {a0}, {a0}, x27", a0, "x27")
    elif spec.archetype == "gather":
        em.emit("    and  x26, x3, x25", "x26", "x3", "x25")
        em.emit("    ldr  x26, [x6, x26, lsl #3]", "x26", "x6")
        em.emit("    and  x26, x26, x25", "x26", "x25")
        em.emit("    ldr  x27, [x5, x26, lsl #3]", "x27", "x5", "x26")
        em.emit(f"    add  {a0}, {a0}, x27", a0, "x27")
    elif spec.archetype == "pchase":
        em.emit("    and  x26, x20, x25", "x26", "x20", "x25")
        em.emit("    ldr  x20, [x6, x26, lsl #3]", "x20", "x6", "x26")
        em.emit("    and  x26, x20, x25", "x26", "x20", "x25")
        em.emit("    ldr  x27, [x5, x26, lsl #3]", "x27", "x5", "x26")
        em.emit(f"    eor  {a0}, {a0}, x27", a0, "x27")
    else:  # csr
        row_loop, row_done = em.label(), em.label()
        em.emit("    and  x26, x3, x25", "x26", "x3", "x25")
        em.emit("    ldr  x20, [x6, x26, lsl #3]", "x20", "x6", "x26")
        em.emit("    add  x26, x26, #1", "x26")
        em.emit("    ldr  x22, [x6, x26, lsl #3]", "x22", "x6", "x26")
        em.emit("    cmp  x20, x22", "x20", "x22")
        em.emit(f"    b.ge {row_done}")
        em.emit(f"{row_loop}:")
        em.emit("    ldr  x26, [x7, x20, lsl #3]", "x26", "x7", "x20")
        em.emit("    ldr  x27, [x5, x26, lsl #3]", "x27", "x5", "x26")
        em.emit(f"    add  {a0}, {a0}, x27", a0, "x27")
        em.emit("    add  x20, x20, #1", "x20")
        em.emit("    cmp  x20, x22", "x20", "x22")
        em.emit(f"    b.lt {row_loop}")
        em.emit(f"{row_done}:")


def generate(spec: GenSpec, n_threads: int = 4,
             n_per_thread: int = 16) -> FuzzKernel:
    """Generate the program of ``spec`` for the given thread geometry."""
    from ..workloads.registry import array_base

    rng = random.Random(spec.seed)
    accs = [X(_INT_ACC_BASE + i).name for i in range(spec.working_set)]
    faccs = [D(i).name for i in range(spec.fp_working_set)]

    em = _Emitter()
    em.emit("start:")
    em.emit("    mov  x2, #chunk", "x2")
    em.emit("    mul  x3, x0, x2", "x3", "x0", "x2")
    em.emit("    add  x4, x3, x2", "x4", "x3", "x2")
    em.emit("    adr  x5, data", "x5")
    em.emit("    adr  x23, out", "x23")
    em.emit("    adr  x24, scratch", "x24")
    em.emit("    mov  x25, #mask", "x25")
    if spec.archetype in ("gather", "pchase", "csr"):
        em.emit("    adr  x6, aux", "x6")
    if spec.archetype == "csr":
        em.emit("    adr  x7, colidx", "x7")
    if spec.archetype == "pchase":
        em.emit("    mov  x20, x0", "x20", "x0")
    for acc in accs:
        em.emit(f"    mov  {acc}, #{rng.getrandbits(24)}", acc)
    for facc in faccs:
        em.emit(f"    fmov {facc}, #{round(rng.uniform(-2.0, 2.0), 3)}", facc)

    em.emit("loop:")
    em._in_loop = True
    _emit_archetype(em, spec, accs)
    for _ in range(spec.n_body_ops):
        kind = _pick_weights(rng, spec)
        if kind == "int_alu" or (kind == "fp_alu" and not faccs):
            _emit_int_alu(em, rng, accs)
        elif kind == "fp_alu":
            _emit_fp_alu(em, rng, faccs)
        elif kind == "load":
            _emit_load(em, rng, accs)
        elif kind == "store":
            _emit_store(em, rng, accs, faccs)
        else:
            _emit_branch(em, rng, accs)
    em.emit("    add  x3, x3, #1", "x3")
    em.emit("    cmp  x3, x4", "x3", "x4")
    em.emit("    b.lt loop")
    em._in_loop = False

    # epilogue: fold the accumulators and store one word per thread
    em.emit("    mov  x27, #0", "x27")
    for i, acc in enumerate(accs):
        op = "add" if i % 2 == 0 else "eor"
        em.emit(f"    {op}  x27, x27, {acc}", "x27", acc)
    em.emit("    str  x27, [x23, x0, lsl #3]", "x27", "x23", "x0")
    if faccs:
        em.emit("    fmov d8, #0.0", "d8")
        for facc in faccs:
            em.emit(f"    fadd d8, d8, {facc}", "d8", facc)
        em.emit("    add  x26, x0, x1", "x26", "x0", "x1")
        em.emit("    str  d8, [x23, x26, lsl #3]", "d8", "x23", "x26")
    em.emit("    halt")

    arrays = _archetype_arrays(spec, rng)
    n = n_threads * n_per_thread
    symbols = {"chunk": n_per_thread, "mask": spec.footprint_words - 1}
    for k, name in enumerate(_ARRAY_SLOTS):
        symbols[name] = array_base(k)
    asm = "\n".join(em.lines)
    used = tuple(sorted(parse_reg(r).flat for r in em.regs | {"x0", "x1"}))
    active = tuple(sorted(parse_reg(r).flat for r in em.loop_regs))
    meta = dict(spec.as_dict())
    meta.update({
        "n_lines": len(em.lines),
        "ops": dict(sorted(em.counts.items())),
        "scratch_words": n,
        "asm_sha256": hashlib.sha256(asm.encode()).hexdigest()[:16],
    })
    return FuzzKernel(asm=asm, symbols=symbols, arrays=arrays,
                      n_threads=n_threads, n_per_thread=n_per_thread,
                      used_regs=used, active_regs=active, meta=meta)


# -- race-aware functional checker -------------------------------------------
class _TrackingMemory(MainMemory):
    """A private memory image recording this thread's read/write sets."""

    def __init__(self, base: MainMemory) -> None:
        super().__init__()
        self._words = dict(base._words)
        self.reads: Set[int] = set()
        self.writes: Dict[int, object] = {}

    def load(self, addr: int):
        self.reads.add(addr)
        return super().load(addr)

    def store(self, addr: int, value) -> None:
        self.writes[addr] = value
        super().store(addr, value)


def _same_word(a, b) -> bool:
    """Word equality that treats NaN as equal to itself."""
    if a == b:
        return True
    return (isinstance(a, float) and isinstance(b, float)
            and a != a and b != b)


def make_checker(program, pristine: MainMemory, init_regs,
                 n_threads: int,
                 max_instructions: int = 2_000_000) -> Callable:
    """A race-aware golden-model checker for a generated program.

    Replays each thread on the functional simulator against a private
    copy of the pristine memory image, then:

    * if any thread's write set intersects another thread's read or
      write set, the program is racy — its memory outcome legitimately
      depends on interleaving, so the check passes vacuously;
    * otherwise the per-thread writes are disjoint and their union is
      the exact expected final memory, which is compared word-for-word
      against the timing model's memory image.

    A replay that cannot complete (instruction budget, pc overrun,
    value-domain overflow) also passes vacuously: the timing model
    finishing a program the golden model cannot judge is not evidence of
    a simulator bug.
    """
    def check(mem_after: MainMemory) -> bool:
        footprints = []
        for tid in range(n_threads):
            tm = _TrackingMemory(pristine)
            sim = FunctionalSimulator(program, tm,
                                      max_instructions=max_instructions)
            for reg, value in init_regs[tid].items():
                sim.state.write(reg, value)
            try:
                sim.run()
            except (RuntimeError, OverflowError, ValueError, IndexError):
                return True
            footprints.append((tm.reads, tm.writes))
        for i, (_, writes_i) in enumerate(footprints):
            waddrs = set(writes_i)
            for j, (reads_j, writes_j) in enumerate(footprints):
                if i == j:
                    continue
                if waddrs & (reads_j | set(writes_j)):
                    return True  # racy: interleaving defines the outcome
        for _, writes in footprints:
            for addr, value in writes.items():
                if not _same_word(mem_after.load(addr), value):
                    return False
        return True

    return check
