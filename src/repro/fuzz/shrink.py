"""Auto-minimizer: the smallest program still reproducing a signature.

A delta-debugging (ddmin-style) pass deletes spans of assembly lines at
halving granularity, re-running the differential oracle after every
deletion and keeping a candidate only when the *target signature* still
reproduces exactly.  A second pass simplifies surviving lines by
replacing them with ``nop``.

Structural lines — labels, ``start:``, ``halt`` — are never deleted, so
most candidates stay assemblable; candidates that still break (dangling
branch targets, pc overruns) are rejected by the oracle as invalid and
simply count against the attempt budget.

Every reproduction check costs a full oracle trip (reference + all
candidate arms), so the whole shrink is bounded by ``max_attempts``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence


@dataclass
class ShrinkResult:
    asm: str
    attempts: int
    #: False when even the unmodified program failed to reproduce the
    #: signature (a flaky finding — kept as-is, flagged in metadata)
    reproduced: bool
    orig_lines: int
    lines: int


def _protected(line: str) -> bool:
    s = line.strip()
    return (not s) or s.endswith(":") or s == "halt"


def _deletable(lines: Sequence[str]) -> List[int]:
    return [i for i, line in enumerate(lines) if not _protected(line)]


def shrink_program(asm: str, signature: str,
                   signatures_of: Callable[[str], Sequence[str]],
                   max_attempts: int = 48) -> ShrinkResult:
    """Minimize ``asm`` while ``signature`` still reproduces.

    ``signatures_of(asm_text)`` must return the signatures the oracle
    reports for a candidate (the runner binds it over the program's spec,
    fault campaign, and thread geometry).  Returns the smallest program
    found within ``max_attempts`` oracle trips — the original program
    when nothing smaller (or not even the original) reproduces.
    """
    lines = asm.splitlines()
    orig_lines = len(lines)
    budget = [max_attempts]

    def reproduces(candidate: Sequence[str]) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        return signature in signatures_of("\n".join(candidate))

    if not reproduces(lines):
        return ShrinkResult(asm=asm, attempts=max_attempts - budget[0],
                            reproduced=False, orig_lines=orig_lines,
                            lines=orig_lines)

    # pass 1: ddmin span deletion at halving granularity
    span = max(1, len(_deletable(lines)) // 2)
    while span >= 1 and budget[0] > 0:
        pos = 0
        while True:
            idxs = _deletable(lines)
            if pos >= len(idxs) or budget[0] <= 0:
                break
            doomed = set(idxs[pos:pos + span])
            candidate = [l for i, l in enumerate(lines) if i not in doomed]
            if reproduces(candidate):
                lines = candidate          # keep position: new lines shifted in
            else:
                pos += span
        span //= 2

    # pass 2: operand simplification — blunt each surviving line to a nop
    for i in list(_deletable(lines)):
        if budget[0] <= 0:
            break
        if lines[i].strip() == "nop":
            continue
        candidate = list(lines)
        candidate[i] = "    nop"
        if reproduces(candidate):
            lines = candidate

    return ShrinkResult(asm="\n".join(lines),
                        attempts=max_attempts - budget[0], reproduced=True,
                        orig_lines=orig_lines, lines=len(lines))
