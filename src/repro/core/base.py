"""Timeline-based single-issue in-order pipeline engine.

Every core model in the reproduction (single-thread InO, banked CGMT,
software context switching, RF-prefetch, ViReC) is built on
:class:`TimelineCore`.  The engine processes one instruction at a time in
program/commit order, carrying explicit cycle timestamps for each shared
pipeline resource (fetch, decode, execute unit, dcache port, store queue,
outstanding-load slots, in-order commit).  For a single-issue in-order
machine this timeline formulation is cycle-equivalent to a per-cycle stage
simulation — every stall has a unique dominating resource whose timestamp we
track — while being an order of magnitude faster in Python.

Functional execution happens at *commit*: instructions flushed by a context
switch never update architectural state and are replayed when their thread
resumes, exactly like the pipeline flush in Figure 4 of the paper.

Subclass hooks (all optional):

``decode_regs_ready(thread, inst, t_decode)``
    Cycle at which the instruction's architectural registers are readable.
    The ViReC core implements the VRMU here (fills/evictions); banked cores
    return ``t_decode``.
``on_commit(thread, inst, t_commit)``
    Commit detection logic (rollback-queue pop, C-bit confirm).
``on_flush(thread, insts, t)``
    Pipeline flush on a context switch; receives the flushed instructions
    (the missing load plus the younger instructions already in decode).
``switch_in(thread, t)``
    Returns the cycle the new thread's first instruction can enter decode
    (context restore cost lives here).
``switch_extra_wait(t)``
    CSL mask input: extra cycles to hold a pending switch (e.g. BSI busy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Dict, List, Optional, Tuple

from ..errors import DeadlockError
from ..isa.instructions import Flags, Instruction, Opcode, evaluate
from ..isa.program import Program
from ..isa.registers import NUM_FP_REGS, NUM_INT_REGS, Reg, RegClass
from ..memory.cache import Cache
from ..memory.main_memory import MainMemory
from ..stats.counters import Stats

__all__ = ["CoreConfig", "DeadlockError", "ThreadContext", "ThreadState",
           "TimelineCore"]


class ThreadState(Enum):
    """Lifecycle of a hardware thread (offload -> run -> block -> done)."""

    READY = auto()
    RUNNING = auto()
    BLOCKED = auto()
    DONE = auto()


@dataclass
class ThreadContext:
    """Architectural state of one hardware thread."""

    tid: int
    pc: int = 0
    xregs: List[int] = field(default_factory=lambda: [0] * NUM_INT_REGS)
    dregs: List[float] = field(default_factory=lambda: [0.0] * NUM_FP_REGS)
    flags: Flags = field(default_factory=Flags)
    state: ThreadState = ThreadState.READY
    ready_at: int = 0          # cycle a BLOCKED thread becomes READY
    started: bool = False      # has run at least once (context fetched)
    instructions: int = 0
    fruitless: int = 0         # consecutive runs with zero commits

    def read(self, reg: Reg):
        if reg.rclass == RegClass.X:
            return self.xregs[reg.index]
        return self.dregs[reg.index]

    def write(self, reg: Reg, value) -> None:
        if reg.rclass == RegClass.X:
            self.xregs[reg.index] = int(value) & ((1 << 64) - 1)
        else:
            self.dregs[reg.index] = float(value)


@dataclass
class CoreConfig:
    """Microarchitectural parameters shared by the in-order cores (Table 1)."""

    name: str = "core"
    sq_entries: int = 5
    max_outstanding_loads: int = 1
    redirect_penalty: int = 2      # taken-branch fetch redirect bubble
    switch_on_miss: bool = False   # CGMT behaviour
    #: pipeline refill after a context switch before the first decode
    switch_refill: int = 2
    max_cycles: int = 50_000_000


class TimelineCore:
    """Single-issue in-order core over a Program + memory hierarchy."""

    def __init__(self, program: Program, icache: Cache, dcache: Cache,
                 memory: MainMemory, threads: List[ThreadContext],
                 config: Optional[CoreConfig] = None,
                 stats: Optional[Stats] = None, core_id: int = 0,
                 layout=None) -> None:
        #: optional :class:`~repro.core.cgmt.ContextLayout` describing the
        #: thread-context save area (unused by cores with on-chip contexts)
        self.layout = layout
        self.program = program
        self.icache = icache
        self.dcache = dcache
        self.memory = memory
        self.threads = threads
        self.config = config or CoreConfig()
        self.stats = stats if stats is not None else Stats(self.config.name)
        self.core_id = core_id

        # shared pipeline resources (cycle timestamps)
        self.now = 0
        self.fetch_avail = 0       # cycle next instruction reaches decode
        self.decode_free = 0
        self.ex_free = 0
        self.commit_tail = 0
        self.dcache_port_free = 0  # shared LSQ/BSI port, 1 request/cycle
        self.load_slots: List[int] = []   # completion cycles of in-flight loads
        self.store_queue: List[int] = []  # drain-completion cycles
        self._last_fetch_line = -1

        self.current: Optional[ThreadContext] = None
        #: optional :class:`~repro.core.trace.PipelineTracer` (debug aid)
        self.tracer = None
        #: optional :class:`~repro.faults.FaultInjector`; strictly opt-in —
        #: when None (the default) the pipeline behaves bit-identically to a
        #: build without the fault subsystem
        self.fault_hook = None
        #: optional :class:`~repro.telemetry.CoreTelemetry`; strictly opt-in
        #: and purely observational — it records events and drives interval
        #: sampling but never alters a cycle timestamp
        self.telemetry = None
        #: optional :class:`~repro.sanitizer.CoreSanitizer` (VSan); strictly
        #: opt-in and purely observational — it verifies committed state
        #: against a shadow architectural register file and raises
        #: :class:`~repro.errors.SanitizerViolation` on divergence, but
        #: never alters a cycle timestamp
        self.sanitizer = None
        self.commits_since_switch = 0
        self.scoreboard: Dict[Reg, int] = {}
        self.flags_ready = 0
        self._rr_next = 0

    # ------------------------------------------------------------------ hooks
    def decode_regs_ready(self, thread: ThreadContext, inst: Instruction,
                          t_decode: int) -> int:
        return t_decode

    def on_commit(self, thread: ThreadContext, inst: Instruction, t_commit: int) -> None:
        pass

    def on_flush(self, thread: ThreadContext, insts: List[Instruction], t: int) -> None:
        pass

    def switch_in(self, thread: ThreadContext, t: int) -> int:
        """Cycle the new thread's first instruction can enter decode."""
        return t + self.config.switch_refill

    def switch_extra_wait(self, t: int) -> int:
        return t

    def thread_start_cost(self, thread: ThreadContext, t: int) -> int:
        """One-time context-establishment cost when a thread first runs."""
        return t

    # ----------------------------------------------------------- dcache port
    def dcache_request(self, t: int, addr: int, is_write: bool = False, *,
                       is_load_data: bool = False, is_register: bool = False,
                       pin_delta: int = 0):
        """Issue one request through the shared dcache port (LSQ/BSI arbiter).

        Retries transparently on MSHR-full.  Returns ``(t_issue, result)``.
        """
        while True:
            t_issue = max(t, self.dcache_port_free)
            result = self.dcache.access(
                t_issue, addr, is_write, requestor=self.core_id,
                is_load_data=is_load_data, is_register=is_register,
                pin_delta=pin_delta)
            self.dcache_port_free = t_issue + 1
            if result.accepted:
                return t_issue, result
            t = max(result.retry_at, t_issue + 1)
            self.stats.inc("dcache_retries")

    # ---------------------------------------------------------------- fetch
    def _fetch(self, thread: ThreadContext) -> int:
        """Cycle the instruction at ``thread.pc`` enters decode."""
        t_d = max(self.fetch_avail, self.decode_free)
        line = (thread.pc * 4) // self.icache.config.line_bytes
        if line != self._last_fetch_line:
            self._last_fetch_line = line
            r = self.icache.access(max(0, t_d - self.icache.config.latency),
                                   thread.pc * 4, requestor=self.core_id)
            if not r.hit:
                self.stats.inc("icache_miss_stalls")
            t_d = max(t_d, r.complete_at)
        return t_d

    # ----------------------------------------------------------- store queue
    def _sq_insert(self, t: int, addr: int) -> int:
        """Insert a store at cycle ``t``; returns cycle the SQ accepted it."""
        self.store_queue = [c for c in self.store_queue if c > t]
        while len(self.store_queue) >= self.config.sq_entries:
            t = min(self.store_queue)
            self.store_queue = [c for c in self.store_queue if c > t]
            self.stats.inc("sq_full_stalls")
        t_issue, result = self.dcache_request(t, addr, is_write=True)
        self.store_queue.append(result.complete_at)
        return t

    # ------------------------------------------------------------ load slots
    def _load_slot_wait(self, t: int) -> int:
        self.load_slots = [c for c in self.load_slots if c > t]
        while len(self.load_slots) >= self.config.max_outstanding_loads:
            t = min(self.load_slots)
            self.load_slots = [c for c in self.load_slots if c > t]
            self.stats.inc("load_slot_stalls")
        return t

    # ------------------------------------------------------------- scheduler
    def _ready_threads(self, t: int) -> List[ThreadContext]:
        return [th for th in self.threads
                if th.state in (ThreadState.READY, ThreadState.BLOCKED)
                and (th.state == ThreadState.READY or th.ready_at <= t)]

    def _pick_next_thread(self, t: int) -> Tuple[Optional[ThreadContext], int]:
        """Round-robin over runnable threads; returns (thread, cycle)."""
        live = [th for th in self.threads if th.state != ThreadState.DONE]
        if not live:
            return None, t
        candidates = self._ready_threads(t)
        if not candidates:
            t = min(th.ready_at for th in live)
            candidates = self._ready_threads(t)
        n = len(self.threads)
        for i in range(n):
            th = self.threads[(self._rr_next + i) % n]
            if th in candidates:
                self._rr_next = (th.tid + 1) % n
                return th, t
        return None, t  # pragma: no cover - candidates guarantees a hit

    def _schedule(self, t: int) -> bool:
        """Switch in the next runnable thread at cycle >= t."""
        thread, t = self._pick_next_thread(t)
        if thread is None:
            return False
        thread.state = ThreadState.RUNNING
        self.current = thread
        self.scoreboard = {}
        self.flags_ready = t
        if not thread.started:
            thread.started = True
            t = self.thread_start_cost(thread, t)
        self.fetch_avail = self.switch_in(thread, t)
        self.decode_free = t
        self.ex_free = t
        self.commit_tail = max(self.commit_tail, t)
        self._last_fetch_line = -1
        if self.telemetry is not None:
            self.telemetry.on_run_begin(thread.tid, t)
        return True

    # ---------------------------------------------------------------- running
    @property
    def done(self) -> bool:
        return all(th.state == ThreadState.DONE for th in self.threads)

    def step(self) -> bool:
        """Process one instruction (scheduling a thread first if needed).

        Returns False once every thread has completed.  The multi-processor
        driver (Figure 11) interleaves cores by repeatedly stepping the core
        with the smallest local clock.
        """
        if self.current is None:
            if self.done:
                return False
            if not self._schedule(self.commit_tail):
                raise DeadlockError("no runnable thread")
        self._process_instruction(self.current)
        return True

    def run(self) -> Stats:
        """Run all threads to completion; returns the stats namespace."""
        guard = 0
        while self.step():
            guard += 1
            if guard > self.config.max_cycles:
                raise DeadlockError("instruction budget exceeded")
        self.finalize_stats()
        return self.stats

    def finalize_stats(self) -> None:
        self.stats.set("cycles", self.commit_tail)
        total = sum(th.instructions for th in self.threads)
        self.stats.set("instructions", total)
        self.stats.set("ipc", total / self.commit_tail if self.commit_tail else 0.0)

    # ---------------------------------------------------- per-instruction step
    def _process_instruction(self, thread: ThreadContext) -> None:
        inst = self.program[thread.pc]
        t_d = self._fetch(thread)
        if self.fault_hook is not None:
            t_d = self.fault_hook.on_instruction(thread, inst, t_d)

        # decode: operand scoreboard + register-residency hook (VRMU)
        t_ops = t_d
        for reg in inst.srcs:
            t_ops = max(t_ops, self.scoreboard.get(reg, 0))
        if inst.reads_flags:
            t_ops = max(t_ops, self.flags_ready)
        t_regs = self.decode_regs_ready(thread, inst, t_d)
        t_issue = max(t_d + 1, t_ops, t_regs)
        self.decode_free = t_issue
        self.fetch_avail = max(self.fetch_avail + 1, t_d + 1)

        # execute
        t_ex_start = max(t_issue, self.ex_free)
        t_ex_done = t_ex_start + inst.ex_latency
        self.ex_free = t_ex_done

        srcvals = {r: thread.read(r) for r in inst.srcs}
        result = evaluate(inst, srcvals, thread.flags, thread.pc)

        data_at = t_ex_done
        if inst.is_load:
            t_m = self._load_slot_wait(t_ex_done)
            t_issue_mem, r = self.dcache_request(
                t_m, result.addr, is_load_data=True)
            data_at = r.complete_at
            if (self.config.switch_on_miss and r.switch_signal
                    and len(self.threads) > 1):
                if self._handle_miss_switch(thread, inst, t_issue_mem, r):
                    return  # thread suspended; load replays on resume
                # switch suppressed (no commits since last switch): stall here
                self.stats.inc("switches_suppressed")
                if self.telemetry is not None:
                    self.telemetry.on_stall_in_place(
                        thread.tid, t_issue_mem, data_at, "suppressed-switch")
            self.load_slots.append(data_at)
            if not r.hit:
                self.stats.inc("load_miss_stalls")
        elif inst.is_store:
            data_at = self._sq_insert(t_ex_done, result.addr)
            self.memory.store(result.addr, result.store_value)

        # commit (in-order, one per cycle)
        t_c = max(self.commit_tail + 1, data_at)
        self.commit_tail = t_c
        self.commits_since_switch += 1
        thread.fruitless = 0
        if not result.halt:
            thread.instructions += 1
        self.now = t_c
        if self.telemetry is not None:
            self.telemetry.on_commit(t_c)

        # architectural update at commit
        for reg, value in result.writes.items():
            thread.write(reg, value)
            self.scoreboard[reg] = t_ex_done
        if inst.is_load:
            thread.write(inst.rd, self.memory.load(result.addr))
            self.scoreboard[inst.rd] = data_at
        if result.new_flags is not None:
            thread.flags = result.new_flags
            self.flags_ready = t_ex_done
        self.on_commit(thread, inst, t_c)
        if self.sanitizer is not None:
            # after the architectural update, before pc advances: the
            # sanitizer sees exactly the committed state
            self.sanitizer.on_commit(thread, inst, result, t_c)
        if self.tracer is not None and not result.halt:
            self.tracer.record(thread.tid, thread.pc, inst.text or
                               inst.opcode.name.lower(), t_d, t_issue,
                               t_ex_done, data_at, t_c)

        if result.halt:
            thread.state = ThreadState.DONE
            self.current = None
            self.stats.inc("threads_completed")
            if self.telemetry is not None:
                self.telemetry.on_thread_done(thread.tid, t_c)
            return
        thread.pc = result.target if result.taken else thread.pc + 1
        if result.taken:
            self.fetch_avail = t_ex_done + 1 + self.config.redirect_penalty
            self.stats.inc("taken_branches")

    # -------------------------------------------------------- context switch
    def _flushed_window(self, thread: ThreadContext) -> List[Instruction]:
        """The missing load plus younger instructions already in the frontend."""
        insts = [self.program[thread.pc]]
        pc = thread.pc + 1
        for _ in range(2):  # frontend depth between MEM and decode
            if pc < len(self.program):
                nxt = self.program[pc]
                insts.append(nxt)
                if nxt.is_branch or nxt.is_halt:
                    break
                pc += 1
        return insts

    def _handle_miss_switch(self, thread: ThreadContext, inst: Instruction,
                            t_mem_issue: int, access_result) -> bool:
        """CSL decision on a demand-load dcache miss.

        Returns True when a context switch was performed (caller must stop
        processing this thread), False when the switch is masked and the
        thread stalls in place waiting for the miss.
        """
        t_detect = t_mem_issue + self.dcache.config.latency
        # Forward-progress mask (Section 5.2): a thread whose run made no
        # commits (its replayed load missed again) may switch away once —
        # overlapping the refetch with other ready threads — but a second
        # consecutive fruitless run stalls in place until the miss returns,
        # so the core never cycles threads without covering latency.
        if self.commits_since_switch == 0:
            thread.fruitless += 1
            others_ready = any(th is not thread for th in
                               self._ready_threads(t_detect))
            if not others_ready or thread.fruitless > 1:
                return False
        # mask: let older long-latency instructions drain (rollback-queue
        # oldest-is-not-memory signal); older commits are bounded by
        # commit_tail, so waiting for it implements the mask exactly.
        t_sw = max(t_detect, self.commit_tail)
        t_sw = self.switch_extra_wait(t_sw)

        flushed = self._flushed_window(thread)
        self.on_flush(thread, flushed, t_sw)
        self.stats.inc("context_switches")
        self.stats.inc("flushed_instructions", len(flushed))
        if self.telemetry is not None:
            self.telemetry.on_switch(thread.tid, t_sw,
                                     access_result.complete_at, len(flushed))

        thread.state = ThreadState.BLOCKED
        thread.ready_at = access_result.complete_at
        # replay from the missing load when rescheduled (pc unchanged)
        self.current = None
        self.commits_since_switch = 0
        self._schedule(t_sw)
        return True
