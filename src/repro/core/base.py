"""Timeline-based single-issue in-order pipeline engine.

Every core model in the reproduction (single-thread InO, banked CGMT,
software context switching, RF-prefetch, ViReC) is built on
:class:`TimelineCore`.  The engine processes one instruction at a time in
program/commit order, carrying explicit cycle timestamps for each shared
pipeline resource (fetch, decode, execute unit, dcache port, store queue,
outstanding-load slots, in-order commit).  For a single-issue in-order
machine this timeline formulation is cycle-equivalent to a per-cycle stage
simulation — every stall has a unique dominating resource whose timestamp we
track — while being an order of magnitude faster in Python.

Functional execution happens at *commit*: instructions flushed by a context
switch never update architectural state and are replayed when their thread
resumes, exactly like the pipeline flush in Figure 4 of the paper.

The engine runs over a :class:`~repro.isa.decoded.DecodedProgram` — static
per-instruction metadata (operand tuples, flag behaviour, classification,
execute latency, icache line) pre-computed once per program — and keeps all
observation layers behind one :class:`~repro.core.instrument.InstrumentBus`.
With nothing attached the per-instruction step is a *compiled fast path*
containing zero instrumentation branches; attaching any instrument
(``fault_hook`` / ``telemetry`` / ``metrics`` / ``profile`` / ``sanitizer``
/ ``tracer``) rebinds the step to the instrumented body with the fixed
dispatch order faults -> telemetry -> metrics -> profile -> sanitizer ->
tracer.

Subclass hooks (all optional):

``decode_regs_ready(thread, op, t_decode)``
    Cycle at which the instruction's architectural registers are readable.
    Receives the :class:`~repro.isa.decoded.DecodedOp` (which carries the
    operand tuples plus any static liveness hints).  The ViReC core
    implements the VRMU here (fills/evictions); banked cores return
    ``t_decode``.
``on_commit(thread, op, t_commit)``
    Commit detection logic (rollback-queue pop, C-bit confirm, dead-hint
    marking).  Also receives the :class:`~repro.isa.decoded.DecodedOp`.
``on_flush(thread, insts, t)``
    Pipeline flush on a context switch; receives the flushed instructions
    (the missing load plus the younger instructions already in decode).
``switch_in(thread, t)``
    Returns the cycle the new thread's first instruction can enter decode
    (context restore cost lives here).
``switch_extra_wait(t)``
    CSL mask input: extra cycles to hold a pending switch (e.g. BSI busy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Dict, List, Optional, Tuple

from ..errors import DeadlockError
from ..isa.compiled import EngineVariant, compile_program
from ..isa.decoded import DecodedOp, DecodedProgram
from ..isa.instructions import MASK64, Flags, Instruction, Opcode, evaluate
from ..isa.program import Program
from ..isa.registers import NUM_FP_REGS, NUM_INT_REGS, Reg, RegClass
from ..memory.cache import Cache
from ..memory.main_memory import MainMemory
from ..stats.counters import Stats
from .engine import ENGINES, convert_scoreboard
from .instrument import InstrumentBus

__all__ = ["CoreConfig", "DeadlockError", "InstrumentBus", "ThreadContext",
           "ThreadState", "TimelineCore"]


class ThreadState(Enum):
    """Lifecycle of a hardware thread (offload -> run -> block -> done)."""

    READY = auto()
    RUNNING = auto()
    BLOCKED = auto()
    DONE = auto()


@dataclass
class ThreadContext:
    """Architectural state of one hardware thread."""

    tid: int
    pc: int = 0
    xregs: List[int] = field(default_factory=lambda: [0] * NUM_INT_REGS)
    dregs: List[float] = field(default_factory=lambda: [0.0] * NUM_FP_REGS)
    flags: Flags = field(default_factory=Flags)
    state: ThreadState = ThreadState.READY
    ready_at: int = 0          # cycle a BLOCKED thread becomes READY
    started: bool = False      # has run at least once (context fetched)
    instructions: int = 0
    fruitless: int = 0         # consecutive runs with zero commits

    def read(self, reg: Reg):
        if reg.rclass == RegClass.X:
            return self.xregs[reg.index]
        return self.dregs[reg.index]

    def write(self, reg: Reg, value) -> None:
        if reg.rclass == RegClass.X:
            self.xregs[reg.index] = int(value) & MASK64
        else:
            self.dregs[reg.index] = float(value)


@dataclass
class CoreConfig:
    """Microarchitectural parameters shared by the in-order cores (Table 1)."""

    name: str = "core"
    sq_entries: int = 5
    max_outstanding_loads: int = 1
    redirect_penalty: int = 2      # taken-branch fetch redirect bubble
    switch_on_miss: bool = False   # CGMT behaviour
    #: pipeline refill after a context switch before the first decode
    switch_refill: int = 2
    #: simulated-cycle watchdog on the commit clock (``commit_tail``);
    #: ``None`` disables it.  Historical note: before the guard split this
    #: field was (mis)used as an *instruction* budget — committed
    #: instructions were counted against it.  It is now a true cycle
    #: watchdog; since every commit advances ``commit_tail`` by at least
    #: one cycle, any run bounded by the old interpretation is still
    #: bounded by the new one, so existing configs keep terminating.
    max_cycles: Optional[int] = 50_000_000
    #: committed-instruction budget (the guard the old ``max_cycles``
    #: actually implemented); ``None`` disables it
    max_instructions: Optional[int] = None


class TimelineCore:
    """Single-issue in-order core over a Program + memory hierarchy."""

    def __init__(self, program: Program, icache: Cache, dcache: Cache,
                 memory: MainMemory, threads: List[ThreadContext],
                 config: Optional[CoreConfig] = None,
                 stats: Optional[Stats] = None, core_id: int = 0,
                 layout=None, engine: Optional[str] = None) -> None:
        #: optional :class:`~repro.core.cgmt.ContextLayout` describing the
        #: thread-context save area (unused by cores with on-chip contexts)
        self.layout = layout
        self.program = program
        self.icache = icache
        self.dcache = dcache
        self.memory = memory
        self.threads = threads
        self.config = config or CoreConfig()
        self.stats = stats if stats is not None else Stats(self.config.name)
        self.core_id = core_id

        #: pre-decoded static instruction metadata (shared per program)
        self.dprog = DecodedProgram.of(program, icache.config.line_bytes)
        self._dops = self.dprog.ops

        # shared pipeline resources (cycle timestamps)
        self.now = 0
        self.fetch_avail = 0       # cycle next instruction reaches decode
        self.decode_free = 0
        self.ex_free = 0
        self.commit_tail = 0
        self.dcache_port_free = 0  # shared LSQ/BSI port, 1 request/cycle
        self.load_slots: List[int] = []   # completion cycles of in-flight loads
        self.store_queue: List[int] = []  # drain-completion cycles
        self._last_fetch_line = -1

        self.current: Optional[ThreadContext] = None
        #: the unified instrumentation seam; see
        #: :class:`~repro.core.instrument.InstrumentBus`.  ``fault_hook``,
        #: ``telemetry``, ``metrics``, ``sanitizer``, and ``tracer`` are
        #: properties over its slots, so subsystem ``attach()`` entry
        #: points are unchanged.
        self.bus = InstrumentBus()
        self.commits_since_switch = 0
        self.scoreboard: Dict[Reg, int] = {}
        self.flags_ready = 0
        self._rr_next = 0
        #: which subclass hooks are actually overridden (the fast path
        #: skips the no-op base implementations entirely)
        cls = type(self)
        self._has_reg_hook = (cls.decode_regs_ready
                              is not TimelineCore.decode_regs_ready)
        self._has_commit_hook = cls.on_commit is not TimelineCore.on_commit
        #: which step engine drives this core.  Directly constructed cores
        #: default to the interpreted reference loop (no behaviour change
        #: for existing call sites); :func:`repro.system.simulator.run_config`
        #: passes the RunConfig's choice (default "compiled").
        engine = engine or "interpreted"
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r} (expected one of {ENGINES})")
        self._engine = engine
        self._ccode = None     # compiled closure table (engine "compiled")
        #: superop chaining permission — :meth:`set_step_chaining` turns
        #: it off for cores inside a multi-core node (the node interleaves
        #: cores per step, so a chained step would batch one core's
        #: shared-memory traffic ahead of its peers)
        self._chain_steps = True
        self._recompile_step()

    # ----------------------------------------------------- instrument bus
    def _recompile_step(self) -> None:
        """Bind the per-instruction step to the fast or instrumented body.

        Called on every bus attach/detach.  With an empty bus the hot loop
        runs :meth:`_process_instruction_fast`, which contains no
        instrumentation branches at all.

        ``_step_impl`` always names the currently compiled body; external
        wrappers of ``_process_instruction`` (the task-pool redispatcher)
        call through it so an attach after wrapping still takes effect, and
        the recompile never clobbers such a wrapper (it only rebinds
        ``_process_instruction`` while it is one of the engine bodies).

        Under the threaded-code engine the same seam additionally swaps the
        closure *table*: an empty bus binds the specialized fast closures
        (superop chains), any attach binds the per-op instrumented closures
        with bus epilogues.  See :mod:`repro.core.engine` for the full
        engine x bus selection matrix.
        """
        if self._engine == "compiled":
            variant = self._engine_variant(not self.bus.empty)
            self._ccode = compile_program(self.dprog, variant).code
            impl = self._process_instruction_compiled
        else:
            impl = self._interpreted_step_impl()
        self._step_impl = impl
        current = self.__dict__.get("_process_instruction")
        if current is None or getattr(current, "_engine_step", False):
            self._process_instruction = impl

    def _interpreted_step_impl(self):
        """The interpreted body for the current bus state (the barrel core
        overrides this: its interpreted loop is a single inline-dispatch
        body)."""
        return (self._process_instruction_fast if self.bus.empty
                else self._process_instruction_instrumented)

    def _engine_variant(self, instrumented: bool) -> EngineVariant:
        """The compile key for this core's step closures (see
        :class:`~repro.isa.compiled.EngineVariant`)."""
        return EngineVariant(
            family="timeline",
            reg_hook=self._has_reg_hook,
            commit_hook=self._has_commit_hook,
            miss_switch=(self.config.switch_on_miss
                         and len(self.threads) > 1),
            instrumented=instrumented,
            # instrumented tables never chain, so normalize the flag there
            # and let them share one cached table regardless of chaining
            chained=(self._chain_steps or instrumented))

    def _process_instruction_compiled(self, thread: ThreadContext) -> int:
        """Threaded-code dispatch: one call into the closure chain."""
        return self._ccode[thread.pc](self, thread)

    @property
    def engine(self) -> str:
        """Which step engine drives this core ("compiled"/"interpreted")."""
        return self._engine

    def set_engine(self, engine: str) -> None:
        """Swap the step engine, mid-run safe (the R^4-style runtime
        reconfiguration seam): scoreboard keys are converted so in-flight
        writer timestamps survive, then the step body is recompiled."""
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r} (expected one of {ENGINES})")
        if engine == self._engine:
            return
        self._engine = engine
        self._convert_engine_keys(engine)
        self._recompile_step()

    def set_step_chaining(self, enabled: bool) -> None:
        """Allow or forbid superop chains in the compiled engine.

        Multi-core nodes must turn chaining off: the node driver
        interleaves cores one :meth:`step` at a time in local-clock
        order, and a chained step commits a whole branch-free run —
        batching this core's crossbar/DRAM requests ahead of its
        peers and changing contention order versus the interpreted
        engine.  Chains are stateless, so flipping mid-run is safe.
        """
        if enabled != self._chain_steps:
            self._chain_steps = enabled
            self._recompile_step()

    def _convert_engine_keys(self, engine: str) -> None:
        self.scoreboard = convert_scoreboard(self.scoreboard, engine)

    def _halt_thread(self, thread: ThreadContext) -> None:
        """Commit-time halt bookkeeping (shared with the compiled closures,
        which cannot name ThreadState without an import cycle)."""
        thread.state = ThreadState.DONE
        self.current = None
        self.stats.inc("threads_completed")

    @property
    def tracer(self):
        """Optional :class:`~repro.core.trace.PipelineTracer` (debug aid)."""
        return self.bus.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self.bus.tracer = value
        self._recompile_step()

    @property
    def fault_hook(self):
        """Optional :class:`~repro.faults.FaultInjector`; strictly opt-in —
        when None (the default) the pipeline behaves bit-identically to a
        build without the fault subsystem."""
        return self.bus.faults

    @fault_hook.setter
    def fault_hook(self, value) -> None:
        self.bus.faults = value
        self._recompile_step()

    @property
    def telemetry(self):
        """Optional :class:`~repro.telemetry.CoreTelemetry`; strictly opt-in
        and purely observational — it records events and drives interval
        sampling but never alters a cycle timestamp."""
        return self.bus.telemetry

    @telemetry.setter
    def telemetry(self, value) -> None:
        self.bus.telemetry = value
        self._recompile_step()

    @property
    def metrics(self):
        """Optional :class:`~repro.metrics.CoreMetrics`; strictly opt-in
        and purely observational — it feeds labeled counters/histograms of
        the cross-process metrics registry but never alters a cycle
        timestamp."""
        return self.bus.metrics

    @metrics.setter
    def metrics(self, value) -> None:
        self.bus.metrics = value
        self._recompile_step()

    @property
    def profile(self):
        """Optional :class:`~repro.profiling.CycleAttributor`; strictly
        opt-in and purely observational — it classifies every commit-clock
        cycle into the top-down stall taxonomy off the per-commit stage
        timestamps but never alters one."""
        return self.bus.profile

    @profile.setter
    def profile(self, value) -> None:
        self.bus.profile = value
        self._recompile_step()

    @property
    def sanitizer(self):
        """Optional :class:`~repro.sanitizer.CoreSanitizer` (VSan); strictly
        opt-in and purely observational — it verifies committed state
        against a shadow architectural register file and raises
        :class:`~repro.errors.SanitizerViolation` on divergence, but never
        alters a cycle timestamp."""
        return self.bus.sanitizer

    @sanitizer.setter
    def sanitizer(self, value) -> None:
        self.bus.sanitizer = value
        self._recompile_step()

    # ------------------------------------------------------------------ hooks
    def decode_regs_ready(self, thread: ThreadContext, op: DecodedOp,
                          t_decode: int) -> int:
        return t_decode

    def decode_spill_wait(self) -> int:
        """Cycles of the latest ``decode_regs_ready`` wait caused by spill
        writebacks holding the register port (profiling only; cores with a
        residency hook override this so the attributor can split the
        ``vrmu_refill`` slice into its spill-induced part)."""
        return 0

    def on_commit(self, thread: ThreadContext, op: DecodedOp, t_commit: int) -> None:
        pass

    def on_flush(self, thread: ThreadContext, insts: List[Instruction], t: int) -> None:
        pass

    def switch_in(self, thread: ThreadContext, t: int) -> int:
        """Cycle the new thread's first instruction can enter decode."""
        return t + self.config.switch_refill

    def switch_extra_wait(self, t: int) -> int:
        return t

    def thread_start_cost(self, thread: ThreadContext, t: int) -> int:
        """One-time context-establishment cost when a thread first runs."""
        return t

    # ----------------------------------------------------------- dcache port
    def dcache_request(self, t: int, addr: int, is_write: bool = False, *,
                       is_load_data: bool = False, is_register: bool = False,
                       pin_delta: int = 0):
        """Issue one request through the shared dcache port (LSQ/BSI arbiter).

        Retries transparently on MSHR-full.  Returns ``(t_issue, result)``.
        """
        while True:
            t_issue = max(t, self.dcache_port_free)
            result = self.dcache.access(
                t_issue, addr, is_write, requestor=self.core_id,
                is_load_data=is_load_data, is_register=is_register,
                pin_delta=pin_delta)
            self.dcache_port_free = t_issue + 1
            if result.accepted:
                return t_issue, result
            t = max(result.retry_at, t_issue + 1)
            self.stats.inc("dcache_retries")

    # ---------------------------------------------------------------- fetch
    def _fetch(self, thread: ThreadContext) -> int:
        """Cycle the instruction at ``thread.pc`` enters decode."""
        t_d = max(self.fetch_avail, self.decode_free)
        d = self._dops[thread.pc]
        if d.line != self._last_fetch_line:
            self._last_fetch_line = d.line
            r = self.icache.access(max(0, t_d - self.icache.config.latency),
                                   d.addr, requestor=self.core_id)
            if not r.hit:
                self.stats.inc("icache_miss_stalls")
            t_d = max(t_d, r.complete_at)
        return t_d

    # ----------------------------------------------------------- store queue
    def _sq_insert(self, t: int, addr: int) -> int:
        """Insert a store at cycle ``t``; returns cycle the SQ accepted it."""
        self.store_queue = [c for c in self.store_queue if c > t]
        while len(self.store_queue) >= self.config.sq_entries:
            t = min(self.store_queue)
            self.store_queue = [c for c in self.store_queue if c > t]
            self.stats.inc("sq_full_stalls")
        t_issue, result = self.dcache_request(t, addr, is_write=True)
        self.store_queue.append(result.complete_at)
        return t

    # ------------------------------------------------------------ load slots
    def _load_slot_wait(self, t: int) -> int:
        self.load_slots = [c for c in self.load_slots if c > t]
        while len(self.load_slots) >= self.config.max_outstanding_loads:
            t = min(self.load_slots)
            self.load_slots = [c for c in self.load_slots if c > t]
            self.stats.inc("load_slot_stalls")
        return t

    # ------------------------------------------------------------- scheduler
    def _ready_threads(self, t: int) -> List[ThreadContext]:
        return [th for th in self.threads
                if th.state in (ThreadState.READY, ThreadState.BLOCKED)
                and (th.state == ThreadState.READY or th.ready_at <= t)]

    def _pick_next_thread(self, t: int) -> Tuple[Optional[ThreadContext], int]:
        """Round-robin over runnable threads; returns (thread, cycle)."""
        threads = self.threads
        live = [th for th in threads if th.state is not ThreadState.DONE]
        if not live:
            return None, t
        candidates = self._ready_threads(t)
        if not candidates:
            t = min(th.ready_at for th in live)
            candidates = self._ready_threads(t)
        ready_tids = {th.tid for th in candidates}
        n = len(threads)
        rr = self._rr_next
        for i in range(n):
            th = threads[(rr + i) % n]
            if th.tid in ready_tids:
                self._rr_next = (th.tid + 1) % n
                return th, t
        return None, t  # pragma: no cover - candidates guarantees a hit

    def _schedule(self, t: int) -> bool:
        """Switch in the next runnable thread at cycle >= t."""
        t_req = t
        thread, t = self._pick_next_thread(t)
        if thread is None:
            return False
        thread.state = ThreadState.RUNNING
        self.current = thread
        self.scoreboard = {}
        self.flags_ready = t
        profile = self.bus.profile
        if profile is not None:
            # (cursor, t_req] is switch drain, (t_req, t] is idle wait for
            # a runnable thread; the window up to switch-in completion is
            # posted below once switch_in/thread_start_cost have run
            profile.on_schedule(thread.tid, t_req, t)
        if not thread.started:
            thread.started = True
            t = self.thread_start_cost(thread, t)
        self.fetch_avail = self.switch_in(thread, t)
        self.decode_free = t
        self.ex_free = t
        self.commit_tail = max(self.commit_tail, t)
        self._last_fetch_line = -1
        telemetry = self.bus.telemetry
        if telemetry is not None:
            telemetry.on_run_begin(thread.tid, t)
        if profile is not None:
            profile.on_switch_in(thread.tid, self.fetch_avail)
        return True

    # ---------------------------------------------------------------- running
    @property
    def done(self) -> bool:
        return all(th.state == ThreadState.DONE for th in self.threads)

    def step(self):
        """Process one instruction — or, under the threaded-code engine,
        one superop chain — scheduling a thread first if needed.

        Returns a falsy value (False) once every thread has completed,
        otherwise the number of engine steps consumed (the interpreted
        bodies return None, normalized to True == 1; a compiled superop
        returns its chain length so the run-loop watchdogs count exactly
        what the interpreted engine counts).  The multi-processor driver
        (Figure 11) interleaves cores by repeatedly stepping the core with
        the smallest local clock.
        """
        if self.current is None:
            if self.done:
                return False
            if not self._schedule(self.commit_tail):
                raise DeadlockError(
                    "no runnable thread", commit_tail=self.commit_tail,
                    committed=sum(th.instructions for th in self.threads))
        return self._process_instruction(self.current) or True

    def run(self) -> Stats:
        """Run all threads to completion; returns the stats namespace.

        Two independent watchdogs guard against a wedged simulation:
        ``config.max_instructions`` bounds *committed instructions* (the
        guard the engine historically mislabelled "max_cycles") and
        ``config.max_cycles`` bounds the *simulated commit clock*
        (``commit_tail``), which is what the name always promised.
        """
        config = self.config
        max_instructions = config.max_instructions
        max_cycles = config.max_cycles
        committed = 0
        while (n := self.step()):
            committed += n       # True == 1 for the interpreted engine
            if max_instructions is not None and committed > max_instructions:
                raise DeadlockError(
                    f"instruction budget exceeded ({committed} > "
                    f"max_instructions={max_instructions})",
                    commit_tail=self.commit_tail, committed=committed)
            if max_cycles is not None and self.commit_tail > max_cycles:
                raise DeadlockError(
                    f"cycle budget exceeded (commit clock {self.commit_tail}"
                    f" > max_cycles={max_cycles})",
                    commit_tail=self.commit_tail, committed=committed)
        self.finalize_stats()
        return self.stats

    def finalize_stats(self) -> None:
        self.stats.set("cycles", self.commit_tail)
        total = sum(th.instructions for th in self.threads)
        self.stats.set("instructions", total)
        self.stats.set("ipc", total / self.commit_tail if self.commit_tail else 0.0)

    # ---------------------------------------------------- per-instruction step
    #
    # Two bodies, one contract.  ``_process_instruction`` is *rebound* by
    # ``_recompile_step`` to the fast body (empty bus: zero instrumentation
    # branches) or the instrumented body (any instrument attached: fixed
    # faults -> telemetry -> metrics -> profile -> sanitizer -> tracer
    # dispatch).  The two must
    # stay cycle-identical except for the fault injector's explicit
    # timestamp adjustments; tests/core/test_instrument_bus.py and the
    # telemetry/sanitizer noop suites enforce that.  Edit them together.

    def _process_instruction_fast(self, thread: ThreadContext) -> None:
        """Uninstrumented per-instruction step (the compiled fast path)."""
        d = self._dops[thread.pc]
        inst = d.inst
        config = self.config
        stats = self.stats

        # fetch
        fetch_avail = self.fetch_avail
        decode_free = self.decode_free
        t_d = fetch_avail if fetch_avail > decode_free else decode_free
        if d.line != self._last_fetch_line:
            self._last_fetch_line = d.line
            icache = self.icache
            r = icache.access(max(0, t_d - icache.config.latency), d.addr,
                              requestor=self.core_id)
            if not r.hit:
                stats.inc("icache_miss_stalls")
            if r.complete_at > t_d:
                t_d = r.complete_at

        # decode: operand scoreboard + register-residency hook (VRMU)
        scoreboard = self.scoreboard
        t_ops = t_d
        for reg in d.srcs:
            w = scoreboard.get(reg, 0)
            if w > t_ops:
                t_ops = w
        if d.reads_flags and self.flags_ready > t_ops:
            t_ops = self.flags_ready
        t_regs = (self.decode_regs_ready(thread, d, t_d)
                  if self._has_reg_hook else t_d)
        t_issue = max(t_d + 1, t_ops, t_regs)
        self.decode_free = t_issue
        self.fetch_avail = max(fetch_avail + 1, t_d + 1)

        # execute
        ex_free = self.ex_free
        t_ex_start = t_issue if t_issue > ex_free else ex_free
        t_ex_done = t_ex_start + d.ex_latency
        self.ex_free = t_ex_done

        xregs = thread.xregs
        dregs = thread.dregs
        srcvals = {}
        for reg, is_x, idx in d.src_reads:
            srcvals[reg] = xregs[idx] if is_x else dregs[idx]
        result = evaluate(inst, srcvals, thread.flags, thread.pc)

        data_at = t_ex_done
        if d.is_load:
            t_m = self._load_slot_wait(t_ex_done)
            t_issue_mem, r = self.dcache_request(
                t_m, result.addr, is_load_data=True)
            data_at = r.complete_at
            if (config.switch_on_miss and r.switch_signal
                    and len(self.threads) > 1):
                if self._handle_miss_switch(thread, inst, t_issue_mem, r):
                    return  # thread suspended; load replays on resume
                # switch suppressed (no commits since last switch): stall here
                stats.inc("switches_suppressed")
            self.load_slots.append(data_at)
            if not r.hit:
                stats.inc("load_miss_stalls")
        elif d.is_store:
            data_at = self._sq_insert(t_ex_done, result.addr)
            self.memory.store(result.addr, result.store_value)

        # commit (in-order, one per cycle)
        t_c = self.commit_tail + 1
        if data_at > t_c:
            t_c = data_at
        self.commit_tail = t_c
        self.commits_since_switch += 1
        thread.fruitless = 0
        if not result.halt:
            thread.instructions += 1
        self.now = t_c

        # architectural update at commit
        writes = result.writes
        if writes:
            for reg, value in writes.items():
                if reg.rclass is RegClass.X:
                    xregs[reg.index] = int(value) & MASK64
                else:
                    dregs[reg.index] = float(value)
                scoreboard[reg] = t_ex_done
        if d.is_load:
            rd = d.rd
            value = self.memory.load(result.addr)
            if rd.rclass is RegClass.X:
                xregs[rd.index] = int(value) & MASK64
            else:
                dregs[rd.index] = float(value)
            scoreboard[rd] = data_at
        if result.new_flags is not None:
            thread.flags = result.new_flags
            self.flags_ready = t_ex_done
        if self._has_commit_hook:
            self.on_commit(thread, d, t_c)

        if result.halt:
            thread.state = ThreadState.DONE
            self.current = None
            stats.inc("threads_completed")
            return
        thread.pc = result.target if result.taken else thread.pc + 1
        if result.taken:
            self.fetch_avail = t_ex_done + 1 + config.redirect_penalty
            stats.inc("taken_branches")

    def _process_instruction_instrumented(self, thread: ThreadContext) -> None:
        """Per-instruction step with the bus dispatched at every probe point.

        Same timeline math as :meth:`_process_instruction_fast`; dispatch
        order is fixed: faults (front end) -> telemetry (commit clock) ->
        metrics (commit counters) -> profile (cycle attribution) ->
        sanitizer (post-architectural-update) -> tracer (record).
        """
        bus = self.bus
        faults = bus.faults
        telemetry = bus.telemetry
        metrics = bus.metrics
        profile = bus.profile
        sanitizer = bus.sanitizer
        tracer = bus.tracer

        d = self._dops[thread.pc]
        inst = d.inst
        config = self.config
        stats = self.stats
        pc0 = thread.pc

        # fetch
        fetch_avail = self.fetch_avail
        decode_free = self.decode_free
        t_d = fetch_avail if fetch_avail > decode_free else decode_free
        icache_missed = False
        if d.line != self._last_fetch_line:
            self._last_fetch_line = d.line
            icache = self.icache
            r = icache.access(max(0, t_d - icache.config.latency), d.addr,
                              requestor=self.core_id)
            if not r.hit:
                stats.inc("icache_miss_stalls")
                icache_missed = True
            if r.complete_at > t_d:
                t_d = r.complete_at
        if faults is not None:
            t_d = faults.on_instruction(thread, inst, t_d)

        # decode: operand scoreboard + register-residency hook (VRMU)
        scoreboard = self.scoreboard
        t_ops = t_d
        for reg in d.srcs:
            w = scoreboard.get(reg, 0)
            if w > t_ops:
                t_ops = w
        if d.reads_flags and self.flags_ready > t_ops:
            t_ops = self.flags_ready
        t_regs = (self.decode_regs_ready(thread, d, t_d)
                  if self._has_reg_hook else t_d)
        t_issue = max(t_d + 1, t_ops, t_regs)
        self.decode_free = t_issue
        self.fetch_avail = max(fetch_avail + 1, t_d + 1)

        # execute
        ex_free = self.ex_free
        t_ex_start = t_issue if t_issue > ex_free else ex_free
        t_ex_done = t_ex_start + d.ex_latency
        self.ex_free = t_ex_done

        xregs = thread.xregs
        dregs = thread.dregs
        srcvals = {}
        for reg, is_x, idx in d.src_reads:
            srcvals[reg] = xregs[idx] if is_x else dregs[idx]
        result = evaluate(inst, srcvals, thread.flags, thread.pc)

        data_at = t_ex_done
        if d.is_load:
            t_m = self._load_slot_wait(t_ex_done)
            t_issue_mem, r = self.dcache_request(
                t_m, result.addr, is_load_data=True)
            data_at = r.complete_at
            if (config.switch_on_miss and r.switch_signal
                    and len(self.threads) > 1):
                if self._handle_miss_switch(thread, inst, t_issue_mem, r):
                    return  # thread suspended; load replays on resume
                # switch suppressed (no commits since last switch): stall here
                stats.inc("switches_suppressed")
                if telemetry is not None:
                    telemetry.on_stall_in_place(
                        thread.tid, t_issue_mem, data_at, "suppressed-switch")
            self.load_slots.append(data_at)
            if not r.hit:
                stats.inc("load_miss_stalls")
                load_missed = True
            else:
                load_missed = False
        elif d.is_store:
            data_at = self._sq_insert(t_ex_done, result.addr)
            self.memory.store(result.addr, result.store_value)
            load_missed = False
        else:
            load_missed = False

        # commit (in-order, one per cycle)
        t_c = self.commit_tail + 1
        if data_at > t_c:
            t_c = data_at
        self.commit_tail = t_c
        self.commits_since_switch += 1
        thread.fruitless = 0
        if not result.halt:
            thread.instructions += 1
        self.now = t_c
        if telemetry is not None:
            telemetry.on_commit(t_c)
        if metrics is not None:
            metrics.on_commit(thread, d, t_c)
        if profile is not None:
            spill_wait = self.decode_spill_wait() if self._has_reg_hook else 0
            profile.on_commit_timing(thread.tid, pc0, d, t_d, t_ops, t_regs,
                                     t_ex_done, data_at, t_c, icache_missed,
                                     load_missed, spill_wait)

        # architectural update at commit
        writes = result.writes
        if writes:
            for reg, value in writes.items():
                if reg.rclass is RegClass.X:
                    xregs[reg.index] = int(value) & MASK64
                else:
                    dregs[reg.index] = float(value)
                scoreboard[reg] = t_ex_done
        if d.is_load:
            rd = d.rd
            value = self.memory.load(result.addr)
            if rd.rclass is RegClass.X:
                xregs[rd.index] = int(value) & MASK64
            else:
                dregs[rd.index] = float(value)
            scoreboard[rd] = data_at
        if result.new_flags is not None:
            thread.flags = result.new_flags
            self.flags_ready = t_ex_done
        if self._has_commit_hook:
            self.on_commit(thread, d, t_c)
        if sanitizer is not None:
            # after the architectural update, before pc advances: the
            # sanitizer sees exactly the committed state
            sanitizer.on_commit(thread, inst, result, t_c)
        if tracer is not None and not result.halt:
            tracer.record(thread.tid, thread.pc, inst.text or
                          inst.opcode.name.lower(), t_d, t_issue,
                          t_ex_done, data_at, t_c)

        if result.halt:
            thread.state = ThreadState.DONE
            self.current = None
            stats.inc("threads_completed")
            if telemetry is not None:
                telemetry.on_thread_done(thread.tid, t_c)
            return
        thread.pc = result.target if result.taken else thread.pc + 1
        if result.taken:
            self.fetch_avail = t_ex_done + 1 + config.redirect_penalty
            stats.inc("taken_branches")

    # -------------------------------------------------------- context switch
    def _flushed_window(self, thread: ThreadContext) -> List[Instruction]:
        """The missing load plus younger instructions already in the frontend."""
        dops = self._dops
        insts = [dops[thread.pc].inst]
        pc = thread.pc + 1
        for _ in range(2):  # frontend depth between MEM and decode
            if pc < len(dops):
                nxt = dops[pc]
                insts.append(nxt.inst)
                if nxt.is_branch or nxt.is_halt:
                    break
                pc += 1
        return insts

    def _handle_miss_switch(self, thread: ThreadContext, inst: Instruction,
                            t_mem_issue: int, access_result) -> bool:
        """CSL decision on a demand-load dcache miss.

        Returns True when a context switch was performed (caller must stop
        processing this thread), False when the switch is masked and the
        thread stalls in place waiting for the miss.
        """
        t_detect = t_mem_issue + self.dcache.config.latency
        # Forward-progress mask (Section 5.2): a thread whose run made no
        # commits (its replayed load missed again) may switch away once —
        # overlapping the refetch with other ready threads — but a second
        # consecutive fruitless run stalls in place until the miss returns,
        # so the core never cycles threads without covering latency.
        if self.commits_since_switch == 0:
            thread.fruitless += 1
            others_ready = any(th is not thread for th in
                               self._ready_threads(t_detect))
            if not others_ready or thread.fruitless > 1:
                return False
        # mask: let older long-latency instructions drain (rollback-queue
        # oldest-is-not-memory signal); older commits are bounded by
        # commit_tail, so waiting for it implements the mask exactly.
        t_sw = max(t_detect, self.commit_tail)
        t_hold = self.switch_extra_wait(t_sw)
        profile = self.bus.profile
        if profile is not None:
            # (t_sw, t_hold] is the BSI-busy hold — posted spill writebacks
            # blocking the switch (ViReC); zero-width for other cores
            profile.on_switch_hold(thread.tid, t_sw, t_hold)
        t_sw = t_hold

        flushed = self._flushed_window(thread)
        self.on_flush(thread, flushed, t_sw)
        self.stats.inc("context_switches")
        self.stats.inc("flushed_instructions", len(flushed))
        telemetry = self.bus.telemetry
        if telemetry is not None:
            telemetry.on_switch(thread.tid, t_sw,
                                access_result.complete_at, len(flushed))

        thread.state = ThreadState.BLOCKED
        thread.ready_at = access_result.complete_at
        # replay from the missing load when rescheduled (pc unchanged)
        self.current = None
        self.commits_since_switch = 0
        self._schedule(t_sw)
        return True


# the recompile-safety marker read by TimelineCore._recompile_step (bound
# methods forward attribute reads to their underlying function)
TimelineCore._process_instruction_fast._engine_step = True
TimelineCore._process_instruction_instrumented._engine_step = True
TimelineCore._process_instruction_compiled._engine_step = True
