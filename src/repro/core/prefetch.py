"""Register-file prefetching cores (the double-buffer alternative of Fig. 9).

Two register banks are used as a ping-pong pair: while a thread executes out
of one bank, the prefetch engine stores the outgoing thread's registers to
memory and loads the predicted-next thread's registers into the other bank
(cf. LTRF-style prefetching [45], adapted to the CGMT schedule).

Two strategies from Section 6.1:

* :class:`FullContextPrefetchCore` — moves the *complete* architectural
  context (all 32 integer + any used FP registers) on every switch; the
  paper shows this is almost always worse than caching because run segments
  between switches can be as short as ~15 cycles.
* :class:`ExactPrefetchCore` — an *oracle* that moves only the registers the
  thread will actually use in its next run segment (its inner-loop active
  set).  Beats ViReC only under the heaviest register-cache contention.

Prediction: the engine prefetches for the strict round-robin successor.  If
the scheduler picks a different (e.g. earlier-woken) thread, its context is
demand-fetched at full cost — the natural penalty of misprediction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..stats.counters import Stats
from .base import CoreConfig, ThreadContext, TimelineCore
from .cgmt import ContextLayout


class _PrefetchCoreBase(TimelineCore):
    """Common double-buffer machinery; subclasses define the register set."""

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("config", CoreConfig(name=self._name, switch_on_miss=True))
        super().__init__(*args, **kwargs)
        self.layout = self.layout or ContextLayout()
        self._bank_ready: Dict[int, int] = {}
        self._prev: Optional[ThreadContext] = None

    _name = "prefetch"

    def transfer_regs(self, thread: ThreadContext) -> Sequence[int]:
        """Flat register indices moved for ``thread`` on each switch."""
        raise NotImplementedError

    def _issue_loads(self, t: int, tid: int, regs: Sequence[int]) -> int:
        done = t
        for i, flat in enumerate(regs):
            _, r = self.dcache_request(t + i, self.layout.reg_addr(tid, flat))
            done = max(done, r.complete_at)
        return done

    def _issue_stores(self, t: int, tid: int, regs: Sequence[int]) -> int:
        for i, flat in enumerate(regs):
            self.dcache_request(t + i, self.layout.reg_addr(tid, flat),
                                is_write=True)
        return t + len(regs)

    def switch_in(self, thread: ThreadContext, t: int) -> int:
        ready = self._bank_ready.pop(thread.tid, None)
        if ready is None:
            # prediction miss or cold start: demand-fetch the whole set
            ready = self._issue_loads(t, thread.tid, self.transfer_regs(thread))
            self.stats.inc("demand_context_fetches")
        else:
            self.stats.inc("prefetched_switches")
            if ready > t:
                self.stats.inc("prefetch_late_cycles", ready - t)
        t0 = max(t, ready)

        # store the outgoing thread's registers (posted, occupies the port)
        t_next = t0
        if self._prev is not None and self._prev is not thread:
            t_next = self._issue_stores(t0, self._prev.tid,
                                        self.transfer_regs(self._prev))
        self._prev = thread

        # prefetch the round-robin successor into the idle bank
        n = len(self.threads)
        nxt = self.threads[(thread.tid + 1) % n]
        if n > 1 and nxt.tid not in self._bank_ready:
            self._bank_ready[nxt.tid] = self._issue_loads(
                t_next, nxt.tid, self.transfer_regs(nxt))
            self.stats.inc("prefetches")
        return t0 + self.config.switch_refill


class FullContextPrefetchCore(_PrefetchCoreBase):
    """Prefetch the complete architectural context on every switch."""

    _name = "prefetch-full"

    def transfer_regs(self, thread: ThreadContext) -> Sequence[int]:
        # the full bank: all 32 integer registers plus any used FP registers
        fp_used = sorted(r for r in self.layout.used_regs if r >= 32)
        return list(range(32)) + fp_used


class ExactPrefetchCore(_PrefetchCoreBase):
    """Oracle prefetch of exactly the next run segment's register set.

    ``active_regs`` (flat indices) is the inner-loop working set; the paper's
    oracle knows the "exact needed context" ahead of time.  Real hardware
    would need per-thread metadata storage to approximate this, which is why
    the paper notes it caps thread scalability.
    """

    _name = "prefetch-exact"

    def __init__(self, *args, active_regs: Optional[Sequence[int]] = None,
                 **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.active_regs: List[int] = sorted(
            active_regs if active_regs is not None else self.layout.used_regs)

    def transfer_regs(self, thread: ThreadContext) -> Sequence[int]:
        return self.active_regs
