"""Per-instruction pipeline tracing (debug/teaching aid).

Attach a :class:`PipelineTracer` to any timeline core and every committed
instruction produces a record with its stage timestamps and a stall
attribution — which resource dominated the instruction's latency.  The
formatted trace reads like a classic pipeline diagram dump:

    [t0] 12: ldr x9, [x6, x8, lsl #3]   D@105 I@106 X@107 M@109 C@155  mem+46

Tracing costs simulation speed; attach it only for short diagnostic runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass
class TraceRecord:
    tid: int
    pc: int
    text: str
    t_decode: int
    t_issue: int
    t_ex_done: int
    t_data: int
    t_commit: int

    @property
    def decode_stall(self) -> int:
        """Cycles spent waiting for operands / register residency."""
        return max(0, self.t_issue - (self.t_decode + 1))

    @property
    def mem_stall(self) -> int:
        """Cycles the memory system added past execute."""
        return max(0, self.t_data - self.t_ex_done)

    @property
    def dominant_stall(self) -> str:
        if self.mem_stall >= max(4, self.decode_stall):
            return f"mem+{self.mem_stall}"
        if self.decode_stall >= 2:
            return f"regs+{self.decode_stall}"
        return ""

    def format(self) -> str:
        return (f"[t{self.tid}] {self.pc:4d}: {self.text:<34} "
                f"D@{self.t_decode} I@{self.t_issue} X@{self.t_ex_done} "
                f"M@{self.t_data} C@{self.t_commit}  {self.dominant_stall}")


class PipelineTracer:
    """Bounded ring of trace records; attach via ``core.tracer = tracer``.

    A true ring: once ``limit`` records exist, each new record overwrites
    the oldest, so a long run always retains the most recent ``limit``
    committed instructions (``dropped`` counts the overwritten ones).
    """

    def __init__(self, limit: int = 10_000) -> None:
        if limit < 1:
            raise ValueError("tracer limit must be >= 1")
        self.limit = limit
        self.dropped = 0
        self._ring: List[TraceRecord] = []
        self._head = 0  # next overwrite position once the ring is full

    @property
    def records(self) -> List[TraceRecord]:
        """Retained records in chronological (commit) order."""
        if len(self._ring) < self.limit:
            return list(self._ring)
        return self._ring[self._head:] + self._ring[:self._head]

    def record(self, tid: int, pc: int, text: str, t_decode: int,
               t_issue: int, t_ex_done: int, t_data: int,
               t_commit: int) -> None:
        rec = TraceRecord(tid, pc, text, t_decode, t_issue,
                          t_ex_done, t_data, t_commit)
        if len(self._ring) < self.limit:
            self._ring.append(rec)
            return
        self._ring[self._head] = rec
        self._head = (self._head + 1) % self.limit
        self.dropped += 1

    def format(self, last: Optional[int] = None) -> str:
        records = self.records
        rows = records[-last:] if last else records
        out = [r.format() for r in rows]
        if self.dropped:
            out.append(f"... {self.dropped} older records overwritten "
                       f"(ring limit {self.limit})")
        return "\n".join(out)

    def stall_summary(self) -> dict:
        """Aggregate stall attribution over the retained trace window."""
        records = self.records
        total = len(records) or 1
        mem = sum(r.mem_stall for r in records)
        regs = sum(r.decode_stall for r in records)
        return {
            "instructions": len(records),
            "dropped": self.dropped,
            "mem_stall_cycles": mem,
            "reg_stall_cycles": regs,
            "mem_stall_per_inst": mem / total,
            "reg_stall_per_inst": regs / total,
        }
