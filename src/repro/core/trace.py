"""Per-instruction pipeline tracing (debug/teaching aid).

Attach a :class:`PipelineTracer` to any timeline core and every committed
instruction produces a record with its stage timestamps and a stall
attribution — which resource dominated the instruction's latency.  The
formatted trace reads like a classic pipeline diagram dump:

    [t0] 12: ldr x9, [x6, x8, lsl #3]   D@105 I@106 X@107 M@109 C@155  mem+46

Tracing costs simulation speed; attach it only for short diagnostic runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class TraceRecord:
    tid: int
    pc: int
    text: str
    t_decode: int
    t_issue: int
    t_ex_done: int
    t_data: int
    t_commit: int

    @property
    def decode_stall(self) -> int:
        """Cycles spent waiting for operands / register residency."""
        return max(0, self.t_issue - (self.t_decode + 1))

    @property
    def mem_stall(self) -> int:
        """Cycles the memory system added past execute."""
        return max(0, self.t_data - self.t_ex_done)

    @property
    def dominant_stall(self) -> str:
        if self.mem_stall >= max(4, self.decode_stall):
            return f"mem+{self.mem_stall}"
        if self.decode_stall >= 2:
            return f"regs+{self.decode_stall}"
        return ""

    def format(self) -> str:
        return (f"[t{self.tid}] {self.pc:4d}: {self.text:<34} "
                f"D@{self.t_decode} I@{self.t_issue} X@{self.t_ex_done} "
                f"M@{self.t_data} C@{self.t_commit}  {self.dominant_stall}")


@dataclass
class PipelineTracer:
    """Bounded ring of trace records; attach via ``core.tracer = tracer``."""

    limit: int = 10_000
    records: List[TraceRecord] = field(default_factory=list)
    dropped: int = 0

    def record(self, tid: int, pc: int, text: str, t_decode: int,
               t_issue: int, t_ex_done: int, t_data: int,
               t_commit: int) -> None:
        if len(self.records) >= self.limit:
            self.dropped += 1
            return
        self.records.append(TraceRecord(tid, pc, text, t_decode, t_issue,
                                        t_ex_done, t_data, t_commit))

    def format(self, last: Optional[int] = None) -> str:
        rows = self.records[-last:] if last else self.records
        out = [r.format() for r in rows]
        if self.dropped:
            out.append(f"... {self.dropped} records dropped (limit {self.limit})")
        return "\n".join(out)

    def stall_summary(self) -> dict:
        """Aggregate stall attribution over the trace."""
        total = len(self.records) or 1
        mem = sum(r.mem_stall for r in self.records)
        regs = sum(r.decode_stall for r in self.records)
        return {
            "instructions": len(self.records),
            "mem_stall_cycles": mem,
            "reg_stall_cycles": regs,
            "mem_stall_per_inst": mem / total,
            "reg_stall_per_inst": regs / total,
        }
