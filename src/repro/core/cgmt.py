"""Coarse-grain multithreaded (CGMT) cores with conventional context storage.

:class:`TimelineCore` already implements the CGMT control flow the paper
describes in Section 3 — detect a demand-load dcache miss, flush the
pipeline, and round-robin to the next ready thread.  The classes here model
the *context storage* alternatives of Figure 3:

* :class:`BankedCore` — one full register bank per thread (Figure 3b).
  Switches cost only the pipeline refill; the initial context is fetched
  from the per-thread reserved memory region once, when the thread first
  runs (the task-offload path of Section 6).
* :class:`SoftwareSwitchCore` — a single register bank; every switch
  executes a software save/restore sequence through the dcache (Figure 3a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..memory.main_memory import LINE_BYTES, WORD_BYTES
from .base import CoreConfig, ThreadContext, TimelineCore


@dataclass(frozen=True)
class ContextLayout:
    """Addresses of the per-thread context save area (reserved region).

    Each thread owns a full 64-register slot area (8 lines, by flat register
    index, so the registers a kernel actually uses — low ``x`` numbers —
    cluster into few lines) plus one line of system registers.  Only the
    lines containing ``used_regs`` are ever touched, which reproduces the
    paper's "between 2 and 4 cache lines ... general and system registers"
    footprint (Section 6.1).
    """

    base: int = 0x8000_0000
    used_regs: tuple = tuple(range(10))  # flat indices the workload touches

    GP_LINES = 8   # 64 registers x 8 bytes / 64-byte lines

    @property
    def context_regs(self) -> int:
        return len(self.used_regs)

    @property
    def lines_per_thread(self) -> int:
        return self.GP_LINES + 1  # +1 sysreg line

    @property
    def bytes_per_thread(self) -> int:
        return self.lines_per_thread * LINE_BYTES

    @property
    def touched_gp_lines(self) -> tuple:
        """Line offsets (within the thread area) the used registers occupy."""
        return tuple(sorted({r // 8 for r in self.used_regs}))

    def reg_addr(self, tid: int, flat_reg: int) -> int:
        """Backing address of architectural register ``flat_reg`` of ``tid``."""
        return self.base + tid * self.bytes_per_thread + flat_reg * WORD_BYTES

    def sysreg_addr(self, tid: int) -> int:
        return self.base + tid * self.bytes_per_thread + self.GP_LINES * LINE_BYTES

    def region(self, n_threads: int) -> tuple:
        """Byte range ``[lo, hi)`` of the whole register region."""
        return (self.base, self.base + n_threads * self.bytes_per_thread)


class BankedCore(TimelineCore):
    """CGMT core with a statically banked register file (Figure 3b)."""

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("config", CoreConfig(name="banked", switch_on_miss=True))
        super().__init__(*args, **kwargs)
        self.layout = self.layout or ContextLayout()
        if len(self.threads) > 8:
            raise ValueError("banked core supports at most 8 thread banks (Table 1)")

    def thread_start_cost(self, thread: ThreadContext, t: int) -> int:
        """Fetch the complete offloaded context into the thread's bank."""
        done = t
        base = self.layout.base + thread.tid * self.layout.bytes_per_thread
        lines = list(self.layout.touched_gp_lines) + [self.layout.GP_LINES]
        for i, line in enumerate(lines):
            _, r = self.dcache_request(t + i, base + line * LINE_BYTES)
            done = max(done, r.complete_at)
        self.stats.inc("context_fetches")
        telemetry = self.bus.telemetry
        if telemetry is not None:
            telemetry.on_context_move("ctx_fetch", thread.tid, t, done)
        return done


class SoftwareSwitchCore(TimelineCore):
    """CGMT core that saves/restores contexts in software (Figure 3a)."""

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("config", CoreConfig(name="swctx", switch_on_miss=True))
        super().__init__(*args, **kwargs)
        self.layout = self.layout or ContextLayout()
        self._prev_thread: Optional[ThreadContext] = None

    def switch_in(self, thread: ThreadContext, t: int) -> int:
        """Execute the save (previous thread) + restore (new thread) sequence.

        Each register moves with an ordinary store/load through the dcache
        port, one issue per cycle; execution resumes only after the last
        restore load returns (the delay "can exceed memory latency",
        Section 3).
        """
        done = t
        telemetry = self.bus.telemetry
        if self._prev_thread is not None and self._prev_thread is not thread:
            for flat in self.layout.used_regs:
                addr = self.layout.reg_addr(self._prev_thread.tid, flat)
                t_issue, _ = self.dcache_request(done, addr, is_write=True)
                done = t_issue + 1
            self.stats.inc("context_saves")
            if telemetry is not None:
                telemetry.on_context_move(
                    "ctx_save", self._prev_thread.tid, t, done)
            profile = self.bus.profile
            if profile is not None:
                # the save phase is the software analogue of a register
                # spill writeback; the restore phase stays in "switch"
                profile.on_spill_window(thread.tid, done)
        restore_done = done
        for i, flat in enumerate(self.layout.used_regs):
            addr = self.layout.reg_addr(thread.tid, flat)
            _, r = self.dcache_request(done + i, addr)
            restore_done = max(restore_done, r.complete_at)
        self.stats.inc("context_restores")
        if telemetry is not None:
            telemetry.on_context_move("ctx_restore", thread.tid, done,
                                      restore_done)
        self._prev_thread = thread
        return restore_done + self.config.switch_refill


def make_threads(n: int, entry_pc: int = 0,
                 init_regs: Optional[List[dict]] = None) -> List[ThreadContext]:
    """Create ``n`` thread contexts starting at ``entry_pc``.

    ``init_regs[i]`` optionally maps :class:`~repro.isa.registers.Reg` to
    initial values (the offloaded context, e.g. thread id in ``x0``).
    """
    threads = []
    for tid in range(n):
        th = ThreadContext(tid=tid, pc=entry_pc)
        if init_regs and tid < len(init_regs):
            for reg, value in init_regs[tid].items():
                th.write(reg, value)
        threads.append(th)
    return threads
