"""Single-threaded in-order core (the CVA6-like baseline of Figure 1).

Table 1: 1 GHz single-issue, 32/32 int/FP registers, 5-entry store queue,
2 outstanding loads, no context switching.  The limited ability to hide
memory latency behind independent instructions (stall-on-use with two
non-blocking loads) is exactly what makes the single InO point in Figure 1
slow on memory-intensive kernels.
"""

from __future__ import annotations

from typing import List, Optional

from .base import CoreConfig, ThreadContext, TimelineCore


class InOrderCore(TimelineCore):
    """Baseline single-thread in-order processor."""

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("config", CoreConfig(
            name="inorder", switch_on_miss=False, max_outstanding_loads=2))
        super().__init__(*args, **kwargs)
        if len(self.threads) != 1:
            raise ValueError("InOrderCore runs exactly one thread; "
                             "threads are serialized by the caller")
