"""Engine selection for the timeline cores.

Every core can run its per-instruction step under one of two engines:

``"compiled"``
    The threaded-code engine (:mod:`repro.isa.compiled`): each DecodedOp
    is a specialized closure chained through its basic block, dispatched
    as ``code[thread.pc](core, thread)``.  The default under
    :func:`repro.system.simulator.run_config`.

``"interpreted"``
    The original per-op interpreter loop
    (``TimelineCore._process_instruction_fast`` and friends).  The golden
    reference arm: the differential fuzz oracle and the equivalence suite
    hold the compiled engine byte-identical to it.  The default for
    directly constructed cores, so existing call sites see no change.

Either engine runs uninstrumented or instrumented; the
``_recompile_step`` seam picks the body on every bus attach/detach.  The
full selection matrix (engine x bus state):

====================  =============================  ==========================
state                 compiled                       interpreted
====================  =============================  ==========================
bus empty             specialized closures,          ``_process_instruction_fast``
                      superop chains
bus non-empty         per-op closures with bus       ``_process_instruction_
                      epilogues (no chaining)        instrumented``
====================  =============================  ==========================

Engine choice is observational-only by construction — stats digests,
architectural state and every cycle timestamp are identical — so the
manifest digest excludes it, like the other observation knobs.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..isa.registers import Reg, from_flat

__all__ = ["ENGINES", "DEFAULT_ENGINE", "resolve_engine",
           "convert_scoreboard"]

#: valid engine names (also the CLI / RunConfig vocabulary)
ENGINES = ("compiled", "interpreted")

#: what ``RunConfig(engine=None)`` resolves to
DEFAULT_ENGINE = "compiled"


def resolve_engine(engine: Optional[str]) -> str:
    """Validate an engine name; ``None`` resolves to :data:`DEFAULT_ENGINE`."""
    if engine is None:
        return DEFAULT_ENGINE
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r} (expected one of {ENGINES})")
    return engine


def convert_scoreboard(board: Dict, engine: str) -> Dict:
    """Re-key a writer scoreboard for an engine switch.

    The compiled engine keys scoreboards by flat register index (plain
    ints: no ``Reg.__hash__`` calls in the hot loop); the interpreted
    engine keys them by :class:`~repro.isa.registers.Reg`.  A mid-run
    ``set_engine`` converts so in-flight writer timestamps survive.
    """
    if engine == "compiled":
        return {(k._flat if isinstance(k, Reg) else k): v
                for k, v in board.items()}
    return {(from_flat(k) if isinstance(k, int) else k): v
            for k, v in board.items()}
