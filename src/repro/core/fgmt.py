"""Fine-grain multithreaded (barrel) core — the Tera-style alternative [6].

Where CGMT switches threads only on dcache misses (flushing the pipeline),
a barrel core rotates among ready threads potentially every cycle with zero
switch cost, paying instead with a full register bank per thread (like the
banked CGMT design) and lower single-thread performance.  The paper's
related work cites this class of multithreading ([4, 6, 52]); implementing
it lets the evaluation compare ViReC against *both* classic MT styles.

Timeline formulation: each step processes one instruction from the thread
that can issue earliest (its operand-ready peek), so dependent instructions
of one thread interleave naturally with other threads' work and a load
miss never stalls the core while any other thread can issue.  Shared
resources (decode slot, EX pipe, dcache port, in-order-per-thread commit)
are the same timestamps the CGMT cores use.

**Fidelity caveat**: this model is *idealized* — it charges no
thread-select or per-thread fetch-buffer conflicts, so it upper-bounds what
barrel multithreading could achieve.  Its register storage is the full
banked file (one bank per thread), so on the Figure 1 axes it sits at the
banked design's area with better latency hiding; ViReC's area argument is
unaffected, which is presumably why the paper contrasts against CGMT
banking rather than FGMT.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..isa.compiled import EngineVariant
from ..isa.instructions import evaluate
from ..isa.registers import Reg
from .base import CoreConfig, ThreadContext, ThreadState, TimelineCore
from .cgmt import ContextLayout
from .engine import convert_scoreboard


class FGMTCore(TimelineCore):
    """Barrel processor: per-thread state, zero-cost rotation."""

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("config", CoreConfig(
            name="fgmt", switch_on_miss=False, max_outstanding_loads=8))
        super().__init__(*args, **kwargs)
        self.layout = self.layout or ContextLayout()
        if len(self.threads) > 8:
            raise ValueError("barrel core supports at most 8 register banks")
        self._boards: Dict[int, Dict[Reg, int]] = {
            th.tid: {} for th in self.threads}
        self._flags_ready: Dict[int, int] = {th.tid: 0 for th in self.threads}
        #: earliest cycle each thread could issue its next instruction
        self._issue_ready: Dict[int, int] = {th.tid: 0 for th in self.threads}

    # barrel rotation: no pipeline flush, no refill cost
    def _pick_barrel_thread(self) -> Optional[ThreadContext]:
        best, best_t = None, None
        for th in self.threads:
            if th.state == ThreadState.DONE:
                continue
            t = max(self._issue_ready[th.tid], th.ready_at)
            if best_t is None or t < best_t or (t == best_t and th.tid < best.tid):
                best, best_t = th, t
        return best

    def _operand_ready(self, thread: ThreadContext, inst) -> int:
        """Operand readiness; ``inst`` is an Instruction or DecodedOp (both
        expose ``srcs``/``reads_flags``)."""
        board = self._boards[thread.tid]
        t = 0
        for reg in inst.srcs:
            w = board.get(reg, 0)
            if w > t:
                t = w
        if inst.reads_flags:
            fr = self._flags_ready[thread.tid]
            if fr > t:
                t = fr
        return t

    def step(self):
        thread = self._pick_barrel_thread()
        if thread is None:
            return False
        if not thread.started:
            thread.started = True
            self._issue_ready[thread.tid] = self.thread_start_cost(
                thread, self._issue_ready[thread.tid])
        return self._process_instruction(thread) or True

    # -- engine selection seam (see repro.core.engine) -------------------
    def _engine_variant(self, instrumented: bool) -> EngineVariant:
        # the barrel step uses none of the timeline subclass hooks or the
        # miss-switch path, so every FGMT core shares one variant per bus
        # state regardless of configuration
        return EngineVariant(family="barrel", instrumented=instrumented)

    def _interpreted_step_impl(self):
        # one inline-dispatch interpreted body covers both bus states
        return self._process_barrel_instruction

    def _convert_engine_keys(self, engine: str) -> None:
        super()._convert_engine_keys(engine)
        self._boards = {tid: convert_scoreboard(board, engine)
                        for tid, board in self._boards.items()}

    def _halt_barrel_thread(self, thread: ThreadContext) -> None:
        """Barrel halt bookkeeping (shared with the compiled closures);
        unlike the timeline engine there is no ``current`` to clear."""
        thread.state = ThreadState.DONE
        self.stats.inc("threads_completed")

    # run() is inherited: the base watchdog loop drives the overridden
    # step(), and commit_tail advances per instruction here as well, so
    # both the instruction budget and the cycle watchdog apply unchanged.

    def thread_start_cost(self, thread: ThreadContext, t: int) -> int:
        """Fetch the offloaded context into the thread's bank (as banked)."""
        done = t
        base = self.layout.base + thread.tid * self.layout.bytes_per_thread
        lines = list(self.layout.touched_gp_lines) + [self.layout.GP_LINES]
        for i, line in enumerate(lines):
            _, r = self.dcache_request(t + i, base + line * 64)
            done = max(done, r.complete_at)
        self.stats.inc("context_fetches")
        return done

    # ------------------------------------------------------------------
    def _process_barrel_instruction(self, thread: ThreadContext) -> None:
        dops = self._dops
        d = dops[thread.pc]
        inst = d.inst
        tid = thread.tid
        board = self._boards[tid]
        stats = self.stats
        issue_ready = self._issue_ready
        bus = self.bus
        if bus.faults is not None:
            issue_ready[tid] = bus.faults.on_instruction(
                thread, inst, issue_ready[tid])

        # issue slot: one instruction per cycle shared by all threads
        t_ops = self._operand_ready(thread, d)
        t_issue = max(t_ops, self.decode_free + 1, issue_ready[tid])
        self.decode_free = t_issue

        ex_free = self.ex_free
        t_ex_start = t_issue if t_issue > ex_free else ex_free
        t_ex_done = t_ex_start + d.ex_latency
        self.ex_free = t_ex_done

        xregs = thread.xregs
        dregs = thread.dregs
        srcvals = {}
        for reg, is_x, idx in d.src_reads:
            srcvals[reg] = xregs[idx] if is_x else dregs[idx]
        result = evaluate(inst, srcvals, thread.flags, thread.pc)

        data_at = t_ex_done
        load_missed = False
        if d.is_load:
            t_m = self._load_slot_wait(t_ex_done)
            _, r = self.dcache_request(t_m, result.addr, is_load_data=True)
            data_at = r.complete_at
            if not r.hit:
                stats.inc("load_miss_stalls")
                load_missed = True
        elif d.is_store:
            data_at = self._sq_insert(t_ex_done, result.addr)
            self.memory.store(result.addr, result.store_value)

        t_c = max(self.commit_tail + 1, data_at)
        self.commit_tail = t_c
        if not result.halt:
            thread.instructions += 1
        self.now = min(issue_ready.values())
        if bus.profile is not None:
            # barrel commits interleave threads on one commit clock; the
            # attributor tiles (prev commit, t_c] off these bounds alone
            bus.profile.on_barrel_commit(tid, thread.pc, d, t_issue,
                                         t_ex_done, data_at, t_c, load_missed)

        for reg, value in result.writes.items():
            thread.write(reg, value)
            board[reg] = t_ex_done
        if d.is_load:
            thread.write(d.rd, self.memory.load(result.addr))
            board[d.rd] = data_at
        if result.new_flags is not None:
            thread.flags = result.new_flags
            self._flags_ready[tid] = t_ex_done

        if bus.sanitizer is not None:
            # after the architectural update, before pc advances — the same
            # commit-point contract as the TimelineCore step bodies
            bus.sanitizer.on_commit(thread, inst, result, t_c)

        if result.halt:
            thread.state = ThreadState.DONE
            stats.inc("threads_completed")
            return
        thread.pc = result.target if result.taken else thread.pc + 1
        # peek the next instruction's operand readiness so the scheduler
        # lets other threads run while this one waits on a load
        t_next = max(t_issue + 1, self._operand_ready(thread, dops[thread.pc]))
        if result.taken and t_ex_done + self.config.redirect_penalty > t_next:
            # barrel cores still pay the fetch redirect for taken branches
            t_next = t_ex_done + self.config.redirect_penalty
        issue_ready[tid] = t_next


# recompile-safety marker: the barrel interpreted body is an engine body,
# so _recompile_step may rebind over it (but never over external wrappers)
FGMTCore._process_barrel_instruction._engine_step = True
