"""Fine-grain multithreaded (barrel) core — the Tera-style alternative [6].

Where CGMT switches threads only on dcache misses (flushing the pipeline),
a barrel core rotates among ready threads potentially every cycle with zero
switch cost, paying instead with a full register bank per thread (like the
banked CGMT design) and lower single-thread performance.  The paper's
related work cites this class of multithreading ([4, 6, 52]); implementing
it lets the evaluation compare ViReC against *both* classic MT styles.

Timeline formulation: each step processes one instruction from the thread
that can issue earliest (its operand-ready peek), so dependent instructions
of one thread interleave naturally with other threads' work and a load
miss never stalls the core while any other thread can issue.  Shared
resources (decode slot, EX pipe, dcache port, in-order-per-thread commit)
are the same timestamps the CGMT cores use.

**Fidelity caveat**: this model is *idealized* — it charges no
thread-select or per-thread fetch-buffer conflicts, so it upper-bounds what
barrel multithreading could achieve.  Its register storage is the full
banked file (one bank per thread), so on the Figure 1 axes it sits at the
banked design's area with better latency hiding; ViReC's area argument is
unaffected, which is presumably why the paper contrasts against CGMT
banking rather than FGMT.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..isa.instructions import Instruction, evaluate
from ..isa.registers import Reg
from .base import CoreConfig, DeadlockError, ThreadContext, ThreadState, TimelineCore
from .cgmt import ContextLayout


class FGMTCore(TimelineCore):
    """Barrel processor: per-thread state, zero-cost rotation."""

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("config", CoreConfig(
            name="fgmt", switch_on_miss=False, max_outstanding_loads=8))
        super().__init__(*args, **kwargs)
        self.layout = self.layout or ContextLayout()
        if len(self.threads) > 8:
            raise ValueError("barrel core supports at most 8 register banks")
        self._boards: Dict[int, Dict[Reg, int]] = {
            th.tid: {} for th in self.threads}
        self._flags_ready: Dict[int, int] = {th.tid: 0 for th in self.threads}
        #: earliest cycle each thread could issue its next instruction
        self._issue_ready: Dict[int, int] = {th.tid: 0 for th in self.threads}

    # barrel rotation: no pipeline flush, no refill cost
    def _pick_barrel_thread(self) -> Optional[ThreadContext]:
        best, best_t = None, None
        for th in self.threads:
            if th.state == ThreadState.DONE:
                continue
            t = max(self._issue_ready[th.tid], th.ready_at)
            if best_t is None or t < best_t or (t == best_t and th.tid < best.tid):
                best, best_t = th, t
        return best

    def _operand_ready(self, thread: ThreadContext, inst: Instruction) -> int:
        board = self._boards[thread.tid]
        t = 0
        for reg in inst.srcs:
            t = max(t, board.get(reg, 0))
        if inst.reads_flags:
            t = max(t, self._flags_ready[thread.tid])
        return t

    def step(self) -> bool:
        thread = self._pick_barrel_thread()
        if thread is None:
            return False
        if not thread.started:
            thread.started = True
            self._issue_ready[thread.tid] = self.thread_start_cost(
                thread, self._issue_ready[thread.tid])
        self._process_barrel_instruction(thread)
        return True

    def run(self):
        guard = 0
        while self.step():
            guard += 1
            if guard > self.config.max_cycles:
                raise DeadlockError("instruction budget exceeded")
        self.finalize_stats()
        return self.stats

    def thread_start_cost(self, thread: ThreadContext, t: int) -> int:
        """Fetch the offloaded context into the thread's bank (as banked)."""
        done = t
        base = self.layout.base + thread.tid * self.layout.bytes_per_thread
        lines = list(self.layout.touched_gp_lines) + [self.layout.GP_LINES]
        for i, line in enumerate(lines):
            _, r = self.dcache_request(t + i, base + line * 64)
            done = max(done, r.complete_at)
        self.stats.inc("context_fetches")
        return done

    # ------------------------------------------------------------------
    def _process_barrel_instruction(self, thread: ThreadContext) -> None:
        inst = self.program[thread.pc]
        board = self._boards[thread.tid]
        if self.fault_hook is not None:
            self._issue_ready[thread.tid] = self.fault_hook.on_instruction(
                thread, inst, self._issue_ready[thread.tid])

        # issue slot: one instruction per cycle shared by all threads
        t_ops = self._operand_ready(thread, inst)
        t_issue = max(t_ops, self.decode_free + 1,
                      self._issue_ready[thread.tid])
        self.decode_free = t_issue

        t_ex_start = max(t_issue, self.ex_free)
        t_ex_done = t_ex_start + inst.ex_latency
        self.ex_free = t_ex_done

        srcvals = {r: thread.read(r) for r in inst.srcs}
        result = evaluate(inst, srcvals, thread.flags, thread.pc)

        data_at = t_ex_done
        if inst.is_load:
            t_m = self._load_slot_wait(t_ex_done)
            _, r = self.dcache_request(t_m, result.addr, is_load_data=True)
            data_at = r.complete_at
            if not r.hit:
                self.stats.inc("load_miss_stalls")
        elif inst.is_store:
            data_at = self._sq_insert(t_ex_done, result.addr)
            self.memory.store(result.addr, result.store_value)

        t_c = max(self.commit_tail + 1, data_at)
        self.commit_tail = t_c
        if not result.halt:
            thread.instructions += 1
        self.now = min(self._issue_ready.values())

        for reg, value in result.writes.items():
            thread.write(reg, value)
            board[reg] = t_ex_done
        if inst.is_load:
            thread.write(inst.rd, self.memory.load(result.addr))
            board[inst.rd] = data_at
        if result.new_flags is not None:
            thread.flags = result.new_flags
            self._flags_ready[thread.tid] = t_ex_done

        if self.sanitizer is not None:
            # after the architectural update, before pc advances — the same
            # commit-point contract as TimelineCore._process_instruction
            self.sanitizer.on_commit(thread, inst, result, t_c)

        if result.halt:
            thread.state = ThreadState.DONE
            self.stats.inc("threads_completed")
            return
        thread.pc = result.target if result.taken else thread.pc + 1
        # peek the next instruction's operand readiness so the scheduler
        # lets other threads run while this one waits on a load
        nxt = self.program[thread.pc]
        self._issue_ready[thread.tid] = max(
            t_issue + 1, self._operand_ready(thread, nxt))
        if result.taken:
            # barrel cores still pay the fetch redirect for taken branches
            self._issue_ready[thread.tid] = max(
                self._issue_ready[thread.tid],
                t_ex_done + self.config.redirect_penalty)
