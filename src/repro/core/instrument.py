"""The unified instrumentation bus of the timeline engine.

Three generations of opt-in observation layers — fault injection,
telemetry, and the VSan sanitizer — plus the original pipeline tracer each
used to hang off the core as its own attribute, and the hot loop paid one
``if self.X is not None`` per layer per committed instruction whether or
not anything was attached.  :class:`InstrumentBus` collapses the four into
one seam with two guarantees:

* **Compiled fast path.**  When nothing is attached the engine runs a
  separate uninstrumented copy of the per-instruction step that contains
  *zero* instrumentation branches: attaching or detaching any instrument
  rebinds ``core._process_instruction`` between the fast and the
  instrumented body (see ``TimelineCore._recompile_step``).

* **Fixed dispatch order.**  When instruments are attached they are
  dispatched in a fixed pipeline-position order per instruction:
  ``faults`` (front end, may legally add cycles) -> ``telemetry`` (commit
  clock) -> ``metrics`` (commit counters) -> ``profile`` (cycle
  attribution off the commit timestamps) -> ``sanitizer``
  (post-architectural-update commit check) -> ``tracer`` (record, last).
  Observational instruments (telemetry, metrics, profile, sanitizer,
  tracer) must never alter a cycle timestamp — the noop suites
  under ``tests/telemetry``, ``tests/sanitizer`` and ``tests/profiling``
  enforce cycle-identity of the attached path against the fast path.

Backward compatibility: ``core.fault_hook`` / ``core.telemetry`` /
``core.sanitizer`` / ``core.tracer`` remain readable and writable — they
are properties delegating to the bus slots, so the existing ``attach()``
entry points of each subsystem keep working unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

__all__ = ["InstrumentBus"]

#: bus slot names in dispatch order (see the module docstring)
DISPATCH_ORDER = ("faults", "telemetry", "metrics", "profile", "sanitizer",
                  "tracer")


class InstrumentBus:
    """The instrumentation attachment point of one core.

    Slots (all ``None`` when detached, dispatch in this order):

    ``faults``
        :class:`~repro.faults.FaultInjector` — the only instrument allowed
        to return an adjusted timestamp (fault recovery costs cycles).
    ``telemetry``
        :class:`~repro.telemetry.CoreTelemetry` — event/interval recording
        off the commit clock; purely observational.
    ``metrics``
        :class:`~repro.metrics.CoreMetrics` — labeled counter/histogram
        recording off the commit clock (cross-process metrics registry);
        purely observational.
    ``profile``
        :class:`~repro.profiling.CycleAttributor` — top-down cycle
        accounting off the per-commit stage timestamps (per-cause,
        per-thread, per-PC); purely observational.
    ``sanitizer``
        :class:`~repro.sanitizer.CoreSanitizer` — shadow-state check after
        the architectural update; purely observational (raises on
        divergence, never adjusts timing).
    ``tracer``
        :class:`~repro.core.trace.PipelineTracer` — per-instruction stage
        timestamps; purely observational.
    """

    __slots__ = ("faults", "telemetry", "metrics", "profile", "sanitizer",
                 "tracer")

    def __init__(self) -> None:
        self.faults = None
        self.telemetry = None
        self.metrics = None
        self.profile = None
        self.sanitizer = None
        self.tracer = None

    @property
    def empty(self) -> bool:
        """True when nothing is attached (the engine may run its fast path)."""
        return (self.faults is None and self.telemetry is None
                and self.metrics is None and self.profile is None
                and self.sanitizer is None and self.tracer is None)

    def attached(self) -> List[Tuple[str, object]]:
        """``(slot, instrument)`` pairs in dispatch order, attached only."""
        return [(name, getattr(self, name)) for name in DISPATCH_ORDER
                if getattr(self, name) is not None]

    def set(self, slot: str, instrument: Optional[object]) -> None:
        """Attach (or detach with ``None``) one instrument by slot name."""
        if slot not in DISPATCH_ORDER:
            raise ValueError(f"unknown instrument slot {slot!r}; "
                             f"expected one of {DISPATCH_ORDER}")
        setattr(self, slot, instrument)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        on = ",".join(name for name, _ in self.attached()) or "empty"
        return f"<InstrumentBus {on}>"
