"""Simplified out-of-order core (Arm N1-class host, Figure 1 comparison).

A dataflow-limited reservation model rather than a full O3 pipeline: each
instruction dispatches in order (bounded by fetch width and ROB occupancy),
issues when its operands and a function unit are ready, and commits in
order.  Branches are assumed perfectly predicted — the near-memory kernels
are short counted loops where a real N1 predictor is essentially perfect —
so the model's performance ceiling is exactly the paper's point: dependent
loads limit ILP no matter how wide the machine is.

Table 1 parameters: 2 GHz 8-wide (2 LD, 2 FP/VEC, 4 ALU pipes), 384 physical
registers, 224 ROB entries, 113 LQ / 120 SQ.  The 2 GHz clock (vs 1 GHz NDP
cores) is applied by the experiment driver as a frequency ratio.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from ..isa.instructions import Flags, Instruction, evaluate
from ..isa.program import Program
from ..isa.registers import Reg
from ..memory.cache import Cache
from ..memory.main_memory import MainMemory
from ..stats.counters import Stats


@dataclass
class OoOConfig:
    name: str = "ooo"
    width: int = 8
    rob_entries: int = 224
    lq_entries: int = 113
    sq_entries: int = 120
    alu_units: int = 4
    fp_units: int = 2
    ld_units: int = 2
    max_instructions: int = 50_000_000


class _UnitPool:
    """k pipelined function units; issue occupies a unit for one cycle."""

    def __init__(self, k: int) -> None:
        self.free_at = [0] * k

    def reserve(self, t: int) -> int:
        i = min(range(len(self.free_at)), key=self.free_at.__getitem__)
        start = max(t, self.free_at[i])
        self.free_at[i] = start + 1
        return start


class OoOCore:
    """Out-of-order timing model for a single thread."""

    def __init__(self, program: Program, icache: Cache, dcache: Cache,
                 memory: MainMemory, config: Optional[OoOConfig] = None,
                 stats: Optional[Stats] = None, core_id: int = 0) -> None:
        self.program = program
        self.icache = icache
        self.dcache = dcache
        self.memory = memory
        self.config = config or OoOConfig()
        self.stats = stats if stats is not None else Stats(self.config.name)
        self.core_id = core_id

        self.reg_ready: Dict[Reg, int] = {}
        self.flags = Flags()
        self.flags_ready = 0
        self.rob: Deque[int] = deque()   # commit cycles of in-flight entries
        self.lq: Deque[int] = deque()
        self.sq: Deque[int] = deque()
        self.alu = _UnitPool(self.config.alu_units)
        self.fp = _UnitPool(self.config.fp_units)
        self.ld = _UnitPool(self.config.ld_units)
        self.fetched = 0
        self.commit_tail = 0
        self.commit_slots_used = 0

    def _queue_space(self, q: Deque[int], limit: int, t: int) -> int:
        while q and q[0] <= t:
            q.popleft()
        while len(q) >= limit:
            t = q.popleft()
        return t

    def run(self, init_regs: Optional[dict] = None) -> Stats:
        """Run to HALT; ``init_regs`` maps Reg -> initial value (offload args)."""
        cfg = self.config
        xregs = [0] * 32
        dregs = [0.0] * 32
        for reg, value in (init_regs or {}).items():
            if reg.rclass.value == 0:
                xregs[reg.index] = int(value) & ((1 << 64) - 1)
            else:
                dregs[reg.index] = float(value)
        pc = self.program.entry
        instructions = 0
        # exhaustive commit-clock accounting: every commit_tail advance is
        # charged to exactly one cause, so sum(causes) == final cycles
        causes = {"commit_bw": 0, "load_wait": 0, "dataflow": 0}

        def read(reg: Reg):
            return xregs[reg.index] if reg.rclass.value == 0 else dregs[reg.index]

        while True:
            if instructions > cfg.max_instructions:
                raise RuntimeError("instruction budget exceeded")
            inst: Instruction = self.program[pc]

            # dispatch: width per cycle, bounded by ROB space
            t_fetch = self.fetched // cfg.width
            self.fetched += 1
            t_disp = self._queue_space(self.rob, cfg.rob_entries, t_fetch)

            # operand readiness
            t_ops = t_disp
            for reg in inst.srcs:
                t_ops = max(t_ops, self.reg_ready.get(reg, 0))
            if inst.reads_flags:
                t_ops = max(t_ops, self.flags_ready)

            srcvals = {r: read(r) for r in inst.srcs}
            result = evaluate(inst, srcvals, self.flags, pc)

            if inst.is_load:
                t_ops = self._queue_space(self.lq, cfg.lq_entries, t_ops)
                t_issue = self.ld.reserve(t_ops)
                r = self.dcache.access(t_issue, result.addr,
                                       requestor=self.core_id, is_load_data=True)
                while not r.accepted:
                    t_issue = self.ld.reserve(max(r.retry_at, t_issue + 1))
                    r = self.dcache.access(t_issue, result.addr,
                                           requestor=self.core_id, is_load_data=True)
                done = r.complete_at
                self.lq.append(done)
            elif inst.is_store:
                t_ops = self._queue_space(self.sq, cfg.sq_entries, t_ops)
                t_issue = self.ld.reserve(t_ops)
                r = self.dcache.access(t_issue, result.addr, is_write=True,
                                       requestor=self.core_id)
                self.sq.append(r.complete_at if r.accepted else t_issue + 4)
                done = t_issue + 1
                self.memory.store(result.addr, result.store_value)
            else:
                pool = self.fp if inst.opcode.name.startswith("F") else self.alu
                t_issue = pool.reserve(t_ops)
                done = t_issue + inst.ex_latency

            # writeback / wakeup
            for reg, value in result.writes.items():
                if reg.rclass.value == 0:
                    xregs[reg.index] = int(value) & ((1 << 64) - 1)
                else:
                    dregs[reg.index] = float(value)
                self.reg_ready[reg] = done
            if inst.is_load:
                value = self.memory.load(result.addr)
                if inst.rd.rclass.value == 0:
                    xregs[inst.rd.index] = int(value) & ((1 << 64) - 1)
                else:
                    dregs[inst.rd.index] = float(value)
                self.reg_ready[inst.rd] = done
            if result.new_flags is not None:
                self.flags = result.new_flags
                self.flags_ready = done

            # in-order commit, width per cycle
            t_c = max(done, self.commit_tail)
            if t_c == self.commit_tail:
                self.commit_slots_used += 1
                if self.commit_slots_used >= cfg.width:
                    self.commit_tail += 1
                    self.commit_slots_used = 0
                    causes["commit_bw"] += 1
            else:
                causes["load_wait" if inst.is_load else "dataflow"] += (
                    t_c - self.commit_tail)
                self.commit_tail = t_c
                self.commit_slots_used = 1
            self.rob.append(self.commit_tail)

            if result.halt:
                break
            instructions += 1
            pc = result.target if result.taken else pc + 1

        self.stats.set("cycles", self.commit_tail)
        self.stats.set("instructions", instructions)
        self.stats.set("ipc", instructions / self.commit_tail if self.commit_tail else 0.0)
        cause_stats = self.stats.child("cycle_causes")
        for cause, count in causes.items():
            cause_stats.set(cause, count)
        return self.stats

    def run_with_init(self, init_regs: Optional[dict] = None) -> Stats:
        """Alias of :meth:`run` used by the system driver."""
        return self.run(init_regs)
