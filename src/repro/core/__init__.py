"""Core models: timeline pipeline engine and multithreading baselines."""

from .base import CoreConfig, DeadlockError, ThreadContext, ThreadState, TimelineCore
from .cgmt import BankedCore, ContextLayout, SoftwareSwitchCore, make_threads
from .fgmt import FGMTCore
from .inorder import InOrderCore
from .trace import PipelineTracer, TraceRecord

__all__ = [
    "BankedCore", "ContextLayout", "CoreConfig", "DeadlockError", "FGMTCore",
    "InOrderCore", "SoftwareSwitchCore", "ThreadContext", "ThreadState",
    "PipelineTracer", "TimelineCore", "TraceRecord", "make_threads",
]
