"""Longitudinal analytics over the run ledger (``repro history``).

The ledger's append-only row sequence is a time axis; this module folds it
into the three views the CLI exposes:

* **trajectories** — per-digest series of host rate / cycles / wall-clock,
  rendered with the shared unicode sparkline so trends read at a glance;
* **compare** — per-counter deltas between the newest rows of two digests
  (the "what did this policy change buy" question, answered from history
  instead of a fresh A/B sweep);
* **check** — trajectory-aware regression gating: the newest host rate of
  each digest against the *median of its last N predecessors*, graded with
  the same ``ok``/``warn``/``regression`` ladder as ``repro report
  --check``.  Median-of-N is the change-point half of the design: one
  noisy CI host perturbs a single sample, not the median, so the gate
  fires on sustained shifts rather than flukes.

``check`` also carries a determinism alarm: two rows sharing a digest,
engine key, and schema version that disagree on ``cycles`` mean the
"digest fully determines results" contract broke somewhere — graded
``regression`` unconditionally, because no threshold makes that OK.

Everything here consumes plain row dicts from
:class:`~repro.ledger.store.LedgerReader` — no pickled blobs are touched,
so history stays readable across schema versions.
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional

from ..stats.report_html import DEFAULT_THRESHOLD, classify_delta
from ..stats.reporting import sparkline
from .store import LedgerReader, counters_of

__all__ = ["check_history", "compare_digests", "history_series",
           "render_check_text", "render_compare_text", "render_history_text",
           "render_trajectory_text", "trajectory"]

#: how many predecessor samples the --check median window folds
DEFAULT_WINDOW = 5

#: minimum rows (with a host rate) a digest needs before --check grades it
DEFAULT_MIN_RUNS = 3

_SEVERITY_RANK = {"ok": 0, "warn": 1, "regression": 2}


# -- data folds ---------------------------------------------------------------
def trajectory(reader: LedgerReader, digest: str,
               limit: Optional[int] = None) -> Dict:
    """One digest's run history, oldest first, plus derived series."""
    rows = reader.runs(digest=digest, limit=limit)
    return {
        "digest": digest,
        "rows": rows,
        "rates": [r["host_rate"] for r in rows
                  if r["host_rate"] is not None],
        "cycles": [r["cycles"] for r in rows if r["cycles"] is not None],
        "walls": [r["wall_s"] for r in rows if r["wall_s"] is not None],
    }


def history_series(reader: LedgerReader,
                   max_digests: int = 8) -> List[Dict]:
    """Per-digest host-rate series for trend displays (report History §).

    Most-recently-active digests first; digests with no host-rate samples
    are skipped (nothing to draw a trend from).
    """
    out: List[Dict] = []
    for summary in reader.digests():
        if len(out) >= max_digests:
            break
        traj = trajectory(reader, summary["digest"])
        if not traj["rates"]:
            continue
        label = " ".join(str(p) for p in
                         (summary.get("workload"), summary.get("core_type"))
                         if p) or summary["digest"]
        out.append({
            "digest": summary["digest"],
            "label": label,
            "runs": summary["runs"],
            "rates": traj["rates"],
            "last_rate": traj["rates"][-1],
            "last_seen": summary.get("last"),
        })
    return out


def compare_digests(reader: LedgerReader, digest_a: str,
                    digest_b: str) -> Dict:
    """Per-counter deltas between the newest rows of two digests.

    Counters absent on one side delta against 0 (the writer only stores
    non-zero counters, so absence *means* zero).  Scalar columns (cycles,
    instructions, ipc, rf_hit_rate) are compared the same way.
    """
    rows_a = reader.runs(digest=digest_a, limit=1)
    rows_b = reader.runs(digest=digest_b, limit=1)
    out: Dict = {"digest_a": digest_a, "digest_b": digest_b,
                 "found_a": bool(rows_a), "found_b": bool(rows_b),
                 "scalars": [], "counters": []}
    if not rows_a or not rows_b:
        return out
    a, b = rows_a[-1], rows_b[-1]
    for name in ("cycles", "instructions", "ipc", "rf_hit_rate"):
        out["scalars"].append(_delta_row(name, a.get(name), b.get(name)))
    ca, cb = counters_of(a), counters_of(b)
    for name in sorted(set(ca) | set(cb)):
        out["counters"].append(
            _delta_row(name, ca.get(name, 0), cb.get(name, 0)))
    return out


def _delta_row(name: str, va, vb) -> Dict:
    row = {"name": name, "a": va, "b": vb, "delta": None, "rel": None}
    if isinstance(va, (int, float)) and isinstance(vb, (int, float)):
        row["delta"] = vb - va
        if va:
            row["rel"] = (vb - va) / abs(va)
    return row


def check_history(reader: LedgerReader, *,
                  threshold: float = DEFAULT_THRESHOLD,
                  window: int = DEFAULT_WINDOW,
                  min_runs: int = DEFAULT_MIN_RUNS,
                  digest: Optional[str] = None) -> Dict:
    """Grade every digest's newest host rate against its own history.

    Returns ``{"findings": [...], "worst": severity, "checked": n}``;
    ``worst`` is what the CLI turns into an exit code.  Digests with fewer
    than ``min_runs`` rated rows are skipped (a trajectory of one or two
    points has no median worth gating on).
    """
    findings: List[Dict] = []
    checked = 0
    summaries = ([{"digest": digest}] if digest else reader.digests())
    for summary in summaries:
        rows = reader.runs(digest=summary["digest"])
        findings.extend(_determinism_findings(summary["digest"], rows))
        rated = [r for r in rows if isinstance(r.get("host_rate"),
                                               (int, float))]
        if len(rated) < min_runs:
            continue
        checked += 1
        current = float(rated[-1]["host_rate"])
        history = [float(r["host_rate"]) for r in rated[:-1]][-window:]
        baseline = statistics.median(history)
        entry = classify_delta(current, baseline, threshold)
        findings.append({
            "kind": "host_rate", "digest": summary["digest"],
            "workload": rated[-1].get("workload"),
            "core_type": rated[-1].get("core_type"),
            "source": rated[-1].get("source"),
            "runs": len(rated), "window": len(history),
            **entry,
        })
    worst = "ok"
    for f in findings:
        if _SEVERITY_RANK[f["severity"]] > _SEVERITY_RANK[worst]:
            worst = f["severity"]
    findings.sort(key=lambda f: -_SEVERITY_RANK[f["severity"]])
    return {"findings": findings, "worst": worst, "checked": checked}


def _determinism_findings(digest: str, rows: List[Dict]) -> List[Dict]:
    """Rows sharing a full cache key must agree on cycle counts."""
    by_key: Dict = {}
    for r in rows:
        if r.get("cycles") is None:
            continue
        by_key.setdefault((r["engine_key"], r["schema_version"]),
                          set()).add(r["cycles"])
    out = []
    for (engine_key, schema_version), cycle_values in sorted(by_key.items()):
        if len(cycle_values) > 1:
            out.append({
                "kind": "determinism", "digest": digest,
                "engine_key": engine_key, "schema_version": schema_version,
                "cycles_seen": sorted(cycle_values),
                "severity": "regression",
            })
    return out


# -- text renderers -----------------------------------------------------------
def _fmt_rate(v: Optional[float]) -> str:
    if v is None:
        return "-"
    return f"{v:,.0f}" if v >= 100 else f"{v:.3g}"


def render_history_text(reader: LedgerReader,
                        limit: Optional[int] = None) -> str:
    """The digest overview table with one trend sparkline per digest."""
    lines = [f"run ledger: {reader.path} ({reader.count()} rows)", ""]
    header = (f"{'digest':<18} {'runs':>4}  {'source':<6} "
              f"{'workload':<10} {'core':<8} {'rate':>10}  trend")
    lines.append(header)
    lines.append("-" * len(header))
    shown = reader.digests()
    if limit is not None:
        shown = shown[:limit]
    for summary in shown:
        traj = trajectory(reader, summary["digest"])
        rate = traj["rates"][-1] if traj["rates"] else None
        lines.append(
            f"{summary['digest']:<18} {summary['runs']:>4}  "
            f"{(summary.get('source') or '-'):<6} "
            f"{(summary.get('workload') or '-'):<10} "
            f"{(summary.get('core_type') or '-'):<8} "
            f"{_fmt_rate(rate):>10}  "
            f"{sparkline(traj['rates'], width=20)}")
    return "\n".join(lines)


def render_trajectory_text(traj: Dict) -> str:
    """One digest's full row-by-row trajectory."""
    lines = [f"digest {traj['digest']}: {len(traj['rows'])} runs"]
    if traj["rates"]:
        lines.append(f"  host rate trend: "
                     f"{sparkline(traj['rates'], width=40)}  "
                     f"(last {_fmt_rate(traj['rates'][-1])}/s)")
    header = (f"  {'when (utc)':<20} {'source':<6} {'engine':<8} "
              f"{'cycles':>10} {'instr':>10} {'rate':>10} {'sha':<10}")
    lines.append(header)
    for r in traj["rows"]:
        lines.append(
            f"  {(r.get('created_utc') or '-'):<20} "
            f"{(r.get('source') or '-'):<6} "
            f"{(r.get('engine_key') or '-'):<8} "
            f"{(r['cycles'] if r.get('cycles') is not None else '-'):>10} "
            f"{(r['instructions'] if r.get('instructions') is not None else '-'):>10} "
            f"{_fmt_rate(r.get('host_rate')):>10} "
            f"{(r.get('git_sha') or '-'):<10}")
    return "\n".join(lines)


def render_compare_text(cmp: Dict) -> str:
    lines = [f"compare {cmp['digest_a']} (A) vs {cmp['digest_b']} (B)"]
    for side, found in (("A", cmp["found_a"]), ("B", cmp["found_b"])):
        if not found:
            lines.append(f"  digest {side} has no ledger rows")
    if not (cmp["found_a"] and cmp["found_b"]):
        return "\n".join(lines)

    def table(title, rows):
        if not rows:
            return
        lines.append(f"  {title}:")
        for row in rows:
            rel = (f"{row['rel']:+.1%}" if row["rel"] is not None else "")
            lines.append(f"    {row['name']:<40} {row['a']!s:>12} -> "
                         f"{row['b']!s:>12}  {rel}")

    table("scalars", cmp["scalars"])
    changed = [r for r in cmp["counters"] if r["delta"]]
    table(f"counters ({len(changed)} differ)", changed)
    if not changed:
        lines.append("  counters: identical")
    return "\n".join(lines)


def render_check_text(check: Dict) -> str:
    lines = [f"history check: {check['checked']} digest(s) graded, "
             f"worst severity: {check['worst']}"]
    for f in check["findings"]:
        if f["kind"] == "determinism":
            lines.append(
                f"  [regression] determinism: digest {f['digest']} "
                f"(engine {f['engine_key']}, schema "
                f"v{f['schema_version']}) recorded differing cycle "
                f"counts {f['cycles_seen']}")
            continue
        delta = (f"{f['delta']:+.1%}" if f.get("delta") is not None
                 else "n/a")
        label = " ".join(str(p) for p in
                         (f.get("workload"), f.get("core_type")) if p)
        lines.append(
            f"  [{f['severity']}] {f['digest']} {label}: rate "
            f"{_fmt_rate(f['current'])}/s vs median-of-{f['window']} "
            f"{_fmt_rate(f['baseline'])}/s ({delta})")
    return "\n".join(lines)
