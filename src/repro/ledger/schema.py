"""Ledger schema: the append-only ``runs`` table and its cache key.

One SQLite file holds every completed run this machine has ever recorded
— sweeps, figure drivers, fuzz arms, benchmark rates — one row per run,
never updated, never deleted.  Append-only is the point: the row sequence
*is* the time axis that ``repro history`` folds into trajectories, and a
cache hit must be able to trust that the row it read yesterday still says
the same thing today.

Cache-keying rules (enforced by :class:`~repro.ledger.store.LedgerReader`
lookups, documented in docs/observability.md §9):

* ``digest`` — :func:`repro.system.manifest.config_key` of the RunConfig:
  the digest names the *simulated machine*, so it is the primary key of
  "have we computed this before".  Non-RunConfig rows (fuzz arms, bench
  rates) use a namespaced synthetic digest (``fuzz:...``, ``bench:...``)
  so they share the time axis without colliding with sweep rows.
* ``engine_key`` — the host-side step engine (``default`` | ``compiled``
  | ``interpreted``).  Engines are byte-identical by construction and
  therefore *excluded* from manifest digests, but the cache is
  deliberately conservative: a row recorded under one engine never
  serves a request for another (it counts as ``ledger.stale`` instead),
  so an engine-equivalence bug can never hide behind the cache.
* ``schema_version`` — bumping :data:`SCHEMA_VERSION` invalidates every
  prior row for cache purposes (they remain readable history).
* ``checked`` — whether the recorded run passed the functional check; a
  ``check=True`` request is never served from an unchecked row.

Everything host-dependent (rates, wall-clock, git sha, timestamp) rides
*outside* the key columns, mirroring how ``RunManifest`` keeps
``host_profiles`` outside the reproducibility digest.
"""

from __future__ import annotations

#: bump when the row semantics change in a way that must invalidate the
#: result cache (e.g. RunResult gains digest-relevant fields)
SCHEMA_VERSION = 1

#: default ledger filename (created next to the sweep dir or cwd)
LEDGER_NAME = "ledger.sqlite"

#: environment variable overriding the default ledger path
LEDGER_ENV = "REPRO_LEDGER"

#: executed on every connection; IF NOT EXISTS keeps it idempotent under
#: concurrent first-openers (WAL + busy_timeout serialize the DDL)
DDL = """
CREATE TABLE IF NOT EXISTS runs (
    id              INTEGER PRIMARY KEY AUTOINCREMENT,
    digest          TEXT    NOT NULL,
    engine_key      TEXT    NOT NULL DEFAULT 'default',
    schema_version  INTEGER NOT NULL,
    source          TEXT    NOT NULL,
    checked         INTEGER NOT NULL DEFAULT 0,
    workload        TEXT,
    core_type       TEXT,
    policy          TEXT,
    n_threads       INTEGER,
    n_cores         INTEGER,
    context_fraction REAL,
    seed            INTEGER,
    config_json     TEXT,
    cycles          INTEGER,
    instructions    INTEGER,
    ipc             REAL,
    rf_hit_rate     REAL,
    counters_json   TEXT,
    host_json       TEXT,
    host_rate       REAL,
    wall_s          REAL,
    result_blob     BLOB,
    repro_version   TEXT,
    git_sha         TEXT,
    created_utc     TEXT
);
CREATE INDEX IF NOT EXISTS idx_runs_cache
    ON runs (digest, engine_key, schema_version);
CREATE INDEX IF NOT EXISTS idx_runs_digest ON runs (digest);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT
);
"""

#: columns returned by LedgerReader queries, in stable order
ROW_COLUMNS = (
    "id", "digest", "engine_key", "schema_version", "source", "checked",
    "workload", "core_type", "policy", "n_threads", "n_cores",
    "context_fraction", "seed", "config_json", "cycles", "instructions",
    "ipc", "rf_hit_rate", "counters_json", "host_json", "host_rate",
    "wall_s", "repro_version", "git_sha", "created_utc",
)
