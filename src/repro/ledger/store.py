"""The run ledger's single point of SQLite access.

Every reader and writer in the tree goes through :class:`Recorder` (the
append-only write API) or :class:`LedgerReader` (the query API) — lint
rule VRC011 makes a raw ``sqlite3.connect`` outside this package an
error, so the WAL/busy-timeout discipline and the append-only contract
cannot be bypassed by accident.

Concurrency model: connections open in WAL mode with a generous busy
timeout, so many processes may append simultaneously (WAL writers queue;
readers never block writers).  Writers only ever ``INSERT`` — there is no
UPDATE/DELETE path at all — which is what makes the ``--jobs N``
concurrent-sweep guarantee (no lost, no duplicated rows) a property of
SQLite's journal rather than of our locking code.

Host-side provenance (wall-clock timestamps, git sha) is read here and
*only* here lands in ledger rows; none of it ever reaches simulated state
or reproducibility digests (the ``ledger`` tree is on the linter's
wall-clock allowlist for exactly this reason, like telemetry).
"""

from __future__ import annotations

import copy
import json
import os
import pickle
import sqlite3
import subprocess
from datetime import datetime, timezone
from typing import Dict, List, Optional

from .. import __version__
from .schema import DDL, LEDGER_ENV, LEDGER_NAME, ROW_COLUMNS, SCHEMA_VERSION

__all__ = ["LedgerReader", "Recorder", "default_ledger_path",
           "engine_key_of", "open_recorder"]

_GIT_SHA: Optional[str] = None


def default_ledger_path(root: Optional[str] = None) -> str:
    """The ledger path for a sweep dir (or cwd), honoring ``REPRO_LEDGER``."""
    env = os.environ.get(LEDGER_ENV, "").strip()
    if env:
        return env
    return os.path.join(root, LEDGER_NAME) if root else LEDGER_NAME


def engine_key_of(cfg) -> str:
    """The cache's engine column for one RunConfig (None -> 'default')."""
    return getattr(cfg, "engine", None) or "default"


def git_sha() -> str:
    """Best-effort short sha of the working tree ('' outside a repo)."""
    global _GIT_SHA
    if _GIT_SHA is None:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=5)
            _GIT_SHA = out.stdout.strip() if out.returncode == 0 else ""
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA = ""
    return _GIT_SHA


def utc_now_iso() -> str:
    """ISO-8601 UTC timestamp (provenance only; never enters digests)."""
    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def _connect(path: str) -> sqlite3.Connection:
    """One WAL-mode, busy-tolerant connection with the schema ensured."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    conn = sqlite3.connect(path, timeout=30.0)
    # WAL lets concurrent sweep parents append without blocking readers;
    # some filesystems (network mounts) refuse it — fall back silently to
    # the default rollback journal, which is still correct, just slower
    try:
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
    except sqlite3.OperationalError:
        pass
    conn.execute("PRAGMA busy_timeout=30000")
    conn.executescript(DDL)
    conn.execute(
        "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
        ("schema_version", str(SCHEMA_VERSION)))
    conn.commit()
    return conn


def _nonzero_counters(stats) -> Dict[str, float]:
    """The 'selected Stats counters' a row stores: every non-zero flat key.

    Zero counters carry no longitudinal information and would bloat every
    row with the full taxonomy; dropping them keeps ``--compare`` deltas
    meaningful (a counter absent on one side deltas against 0).
    """
    if stats is None or not hasattr(stats, "flat"):
        return {}
    return {k: v for k, v in stats.flat() if v}


def _strip_copy(result):
    """A shallow copy of ``result`` with session handles stripped.

    ``strip_result`` mutates in place; recording must not disturb the
    caller's live telemetry/metrics handles, so the copy takes the hit.
    """
    from ..exec.workers import strip_result
    return strip_result(copy.copy(result))


class Recorder:
    """Append-only write API of the run ledger.

    One instance per writing process; safe to share a file with any
    number of concurrent Recorders (WAL).  Usable as a context manager.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._conn = _connect(path)

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "Recorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- write paths --------------------------------------------------------
    def record_result(self, result, *, source: str = "run",
                      checked: bool = True,
                      wall_s: Optional[float] = None) -> int:
        """Append one completed :class:`RunResult`; returns the row id.

        The stripped result is pickled into ``result_blob`` so a cache
        hit reproduces the run byte-identically (config, cycles,
        instructions, ipc, stats, rf_hit_rate — everything the manifest
        digests); the structured columns alongside exist for history
        queries that must not unpickle anything.
        """
        from ..system.manifest import config_key, config_payload

        cfg = result.config
        host = getattr(result, "host_profile", None) or {}
        stripped = _strip_copy(result)
        return self._insert(
            digest=config_key(cfg),
            engine_key=engine_key_of(cfg),
            source=source,
            checked=1 if checked else 0,
            workload=cfg.workload,
            core_type=cfg.core_type,
            policy=cfg.policy,
            n_threads=cfg.n_threads,
            n_cores=cfg.n_cores,
            context_fraction=cfg.context_fraction,
            seed=cfg.seed,
            config_json=json.dumps(config_payload(cfg), sort_keys=True,
                                   default=str),
            cycles=result.cycles,
            instructions=result.instructions,
            ipc=result.ipc,
            rf_hit_rate=result.rf_hit_rate,
            counters_json=json.dumps(_nonzero_counters(result.stats),
                                     sort_keys=True),
            host_json=json.dumps(host, sort_keys=True) if host else None,
            host_rate=host.get("instr_per_s"),
            wall_s=wall_s if wall_s is not None else host.get("total_s"),
            result_blob=pickle.dumps(stripped, protocol=4),
        )

    def record_row(self, digest: str, *, source: str,
                   engine_key: str = "default",
                   workload: Optional[str] = None,
                   core_type: Optional[str] = None,
                   policy: Optional[str] = None,
                   cycles: Optional[int] = None,
                   instructions: Optional[int] = None,
                   counters: Optional[Dict] = None,
                   host_rate: Optional[float] = None,
                   wall_s: Optional[float] = None,
                   config: Optional[Dict] = None) -> int:
        """Append one non-RunResult row (fuzz arm, bench rate, synthetic).

        ``digest`` should be namespaced (``fuzz:...``, ``bench:...``) so
        these rows share the history time axis without ever being
        mistaken for cacheable sweep results (no ``result_blob``).
        """
        return self._insert(
            digest=digest, engine_key=engine_key, source=source, checked=0,
            workload=workload, core_type=core_type, policy=policy,
            n_threads=None, n_cores=None, context_fraction=None, seed=None,
            config_json=(json.dumps(config, sort_keys=True, default=str)
                         if config else None),
            cycles=cycles, instructions=instructions, ipc=None,
            rf_hit_rate=None,
            counters_json=json.dumps(counters or {}, sort_keys=True),
            host_json=None, host_rate=host_rate, wall_s=wall_s,
            result_blob=None,
        )

    def _insert(self, **cols) -> int:
        cols.setdefault("schema_version", SCHEMA_VERSION)
        cols.setdefault("repro_version", __version__)
        cols.setdefault("git_sha", git_sha())
        cols.setdefault("created_utc", utc_now_iso())
        names = sorted(cols)
        sql = (f"INSERT INTO runs ({', '.join(names)}) "
               f"VALUES ({', '.join('?' for _ in names)})")
        cur = self._conn.execute(sql, [cols[n] for n in names])
        self._conn.commit()
        return int(cur.lastrowid)


def open_recorder(ledger, backend=None):
    """Resolve a sweep-layer ``ledger=`` argument into ``(recorder, owns)``.

    ``ledger`` may be a path (a Recorder is opened and owned by the
    caller, who must close it) or an existing :class:`Recorder` (borrowed).
    When ``backend`` is a :class:`~repro.ledger.cache.CachedBackend` this
    returns ``(None, False)`` regardless: the cache already records its
    own misses, and recording hits again would duplicate rows.
    """
    if ledger is None:
        return None, False
    from .cache import CachedBackend
    if isinstance(backend, CachedBackend):
        return None, False
    if hasattr(ledger, "record_result"):
        return ledger, False
    return Recorder(os.fspath(ledger)), True


class LedgerReader:
    """Query API of the run ledger (read-only; shares files with writers)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._conn = _connect(path)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "LedgerReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- cache lookups ------------------------------------------------------
    def lookup_result(self, digest: str, engine_key: str = "default",
                      require_checked: bool = True):
        """The newest cache-servable RunResult for a key, or None.

        Servable means: same digest, same engine key, current schema
        version, a stored blob, and (for ``require_checked``) a run that
        passed its functional check.  Unpickles and returns the stored
        :class:`~repro.system.simulator.RunResult`.
        """
        sql = ("SELECT result_blob FROM runs WHERE digest = ? AND "
               "engine_key = ? AND schema_version = ? AND "
               "result_blob IS NOT NULL")
        args: List = [digest, engine_key, SCHEMA_VERSION]
        if require_checked:
            sql += " AND checked = 1"
        sql += " ORDER BY id DESC LIMIT 1"
        row = self._conn.execute(sql, args).fetchone()
        if row is None:
            return None
        try:
            return pickle.loads(row[0])
        except (pickle.PickleError, AttributeError, ImportError,
                EOFError, TypeError):
            # a blob written by an incompatible tree: treat as a miss
            return None

    def has_digest(self, digest: str) -> bool:
        """Any row at all for this digest (used to grade stale vs miss)."""
        row = self._conn.execute(
            "SELECT 1 FROM runs WHERE digest = ? LIMIT 1",
            (digest,)).fetchone()
        return row is not None

    # -- history queries ----------------------------------------------------
    def runs(self, digest: Optional[str] = None,
             source: Optional[str] = None,
             limit: Optional[int] = None) -> List[Dict]:
        """Rows (oldest first) as plain dicts, blobs excluded."""
        sql = f"SELECT {', '.join(ROW_COLUMNS)} FROM runs"
        where, args = [], []
        if digest is not None:
            where.append("digest = ?")
            args.append(digest)
        if source is not None:
            where.append("source = ?")
            args.append(source)
        if where:
            sql += " WHERE " + " AND ".join(where)
        sql += " ORDER BY id DESC"
        if limit is not None:
            sql += " LIMIT ?"
            args.append(int(limit))
        rows = [dict(zip(ROW_COLUMNS, r))
                for r in self._conn.execute(sql, args)]
        rows.reverse()
        return rows

    def digests(self) -> List[Dict]:
        """Per-digest summary: run count, label columns, first/last seen."""
        sql = ("SELECT digest, COUNT(*), MAX(workload), MAX(core_type), "
               "MAX(source), MIN(created_utc), MAX(created_utc) "
               "FROM runs GROUP BY digest ORDER BY MAX(id) DESC")
        return [{"digest": d, "runs": n, "workload": w, "core_type": c,
                 "source": s, "first": first, "last": last}
                for d, n, w, c, s, first, last
                in self._conn.execute(sql)]

    def count(self) -> int:
        return int(self._conn.execute(
            "SELECT COUNT(*) FROM runs").fetchone()[0])


def counters_of(row: Dict) -> Dict[str, float]:
    """Parse one row's ``counters_json`` (tolerant of absent/garbled)."""
    raw = row.get("counters_json")
    if not raw:
        return {}
    try:
        data = json.loads(raw)
    except (json.JSONDecodeError, TypeError):
        return {}
    return data if isinstance(data, dict) else {}
