"""CachedBackend: digest-keyed result reuse over any exec backend.

A manifest digest fully determines a run's results (that is the whole
reproducibility contract), so a digest the ledger has already recorded
never needs to be simulated again.  ``CachedBackend`` wraps any
:class:`~repro.exec.ExecBackend` and intercepts the two sweep worker
functions it understands — ``grid_worker`` and ``sweep_worker`` — serving
hits straight from the ledger and delegating only the misses to the inner
backend, in input order, so the result list (and therefore the manifest
digest) is byte-identical to cold recomputation.

Every lookup is graded into exactly one of three counters, posted through
the shared metrics registry when one is bound:

* ``ledger.hit``   — a servable row existed; the run was not executed.
* ``ledger.miss``  — the ledger has never seen this digest.
* ``ledger.stale`` — the digest exists but no row is servable (different
  engine key, older schema version, unchecked row for a ``check=True``
  request, or an unreadable blob).  Stale is deliberately distinct from
  miss: a burst of stales after a schema bump is expected, a burst of
  stales on an unchanged tree is a cache-keying bug.

Fresh results computed on a miss are recorded back into the same ledger
(``source="cache"``), so the cache warms itself; hits are *not* re-recorded
— a served row carries no new host measurement and re-appending it would
fabricate flat segments in ``repro history`` trajectories.  Failures and
:class:`~repro.exec.WorkerCrash` sentinels are never cached.

An unrecognized worker function passes through to the inner backend
untouched, making the wrapper safe as a drop-in ``backend=`` anywhere.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..exec.backends import ExecBackend, SerialBackend
from ..exec.workers import _append_event, grid_worker, sweep_worker
from .store import LedgerReader, Recorder, engine_key_of

__all__ = ["CachedBackend"]


class CachedBackend(ExecBackend):
    """Serve digest-keyed ledger hits; run only the misses on ``inner``."""

    def __init__(self, path: str, inner: Optional[ExecBackend] = None,
                 metrics=None) -> None:
        self.path = path
        self.inner = inner if inner is not None else SerialBackend()
        self.metrics = metrics
        #: lookup grades for this backend's lifetime (always maintained,
        #: even with no metrics registry bound)
        self.counts: Dict[str, int] = {"hit": 0, "miss": 0, "stale": 0}
        self._reader = LedgerReader(path)
        self._recorder = Recorder(path)

    @property
    def jobs(self) -> int:  # type: ignore[override]
        return self.inner.jobs

    def close(self) -> None:
        self._reader.close()
        self._recorder.close()

    def bind_metrics(self, registry) -> None:
        """Adopt a fleet registry unless one was bound at construction."""
        if self.metrics is None:
            self.metrics = registry

    # -- lookup grading ------------------------------------------------------
    def _count(self, grade: str) -> None:
        self.counts[grade] += 1
        if self.metrics is not None:
            self.metrics.counter(
                f"ledger.{grade}",
                "cache lookup grades of CachedBackend").inc()

    def _lookup(self, digest: str, cfg, check: bool):
        """One graded lookup: the cached RunResult or None."""
        result = self._reader.lookup_result(
            digest, engine_key=engine_key_of(cfg), require_checked=check)
        if result is not None:
            self._count("hit")
            return result
        self._count("stale" if self._reader.has_digest(digest) else "miss")
        return None

    # -- the map interception ------------------------------------------------
    def map(self, fn: Callable, items: Sequence) -> List:
        items = list(items)
        if fn is grid_worker:
            return self._map_cached(fn, items, self._grid_probe,
                                    self._grid_hit, self._grid_fresh)
        if fn is sweep_worker:
            return self._map_cached(fn, items, self._sweep_probe,
                                    self._sweep_hit, self._sweep_fresh)
        return self.inner.map(fn, items)

    def _map_cached(self, fn, items, probe, make_hit, fresh_result) -> List:
        """Split items into hits and misses; inner-map only the misses.

        ``probe(item)`` -> (digest, cfg, check, obs); ``make_hit`` shapes
        a cached RunResult into the worker's output tuple; ``fresh_result``
        extracts the recordable RunResult from a fresh output (or None).
        """
        results: List = [None] * len(items)
        miss_positions: List[int] = []
        for pos, item in enumerate(items):
            digest, cfg, check, obs = probe(item)
            cached = self._lookup(digest, cfg, check)
            if cached is not None:
                if obs is not None:
                    _append_event(obs, "row_start", item[0], cached=True)
                    _append_event(obs, "row_ok", item[0], cached=True,
                                  cycles=cached.cycles)
                results[pos] = make_hit(cached, item)
            else:
                miss_positions.append(pos)
        if miss_positions:
            fresh = self.inner.map(fn, [items[p] for p in miss_positions])
            for pos, out in zip(miss_positions, fresh):
                results[pos] = out
                result = fresh_result(out)
                if result is not None:
                    _, _, check, _ = probe(items[pos])
                    self._recorder.record_result(result, source="cache",
                                                 checked=check)
        return results

    # -- grid_worker shapes --------------------------------------------------
    # task: (index, cfg, check, retries, timeout_s, max_cycles, key[, obs])
    # out:  (result, failure, exc[, spans])
    @staticmethod
    def _grid_probe(item):
        return item[6], item[1], item[2], (item[7] if len(item) > 7 else None)

    @staticmethod
    def _grid_hit(cached, item):
        if len(item) > 7:
            return (cached, None, None, [])
        return (cached, None, None)

    @staticmethod
    def _grid_fresh(out):
        if isinstance(out, tuple) and out[0] is not None and out[1] is None:
            return out[0]
        return None

    # -- sweep_worker shapes -------------------------------------------------
    # task: (index, cfg, check[, obs])
    # out:  ("ok", result[, spans]) | ("err", failure, exc[, spans])
    @staticmethod
    def _sweep_probe(item):
        from ..system.manifest import config_key
        return (config_key(item[1]), item[1], item[2],
                (item[3] if len(item) > 3 else None))

    @staticmethod
    def _sweep_hit(cached, item):
        if len(item) > 3:
            return ("ok", cached, [])
        return ("ok", cached)

    @staticmethod
    def _sweep_fresh(out):
        if isinstance(out, tuple) and out and out[0] == "ok":
            return out[1]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CachedBackend path={self.path!r} inner={self.inner!r} "
                f"counts={self.counts}>")
