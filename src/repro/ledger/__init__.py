"""Run ledger: the persistent, digest-keyed record of every completed run.

Three layers, one SQLite file (see docs/observability.md §9):

* :mod:`~repro.ledger.store` — :class:`Recorder` (append-only writes from
  ``run_grid``/``sweep``/fuzz/bench) and :class:`LedgerReader` (queries).
* :mod:`~repro.ledger.cache` — :class:`CachedBackend`, serving digest-keyed
  hits with recomputation-byte-identical results over any exec backend.
* :mod:`~repro.ledger.history` — trajectories, per-counter compares, and
  the median-of-last-N ``repro history --check`` regression gate.

All SQLite access in the tree lives inside this package (lint rule
VRC011); everything else goes through the two classes above.
"""

from .cache import CachedBackend
from .history import check_history, compare_digests, history_series, trajectory
from .schema import LEDGER_ENV, LEDGER_NAME, SCHEMA_VERSION
from .store import LedgerReader, Recorder, default_ledger_path, engine_key_of

__all__ = [
    "CachedBackend",
    "LEDGER_ENV",
    "LEDGER_NAME",
    "LedgerReader",
    "Recorder",
    "SCHEMA_VERSION",
    "check_history",
    "compare_digests",
    "default_ledger_path",
    "engine_key_of",
    "history_series",
    "trajectory",
]
