"""``repro lint``: an AST-based determinism/correctness linter.

Generic linters do not know that this package is a cycle-accurate
simulator whose results must be bit-reproducible from ``RunConfig.seed``
alone.  The rules here encode exactly that contract:

=======  ========  =====================================================
ID       severity  what it catches
=======  ========  =====================================================
VRC001   error     unseeded randomness (``random.Random()`` with no
                   seed, global ``random.*`` draws, legacy
                   ``numpy.random.*`` global-state draws, bare
                   ``default_rng()``) — any of these makes cycle counts
                   depend on interpreter state instead of the config
VRC002   error     wall-clock reads (``time.time``/``perf_counter``/
                   ``monotonic``, ``datetime.now``) outside the
                   telemetry/profiler modules — host timing must never
                   reach simulated state or digests
VRC003   warning   iteration over a ``set``/``frozenset`` expression
                   (including through ``list()``/``tuple()`` wrappers)
                   — set order is salted per process, so any
                   order-sensitive consumer silently loses determinism;
                   wrap the iterable in ``sorted(...)``
VRC004   error     bare ``assert`` guarding simulation invariants in
                   library code — stripped under ``python -O``; raise a
                   typed exception from :mod:`repro.errors` instead
VRC005   error     mutable default argument (``def f(x=[])``) — shared
                   across calls, a classic state-leak between runs
VRC006   warning   direct ``print()`` in library hot paths — library
                   output must go through the reporting/monitor layers
                   (or a logger) so sweeps and parsers see structured
                   data, not stray stdout; the CLI, experiment drivers,
                   and reporting modules are exempt
VRC007   warning   ``except Exception:`` / bare ``except:`` in library
                   code that does not re-raise — a handler that broad
                   swallows the :mod:`repro.errors` taxonomy
                   (SimulationError and friends), silently converting
                   failures the sweep/fuzz drivers must see into wrong
                   results; catch specific types or re-raise
VRC008   warning   ``stats.inc("key")`` / ``.set`` / ``.max`` with a
                   literal counter key missing from the central
                   registry (:data:`repro.stats.names.COUNTER_NAMES`)
                   — counter keys are stringly typed, so a typo
                   silently splits one counter into two and downstream
                   taxonomy sums stop adding up
VRC009   warning   direct construction of a ``ReplacementPolicy``
                   subclass in library code — policies must be built
                   through the ``from_spec``/``make_policy`` registry
                   (:data:`repro.virec.policies.POLICIES`) so config
                   strings, sweeps, and the Fig 12 study stay the
                   single source of the policy axis
VRC010   error     a closure factory capturing an InstrumentBus slot
                   value (``faults = core.bus.faults`` in the enclosing
                   scope, then referenced from a nested function) — bus
                   slots rebind at attach/detach time while compiled
                   step closures live for the whole run, so a captured
                   slot goes silently stale; closures must read
                   ``core.bus.<slot>`` per call (the threaded-code
                   engine contract, see :mod:`repro.isa.compiled`)
VRC011   error     raw ``sqlite3.connect`` outside :mod:`repro.ledger`
                   — every ledger access must go through the
                   ``Recorder``/``LedgerReader`` API so the WAL mode,
                   busy timeout, schema DDL, and append-only discipline
                   are applied on every handle; a stray connection that
                   skips them can corrupt multiprocess sweeps
=======  ========  =====================================================

Suppression: append ``# lint: ignore[VRC00N]`` (or the conventional
``# noqa: VRC00N``) to the flagged line.  A bare ``# noqa`` suppresses
every rule on that line.  Suppressed findings are counted but do not
affect the exit code.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..stats.names import COUNTER_NAMES

#: severity names, weakest first; ``--fail-on`` compares by this order
SEVERITIES = ("info", "warning", "error")


def severity_rank(name: str) -> int:
    return SEVERITIES.index(name)


@dataclass(frozen=True)
class Severity:
    """Severity constants (kept as plain strings in findings)."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class LintRule:
    id: str
    name: str
    severity: str
    rationale: str


RULES: Tuple[LintRule, ...] = (
    LintRule("VRC001", "unseeded-random", "error",
             "unseeded randomness breaks run-to-run reproducibility; "
             "construct a seeded Random/Generator from the config seed"),
    LintRule("VRC002", "wall-clock-read", "error",
             "wall-clock time on a simulation path leaks host timing into "
             "results; only telemetry/profiling may read it"),
    LintRule("VRC003", "set-iteration-order", "warning",
             "set iteration order is salted per process; wrap in sorted() "
             "when order can reach cycle counts, digests, or output"),
    LintRule("VRC004", "bare-assert", "error",
             "assert statements vanish under python -O; simulation "
             "invariants must raise typed repro.errors exceptions"),
    LintRule("VRC005", "mutable-default-arg", "error",
             "mutable default arguments are shared across calls and leak "
             "state between runs"),
    LintRule("VRC006", "print-in-library", "warning",
             "direct print() in library code bypasses the reporting/"
             "monitor layers and pollutes machine-readable output; route "
             "through repro.stats.reporting or the CLI"),
    LintRule("VRC007", "broad-except-swallow", "warning",
             "an except clause broad enough to catch SimulationError "
             "hides simulator failures from the resilient drivers; catch "
             "specific exception types or re-raise"),
    LintRule("VRC008", "unregistered-counter-key", "warning",
             "a literal Stats counter key must come from "
             "repro.stats.names.COUNTER_NAMES; a typo silently splits "
             "one counter into two"),
    LintRule("VRC009", "ad-hoc-policy-construction", "warning",
             "ReplacementPolicy subclasses must be constructed through "
             "the from_spec/make_policy registry, not instantiated "
             "directly in library code"),
    LintRule("VRC010", "closure-captures-bus-slot", "error",
             "a nested function capturing an InstrumentBus slot value "
             "goes stale when the slot rebinds; read core.bus.<slot> "
             "per call inside the closure"),
    LintRule("VRC011", "raw-sqlite-connect", "error",
             "sqlite3.connect outside repro.ledger bypasses the "
             "Recorder/LedgerReader API and its WAL/busy-timeout/schema "
             "setup; go through the ledger store"),
)

RULES_BY_ID: Dict[str, LintRule] = {r.id: r for r in RULES}

#: modules allowed to read the wall clock (VRC002): any file whose path
#: contains one of these directory names, or matches one of these stems
#: (``ledger`` records host-side provenance timestamps — like telemetry,
#: its readings never reach simulated state or digests)
_WALLCLOCK_ALLOWED_DIRS = ("telemetry", "ledger", "tests", "benchmarks")
#: ``spans``/``monitor`` time the *host-side fleet* (worker phases, sweep
#: heartbeats) — like the profiler, their readings never reach simulated
#: state or digests
_WALLCLOCK_ALLOWED_STEMS = ("profiler", "conftest", "spans", "monitor")

#: files allowed to print() directly (VRC006): user-facing surfaces
#: (the CLI, experiment drivers, reporting/plot helpers) and non-library
#: trees; everything else must return data or go through reporting
_PRINT_ALLOWED_DIRS = ("experiments", "tests", "benchmarks", "examples",
                       "scripts", "docs")
_PRINT_ALLOWED_STEMS = ("cli", "reporting", "plotting", "monitor")

#: trees exempt from the broad-except rule (VRC007): non-library code may
#: catch-all at its own risk; library code must let the repro.errors
#: taxonomy propagate to the resilient drivers (or suppress explicitly
#: with ``# noqa: VRC007`` where swallowing is the contract)
_BROAD_EXCEPT_ALLOWED_DIRS = ("experiments", "tests", "benchmarks",
                              "examples", "scripts", "docs")

#: trees exempt from the counter-key registry rule (VRC008): tests and
#: ad-hoc scripts may invent scratch counters; library code must register
#: names in :mod:`repro.stats.names` (or suppress with ``# noqa: VRC008``)
_COUNTER_KEY_ALLOWED_DIRS = ("tests", "benchmarks", "examples", "scripts",
                             "docs")

#: trees exempt from the policy-registry rule (VRC009); the registry
#: module itself (``policies.py``) is where the classes legitimately
#: construct each other (``super().__init__`` chains, ``from_spec``)
_POLICY_CTOR_ALLOWED_DIRS = ("tests", "benchmarks", "examples", "scripts",
                             "docs")
_POLICY_CTOR_ALLOWED_STEMS = ("policies",)

#: lazily-resolved class names of every registered ReplacementPolicy
#: (import deferred: repro.virec imports repro.analysis at package level)
_POLICY_CLASS_NAMES: Optional[frozenset] = None


def _policy_class_names() -> frozenset:
    global _POLICY_CLASS_NAMES
    if _POLICY_CLASS_NAMES is None:
        from ..virec.policies import POLICIES
        _POLICY_CLASS_NAMES = (
            frozenset(cls.__name__ for cls in POLICIES.values())
            | {"ReplacementPolicy"})
    return _POLICY_CLASS_NAMES

#: trees exempt from the bus-slot-capture rule (VRC010); tests may freeze
#: a slot deliberately (e.g. to assert staleness semantics)
_BUS_CAPTURE_ALLOWED_DIRS = ("tests", "benchmarks", "examples", "scripts",
                             "docs")

#: trees allowed to call ``sqlite3.connect`` directly (VRC011): the ledger
#: package owns the one sanctioned connection helper; tests and scripts may
#: open throwaway databases for fixtures and inspection
_SQLITE_ALLOWED_DIRS = ("ledger", "tests", "benchmarks", "examples",
                        "scripts", "docs")

#: InstrumentBus slot names (VRC010) — attach/detach rebinds these on a
#: live core, so their *values* must never be closed over by long-lived
#: step closures (kept in sync with repro.core.instrument.DISPATCH_ORDER,
#: which cannot be imported here without a package cycle)
_BUS_SLOT_NAMES = frozenset({"faults", "telemetry", "metrics", "profile",
                             "sanitizer", "tracer"})

#: Stats mutators whose first argument is a counter key (VRC008)
_COUNTER_KEY_METHODS = frozenset({"inc", "set", "max"})

#: exception names broad enough to swallow SimulationError (VRC007)
_BROAD_EXCEPTION_NAMES = frozenset({
    "Exception", "BaseException",
    "builtins.Exception", "builtins.BaseException"})

_WALLCLOCK_TIME_FNS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns"})
_WALLCLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

#: global-state draws on the ``random`` module (VRC001)
_RANDOM_GLOBAL_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "getrandbits",
    "randbytes", "betavariate", "expovariate", "seed"})
#: legacy global-state draws on ``numpy.random`` (VRC001)
_NUMPY_GLOBAL_FNS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "uniform", "normal", "seed", "bytes"})

_MUTABLE_FACTORIES = frozenset({"list", "dict", "set"})

_SUPPRESS_RE = re.compile(
    r"#\s*(?:noqa|lint:\s*ignore)"      # '# noqa' or '# lint: ignore'
    r"(?:\s*[:\[]\s*(?P<codes>[A-Z0-9,\s]+?)\s*\]?)?\s*(?:#|$)")


@dataclass
class Finding:
    rule: LintRule
    path: str
    line: int
    col: int
    message: str
    suppressed: bool = False

    @property
    def severity(self) -> str:
        return self.rule.severity

    def as_dict(self) -> Dict[str, object]:
        return {"rule": self.rule.id, "name": self.rule.name,
                "severity": self.rule.severity, "path": self.path,
                "line": self.line, "col": self.col,
                "message": self.message, "suppressed": self.suppressed}

    def render(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule.id} [{self.rule.severity}] {self.message}{tag}")


def _suppressed_codes(line_text: str) -> Optional[frozenset]:
    """Codes suppressed on this line, empty frozenset = suppress all,
    None = no suppression comment."""
    m = _SUPPRESS_RE.search(line_text)
    if m is None:
        return None
    codes = m.group("codes")
    if not codes:
        return frozenset()
    return frozenset(c.strip() for c in codes.split(",") if c.strip())


def _dotted(node: ast.AST) -> Optional[str]:
    """'a.b.c' for an attribute chain rooted at a Name, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Visitor(ast.NodeVisitor):
    """Single-pass visitor running every enabled rule."""

    def __init__(self, path: str, select: frozenset) -> None:
        self.path = path
        self.select = select
        self.findings: List[Finding] = []
        self._wallclock_exempt = self._is_wallclock_exempt(path)
        self._print_exempt = self._is_print_exempt(path)
        self._broad_except_exempt = self._is_broad_except_exempt(path)
        self._counter_key_exempt = self._is_counter_key_exempt(path)
        self._policy_ctor_exempt = self._is_policy_ctor_exempt(path)
        self._bus_capture_exempt = self._is_bus_capture_exempt(path)
        self._sqlite_exempt = self._is_sqlite_exempt(path)

    @staticmethod
    def _is_wallclock_exempt(path: str) -> bool:
        p = Path(path)
        if any(part in _WALLCLOCK_ALLOWED_DIRS for part in p.parts):
            return True
        return p.stem in _WALLCLOCK_ALLOWED_STEMS

    @staticmethod
    def _is_print_exempt(path: str) -> bool:
        p = Path(path)
        if any(part in _PRINT_ALLOWED_DIRS for part in p.parts):
            return True
        return p.stem in _PRINT_ALLOWED_STEMS

    @staticmethod
    def _is_broad_except_exempt(path: str) -> bool:
        return any(part in _BROAD_EXCEPT_ALLOWED_DIRS
                   for part in Path(path).parts)

    @staticmethod
    def _is_counter_key_exempt(path: str) -> bool:
        return any(part in _COUNTER_KEY_ALLOWED_DIRS
                   for part in Path(path).parts)

    @staticmethod
    def _is_policy_ctor_exempt(path: str) -> bool:
        p = Path(path)
        if any(part in _POLICY_CTOR_ALLOWED_DIRS for part in p.parts):
            return True
        return p.stem in _POLICY_CTOR_ALLOWED_STEMS

    @staticmethod
    def _is_bus_capture_exempt(path: str) -> bool:
        return any(part in _BUS_CAPTURE_ALLOWED_DIRS
                   for part in Path(path).parts)

    @staticmethod
    def _is_sqlite_exempt(path: str) -> bool:
        return any(part in _SQLITE_ALLOWED_DIRS
                   for part in Path(path).parts)

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        if rule_id not in self.select:
            return
        self.findings.append(Finding(
            RULES_BY_ID[rule_id], self.path,
            getattr(node, "lineno", 0), getattr(node, "col_offset", 0) + 1,
            message))

    # -- VRC001 / VRC002 / VRC006 / VRC008: call-pattern rules --------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            self._check_random(node, dotted)
            self._check_wallclock(node, dotted)
            self._check_sqlite(node, dotted)
        self._check_print(node)
        self._check_counter_key(node)
        self._check_policy_ctor(node)
        self.generic_visit(node)

    # -- VRC009: policies constructed outside the from_spec registry ---------
    def _check_policy_ctor(self, node: ast.Call) -> None:
        if self._policy_ctor_exempt:
            return
        func = node.func
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        else:
            return
        if name in _policy_class_names():
            self._emit("VRC009", node,
                       f"{name}(...) constructed directly; use "
                       f"make_policy/ReplacementPolicy.from_spec so the "
                       f"policy axis stays registry-driven")

    # -- VRC008: counter keys off the central registry -----------------------
    @classmethod
    def _stats_receiver(cls, node: ast.AST) -> bool:
        """Does ``node`` syntactically look like a Stats tree?

        Matches dotted names whose last segment is ``stats``-like
        (``self.stats``, ``core.stats``, ``node_stats``) and ``child(...)``
        chains rooted at one (``self.stats.child("x")``).
        """
        dotted = _dotted(node)
        if dotted is not None:
            leaf = dotted.rpartition(".")[2].lstrip("_")
            return leaf == "stats" or leaf.endswith("_stats")
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "child"):
            return cls._stats_receiver(node.func.value)
        return False

    def _check_counter_key(self, node: ast.Call) -> None:
        if self._counter_key_exempt:
            return
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _COUNTER_KEY_METHODS
                and self._stats_receiver(func.value)):
            return
        if not node.args:
            return
        key = node.args[0]
        if isinstance(key, ast.Constant) and isinstance(key.value, str) \
                and key.value not in COUNTER_NAMES:
            self._emit("VRC008", node,
                       f"counter key {key.value!r} is not in "
                       f"repro.stats.names.COUNTER_NAMES; register it "
                       f"there (or suppress a deliberate scratch counter)")

    def _check_print(self, node: ast.Call) -> None:
        if self._print_exempt:
            return
        if isinstance(node.func, ast.Name) and node.func.id == "print":
            self._emit("VRC006", node,
                       "direct print() call in library code; return data or "
                       "route through repro.stats.reporting")

    def _check_random(self, node: ast.Call, dotted: str) -> None:
        base, _, attr = dotted.rpartition(".")
        if dotted == "random.Random" and not node.args and not node.keywords:
            self._emit("VRC001", node,
                       "random.Random() without a seed; pass the run seed")
        elif base == "random" and attr in _RANDOM_GLOBAL_FNS:
            self._emit("VRC001", node,
                       f"random.{attr}() uses the unseeded global PRNG; use "
                       f"a Random(seed) instance")
        elif (base in ("np.random", "numpy.random")
              and attr in _NUMPY_GLOBAL_FNS):
            self._emit("VRC001", node,
                       f"{dotted}() uses numpy's global RNG state; use "
                       f"default_rng(seed)")
        elif (attr == "default_rng"
              and (not base or base.endswith("random"))
              and not node.args and not node.keywords):
            self._emit("VRC001", node,
                       "default_rng() without a seed draws OS entropy; pass "
                       "the run seed")

    # -- VRC011: ledger access bypassing the Recorder/LedgerReader API -------
    def _check_sqlite(self, node: ast.Call, dotted: str) -> None:
        if self._sqlite_exempt:
            return
        base, _, attr = dotted.rpartition(".")
        if attr == "connect" and base.split(".")[-1] == "sqlite3":
            self._emit("VRC011", node,
                       "raw sqlite3.connect outside repro.ledger skips the "
                       "WAL/busy-timeout/schema setup; use the ledger "
                       "Recorder/LedgerReader API")

    def _check_wallclock(self, node: ast.Call, dotted: str) -> None:
        if self._wallclock_exempt:
            return
        base, _, attr = dotted.rpartition(".")
        if base == "time" and attr in _WALLCLOCK_TIME_FNS:
            self._emit("VRC002", node,
                       f"time.{attr}() reads the wall clock outside "
                       f"telemetry/profiler code")
        elif (attr in _WALLCLOCK_DATETIME_FNS
              and base.split(".")[-1] == "datetime"):
            self._emit("VRC002", node,
                       f"{dotted}() reads the wall clock outside "
                       f"telemetry/profiler code")

    # -- VRC003: set-ordered iteration --------------------------------------
    def _set_valued(self, node: ast.AST) -> Optional[str]:
        """Describe ``node`` if it syntactically evaluates to a set."""
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return f"{node.func.id}(...)"
            # list(set(x)) / tuple(set(x)) preserve the salted order
            if node.func.id in ("list", "tuple", "reversed", "iter") \
                    and len(node.args) == 1:
                inner = self._set_valued(node.args[0])
                if inner is not None:
                    return f"{node.func.id}({inner})"
        return None

    def _check_set_iter(self, iter_node: ast.AST, where: ast.AST) -> None:
        desc = self._set_valued(iter_node)
        if desc is not None:
            self._emit("VRC003", where,
                       f"iterating {desc}: set order is salted per process; "
                       f"wrap in sorted(...) if order matters")

    def visit_For(self, node: ast.For) -> None:
        self._check_set_iter(node.iter, node)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_set_iter(node.iter, node)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        for gen in node.generators:
            self._check_set_iter(gen.iter, gen.iter)
        self.generic_visit(node)

    visit_ListComp = visit_SetComp = visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp

    # -- VRC004: bare assert -------------------------------------------------
    def visit_Assert(self, node: ast.Assert) -> None:
        self._emit("VRC004", node,
                   "bare assert is stripped under python -O; raise a typed "
                   "exception from repro.errors")
        self.generic_visit(node)

    # -- VRC007: broad except swallowing the failure taxonomy ----------------
    @staticmethod
    def _broad_caught(type_node: ast.AST) -> List[str]:
        """Caught-type names broad enough to hide SimulationError."""
        nodes = type_node.elts if isinstance(type_node, ast.Tuple) \
            else [type_node]
        broad: List[str] = []
        for n in nodes:
            name = _dotted(n)
            if name in _BROAD_EXCEPTION_NAMES:
                broad.append(name.rpartition(".")[2])
        return broad

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if not self._broad_except_exempt:
            # a handler that re-raises (even conditionally) propagates the
            # failure; only fully-swallowing handlers are flagged
            reraises = any(isinstance(sub, ast.Raise)
                           for stmt in node.body for sub in ast.walk(stmt))
            if not reraises:
                if node.type is None:
                    self._emit("VRC007", node,
                               "bare except: swallows every exception, "
                               "including the repro.errors taxonomy; catch "
                               "specific types or re-raise")
                else:
                    for name in self._broad_caught(node.type):
                        self._emit("VRC007", node,
                                   f"except {name}: swallows SimulationError "
                                   f"and hides simulator failures; catch "
                                   f"specific types or re-raise")
        self.generic_visit(node)

    # -- VRC005: mutable default arguments ----------------------------------
    def _check_defaults(self, node) -> None:
        a = node.args
        for default in list(a.defaults) + [d for d in a.kw_defaults if d]:
            bad = None
            if isinstance(default, (ast.List, ast.Dict, ast.Set,
                                    ast.ListComp, ast.DictComp, ast.SetComp)):
                bad = "a mutable literal"
            elif (isinstance(default, ast.Call)
                  and isinstance(default.func, ast.Name)
                  and default.func.id in _MUTABLE_FACTORIES):
                bad = f"{default.func.id}()"
            if bad is not None:
                self._emit("VRC005", default,
                           f"mutable default argument ({bad}) is shared "
                           f"across calls; default to None")

    # -- VRC010: closure factories freezing InstrumentBus slot values --------
    @staticmethod
    def _bus_slot_alias(value: ast.AST) -> Optional[str]:
        """Slot name if ``value`` reads an InstrumentBus slot off a bus
        attribute chain (``core.bus.faults``, ``self.bus.profile``)."""
        dotted = _dotted(value)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if (len(parts) >= 2 and parts[-1] in _BUS_SLOT_NAMES
                and any(p == "bus" or p.endswith("_bus")
                        for p in parts[:-1])):
            return parts[-1]
        return None

    @staticmethod
    def _scope_nodes(body) -> Tuple[List[ast.AST], List[ast.AST]]:
        """(own-scope nodes, nested function/lambda nodes) of one body."""
        own: List[ast.AST] = []
        nested: List[ast.AST] = []
        stack: List[ast.AST] = list(body)
        while stack:
            n = stack.pop()
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Lambda)):
                nested.append(n)
                continue
            own.append(n)
            stack.extend(ast.iter_child_nodes(n))
        return own, nested

    def _check_bus_captures(self, node) -> None:
        if self._bus_capture_exempt:
            return
        own, nested = self._scope_nodes(node.body)
        aliases: Dict[str, str] = {}
        for n in own:
            if isinstance(n, (ast.Assign, ast.AnnAssign)) \
                    and n.value is not None:
                slot = self._bus_slot_alias(n.value)
                if slot is None:
                    continue
                targets = n.targets if isinstance(n, ast.Assign) \
                    else [n.target]
                for tgt in targets:
                    if isinstance(tgt, ast.Name):
                        aliases[tgt.id] = slot
        if not aliases:
            return
        for fn in nested:
            args = fn.args
            bound = {a.arg for a in (args.posonlyargs + args.args
                                     + args.kwonlyargs)}
            bound.update(a.arg for a in (args.vararg, args.kwarg) if a)
            body = fn.body if isinstance(fn.body, list) else [fn.body]
            for sub in body:
                for n in ast.walk(sub):
                    if isinstance(n, ast.Name) \
                            and isinstance(n.ctx, (ast.Store, ast.Del)):
                        bound.add(n.id)
            for sub in body:
                for n in ast.walk(sub):
                    if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load) \
                            and n.id in aliases and n.id not in bound:
                        self._emit("VRC010", n,
                                   f"closure captures bus slot value "
                                   f"{n.id!r} (= ...bus.{aliases[n.id]}); "
                                   f"slots rebind at attach/detach — read "
                                   f"core.bus.{aliases[n.id]} per call "
                                   f"inside the closure")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._check_bus_captures(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._check_bus_captures(node)
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>",
                select: Optional[Iterable[str]] = None,
                ignore: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint one module's source text; returns findings including
    suppressed ones (marked ``suppressed=True``)."""
    enabled = frozenset(select) if select else frozenset(RULES_BY_ID)
    if ignore:
        enabled = enabled - frozenset(ignore)
    unknown = enabled - frozenset(RULES_BY_ID)
    if unknown:
        raise ValueError(f"unknown lint rule ids: {sorted(unknown)}")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(LintRule("VRC000", "syntax-error", "error",
                                 "file must parse"),
                        path, exc.lineno or 0, (exc.offset or 0),
                        f"syntax error: {exc.msg}")]
    visitor = _Visitor(path, enabled)
    visitor.visit(tree)
    lines = source.splitlines()
    for f in visitor.findings:
        text = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
        codes = _suppressed_codes(text)
        if codes is not None and (not codes or f.rule.id in codes):
            f.suppressed = True
    return visitor.findings


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py":
            files.append(p)
    return files


def lint_paths(paths: Sequence[str],
               select: Optional[Iterable[str]] = None,
               ignore: Optional[Iterable[str]] = None) -> List[Finding]:
    """Lint every ``*.py`` under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    for file in iter_python_files(paths):
        findings.extend(lint_source(
            file.read_text(encoding="utf-8"), str(file),
            select=select, ignore=ignore))
    return findings


# -- output -----------------------------------------------------------------
def _summary(findings: List[Finding]) -> Dict[str, int]:
    active = [f for f in findings if not f.suppressed]
    out = {"total": len(active),
           "suppressed": sum(1 for f in findings if f.suppressed)}
    for sev in SEVERITIES:
        out[sev] = sum(1 for f in active if f.severity == sev)
    return out


def render_text(findings: List[Finding], show_suppressed: bool = False) -> str:
    shown = [f for f in findings if show_suppressed or not f.suppressed]
    lines = [f.render() for f in shown]
    s = _summary(findings)
    lines.append(f"{s['total']} finding(s): {s['error']} error, "
                 f"{s['warning']} warning, {s['info']} info "
                 f"({s['suppressed']} suppressed)")
    return "\n".join(lines)


def render_json(findings: List[Finding]) -> str:
    return json.dumps({
        "findings": [f.as_dict() for f in findings],
        "summary": _summary(findings),
    }, indent=2)


def exit_code(findings: List[Finding], fail_on: str = "error") -> int:
    """1 if any unsuppressed finding at/above ``fail_on`` severity."""
    if fail_on == "none":
        return 0
    threshold = severity_rank(fail_on)
    for f in findings:
        if not f.suppressed and severity_rank(f.severity) >= threshold:
            return 1
    return 0
