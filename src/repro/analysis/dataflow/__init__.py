"""Static dataflow analysis over the mini-ISA (CFG, liveness, verifier).

The framework has three layers, each consumable on its own:

:mod:`~repro.analysis.dataflow.cfg`
    Basic-block control-flow graph construction over a
    :class:`~repro.isa.program.Program`: leaders, branch-target and
    fallthrough edges, reachability from the entry point, dominators,
    and the backward-branch loop spans the compiler analyses build on.
:mod:`~repro.analysis.dataflow.liveness`
    A backward liveness fixpoint over the CFG producing per-op def/use
    sets, **last-use** and **dead-on-commit** bits.  :func:`annotate`
    caches the result on a :class:`~repro.isa.decoded.DecodedProgram`
    and fills the hint slots of every :class:`~repro.isa.decoded.DecodedOp`
    (``kill_flats`` / ``last_use_flats`` / ``dead_dest_flats``) that the
    dead-hint VRMU replacement policies consume.
:mod:`~repro.analysis.dataflow.verify`
    A kernel verifier (the ``repro check`` CLI verb): reads of
    never-written registers, unreachable blocks, out-of-range branch
    targets, fall-through off the end of the program, plus per-block
    register-pressure/working-set tables (text and JSON).

The hint bits are strictly inert: annotating a program changes nothing
in the timing model unless a hint-consuming replacement policy
(``dead-first`` / ``dead-elide``) is selected.
"""

from .cfg import BasicBlock, ControlFlowGraph, backward_branch_spans, build_cfg
from .liveness import (
    FLAGS_FLAT,
    LivenessResult,
    OpLiveness,
    annotate,
    compute_liveness,
)
from .verify import (
    BlockPressure,
    VerifierFinding,
    VerifyReport,
    verify_program,
)

__all__ = [
    "BasicBlock",
    "BlockPressure",
    "ControlFlowGraph",
    "FLAGS_FLAT",
    "LivenessResult",
    "OpLiveness",
    "VerifierFinding",
    "VerifyReport",
    "annotate",
    "backward_branch_spans",
    "build_cfg",
    "compute_liveness",
    "verify_program",
]
