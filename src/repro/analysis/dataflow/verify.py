"""Kernel verifier: static findings + register-pressure tables.

:func:`verify_program` runs the CFG and liveness passes over one program
and reports:

========================  ========  ==================================
finding                   severity  meaning
========================  ========  ==================================
``bad-branch-target``     error     branch target missing or outside
                                    the program
``fallthrough-end``       error     an execution path can run past the
                                    last instruction (no ``halt``)
``read-uninitialized``    error     a reachable path reads a register
                                    (or the flags) never written on
                                    that path, and not in the declared
                                    entry set
``unreachable-code``      warning   block not reachable from the entry
========================  ========  ==================================

Read-uninitialized uses forward *definite assignment*: a register is
safe at a point only if it is written on **every** reachable path from
the entry (``IN[b] = ∩ OUT[p]``), seeded with the caller-declared entry
set (for workloads: the registers ``make_instance`` initializes, e.g.
``x0``/``x1``).  Per-block pressure tables come from the liveness
result: live-in/out counts, peak simultaneous liveness, and the block's
referenced-register working set.

This module is pure analysis — the ``repro check`` CLI verb renders the
:class:`VerifyReport` as text or JSON and maps severities to exit codes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional

from ...isa.program import Program
from ...isa.registers import NUM_ARCH_REGS, from_flat
from .cfg import ControlFlowGraph, build_cfg
from .liveness import FLAGS_FLAT, LivenessResult, compute_liveness

__all__ = ["BlockPressure", "VerifierFinding", "VerifyReport",
           "verify_program"]

SEVERITIES = ("error", "warning")


def _flat_name(flat: int) -> str:
    return "flags" if flat == FLAGS_FLAT else from_flat(flat).name


@dataclass(frozen=True)
class VerifierFinding:
    """One verifier diagnostic anchored at an instruction pc."""

    kind: str           # e.g. "read-uninitialized"
    severity: str       # "error" | "warning"
    pc: int
    message: str

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "severity": self.severity,
                "pc": self.pc, "message": self.message}


@dataclass(frozen=True)
class BlockPressure:
    """Static register-pressure summary of one reachable basic block."""

    block: int
    start: int
    end: int                  # exclusive
    live_in: int
    live_out: int
    max_live: int             # peak simultaneously-live registers
    working_set: int          # distinct registers referenced in the block

    def as_dict(self) -> Dict[str, int]:
        return {"block": self.block, "start": self.start, "end": self.end,
                "live_in": self.live_in, "live_out": self.live_out,
                "max_live": self.max_live, "working_set": self.working_set}


@dataclass
class VerifyReport:
    """Everything ``repro check`` knows about one program."""

    name: str
    n_instructions: int
    n_blocks: int
    n_reachable: int
    findings: List[VerifierFinding] = field(default_factory=list)
    pressure: List[BlockPressure] = field(default_factory=list)

    @property
    def errors(self) -> List[VerifierFinding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[VerifierFinding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "instructions": self.n_instructions,
            "blocks": self.n_blocks,
            "reachable_blocks": self.n_reachable,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [f.as_dict() for f in self.findings],
            "pressure": [p.as_dict() for p in self.pressure],
        }

    def render(self, show_pressure: bool = False,
               program: Optional[Program] = None) -> str:
        lines = [f"{self.name}: {self.n_instructions} instructions, "
                 f"{self.n_reachable}/{self.n_blocks} blocks reachable — "
                 f"{len(self.errors)} error(s), "
                 f"{len(self.warnings)} warning(s)"]
        for f in self.findings:
            loc = f"pc {f.pc}"
            if program is not None and 0 <= f.pc < len(program):
                inst = program.instructions[f.pc]
                loc += f" `{inst.text or inst.opcode.name.lower()}`"
            lines.append(f"  {f.severity}: {f.kind} at {loc}: {f.message}")
        if show_pressure and self.pressure:
            lines.append("  block  span         live-in  live-out  "
                         "max-live  working-set")
            for p in self.pressure:
                lines.append(
                    f"  {p.block:5d}  [{p.start:4d},{p.end:4d})  "
                    f"{p.live_in:7d}  {p.live_out:8d}  "
                    f"{p.max_live:8d}  {p.working_set:11d}")
        return "\n".join(lines)


def _definite_assignment(cfg: ControlFlowGraph, program: Program,
                         init: FrozenSet[int]) -> List[VerifierFinding]:
    """Forward must-analysis for read-before-write on reachable paths."""
    n = len(program)
    use: List[FrozenSet[int]] = []
    defs: List[FrozenSet[int]] = []
    for inst in program.instructions:
        u = {r.flat for r in inst.srcs}
        d = {r.flat for r in inst.dests}
        if inst.reads_flags:
            u.add(FLAGS_FLAT)
        if inst.sets_flags:
            d.add(FLAGS_FLAT)
        use.append(frozenset(u))
        defs.append(frozenset(d))

    universe = frozenset(range(NUM_ARCH_REGS + 1))
    reachable = cfg.reachable
    # TOP (= universe) until a path reaches the block; entry starts at init
    assigned_in: Dict[int, FrozenSet[int]] = {b: universe for b in reachable}
    order = cfg.rpo()
    # monotone shrinking on a finite lattice: terminates
    while True:
        changed = False
        for b in order:
            if b == cfg.entry_block:
                new_in = frozenset(init)
            else:
                preds = [p for p in cfg.blocks[b].preds if p in reachable]
                new_in = universe
                for p in preds:
                    out = assigned_in[p]
                    for pc in cfg.blocks[p].pcs:
                        out = out | defs[pc]
                    new_in = new_in & out
            if new_in != assigned_in[b]:
                assigned_in[b] = new_in
                changed = True
        if not changed:
            break


    findings: List[VerifierFinding] = []
    seen = set()
    for b in sorted(reachable):
        assigned = assigned_in[b]
        for pc in cfg.blocks[b].pcs:
            for flat in sorted(use[pc] - assigned):
                if (pc, flat) in seen:
                    continue
                seen.add((pc, flat))
                what = ("the flags (no dominating cmp)"
                        if flat == FLAGS_FLAT
                        else f"register {_flat_name(flat)}")
                findings.append(VerifierFinding(
                    kind="read-uninitialized", severity="error", pc=pc,
                    message=f"reads {what} with no write on some "
                            f"path from the entry"))
            assigned = assigned | defs[pc]
    return findings


def verify_program(program: Program,
                   init_flats: Iterable[int] = (),
                   liveness: Optional[LivenessResult] = None,
                   name: str = "") -> VerifyReport:
    """Verify one assembled program.

    ``init_flats`` declares registers guaranteed written before entry
    (the workload harness's ``init_regs``, e.g. ``x0`` = tid).
    """
    if liveness is None:
        liveness = compute_liveness(program)
    cfg = liveness.cfg
    report = VerifyReport(
        name=name or program.name,
        n_instructions=len(program),
        n_blocks=len(cfg.blocks),
        n_reachable=len(cfg.reachable),
    )

    for pc, target in sorted(cfg.bad_targets):
        desc = ("unresolved target" if target < 0
                else f"target {target} outside [0, {len(program)})")
        report.findings.append(VerifierFinding(
            kind="bad-branch-target", severity="error", pc=pc,
            message=desc))
    for pc in sorted(cfg.falls_off_end):
        report.findings.append(VerifierFinding(
            kind="fallthrough-end", severity="error", pc=pc,
            message="execution can run past the last instruction "
                    "(missing halt)"))
    for block in cfg.blocks:
        if block.index not in cfg.reachable:
            report.findings.append(VerifierFinding(
                kind="unreachable-code", severity="warning", pc=block.start,
                message=f"block [{block.start},{block.end}) is unreachable "
                        f"from the entry"))

    report.findings.extend(
        _definite_assignment(cfg, program, frozenset(init_flats)))
    report.findings.sort(key=lambda f: (f.pc, f.kind))

    for b in sorted(cfg.reachable):
        block = cfg.blocks[b]
        working = set()
        for pc in block.pcs:
            working.update(r.flat for r in program.instructions[pc].regs)
        report.pressure.append(BlockPressure(
            block=b, start=block.start, end=block.end,
            live_in=len(liveness.block_live_in[b] - {FLAGS_FLAT}),
            live_out=len(liveness.block_live_out[b] - {FLAGS_FLAT}),
            max_live=liveness.max_pressure(b),
            working_set=len(working),
        ))
    return report
