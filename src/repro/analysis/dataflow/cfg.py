"""Basic-block control-flow graph over assembled mini-ISA programs.

Construction is the classic leader algorithm: the entry point, every
branch target, and every instruction following a branch or ``halt``
starts a block; blocks end before the next leader.  Edges come from the
last instruction of each block — an unconditional ``b`` contributes only
its target, conditional branches contribute fallthrough + target, and
``halt`` contributes nothing.

Malformed control flow never raises here: a branch whose target is
missing or outside the program is recorded in :attr:`ControlFlowGraph.bad_targets`
(and simply contributes no edge), and a block whose fallthrough would run
past the last instruction is recorded in
:attr:`ControlFlowGraph.falls_off_end`.  The verifier
(:mod:`repro.analysis.dataflow.verify`) turns both into findings; the
liveness pass just analyses the graph it got.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ...isa.instructions import Instruction, Opcode
from ...isa.program import Program

__all__ = ["BasicBlock", "ControlFlowGraph", "backward_branch_spans",
           "build_cfg"]


@dataclass
class BasicBlock:
    """A maximal straight-line span ``[start, end)`` of instruction pcs."""

    index: int
    start: int
    end: int                                   # exclusive
    succs: List[int] = field(default_factory=list)   # successor block indices
    preds: List[int] = field(default_factory=list)   # predecessor block indices

    @property
    def pcs(self) -> range:
        return range(self.start, self.end)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<BB{self.index} [{self.start},{self.end}) "
                f"-> {self.succs}>")


def _successor_pcs(inst: Instruction, pc: int, n: int
                   ) -> Tuple[List[int], Optional[int], bool]:
    """``(successor_pcs, bad_target, falls_off_end)`` of one instruction.

    ``bad_target`` is the missing/out-of-range branch target (if any);
    ``falls_off_end`` marks a fallthrough path that would run past the
    last instruction.
    """
    if inst.is_halt:
        return [], None, False
    succs: List[int] = []
    bad: Optional[int] = None
    falls = False
    if inst.is_branch:
        target = inst.target
        target_ok = target is not None and 0 <= target < n
        if inst.opcode is Opcode.B:
            if target_ok:
                succs.append(target)            # type: ignore[arg-type]
            else:
                bad = -1 if target is None else target
            return succs, bad, False
        # conditional: fallthrough first, then the taken edge
        if pc + 1 < n:
            succs.append(pc + 1)
        else:
            falls = True
        if target_ok:
            if target not in succs:
                succs.append(target)            # type: ignore[arg-type]
        else:
            bad = -1 if target is None else target
        return succs, bad, falls
    if pc + 1 < n:
        return [pc + 1], None, False
    return [], None, True


class ControlFlowGraph:
    """Blocks, edges, reachability, and dominators of one program."""

    def __init__(self, program: Program) -> None:
        self.program = program
        n = len(program)
        self.blocks: List[BasicBlock] = []
        #: pc -> owning block index
        self.block_at: List[int] = [0] * n
        #: ``(branch_pc, target)`` pairs with a missing/out-of-range target
        #: (target -1 encodes an unresolved/missing one)
        self.bad_targets: List[Tuple[int, int]] = []
        #: pcs whose fallthrough would run past the last instruction
        self.falls_off_end: List[int] = []
        self.entry_block: int = 0
        self._build()
        self.reachable: frozenset = self._reachability()
        self._dominators: Optional[Dict[int, frozenset]] = None

    # -- construction -------------------------------------------------------
    def _build(self) -> None:
        program = self.program
        n = len(program)
        if n == 0:
            return
        leaders: Set[int] = {0, program.entry}
        for pc, inst in enumerate(program.instructions):
            if inst.is_branch or inst.is_halt:
                if pc + 1 < n:
                    leaders.add(pc + 1)
                target = inst.target
                if target is not None and 0 <= target < n:
                    leaders.add(target)
        starts = sorted(leaders)
        bounds = starts + [n]
        for i, start in enumerate(starts):
            self.blocks.append(BasicBlock(index=i, start=start,
                                          end=bounds[i + 1]))
            for pc in range(start, bounds[i + 1]):
                self.block_at[pc] = i
        for block in self.blocks:
            last_pc = block.end - 1
            succs, bad, falls = _successor_pcs(
                program.instructions[last_pc], last_pc, n)
            if bad is not None:
                self.bad_targets.append((last_pc, bad))
            if falls:
                self.falls_off_end.append(last_pc)
            for pc in succs:
                succ = self.block_at[pc]
                if succ not in block.succs:
                    block.succs.append(succ)
                if block.index not in self.blocks[succ].preds:
                    self.blocks[succ].preds.append(block.index)
        self.entry_block = self.block_at[program.entry]

    def _reachability(self) -> frozenset:
        if not self.blocks:
            return frozenset()
        seen: Set[int] = set()
        stack = [self.entry_block]
        while stack:
            b = stack.pop()
            if b in seen:
                continue
            seen.add(b)
            stack.extend(self.blocks[b].succs)
        return frozenset(seen)

    # -- derived views ------------------------------------------------------
    def rpo(self) -> List[int]:
        """Reverse postorder of the reachable blocks from the entry."""
        seen: Set[int] = set()
        order: List[int] = []

        def visit(b: int) -> None:
            stack: List[Tuple[int, int]] = [(b, 0)]
            seen.add(b)
            while stack:
                node, i = stack[-1]
                succs = self.blocks[node].succs
                if i < len(succs):
                    stack[-1] = (node, i + 1)
                    nxt = succs[i]
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append((nxt, 0))
                else:
                    order.append(node)
                    stack.pop()

        if self.blocks:
            visit(self.entry_block)
        return list(reversed(order))

    def dominators(self) -> Dict[int, frozenset]:
        """Block index -> set of dominating block indices (reachable only).

        Classic iterative dataflow: ``dom(entry) = {entry}``,
        ``dom(b) = {b} | intersection(dom(p) for reachable preds p)``.
        """
        if self._dominators is not None:
            return self._dominators
        order = self.rpo()
        if not order:
            self._dominators = {}
            return self._dominators
        universe = frozenset(order)
        dom: Dict[int, frozenset] = {b: universe for b in order}
        dom[self.entry_block] = frozenset({self.entry_block})
        changed = True
        while changed:
            changed = False
            for b in order:
                if b == self.entry_block:
                    continue
                preds = [p for p in self.blocks[b].preds
                         if p in self.reachable]
                new = universe
                for p in preds:
                    new = new & dom[p]
                new = new | {b}
                if new != dom[b]:
                    dom[b] = new
                    changed = True
        self._dominators = dom
        return dom

    def back_edges(self) -> List[Tuple[int, int]]:
        """Edges ``(tail_block, head_block)`` where the head dominates the
        tail — the natural-loop back edges of the reachable graph."""
        dom = self.dominators()
        out = []
        for b in sorted(self.reachable):
            for s in self.blocks[b].succs:
                if s in self.reachable and s in dom[b]:
                    out.append((b, s))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<CFG {self.program.name}: {len(self.blocks)} blocks, "
                f"{len(self.reachable)} reachable>")


def build_cfg(program: Program) -> ControlFlowGraph:
    """Construct the CFG of ``program``."""
    return ControlFlowGraph(program)


def backward_branch_spans(program: Program) -> List[Tuple[int, int]]:
    """``(head, tail)`` spans of every syntactic backward branch.

    A backward branch is any branch at pc ``tail`` whose resolved target
    ``head`` satisfies ``head <= tail`` — the static loop definition the
    compiler analyses (:mod:`repro.compiler.liveness`) are built on.
    Sorted and deduplicated.
    """
    spans = set()
    for pc, inst in enumerate(program.instructions):
        if inst.is_branch and inst.target is not None and inst.target <= pc:
            spans.add((inst.target, pc))
    return sorted(spans)
