"""Backward liveness fixpoint over the CFG, feeding the VRMU dead hints.

The analysis runs on architectural register *flat* indices
(:attr:`repro.isa.registers.Reg.flat`) plus one pseudo-register,
:data:`FLAGS_FLAT`, standing for the NZCV flags (``cmp`` defines it,
``b.cond`` uses it).  The per-op products are the standard backward
dataflow facts:

``live_after``
    Registers live immediately after the op (union of successors'
    live-in at block boundaries).
``kill``
    Registers this op references (use or def) that are dead afterwards —
    after this op commits, the VRMU may drop them without writeback.
``last_use``
    The used-and-dead subset of ``kill`` (a read that is the final read
    before any redefinition).
``dead_dests``
    Defs that are never read — the written value itself is dead.

:func:`annotate` caches a :class:`LivenessResult` on a
:class:`~repro.isa.decoded.DecodedProgram` and copies the kill sets into
the hint slots of each :class:`~repro.isa.decoded.DecodedOp`
(``kill_flats`` et al., flags filtered out — the VRMU only manages real
registers).  Ops in unreachable blocks get *empty* hints: claiming
nothing is the conservative, always-sound choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ...isa.decoded import DecodedProgram
from ...isa.program import Program
from ...isa.registers import NUM_ARCH_REGS
from .cfg import ControlFlowGraph, build_cfg

__all__ = ["FLAGS_FLAT", "LivenessResult", "OpLiveness", "annotate",
           "compute_liveness"]

#: pseudo-register flat index for the NZCV flags (real regs are 0..63)
FLAGS_FLAT = NUM_ARCH_REGS


@dataclass(frozen=True)
class OpLiveness:
    """Per-instruction dataflow facts (flat register indices)."""

    pc: int
    use: FrozenSet[int]
    defs: FrozenSet[int]
    live_after: FrozenSet[int]

    @property
    def live_before(self) -> FrozenSet[int]:
        return self.use | (self.live_after - self.defs)

    @property
    def kill(self) -> FrozenSet[int]:
        """Referenced here, dead afterwards (droppable at commit)."""
        return (self.use | self.defs) - self.live_after

    @property
    def last_use(self) -> FrozenSet[int]:
        """Final read before any redefinition."""
        return self.use - self.live_after

    @property
    def dead_dests(self) -> FrozenSet[int]:
        """Defs whose written value is never read."""
        return self.defs - self.live_after


_EMPTY: FrozenSet[int] = frozenset()


class LivenessResult:
    """CFG + per-op and per-block liveness facts of one program."""

    def __init__(self, program: Program, cfg: ControlFlowGraph,
                 per_op: List[Optional[OpLiveness]],
                 block_live_in: Dict[int, FrozenSet[int]],
                 block_live_out: Dict[int, FrozenSet[int]]) -> None:
        self.program = program
        self.cfg = cfg
        #: pc -> :class:`OpLiveness`, ``None`` for unreachable ops
        self.per_op = per_op
        #: reachable block index -> live-in / live-out register sets
        self.block_live_in = block_live_in
        self.block_live_out = block_live_out

    def at(self, pc: int) -> Optional[OpLiveness]:
        return self.per_op[pc]

    def max_pressure(self, block: int) -> int:
        """Peak simultaneously-live *register* count inside a block
        (flags excluded) — the static working-set bound the verifier's
        pressure table reports."""
        best = len(self.block_live_out.get(block, _EMPTY) - {FLAGS_FLAT})
        for pc in self.cfg.blocks[block].pcs:
            ol = self.per_op[pc]
            if ol is not None:
                best = max(best, len(ol.live_before - {FLAGS_FLAT}))
        return best


def _op_use_def(program: Program, pc: int
                ) -> Tuple[FrozenSet[int], FrozenSet[int]]:
    inst = program.instructions[pc]
    use = {r.flat for r in inst.srcs}
    defs = {r.flat for r in inst.dests}
    if inst.reads_flags:
        use.add(FLAGS_FLAT)
    if inst.sets_flags:
        defs.add(FLAGS_FLAT)
    return frozenset(use), frozenset(defs)


def compute_liveness(program: Program,
                     cfg: Optional[ControlFlowGraph] = None) -> LivenessResult:
    """Run the backward fixpoint; exit blocks (halt / no successor) have
    empty live-out — nothing is architecturally consumed after the
    program stops."""
    if cfg is None:
        cfg = build_cfg(program)
    n = len(program)
    uses: List[FrozenSet[int]] = [_EMPTY] * n
    defs: List[FrozenSet[int]] = [_EMPTY] * n
    for pc in range(n):
        uses[pc], defs[pc] = _op_use_def(program, pc)

    reachable = sorted(cfg.reachable)
    live_in: Dict[int, FrozenSet[int]] = {b: _EMPTY for b in reachable}
    live_out: Dict[int, FrozenSet[int]] = {b: _EMPTY for b in reachable}
    # postorder ≈ reverse flow order: converges in few sweeps
    order = list(reversed(cfg.rpo()))
    changed = True
    while changed:
        changed = False
        for b in order:
            out: FrozenSet[int] = _EMPTY
            for s in cfg.blocks[b].succs:
                if s in live_in:
                    out = out | live_in[s]
            live = out
            for pc in reversed(cfg.blocks[b].pcs):
                live = uses[pc] | (live - defs[pc])
            if out != live_out[b] or live != live_in[b]:
                live_out[b], live_in[b] = out, live
                changed = True

    per_op: List[Optional[OpLiveness]] = [None] * n
    for b in reachable:
        live = live_out[b]
        for pc in reversed(cfg.blocks[b].pcs):
            per_op[pc] = OpLiveness(pc=pc, use=uses[pc], defs=defs[pc],
                                    live_after=live)
            live = uses[pc] | (live - defs[pc])
    return LivenessResult(program, cfg, per_op, live_in, live_out)


def _reg_tuple(flats: FrozenSet[int]) -> Tuple[int, ...]:
    """Sorted real-register subset (drops the flags pseudo-register)."""
    return tuple(sorted(f for f in flats if f < NUM_ARCH_REGS))


def annotate(dprog: DecodedProgram) -> LivenessResult:
    """Compute (or reuse) liveness for ``dprog`` and fill every op's hint
    slots.  Idempotent; the result is cached on the decoded program so
    all cores sharing the decode share the analysis.

    The hint bits are inert by construction: nothing in the engine reads
    ``kill_flats``/``last_use_flats``/``dead_dest_flats`` unless a
    hint-consuming replacement policy was selected.
    """
    res = dprog.liveness
    if res is None:
        res = compute_liveness(dprog.program)
        dprog.liveness = res
    for op in dprog.ops:
        ol = res.per_op[op.pc]
        if ol is None:                       # unreachable: claim nothing
            op.kill_flats = ()
            op.last_use_flats = ()
            op.dead_dest_flats = ()
        else:
            op.kill_flats = _reg_tuple(ol.kill)
            op.last_use_flats = _reg_tuple(ol.last_use)
            op.dead_dest_flats = _reg_tuple(ol.dead_dests)
    return res
