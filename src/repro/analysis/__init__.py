"""Static analysis tooling tuned to this codebase.

Two layers live here:

* :mod:`repro.analysis.lint` (``repro lint``) encodes determinism and
  correctness rules that generic tools do not know about: a
  cycle-accurate simulator must never consume unseeded randomness or
  wall-clock time on a simulation path, must not let hash-ordering leak
  into cycle counts or digests, and must not guard invariants with bare
  ``assert`` (stripped under ``python -O``).
* :mod:`repro.analysis.dataflow` (``repro check``) analyses the
  *simulated* programs: basic-block CFG construction, a backward
  liveness fixpoint producing the dead/last-use hints the VRMU's
  ``dead-*`` replacement policies consume, and a kernel verifier.
"""

from .dataflow import (
    BasicBlock,
    BlockPressure,
    ControlFlowGraph,
    LivenessResult,
    OpLiveness,
    VerifierFinding,
    VerifyReport,
    annotate,
    backward_branch_spans,
    build_cfg,
    compute_liveness,
    verify_program,
)
from .lint import (
    RULES,
    Finding,
    LintRule,
    Severity,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)

__all__ = ["BasicBlock", "BlockPressure", "ControlFlowGraph", "Finding",
           "LintRule", "LivenessResult", "OpLiveness", "RULES", "Severity",
           "VerifierFinding", "VerifyReport", "annotate",
           "backward_branch_spans", "build_cfg", "compute_liveness",
           "lint_paths", "lint_source", "render_json", "render_text",
           "verify_program"]
