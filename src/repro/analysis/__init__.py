"""Static analysis tooling tuned to this codebase (``repro lint``).

The linter in :mod:`repro.analysis.lint` encodes determinism and
correctness rules that generic tools do not know about: a cycle-accurate
simulator must never consume unseeded randomness or wall-clock time on a
simulation path, must not let hash-ordering leak into cycle counts or
digests, and must not guard invariants with bare ``assert`` (stripped
under ``python -O``).
"""

from .lint import (
    RULES,
    Finding,
    LintRule,
    Severity,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)

__all__ = ["Finding", "LintRule", "RULES", "Severity", "lint_paths",
           "lint_source", "render_json", "render_text"]
