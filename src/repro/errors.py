"""Unified exception taxonomy for the simulator.

Every way a simulated run can fail is rooted at :class:`SimulationError`, so
drivers (``run_grid``, ``sweep``, the fault study) can isolate per-config
failures with one ``except`` clause instead of guessing which layer raised.
Two classes double-inherit from the builtin type they historically were —
:class:`DeadlockError` from ``RuntimeError`` and
:class:`FunctionalCheckError` from ``AssertionError`` — so existing callers
keep working unchanged.

The :class:`RunFailure` record (not an exception) is the structured form a
resilient sweep stores per failed configuration; it lives here rather than
in :mod:`repro.system.sweeps` so both the simulator and the sweep layer can
reference it without an import cycle.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, Optional


class SimulationError(Exception):
    """Root of the simulator's failure taxonomy."""


class _WedgeMixin:
    """Shared ``commit_tail``/``committed`` payload for wedge exceptions.

    A wedged run's most useful post-mortem facts are *where the commit
    clock stopped* and *how many instructions had committed*.  They ride
    inside the message (not only as attributes) because pool workers that
    fail to pickle an exception fall back to ``type(exc)(str(exc))`` —
    the attributes are lost but the message survives.
    """

    def __init__(self, message: str, commit_tail: int = -1,
                 committed: int = -1) -> None:
        if commit_tail >= 0 or committed >= 0:
            message = (f"{message} [commit_tail={commit_tail}, "
                       f"committed={committed}]")
        super().__init__(message)
        self.commit_tail = int(commit_tail)
        self.committed = int(committed)


class DeadlockError(_WedgeMixin, SimulationError, RuntimeError):
    """The core made no progress (bug guard for the timeline engine)."""


class FunctionalCheckError(SimulationError, AssertionError):
    """A workload's numpy-oracle check rejected the simulated output."""


class InvariantError(SimulationError):
    """Internal simulator bookkeeping ended in an inconsistent state.

    Replaces bare ``assert`` statements guarding simulation invariants in
    ``src/`` (which ``python -O`` would strip); the ``repro lint`` rule
    VRC004 enforces that discipline permanently.
    """


class SanitizerViolation(InvariantError, AssertionError):
    """VSan detected a divergence between simulated and shadow state.

    Raised by the opt-in runtime sanitizer (:mod:`repro.sanitizer`) when a
    checked invariant fails: timing-model register values diverging from
    the shadow architectural state, a broken tag-store bijection, a
    malformed LRC priority word, out-of-bounds backing traffic, or
    inconsistent rollback/CSL bookkeeping.  Double-inherits from
    ``AssertionError`` so historical callers of
    ``TagStore.check_invariants`` keep working unchanged.

    ``invariant`` is the violated rule's stable identifier (e.g.
    ``"shadow.reg"``, ``"tagstore.bijection"``), ``cycle`` the simulated
    cycle at which the check ran, and ``details`` a structured payload for
    machine consumption (the CLI and tests read it).
    """

    def __init__(self, message: str, invariant: str = "unknown",
                 cycle: int = -1, core_id: int = -1,
                 details: Optional[Dict] = None) -> None:
        super().__init__(message)
        self.invariant = invariant
        self.cycle = cycle
        self.core_id = core_id
        self.details = dict(details or {})

    def report(self) -> str:
        """Cycle-stamped human-readable diagnostic block."""
        lines = [f"SanitizerViolation: {self.invariant}",
                 f"  cycle   : {self.cycle}",
                 f"  core    : {self.core_id}",
                 f"  message : {self.args[0] if self.args else ''}"]
        for key in sorted(self.details):
            lines.append(f"  {key:<8}: {self.details[key]}")
        return "\n".join(lines)


class AttributionError(InvariantError):
    """The cycle attributor's books don't balance.

    Raised by the opt-in profiling subsystem (:mod:`repro.profiling`) when
    the sum of per-cause attributed cycles differs from the core's commit
    clock — the one invariant that makes a top-down breakdown trustworthy.
    ``attributed``/``cycles`` carry both sides of the failed equality.
    """

    def __init__(self, message: str, core_id: int = -1,
                 attributed: int = -1, cycles: int = -1) -> None:
        super().__init__(message)
        self.core_id = core_id
        self.attributed = attributed
        self.cycles = cycles


class FaultEscapeError(SimulationError):
    """Corrupted register/backing state reached architectural commit.

    Raised by detect-only protection (parity): the fault was observed but
    cannot be repaired, so the run must abort rather than silently commit
    wrong state.  ``site`` names where the flip lived ("rf", "tag",
    "backing").
    """

    def __init__(self, message: str, site: str = "rf") -> None:
        super().__init__(message)
        self.site = site


class WatchdogTimeout(_WedgeMixin, SimulationError):
    """A per-config wall-clock watchdog expired mid-simulation."""


class WorkerCrashError(SimulationError):
    """A pool worker process died abruptly (segfault, ``os._exit``, OOM kill).

    Unlike every other member of the taxonomy this is raised by the
    *execution backend*, not the simulator: the worker never got to return
    a value, so the parent reconstructs what it can — the input positions
    of the chunk the worker held (``indices``) and the executor's exit
    context (``context``, e.g. the ``BrokenProcessPool`` message).  The
    resilient sweep converts it into a per-chunk
    :class:`RunFailure` instead of aborting the whole grid.
    """

    def __init__(self, message: str, indices: Optional[list] = None,
                 context: str = "") -> None:
        super().__init__(message)
        self.indices = list(indices or [])
        self.context = context


class TaskPoolError(SimulationError):
    """Task-pool bookkeeping ended inconsistent (tasks lost or undispatched).

    Carries the pool's structured ``snapshot`` (pending/dispatched/completed
    counts) so sweep-level tooling can report queue state instead of a bare
    assertion message.
    """

    def __init__(self, message: str, snapshot: Optional[Dict] = None) -> None:
        super().__init__(message)
        self.snapshot = dict(snapshot or {})


#: failure classes worth retrying under a different seed: a reseeded run
#: changes workload data, fault victims, and scheduling, so these can clear
#: on retry; a functional-check failure with no faults injected cannot.
#: A worker crash is host-environment trouble (OOM, signal), not a property
#: of the config — retrying in a fresh worker is always reasonable.
TRANSIENT_ERRORS = (DeadlockError, WatchdogTimeout, FaultEscapeError,
                    WorkerCrashError)


@dataclass
class RunFailure:
    """Structured record of one failed configuration inside a sweep."""

    index: int                      # position in the grid
    config: Dict                    # asdict() of the RunConfig that failed
    error_type: str                 # exception class name
    message: str
    attempts: int = 1               # total tries, including retries
    elapsed_s: float = 0.0
    transient: bool = False
    key: str = ""                   # checkpoint-journal config key
    extra: Dict = field(default_factory=dict)

    @classmethod
    def from_exception(cls, exc: BaseException, index: int, config: Dict,
                       attempts: int = 1, elapsed_s: float = 0.0,
                       key: str = "") -> "RunFailure":
        extra = {}
        if isinstance(exc, FaultEscapeError):
            extra["site"] = exc.site
        if isinstance(exc, TaskPoolError):
            extra["snapshot"] = exc.snapshot
        if isinstance(exc, WorkerCrashError):
            extra["chunk_indices"] = exc.indices
            extra["exit_context"] = exc.context
        if isinstance(exc, SanitizerViolation):
            extra["invariant"] = exc.invariant
            extra["cycle"] = exc.cycle
            extra["core_id"] = exc.core_id
        if isinstance(exc, _WedgeMixin):
            extra["commit_tail"] = exc.commit_tail
            extra["committed"] = exc.committed
        return cls(index=index, config=config,
                   error_type=type(exc).__name__, message=str(exc),
                   attempts=attempts, elapsed_s=round(elapsed_s, 3),
                   transient=isinstance(exc, TRANSIENT_ERRORS),
                   key=key, extra=extra)

    def as_dict(self) -> Dict:
        return asdict(self)
