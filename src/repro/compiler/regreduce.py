"""Compiler register-reduction pass (Section 4.2).

"A compiler can artificially reduce the registers available for register
allocation to only those required in the innermost loops.  This register
reduction will generate code that will spill outer loop values to memory
using regular load/store instructions.  As the outer loops run infrequently,
the additional instructions constitute a negligible overhead (less than
0.1% in our experiments)."

This pass reproduces that transformation on assembled programs: registers
used *only outside* innermost loops are demoted to memory spill slots; every
outer-loop use is rewritten to a reload into a reserved temporary and every
outer-loop definition to a store from it.  Branch targets are remapped after
insertion.  Inner-loop code is untouched by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..isa.instructions import AddrMode, Instruction, Opcode
from ..isa.program import Program
from ..isa.registers import Reg, X, from_flat
from .liveness import inner_loop_regs, innermost_loops, outer_only_regs

#: temporaries reserved for spill reloads (never allocated by our kernels)
TEMP_REGS = (X(25), X(26), X(27))
#: register holding the spill-area base address
SPILL_BASE_REG = X(28)


class RegReduceError(ValueError):
    """The program cannot be reduced (e.g. temporaries are in use)."""


@dataclass
class ReduceResult:
    program: Program
    spilled: Tuple[int, ...]           # flat indices demoted to memory
    spill_slots: Dict[int, int]        # flat index -> byte offset
    inserted_instructions: int


def _clone(inst: Instruction, **overrides) -> Instruction:
    fields = dict(opcode=inst.opcode, rd=inst.rd, rn=inst.rn, rm=inst.rm,
                  ra=inst.ra, imm=inst.imm, shift=inst.shift, cond=inst.cond,
                  mode=inst.mode, target=inst.target, label=inst.label,
                  text=inst.text)
    fields.update(overrides)
    return Instruction(**fields)


def _remap_operands(inst: Instruction, mapping: Dict[Reg, Reg]) -> Instruction:
    if not mapping:
        return inst
    def m(r):
        return mapping.get(r, r) if r is not None else None
    return _clone(inst, rd=m(inst.rd), rn=m(inst.rn), rm=m(inst.rm), ra=m(inst.ra),
                  text=inst.text + "  ; regreduce-rewritten")


def reduce_registers(program: Program, spill_base: int,
                     extra_spills: Optional[Set[int]] = None,
                     preserve: Optional[Set[int]] = None) -> ReduceResult:
    """Demote outer-loop-only registers of ``program`` to memory.

    ``spill_base`` is the byte address of the per-kernel spill area (the
    caller reserves ``8 * len(spilled)`` bytes; with multithreading the
    kernel's area is indexed by thread via ``SPILL_BASE_REG``, which this
    pass initializes in the prologue).  ``extra_spills`` can force
    additional registers out (used by tests and ablations); ``preserve``
    (default: the ABI argument registers x0/x1) and registers used inside
    innermost loops are never spilled.
    """
    if preserve is None:
        preserve = {0, 1}
    inner = inner_loop_regs(program)
    candidates = set(outer_only_regs(program))
    if extra_spills:
        candidates |= (set(extra_spills) - inner)
    reserved = {r.flat for r in TEMP_REGS} | {SPILL_BASE_REG.flat}
    used = set()
    for inst in program.instructions:
        used.update(r.flat for r in inst.regs)
    if used & reserved:
        raise RegReduceError(
            f"program already uses reserved registers {sorted(used & reserved)}")
    spilled = tuple(sorted(candidates - reserved - set(preserve)))
    if not spilled:
        return ReduceResult(program, (), {}, 0)
    slots = {flat: i * 8 for i, flat in enumerate(spilled)}
    spilled_set = set(spilled)

    # rewrite instruction-by-instruction, tracking pc remapping
    new_insts: List[Instruction] = []
    pc_map: Dict[int, int] = {}
    prologue = [Instruction(Opcode.ADR, rd=SPILL_BASE_REG, imm=spill_base,
                            text=f"adr {SPILL_BASE_REG.name}, spill_area")]
    inserted = len(prologue)
    new_insts.extend(prologue)

    for pc, inst in enumerate(program.instructions):
        pc_map[pc] = len(new_insts)
        touched = [r for r in inst.regs if r.flat in spilled_set]
        if not touched:
            new_insts.append(inst)
            continue
        if len(touched) > len(TEMP_REGS):
            raise RegReduceError(
                f"instruction {inst} touches {len(touched)} spilled registers")
        mapping = {reg: TEMP_REGS[i] for i, reg in enumerate(touched)}
        # reload sources
        for reg in touched:
            if reg in inst.srcs:
                new_insts.append(Instruction(
                    Opcode.LDR, rd=mapping[reg], rn=SPILL_BASE_REG,
                    imm=slots[reg.flat], mode=AddrMode.OFF_IMM,
                    text=f"ldr {mapping[reg].name}, [spill+{slots[reg.flat]}] ; reload {reg.name}"))
                inserted += 1
        new_insts.append(_remap_operands(inst, mapping))
        # write back definitions
        for reg in touched:
            if reg in inst.dests:
                new_insts.append(Instruction(
                    Opcode.STR, rd=mapping[reg], rn=SPILL_BASE_REG,
                    imm=slots[reg.flat], mode=AddrMode.OFF_IMM,
                    text=f"str {mapping[reg].name}, [spill+{slots[reg.flat]}] ; spill {reg.name}"))
                inserted += 1
    pc_map[len(program.instructions)] = len(new_insts)

    # remap branch targets
    final: List[Instruction] = []
    for inst in new_insts:
        if inst.is_branch and inst.target is not None:
            final.append(_clone(inst, target=pc_map[inst.target]))
        else:
            final.append(inst)

    labels = {name: pc_map[pc] for name, pc in program.labels.items()}
    # the prologue (spill-base setup) must run first: keep entry at 0
    if program.labels.get("start", 0) == 0:
        labels["start"] = 0
    new_prog = Program(instructions=final, labels=labels,
                       symbols=dict(program.symbols),
                       name=program.name + "+regreduce")
    return ReduceResult(new_prog, spilled, slots, inserted)
