"""Innermost-loop unrolling for counted loops.

Single-issue in-order cores lose a fetch-redirect bubble on every taken
branch (2 cycles in the Table 1 configuration) and expose little
instruction-level parallelism inside 5-6 instruction loop bodies.
Unrolling counted innermost loops by a factor ``k`` amortizes the branch
and gives the list scheduler (:mod:`repro.compiler.scheduler`) longer
blocks to fill load shadows with.

Only *provably safe* loops are transformed — the conservative pattern the
workload kernels all share:

* innermost loop (no nested back edge);
* body ends with ``add i, i, #step`` / ``cmp i, bound`` / ``b.lt head``
  (the canonical counted-loop idiom, any order of the add relative to the
  body as long as it is the induction update);
* the induction register is only *read* elsewhere in the body and the
  bound register is not written in the body;
* trip count need not divide ``k``: the unrolled loop runs while
  ``i + (k-1)*step < bound`` and the original loop remains as the
  remainder epilogue.

Correctness is guaranteed by construction: iteration bodies are copied
verbatim with the induction advanced by explicit ``add``s between copies,
so any in-body use of ``i`` sees exactly the value it would have seen.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..isa.instructions import Cond, Instruction, Opcode
from ..isa.program import Program
from .liveness import innermost_loops


@dataclass
class UnrollResult:
    program: Program
    unrolled_loops: int
    factor: int


@dataclass
class _CountedLoop:
    head: int            # first pc of the body
    tail: int            # pc of the backward b.lt
    add_pc: int          # pc of the induction update
    cmp_pc: int          # pc of the cmp
    ind: object          # induction register
    step: int
    bound_reg: object    # register holding the bound (None for immediate)
    bound_imm: object    # immediate bound (None for register)


def _match_counted(program: Program, head: int, tail: int) -> Optional[_CountedLoop]:
    """Match the canonical ``...; add i,i,#s; cmp i,b; b.lt head`` idiom."""
    insts = program.instructions
    branch = insts[tail]
    if branch.opcode != Opcode.BCOND or branch.cond != Cond.LT \
            or branch.target != head:
        return None
    if tail - head < 2:
        return None
    cmp_i = insts[tail - 1]
    if cmp_i.opcode != Opcode.CMP or cmp_i.rn is None:
        return None
    if cmp_i.rm is None and cmp_i.imm is None:
        return None
    ind = cmp_i.rn
    bound = cmp_i.rm  # may be None for an immediate bound
    add_i = insts[tail - 2]
    if (add_i.opcode != Opcode.ADD or add_i.rd != ind or add_i.rn != ind
            or add_i.imm is None or int(add_i.imm) <= 0):
        return None
    body = insts[head:tail - 2]
    for inst in body:
        if ind in inst.dests or (bound is not None and bound in inst.dests):
            return None          # induction/bound mutated in the body
        if inst.is_branch or inst.is_halt:
            return None          # control flow inside the body
        if inst.sets_flags:
            return None          # would clobber the loop compare
    return _CountedLoop(head=head, tail=tail, add_pc=tail - 2,
                        cmp_pc=tail - 1, ind=ind, step=int(add_i.imm),
                        bound_reg=bound,
                        bound_imm=(int(cmp_i.imm) if cmp_i.imm is not None
                                   else None))


def _clone(inst: Instruction, **overrides) -> Instruction:
    fields = dict(opcode=inst.opcode, rd=inst.rd, rn=inst.rn, rm=inst.rm,
                  ra=inst.ra, imm=inst.imm, shift=inst.shift, cond=inst.cond,
                  mode=inst.mode, target=inst.target, label=inst.label,
                  text=inst.text)
    fields.update(overrides)
    return Instruction(**fields)


def unroll_program(program: Program, factor: int = 4,
                   scratch_reg=None) -> UnrollResult:
    """Unroll every matching counted innermost loop by ``factor``.

    The transformed layout per loop (guard uses ``scratch_reg``, default
    ``x27``)::

        uhead:  add  t, i, #(k-1)*step     ; t = furthest iteration's i
                cmp  t, bound
                b.ge head                  ; fewer than k left -> epilogue
                <body(i)> ; add i,i,#step  (k copies)
                b    uhead
        head:   <original loop>            ; remainder epilogue

    Returns the original program unchanged when no loop matches.
    """
    from ..isa.registers import X
    if factor < 2:
        raise ValueError("unroll factor must be >= 2")
    scratch = scratch_reg if scratch_reg is not None else X(27)

    loops = []
    for loop in innermost_loops(program):
        match = _match_counted(program, loop.head, loop.tail)
        if match is not None:
            # scratch register must not be used by the program
            used = {r.flat for i in program.instructions for r in i.regs}
            if scratch.flat not in used:
                loops.append(match)
    if not loops:
        return UnrollResult(program, 0, factor)

    insts = program.instructions
    new_insts: List[Instruction] = []
    pc_map: Dict[int, int] = {}
    loop_at: Dict[int, _CountedLoop] = {l.head: l for l in loops}
    pc = 0
    while pc < len(insts):
        loop = loop_at.get(pc)
        if loop is None:
            pc_map[pc] = len(new_insts)
            new_insts.append(insts[pc])
            pc += 1
            continue
        k, step = factor, loop.step
        body = insts[loop.head:loop.add_pc]
        add_i = insts[loop.add_pc]
        cmp_i = insts[loop.cmp_pc]

        def emit_iteration():
            for inst in body:
                new_insts.append(_clone(inst))
            new_insts.append(_clone(add_i))

        # exact do-while transform:
        #   entry:  body; i+=s                 (unconditional, as original)
        #   check:  cmp i, bound; b.ge after   (the original exit test)
        #           cmp i+(k-1)s, bound; b.ge one
        #           (body; i+=s) x k; b check
        #   one:    body; i+=s; b check
        #   after:
        entry = len(new_insts)
        for off, old_pc in enumerate(range(loop.head, loop.add_pc + 1)):
            pc_map[old_pc] = entry + off
        emit_iteration()
        check = len(new_insts)
        pc_map[loop.cmp_pc] = check
        pc_map[loop.tail] = check + 1
        new_insts.append(_clone(cmp_i))
        exit_branch_idx = len(new_insts)
        new_insts.append(None)  # b.ge after (patched below)
        new_insts.append(Instruction(
            Opcode.ADD, rd=scratch, rn=loop.ind, imm=(k - 1) * step,
            text=f"add {scratch}, {loop.ind}, #{(k - 1) * step} ; unroll guard"))
        if loop.bound_reg is not None:
            new_insts.append(Instruction(
                Opcode.CMP, rn=scratch, rm=loop.bound_reg,
                text=f"cmp {scratch}, {loop.bound_reg} ; unroll guard"))
        else:
            new_insts.append(Instruction(
                Opcode.CMP, rn=scratch, imm=loop.bound_imm,
                text=f"cmp {scratch}, #{loop.bound_imm} ; unroll guard"))
        guard_branch_idx = len(new_insts)
        new_insts.append(None)  # b.ge one (patched below)
        for _ in range(k):
            emit_iteration()
        new_insts.append(Instruction(Opcode.B, target=check,
                                     text="b unroll-check"))
        one = len(new_insts)
        new_insts[guard_branch_idx] = Instruction(
            Opcode.BCOND, cond=Cond.GE, target=one,
            text="b.ge unroll-single")
        emit_iteration()
        new_insts.append(Instruction(Opcode.B, target=check,
                                     text="b unroll-check"))
        after = len(new_insts)
        new_insts[exit_branch_idx] = Instruction(
            Opcode.BCOND, cond=Cond.GE, target=after,
            text="b.ge unroll-exit")
        pc = loop.tail + 1
    pc_map[len(insts)] = len(new_insts)

    # remap branch targets of untouched instructions (epilogue back-branches
    # already map correctly via pc_map)
    final: List[Instruction] = []
    for inst in new_insts:
        if inst.is_branch and inst.target is not None \
                and "unroll" not in (inst.text or ""):
            final.append(_clone(inst, target=pc_map.get(inst.target,
                                                        inst.target)))
        else:
            final.append(inst)

    labels = {name: pc_map.get(p, p) for name, p in program.labels.items()}
    return UnrollResult(
        Program(instructions=final, labels=labels,
                symbols=dict(program.symbols),
                name=program.name + f"+unroll{factor}"),
        unrolled_loops=len(loops), factor=factor)
