"""Static loop and register-usage analysis for assembled programs.

Implements the characterization behind Figure 2: how many of a kernel's
registers are touched inside its *innermost* loops (where memory-intensive
workloads spend almost all of their runtime), versus the registers that only
appear in outer-loop / prologue code.  The register-reduction pass
(:mod:`repro.compiler.regreduce`) uses the same analysis to pick spill
candidates.

Loop discovery delegates to the shared CFG layer
(:func:`repro.analysis.dataflow.backward_branch_spans`) so there is one
loop/liveness implementation in the tree; this module keeps only the
Figure-2 reporting shims on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from ..analysis.dataflow import backward_branch_spans
from ..isa.program import Program
from ..isa.registers import NUM_INT_REGS


@dataclass(frozen=True)
class Loop:
    """A static loop: the span [head, tail] of a backward branch."""

    head: int   # branch target (first pc of the loop body)
    tail: int   # pc of the backward branch

    def contains(self, other: "Loop") -> bool:
        return self.head <= other.head and other.tail <= self.tail and self != other

    @property
    def body(self) -> range:
        return range(self.head, self.tail + 1)


def find_loops(program: Program) -> List[Loop]:
    """All static loops (backward branches), outermost and inner.

    Built on the CFG layer's backward-branch spans (same syntactic
    definition: any branch whose resolved target is at or before it).
    """
    return [Loop(head=head, tail=tail)
            for head, tail in backward_branch_spans(program)]


def innermost_loops(program: Program) -> List[Loop]:
    """Loops whose body contains no other loop."""
    loops = find_loops(program)
    return [l for l in loops if not any(l.contains(o) for o in loops)]


def regs_in_range(program: Program, pcs) -> Set[int]:
    """Flat indices of registers referenced by instructions at ``pcs``."""
    out: Set[int] = set()
    for pc in pcs:
        out.update(r.flat for r in program[pc].regs)
    return out


def used_regs(program: Program) -> Set[int]:
    """Flat indices of every register the program references."""
    return regs_in_range(program, range(len(program)))


def inner_loop_regs(program: Program) -> Set[int]:
    """Registers referenced inside any innermost loop."""
    out: Set[int] = set()
    for loop in innermost_loops(program):
        out |= regs_in_range(program, loop.body)
    return out


def outer_only_regs(program: Program) -> Set[int]:
    """Registers used exclusively outside the innermost loops — the
    compiler register-reduction candidates of Section 4.2."""
    return used_regs(program) - inner_loop_regs(program)


@dataclass(frozen=True)
class UtilizationReport:
    """Figure-2 style register utilization numbers for one kernel."""

    name: str
    total_context: int          # architectural registers available
    used: int                   # registers the kernel touches at all
    inner: int                  # registers touched in innermost loops

    @property
    def used_fraction(self) -> float:
        return self.used / self.total_context

    @property
    def inner_fraction(self) -> float:
        """The Figure 2 metric: inner-loop context / full context."""
        return self.inner / self.total_context

    @property
    def inner_of_used(self) -> float:
        return self.inner / self.used if self.used else 0.0


def utilization(program: Program, name: str = "",
                total_context: int = NUM_INT_REGS * 2) -> UtilizationReport:
    """Compute the register-utilization report for ``program``."""
    return UtilizationReport(
        name=name or program.name,
        total_context=total_context,
        used=len(used_regs(program)),
        inner=len(inner_loop_regs(program)),
    )
