"""Basic-block instruction scheduling (list scheduling).

In-order single-issue cores stall on load-use dependences: a consumer
immediately after its load waits the full dcache latency.  This pass
reorders instructions *within basic blocks* to hoist independent work into
load shadows — the standard compiler help for the paper's core class
(CVA6-like, Table 1).  Semantics are preserved exactly: instructions only
move within their block and never across their data/memory/control
dependences.

Dependence edges considered:

* register RAW/WAR/WAW (flags count as a register);
* memory: stores order against all other memory ops; loads order against
  stores (no alias analysis — conservative);
* control: branches/halt terminate blocks and never move.

The heuristic is classic list scheduling with latency-weighted critical
path priority, using the core's execute/load latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..errors import InvariantError
from ..isa.instructions import Instruction, Opcode
from ..isa.program import Program

#: scheduling latency assumed for a load (dcache hit + use)
LOAD_LATENCY = 3


@dataclass
class ScheduleResult:
    program: Program
    blocks: int
    moved_instructions: int


def _block_boundaries(program: Program) -> List[Tuple[int, int]]:
    """Half-open [start, end) basic blocks (leaders: entry, branch targets,
    fall-throughs after branches)."""
    n = len(program)
    leaders = {0}
    for pc, inst in enumerate(program.instructions):
        if inst.is_branch and inst.target is not None:
            leaders.add(inst.target)
            leaders.add(pc + 1)
        if inst.is_halt:
            leaders.add(pc + 1)
    starts = sorted(l for l in leaders if l < n)
    return [(s, starts[i + 1] if i + 1 < len(starts) else n)
            for i, s in enumerate(starts)]


def _deps_within_block(insts: List[Instruction]) -> List[Set[int]]:
    """preds[i] = indices within the block instruction i depends on."""
    preds: List[Set[int]] = [set() for _ in insts]
    last_def: Dict[object, int] = {}
    last_uses: Dict[object, List[int]] = {}
    last_store: Optional[int] = None
    last_mems: List[int] = []
    FLAGS = "<flags>"

    for i, inst in enumerate(insts):
        reads = list(inst.srcs) + ([FLAGS] if inst.reads_flags else [])
        writes = list(inst.dests) + ([FLAGS] if inst.sets_flags else [])
        for r in reads:  # RAW
            if r in last_def:
                preds[i].add(last_def[r])
        for w in writes:  # WAR + WAW
            for u in last_uses.get(w, ()):
                preds[i].add(u)
            if w in last_def:
                preds[i].add(last_def[w])
        if inst.is_mem:
            if inst.is_store:
                for j in last_mems:  # stores order against all memory ops
                    preds[i].add(j)
            elif last_store is not None:  # loads order against stores
                preds[i].add(last_store)
        # bookkeeping
        for r in reads:
            last_uses.setdefault(r, []).append(i)
        for w in writes:
            last_def[w] = i
            last_uses[w] = []
        if inst.is_mem:
            last_mems.append(i)
            if inst.is_store:
                last_store = i
        if inst.is_branch or inst.is_halt:
            # block terminators depend on everything before them
            for j in range(i):
                preds[i].add(j)
        preds[i].discard(i)
    return preds


def _latency(inst: Instruction) -> int:
    if inst.is_load:
        return LOAD_LATENCY
    return inst.ex_latency


def _schedule_block(insts: List[Instruction]) -> Tuple[List[Instruction], int]:
    n = len(insts)
    if n <= 2:
        return insts, 0
    preds = _deps_within_block(insts)
    succs: List[Set[int]] = [set() for _ in insts]
    for i, ps in enumerate(preds):
        for p in ps:
            succs[p].add(i)

    # critical-path priority (longest latency chain to block end)
    height = [0] * n
    for i in range(n - 1, -1, -1):
        height[i] = _latency(insts[i]) + max(
            (height[s] for s in succs[i]), default=0)

    indeg = [len(ps) for ps in preds]
    ready_at = [0] * n
    order: List[int] = []
    available = {i for i in range(n) if indeg[i] == 0}
    clock = 0
    while available:
        # among dependency-ready instructions prefer those whose operands
        # are timed-ready, then highest critical path, then program order
        best = min(available,
                   key=lambda i: (max(0, ready_at[i] - clock), -height[i], i))
        available.remove(best)
        clock = max(clock + 1, ready_at[best] + 1)
        order.append(best)
        for s in succs[best]:
            indeg[s] -= 1
            ready_at[s] = max(ready_at[s], clock - 1 + _latency(insts[best]))
            if indeg[s] == 0:
                available.add(s)
    if len(order) != n:
        raise InvariantError(
            f"scheduler dropped instructions ({len(order)} of {n} ordered)")
    moved = sum(1 for pos, idx in enumerate(order) if pos != idx)
    return [insts[i] for i in order], moved


def schedule_program(program: Program) -> ScheduleResult:
    """List-schedule every basic block; returns the rewritten program."""
    blocks = _block_boundaries(program)
    new_insts: List[Instruction] = []
    pc_map: Dict[int, int] = {}
    moved_total = 0
    for start, end in blocks:
        block = program.instructions[start:end]
        scheduled, moved = _schedule_block(block)
        moved_total += moved
        # blocks keep their span, so positions (and thus branch targets,
        # which always aim at block leaders) are stable; map by identity
        # because identical instructions can repeat within a block
        ids = {id(inst): start + k for k, inst in enumerate(block)}
        for new_off, inst in enumerate(scheduled):
            pc_map[ids[id(inst)]] = start + new_off
        new_insts.extend(scheduled)
    pc_map[len(program)] = len(new_insts)

    # branch targets are block leaders, which never move; but remap anyway
    final: List[Instruction] = []
    for inst in new_insts:
        if inst.is_branch and inst.target is not None:
            # targets are leaders => unchanged, but honour the map if present
            target = inst.target
            final.append(Instruction(
                inst.opcode, rd=inst.rd, rn=inst.rn, rm=inst.rm, ra=inst.ra,
                imm=inst.imm, shift=inst.shift, cond=inst.cond,
                mode=inst.mode, target=target, label=inst.label,
                text=inst.text))
        else:
            final.append(inst)

    labels = dict(program.labels)  # leaders don't move
    return ScheduleResult(
        Program(instructions=final, labels=labels,
                symbols=dict(program.symbols),
                name=program.name + "+sched"),
        blocks=len(blocks), moved_instructions=moved_total)
