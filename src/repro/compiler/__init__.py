"""Compiler support: loop/register analysis and the register-reduction pass."""

from .liveness import (
    Loop,
    UtilizationReport,
    find_loops,
    inner_loop_regs,
    innermost_loops,
    outer_only_regs,
    used_regs,
    utilization,
)
from .scheduler import ScheduleResult, schedule_program
from .unroll import UnrollResult, unroll_program
from .regreduce import (
    ReduceResult,
    RegReduceError,
    SPILL_BASE_REG,
    TEMP_REGS,
    reduce_registers,
)

__all__ = [
    "Loop", "ReduceResult", "RegReduceError", "SPILL_BASE_REG",
    "ScheduleResult", "TEMP_REGS", "UtilizationReport", "find_loops",
    "inner_loop_regs", "innermost_loops", "outer_only_regs",
    "UnrollResult", "reduce_registers", "schedule_program",
    "unroll_program", "used_regs", "utilization",
]
