"""Table 1 configuration presets and the experiment configuration schema.

Every performance experiment in :mod:`repro.experiments` is described by a
:class:`RunConfig` and executed by :func:`repro.system.simulator.run_config`,
so benchmark drivers never hand-assemble cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..memory.cache import CacheConfig
from ..memory.dram import DRAMConfig

CORE_TYPES = ("inorder", "banked", "swctx", "virec", "nsf",
              "prefetch-full", "prefetch-exact", "ooo", "fgmt")


def ndp_dcache(size_kb: int = 8, latency: int = 2) -> CacheConfig:
    """NDP dcache per Table 1: 8 kB 4-way, 2-cycle, 1R/1W, 24 MSHRs."""
    return CacheConfig(name="dcache", size_bytes=size_kb * 1024, assoc=4,
                       latency=latency, mshrs=24)


def ndp_icache() -> CacheConfig:
    """NDP icache per Table 1: 32 kB 4-way, 2-cycle."""
    return CacheConfig(name="icache", size_bytes=32 * 1024, assoc=4,
                       latency=2, mshrs=4)


def table1_dram() -> DRAMConfig:
    """DDR5_6400, 1 rank, 2 channels, tRP-tCL-tRCD 14-14-14 (cycles @ 1 GHz)."""
    return DRAMConfig(channels=2, banks_per_channel=16,
                      t_rp=14, t_rcd=14, t_cl=14, t_burst=2)


#: clock ratio of the OoO host (2 GHz) to the NDP cores (1 GHz); experiment
#: drivers divide the OoO's cycle counts by this when comparing performance.
OOO_CLOCK_RATIO = 2.0

#: area-model reference points used across Figures 1 and 14 (Section 6.2)
OOO_AREA_RATIO_VS_INO = 19.1


@dataclass
class RunConfig:
    """One simulation run: workload x core type x parameters."""

    workload: str = "gather"
    core_type: str = "virec"
    n_threads: int = 8
    n_cores: int = 1
    #: elements (or rows) each thread processes
    n_per_thread: int = 64
    #: ViReC register-cache capacity as a fraction of the workloads' total
    #: active context (the 40%-100% sweep of Section 6.1); ignored by other
    #: core types.  ``rf_size`` overrides it when set.
    context_fraction: float = 1.0
    rf_size: Optional[int] = None
    policy: str = "lrc"
    dcache_kb: int = 8
    dcache_latency: int = 2
    crossbar_latency: int = 6
    dram_channels: int = 2
    dram_banks: int = 16
    #: "ddr5" (Table 1) or "hbm" (stacked-memory preset); "hbm" overrides
    #: the channel/bank fields above
    dram_preset: str = "ddr5"
    seed: int = 7
    workload_kwargs: Dict = field(default_factory=dict)
    #: per-thread offload stagger in cycles (task dispatch serialization)
    offload_stagger: int = 20
    #: optional fault-injection campaign: a mapping of
    #: :class:`~repro.faults.FaultConfig` fields (or an instance).  None
    #: (the default) wires nothing — runs are bit-identical to a build
    #: without the fault subsystem.
    faults: Optional[Dict] = None
    #: per-run cycle-budget watchdog: abort with DeadlockError once any
    #: core's local clock exceeds this (None = unlimited)
    max_cycles: Optional[int] = None
    #: optional telemetry campaign: a mapping of
    #: :class:`~repro.telemetry.TelemetryConfig` fields (or an instance).
    #: None (the default) wires nothing — runs are bit-identical to a
    #: build without the telemetry subsystem.
    telemetry: Optional[Dict] = None
    #: optional per-run metrics campaign: a mapping of
    #: :class:`~repro.metrics.MetricsConfig` fields (or an instance, or
    #: ``True`` for the defaults).  None (the default) wires nothing —
    #: runs are bit-identical to a build without the metrics subsystem,
    #: and the field is excluded from config/manifest digests when None so
    #: pre-existing digests and checkpoint-journal keys stay valid.
    metrics: Optional[Dict] = None
    #: optional cycle-attribution profiling: a mapping of
    #: :class:`~repro.profiling.ProfileConfig` fields (or an instance, or
    #: ``True`` for the defaults).  None (the default) wires nothing —
    #: runs are bit-identical to a build without the profiling subsystem,
    #: and the field is excluded from config/manifest digests when None so
    #: pre-existing digests and checkpoint-journal keys stay valid.
    profile: Optional[Dict] = None
    #: optional VSan sanitizer mode: a mapping of
    #: :class:`~repro.sanitizer.SanitizeConfig` fields (or an instance, or
    #: ``True`` for the default per-commit checks).  None (the default)
    #: wires nothing — runs are bit-identical to a build without the
    #: sanitizer subsystem; a sanitize-on run that finds no violation is
    #: still cycle-identical to a sanitize-off run.
    sanitize: Optional[Dict] = None
    #: step engine driving every core of the run: "compiled" (threaded-code
    #: closure chains, the default), "interpreted" (the reference loop the
    #: differential oracle pins the compiled engine against), or None for
    #: the default.  Observational-only by construction — the two engines
    #: are byte-identical in stats and architectural state — so like the
    #: other observation knobs the field is excluded from config/manifest
    #: digests when None *and* when set: engine choice never changes what
    #: run a digest names.
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        if self.core_type not in CORE_TYPES:
            raise ValueError(f"unknown core type {self.core_type!r}")
        if not 0.1 <= self.context_fraction <= 2.0:
            raise ValueError("context_fraction out of range")
        if self.dram_preset not in ("ddr5", "hbm"):
            raise ValueError(f"unknown dram preset {self.dram_preset!r}")
        if self.faults is not None:
            from ..faults import FaultConfig
            FaultConfig.from_spec(self.faults)  # validate eagerly
        if self.max_cycles is not None and self.max_cycles <= 0:
            raise ValueError("max_cycles must be positive")
        if self.telemetry is not None:
            from ..telemetry import TelemetryConfig
            TelemetryConfig.from_spec(self.telemetry)  # validate eagerly
        if self.metrics is not None:
            from ..metrics import MetricsConfig
            MetricsConfig.from_spec(self.metrics)  # validate eagerly
        if self.profile is not None:
            from ..profiling import ProfileConfig
            ProfileConfig.from_spec(self.profile)  # validate eagerly
        if self.sanitize is not None:
            from ..sanitizer import SanitizeConfig
            SanitizeConfig.from_spec(self.sanitize)  # validate eagerly
        if self.engine is not None:
            from ..core.engine import resolve_engine
            resolve_engine(self.engine)  # validate eagerly

    def with_(self, **kw) -> "RunConfig":
        return replace(self, **kw)

    def resolve_rf_size(self, active_context: int) -> int:
        """Physical register-cache entries for this run."""
        if self.rf_size is not None:
            return self.rf_size
        return max(8, round(self.context_fraction * self.n_threads * active_context))
