"""Subsystem wiring registry for the simulation driver.

``run_config`` used to carry one copy-paste ``_wire_<subsystem>`` function
per opt-in layer (fault injection, telemetry, VSan), each encoding the same
shape: *is it asked for in the RunConfig? build its config, attach it to
every core, hand back a session-like handle, finalize it at the right
moment*.  Adding a layer meant editing the driver in three places (wiring,
finalize, and the ooo-core rejection list).

This module replaces that with a registry of :class:`SubsystemPlugin`
records.  Each subsystem package registers its own plugin at import time
(see ``repro/faults/__init__.py``, ``repro/telemetry/__init__.py``,
``repro/sanitizer/__init__.py``), and the driver just iterates — the next
layer (a replayer, checkpointing, ...) wires itself without touching
``simulator.py``.

Contracts preserved from the hand-written wiring:

* **Order matters.**  Plugins wire in ascending ``order``: fault injection
  (order 10) must come before telemetry (20) so fault events reach the
  session's event ring (``core.fault_hook.event_sink``), and before the
  sanitizer (30) so injected corruption is visible to the shadow checks.
* **Finalize runs in reverse wiring order**, in two stages matching the
  driver's phases: ``finalize_simulate`` (inside the simulate profiling
  phase, e.g. VSan's run-end register sweep, which may raise) and
  ``finalize`` (after it, e.g. flushing telemetry interval samples).
* **Strictly opt-in.**  A plugin's ``wire`` returns ``None`` when its
  config is absent or disabled; the run is then bit-identical to a build
  without that subsystem.
* The ooo host core runs none of the timeline-engine layers: a plugin with
  ``ooo_error`` set makes ``run_config`` reject an enabled config for
  ``core_type="ooo"`` with exactly that message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = ["SubsystemPlugin", "register", "registered", "get"]


@dataclass(frozen=True)
class SubsystemPlugin:
    """One opt-in simulation subsystem and how the driver wires it."""

    #: registry key; also the ``RunResult`` attribute the handle lands on
    #: when one of the legacy fields (``telemetry``/``sanitizer``) matches
    name: str
    #: does this RunConfig ask for the subsystem (used for ooo rejection)?
    enabled: Callable[[object], bool]
    #: attach to every core; returns the session-like handle or None.
    #: Signature: ``wire(cfg, node, instances) -> Optional[handle]``
    wire: Callable[[object, object, List[object]], Optional[object]]
    #: called inside the simulate phase, after the run, with
    #: ``(handle, node_result)`` — may raise (e.g. SanitizerViolation)
    finalize_simulate: Optional[Callable[[object, object], None]] = None
    #: called after the simulate phase with ``(handle,)``
    finalize: Optional[Callable[[object], None]] = None
    #: rejection message for the ooo host core (None = allowed there)
    ooo_error: Optional[str] = None
    #: wiring position; ties broken by registration sequence
    order: int = 100


_REGISTRY: Dict[str, SubsystemPlugin] = {}
_SEQ: Dict[str, int] = {}
_booted = False


def register(plugin: SubsystemPlugin) -> SubsystemPlugin:
    """Register (or re-register, idempotently by name) a subsystem plugin."""
    if plugin.name not in _SEQ:
        _SEQ[plugin.name] = len(_SEQ)
    _REGISTRY[plugin.name] = plugin
    return plugin


def _ensure_builtins() -> None:
    """Import the built-in subsystem packages so they self-register.

    The driver imports them lazily (they are heavyweight and opt-in), so
    the registry bootstraps them on first use instead of at module import.
    """
    global _booted
    if _booted:
        return
    _booted = True
    from .. import faults, metrics, profiling, sanitizer, telemetry  # noqa: F401  (self-register)


def registered() -> List[SubsystemPlugin]:
    """All plugins in wiring order (ascending ``order``, then registration)."""
    _ensure_builtins()
    return sorted(_REGISTRY.values(),
                  key=lambda p: (p.order, _SEQ[p.name]))


def get(name: str) -> Optional[SubsystemPlugin]:
    """The registered plugin named ``name`` (None when unknown)."""
    _ensure_builtins()
    return _REGISTRY.get(name)
