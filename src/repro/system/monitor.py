"""Live sweep observability: event log, heartbeats, progress panel.

A multi-hour grid under ``run_grid`` is a black box: the checkpoint
journal says what *finished*, but nothing says what is running right now,
how fast, or whether a worker has silently hung.  This module adds the
missing runtime surface, all rooted in one **sweep directory**:

``sweep_events.jsonl``
    Structured, append-only event log.  The parent writes lifecycle rows
    (``sweep_start``, ``row_resumed``, ``sweep_end``); each worker
    appends ``row_start`` / ``row_ok`` / ``row_fail`` rows directly (one
    atomic ``O_APPEND`` line each), so the log is live even while the
    parent blocks on the pool.
``heartbeats/<pid>.hb``
    Touched by each worker around every row; the monitor turns file
    mtimes into per-worker "last seen" ages, which is how a hung or
    OOM-killed worker becomes visible before the pool reports anything.
``trace.json``
    The merged parent+workers Chrome trace
    (:class:`~repro.exec.spans.SweepTrace`), written at sweep end.

:func:`read_state` folds the directory into a :class:`SweepState`;
:func:`render_panel` turns a state into the refreshing text panel used by
``repro sweep --live`` and ``repro monitor <dir>`` — pure functions, so
the panel is testable without a terminal or a running sweep.

Everything here times the *host-side fleet*; readings never reach
simulated state or digests (this module is on the linter's wall-clock
allowlist, like the profiler).
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["SweepObservability", "SweepState", "monitor_loop",
           "read_state", "render_panel"]

EVENTS_NAME = "sweep_events.jsonl"
HEARTBEAT_DIR = "heartbeats"
TRACE_NAME = "trace.json"

#: a worker whose heartbeat is older than this is flagged in the panel
STALE_AFTER_S = 30.0


class SweepObservability:
    """One sweep's observability surface, rooted in a directory.

    Built by ``run_grid(observe=...)`` (or the CLI); hands workers their
    per-task obs spec, owns the parent-side :class:`SweepTrace`, and
    writes the end-of-sweep artifacts (trace, fleet metrics).
    """

    def __init__(self, root: str, spans: bool = True,
                 label: str = "sweep") -> None:
        from ..exec.spans import SweepTrace
        self.root = root
        self.spans = spans
        os.makedirs(root, exist_ok=True)
        self.heartbeat_dir = os.path.join(root, HEARTBEAT_DIR)
        os.makedirs(self.heartbeat_dir, exist_ok=True)
        self.events_path = os.path.join(root, EVENTS_NAME)
        self.trace = SweepTrace(label=label)

    @classmethod
    def ensure(cls, observe) -> "SweepObservability":
        """Coerce ``run_grid``'s ``observe=`` argument (path or instance)."""
        if isinstance(observe, cls):
            return observe
        return cls(str(observe))

    def task_obs(self) -> Dict:
        """The obs spec attached to one worker task (stamps t_submit now)."""
        from ..exec.spans import task_spec
        return task_spec(self.trace.t0, spans=self.spans,
                         events_path=self.events_path,
                         heartbeat_dir=self.heartbeat_dir)

    def append_event(self, ev: str, **fields) -> None:
        """Parent-side event row (same log, same atomic-append discipline)."""
        row = {"ev": ev, "pid": os.getpid(),
               "t": round(time.monotonic() - self.trace.t0, 6)}
        row.update(fields)
        try:
            fd = os.open(self.events_path,
                         os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
            try:
                os.write(fd, (json.dumps(row, sort_keys=True)
                              + "\n").encode())
            finally:
                os.close(fd)
        except OSError:
            pass

    def write_trace(self, metadata: Optional[dict] = None) -> str:
        path = os.path.join(self.root, TRACE_NAME)
        self.trace.write(path, metadata=metadata)
        return path

    def write_metrics(self, registry) -> str:
        path = os.path.join(self.root, "metrics.json")
        with open(path, "w") as f:
            json.dump(registry.snapshot(), f, indent=1, sort_keys=True)
            f.write("\n")
        return path


# -- state ------------------------------------------------------------------
@dataclass
class SweepState:
    """Everything the progress panel needs, parsed from a sweep directory."""

    total: int = 0
    done: int = 0                    # ok + failed + resumed
    ok: int = 0
    failed: int = 0
    resumed: int = 0
    running: List[int] = field(default_factory=list)   # started, not finished
    rate: float = 0.0                # finished rows per second
    eta_s: Optional[float] = None
    elapsed_s: float = 0.0           # latest event timestamp seen
    finished: bool = False
    #: worker pid -> heartbeat age in seconds (None: never beat)
    workers: Dict[int, Optional[float]] = field(default_factory=dict)
    last_event: Optional[Dict] = None

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 0.0


def _read_events(path: str) -> List[Dict]:
    """Event rows from a live JSONL log, torn-tail tolerant.

    The log is appended to by concurrently running workers and read while
    the sweep is still writing, so the reader must survive anything a
    crash or a mid-append read can leave behind: a torn trailing line,
    a partial JSON value that *parses* but is not an object, or foreign
    garbage.  Malformed lines are skipped with one summary warning
    (matching the checkpoint-journal loader's hardening) — the monitor
    must never raise on its own event log.
    """
    rows: List[Dict] = []
    if not os.path.exists(path):
        return rows
    torn = 0
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                torn += 1  # torn tail line mid-append
                continue
            if not isinstance(row, dict):
                torn += 1  # valid JSON but not an event object
                continue
            rows.append(row)
    if torn:
        warnings.warn(
            f"event log {path}: skipped {torn} torn or malformed "
            f"line(s)", RuntimeWarning, stacklevel=2)
    return rows


def _as_float(value, default: float = 0.0) -> float:
    try:
        return float(value)
    except (TypeError, ValueError):
        return default


def _as_int(value, default: int = -1) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        return default


def read_state(root: str, now: Optional[float] = None) -> SweepState:
    """Fold a sweep directory's event log + heartbeats into a SweepState.

    ``now`` (``time.time()`` default) only affects heartbeat ages, so
    tests pass a fixed value.
    """
    state = SweepState()
    started: Dict[int, bool] = {}
    for row in _read_events(os.path.join(root, EVENTS_NAME)):
        ev = row.get("ev")
        state.elapsed_s = max(state.elapsed_s, _as_float(row.get("t", 0.0)))
        state.last_event = row
        if ev == "sweep_start":
            state.total = _as_int(row.get("total", 0), default=0)
        elif ev == "row_start":
            started[_as_int(row.get("index", -1))] = True
        elif ev == "row_ok":
            state.ok += 1
            started.pop(_as_int(row.get("index", -1)), None)
        elif ev == "row_fail":
            state.failed += 1
            started.pop(_as_int(row.get("index", -1)), None)
        elif ev == "row_resumed":
            state.resumed += 1
        elif ev == "sweep_end":
            state.finished = True
    state.running = sorted(started)
    state.done = state.ok + state.failed + state.resumed
    fresh = state.ok + state.failed  # resumed rows cost ~no time
    if fresh and state.elapsed_s > 0:
        state.rate = fresh / state.elapsed_s
    remaining = max(0, state.total - state.done)
    if state.rate > 0 and not state.finished:
        state.eta_s = remaining / state.rate
    if now is None:
        now = time.time()
    hb_dir = os.path.join(root, HEARTBEAT_DIR)
    if os.path.isdir(hb_dir):
        for name in sorted(os.listdir(hb_dir)):
            if not name.endswith(".hb"):
                continue
            try:
                pid = int(name[:-3])
                age = max(0.0, now - os.path.getmtime(
                    os.path.join(hb_dir, name)))
            except (ValueError, OSError):
                continue
            state.workers[pid] = age
    return state


# -- rendering ---------------------------------------------------------------
def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def render_panel(state: SweepState, width: int = 64) -> str:
    """The live progress panel as plain text (pure function of ``state``)."""
    bar_w = max(10, width - 24)
    filled = int(round(state.fraction * bar_w))
    bar = "#" * filled + "-" * (bar_w - filled)
    status = "done" if state.finished else "running"
    lines = [
        f"sweep {status}: {state.done}/{state.total} rows "
        f"({state.ok} ok, {state.failed} failed, {state.resumed} resumed)",
        f"[{bar}] {state.fraction * 100:5.1f}%  "
        f"{state.rate:.2f} rows/s  ETA {_fmt_eta(state.eta_s)}",
    ]
    if state.running:
        shown = ", ".join(str(i) for i in state.running[:8])
        more = f" (+{len(state.running) - 8})" if len(state.running) > 8 else ""
        lines.append(f"in flight: rows {shown}{more}")
    if state.workers:
        parts = []
        for pid in sorted(state.workers):
            age = state.workers[pid]
            tag = "?" if age is None else f"{age:.1f}s"
            if age is not None and age > STALE_AFTER_S:
                tag += " STALE"
            parts.append(f"{pid}:{tag}")
        lines.append("workers (pid:last beat): " + "  ".join(parts))
    if state.last_event is not None:
        ev = state.last_event
        detail = " ".join(f"{k}={ev[k]}" for k in ("index", "error", "key")
                          if k in ev)
        lines.append(f"last event: {ev.get('ev')} {detail}".rstrip())
    return "\n".join(lines)


def monitor_loop(root: str, refresh: float = 1.0, follow: bool = True,
                 out=None, max_iterations: Optional[int] = None) -> SweepState:
    """Render the panel for ``root`` until the sweep ends (or once).

    ``follow=False`` renders a single snapshot and returns.  ``out``
    defaults to stdout; tests pass a list-appending callable.
    """
    import sys

    def _emit(text: str) -> None:
        if out is not None:
            out(text)
        else:
            sys.stdout.write(text + "\n")
            sys.stdout.flush()

    iterations = 0
    while True:
        state = read_state(root)
        _emit(render_panel(state))
        iterations += 1
        if not follow or state.finished:
            return state
        if max_iterations is not None and iterations >= max_iterations:
            return state
        time.sleep(refresh)
        _emit("")  # blank separator between refreshes
