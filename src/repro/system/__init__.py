"""System-level assembly: Table 1 configs, multi-core nodes, offload, driver."""

from .config import (
    CORE_TYPES,
    OOO_AREA_RATIO_VS_INO,
    OOO_CLOCK_RATIO,
    RunConfig,
    ndp_dcache,
    ndp_icache,
    table1_dram,
)
from ..errors import RunFailure
from .node import AddressSkew, NearMemoryNode, NodeResult
from .offload import offload_contexts
from .manifest import RunManifest, config_key
from .plugins import SubsystemPlugin
from .simulator import ResultList, RunResult, run_config, sweep
from .sweeps import GridRows, best_by, run_grid, sweep_grid

__all__ = [
    "AddressSkew", "CORE_TYPES", "GridRows", "NearMemoryNode", "NodeResult",
    "OOO_AREA_RATIO_VS_INO", "OOO_CLOCK_RATIO", "ResultList", "RunConfig",
    "RunFailure", "RunManifest", "RunResult", "SubsystemPlugin", "best_by",
    "config_key", "ndp_dcache", "ndp_icache", "offload_contexts",
    "run_config", "run_grid", "sweep", "sweep_grid", "table1_dram",
]
