"""System-level assembly: Table 1 configs, multi-core nodes, offload, driver."""

from .config import (
    CORE_TYPES,
    OOO_AREA_RATIO_VS_INO,
    OOO_CLOCK_RATIO,
    RunConfig,
    ndp_dcache,
    ndp_icache,
    table1_dram,
)
from .node import AddressSkew, NearMemoryNode, NodeResult
from .offload import offload_contexts
from .manifest import RunManifest
from .simulator import RunResult, run_config, sweep
from .sweeps import best_by, run_grid, sweep_grid

__all__ = [
    "AddressSkew", "CORE_TYPES", "NearMemoryNode", "NodeResult",
    "OOO_AREA_RATIO_VS_INO", "OOO_CLOCK_RATIO", "RunConfig", "RunManifest",
    "RunResult", "best_by", "ndp_dcache", "ndp_icache", "offload_contexts",
    "run_config", "run_grid", "sweep", "sweep_grid", "table1_dram",
]
