"""Parameter-grid sweeps over RunConfigs, with production-grade resilience.

A small utility for the exploration workflows users actually run: build a
cartesian grid of :class:`RunConfig` variations, simulate them all, and get
results back as rows ready for :func:`repro.stats.reporting.rows_to_csv`
or the ASCII plotters.

The runner is built for multi-hour grids:

* **per-config error isolation** — a config that deadlocks, fails its
  functional check, or escapes a fault is recorded as a structured
  :class:`~repro.errors.RunFailure` on the returned rows' ``failures``
  attribute instead of aborting the whole grid;
* **watchdogs** — a per-config simulated-cycle budget (``max_cycles``) and
  wall-clock timeout (``timeout_s``, SIGALRM-based, main thread only);
* **bounded retry** — transient failures (deadlock, timeout, fault escape)
  are retried up to ``retries`` times under a perturbed seed;
* **checkpoint/resume** — every finished row (success or failure) is
  appended to a crash-safe JSONL journal; ``resume=True`` replays completed
  rows from the journal and re-runs only failed or missing configs.

Example::

    grid = sweep_grid(
        RunConfig(workload="gather", core_type="virec"),
        context_fraction=[0.4, 0.6, 0.8],
        n_threads=[4, 8],
    )
    rows = run_grid(grid, checkpoint="sweep.jsonl", resume=True, retries=1)
    if rows.failures:
        ...  # inspect rows.failures, re-invoke with resume=True later
"""

from __future__ import annotations

import itertools
import json
import os
import signal
import threading
import time
import warnings
from contextlib import contextmanager
from dataclasses import asdict
from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import (RunFailure, SimulationError, TRANSIENT_ERRORS,
                      WatchdogTimeout)
from .config import RunConfig
from .manifest import config_key
from .simulator import RunResult, run_config


def sweep_grid(base: RunConfig, **axes: Sequence) -> List[RunConfig]:
    """Cartesian product of ``axes`` applied over ``base``.

    Each axis keyword must be a RunConfig field; values are swept in the
    given order, last axis fastest.
    """
    for field in axes:
        if not hasattr(base, field):
            raise ValueError(f"RunConfig has no field {field!r}")
    names = list(axes)
    combos = itertools.product(*(axes[name] for name in names))
    return [base.with_(**dict(zip(names, combo))) for combo in combos]


#: columns every row carries regardless of how the grid was built
_BASE_COLUMNS = ("workload", "core_type", "n_threads", "n_cores",
                 "context_fraction", "policy")
_FIELD_DEFAULTS: Dict = {}


def _config_row(cfg: RunConfig) -> Dict:
    """Flatten a RunConfig into row columns.

    The six classic columns are always present; every other field is
    emitted only when it differs from the RunConfig default, so sweeping
    over ``seed``, ``n_per_thread``, ``dcache_kb``, ``dcache_latency``,
    ``workload_kwargs``, ... yields distinguishable rows without widening
    every table with constant columns.
    """
    if not _FIELD_DEFAULTS:
        _FIELD_DEFAULTS.update(asdict(RunConfig()))
    row: Dict = {k: getattr(cfg, k) for k in _BASE_COLUMNS}
    for key, value in asdict(cfg).items():
        if key in row or value == _FIELD_DEFAULTS.get(key):
            continue
        if isinstance(value, dict):
            value = json.dumps(value, sort_keys=True, default=str)
        row[key] = value
    return row


def _result_row(cfg: RunConfig, result: RunResult) -> Dict:
    row = _config_row(cfg)
    row["cycles"] = result.cycles
    row["instructions"] = result.instructions
    row["ipc"] = result.ipc
    if result.rf_hit_rate is not None:
        row["rf_hit_rate"] = result.rf_hit_rate
    return row


class GridRows(List[Dict]):
    """Successful sweep rows; isolated failures ride along in ``failures``.

    A plain ``list`` in every other respect, so downstream CSV/plot helpers
    need no changes.  ``resumed`` counts rows replayed from the checkpoint
    journal rather than re-simulated.  When the grid ran observed
    (``observe=``/``metrics=``), ``metrics`` carries the fleet
    :class:`~repro.metrics.MetricsRegistry` and ``observability`` the
    :class:`~repro.system.monitor.SweepObservability` surface (both None
    otherwise).
    """

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.failures: List[RunFailure] = []
        self.resumed: int = 0
        self.metrics = None
        self.observability = None


# -- watchdogs ---------------------------------------------------------------
@contextmanager
def _wall_clock_limit(seconds: Optional[float]):
    """Raise WatchdogTimeout if the body runs longer than ``seconds``.

    SIGALRM-based, so it only engages on the main thread of a POSIX
    process; elsewhere it degrades to no limit (the cycle-budget watchdog
    still applies).
    """
    usable = (seconds is not None and hasattr(signal, "SIGALRM")
              and threading.current_thread() is threading.main_thread())
    if not usable:
        yield
        return

    def _expire(signum, frame):
        # fish the wedged core's progress out of the interrupted stack so
        # the timeout message says where the simulation stopped
        commit_tail = committed = -1
        f = frame
        while f is not None:
            obj = f.f_locals.get("self")
            tail = getattr(obj, "commit_tail", None)
            threads = getattr(obj, "threads", None)
            if tail is not None and threads is not None:
                commit_tail = int(tail)
                committed = sum(int(getattr(th, "instructions", 0))
                                for th in threads)
                break
            f = f.f_back
        raise WatchdogTimeout(f"wall-clock limit of {seconds}s exceeded",
                              commit_tail=commit_tail, committed=committed)

    previous = signal.signal(signal.SIGALRM, _expire)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def _run_isolated(index: int, cfg: RunConfig, check: bool, retries: int,
                  timeout_s: Optional[float], max_cycles: Optional[int],
                  key: str):
    """Run one config with watchdogs and bounded reseeded retries.

    Returns ``(result, failure, exception)`` — exactly one of result or
    failure is set; the original exception rides along so fail-fast mode
    can re-raise it untouched.
    """
    if max_cycles is not None and cfg.max_cycles is None:
        cfg = cfg.with_(max_cycles=max_cycles)
    # host-side watchdog, never reaches simulated state
    started = time.monotonic()  # lint: ignore[VRC002]
    attempt = 0
    while True:
        # a retry perturbs the seed: transient failures (deadlock windows,
        # fault-victim choices) depend on it, deterministic ones do not
        run_cfg = cfg if attempt == 0 else cfg.with_(seed=cfg.seed
                                                     + 7919 * attempt)
        try:
            with _wall_clock_limit(timeout_s):
                return run_config(run_cfg, check=check), None, None
        except SimulationError as exc:
            if isinstance(exc, TRANSIENT_ERRORS) and attempt < retries:
                attempt += 1
                continue
            failure = RunFailure.from_exception(
                exc, index=index, config=asdict(cfg), attempts=attempt + 1,
                elapsed_s=time.monotonic() - started,  # lint: ignore[VRC002]
                key=key)
            return None, failure, exc


# -- checkpoint journal ------------------------------------------------------
def _load_journal(path: str) -> Dict[str, Dict]:
    """Latest journal record per config key (later lines win).

    A checkpoint can end in a torn line (the writing process died
    mid-append) or contain foreign garbage; resume must never die on its
    own journal, so malformed lines are skipped with a warning — the
    affected configs simply re-run.
    """
    records: Dict[str, Dict] = {}
    if not os.path.exists(path):
        return records
    torn = 0
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                torn += 1  # torn tail line from a crash mid-append
                continue
            if not isinstance(rec, dict) or "key" not in rec:
                torn += 1
                continue
            records[rec["key"]] = rec
    if torn:
        warnings.warn(
            f"checkpoint {path}: skipped {torn} torn or malformed "
            f"line(s); affected configs will re-run", RuntimeWarning,
            stacklevel=2)
    return records


class _Journal:
    """Append-only, crash-safe JSONL writer (one fsynced line per row)."""

    def __init__(self, path: str) -> None:
        self._f = open(path, "a")

    def append(self, record: Dict) -> None:
        self._f.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        self._f.flush()
        os.fsync(self._f.fileno())

    def close(self) -> None:
        self._f.close()


def run_grid(configs: Iterable[RunConfig], check: bool = True,
             progress=None, *, on_error: str = "isolate", retries: int = 0,
             timeout_s: Optional[float] = None,
             max_cycles: Optional[int] = None,
             checkpoint: Optional[str] = None,
             resume: bool = False, jobs: Optional[int] = None,
             backend=None, observe=None, manifest=None,
             metrics=None, ledger=None) -> GridRows:
    """Simulate every config; returns flat result rows (config + metrics).

    ``progress`` is an optional callable invoked as ``progress(i, total,
    result)`` after each run (hook for logging long sweeps); for a failed
    config ``result`` is the :class:`~repro.errors.RunFailure`.

    Resilience (see the module docstring): ``on_error="isolate"`` (default)
    records failures on ``rows.failures`` and keeps sweeping, while
    ``"raise"`` restores fail-fast semantics.  ``retries`` bounds reseeded
    retries of transient failures; ``timeout_s``/``max_cycles`` are
    per-config watchdogs.  ``checkpoint`` appends every finished row to a
    JSONL journal; with ``resume=True`` completed rows are replayed from it
    and only failed or missing configs are re-simulated.

    ``jobs``/``backend`` select the execution backend (see
    :mod:`repro.exec`).  With ``jobs=N`` the pending configs fan out over N
    spawn workers; rows, failures, journal records, and progress callbacks
    still arrive in config order, and the row set is identical to a serial
    run.  Parallel fail-fast (``on_error="raise"``) raises the first (by
    config order) failure after the batch completes, rather than aborting
    mid-grid.  The journal is written by this (parent) process only, so
    checkpoint/resume semantics are unchanged.  An abrupt worker death
    (:class:`~repro.exec.WorkerCrash`) is converted into a transient
    :class:`~repro.errors.RunFailure` carrying the lost chunk's indices
    and exit context instead of aborting the sweep.

    Observability (all opt-in, see :mod:`repro.system.monitor`):
    ``observe`` is a sweep directory (or prepared
    :class:`~repro.system.monitor.SweepObservability`) that receives the
    live JSONL event log, worker heartbeat files, and the merged
    parent+workers Chrome trace.  ``manifest`` is a
    :class:`~repro.system.manifest.RunManifest` populated with every
    freshly simulated result in config order — serial and ``jobs=N``
    sweeps of the same grid produce identical manifests.  ``metrics`` is a
    fleet :class:`~repro.metrics.MetricsRegistry` accumulating rows by
    status, per-stage host wall-clock, and every worker-shipped per-run
    metrics snapshot (created automatically when ``observe`` is set);
    it is exposed as ``rows.metrics``.

    ``ledger`` (a path or an open :class:`~repro.ledger.Recorder`) appends
    every freshly simulated successful row to the run ledger
    (``source="grid"``); resumed rows are not re-recorded (they carry no
    new measurement).  When ``backend`` is a
    :class:`~repro.ledger.CachedBackend` the argument is ignored — the
    cache records its own misses — and the fleet metrics registry (when
    one exists) is bound to the cache so ``ledger.hit``/``ledger.miss``/
    ``ledger.stale`` land in the sweep's metrics snapshot.
    """
    if on_error not in ("raise", "isolate"):
        raise ValueError(f"on_error must be 'raise' or 'isolate', "
                         f"not {on_error!r}")
    if resume and not checkpoint:
        raise ValueError("resume=True requires a checkpoint path")
    from ..exec import (SerialBackend, WorkerCrash, grid_worker,
                        resolve_backend)
    backend = resolve_backend(jobs, backend)
    configs = list(configs)
    previous = _load_journal(checkpoint) if (checkpoint and resume) else {}
    journal = _Journal(checkpoint) if checkpoint else None
    obs = None
    if observe is not None:
        from .monitor import SweepObservability
        obs = SweepObservability.ensure(observe)
    if metrics is None and obs is not None:
        from ..metrics import MetricsRegistry
        metrics = MetricsRegistry()
    rows = GridRows()
    rows.metrics = metrics
    rows.observability = obs
    keys = [config_key(cfg) for cfg in configs]
    recorder = None
    owns_recorder = False
    if ledger is not None:
        from ..ledger.store import open_recorder
        recorder, owns_recorder = open_recorder(ledger, backend)
    if metrics is not None and hasattr(backend, "bind_metrics"):
        # a CachedBackend adopts the fleet registry so its hit/miss/stale
        # counters land in the sweep's metrics snapshot
        backend.bind_metrics(metrics)

    def _is_resumed(i: int) -> bool:
        done = previous.get(keys[i])
        if done is None or done.get("status") != "ok":
            return False
        if "row" not in done:
            # an "ok" record without its payload (partial write from an
            # older crash): treat the config as not-yet-run
            warnings.warn(
                f"checkpoint record for {keys[i]} has no row; re-running",
                RuntimeWarning, stacklevel=2)
            return False
        return True

    def _fold_fleet(result=None, status: str = "ok") -> None:
        """Accumulate one finished row into the fleet registry."""
        if metrics is None:
            return
        metrics.counter("sweep_rows_total",
                        "grid rows by final status").inc(status=status)
        if result is None:
            return
        host = getattr(result, "host_profile", None)
        if host:
            stage = metrics.counter(
                "sweep_stage_seconds",
                "host wall-clock by simulator stage (seconds)")
            for name, secs in (host.get("phases_s") or {}).items():
                stage.inc(float(secs), stage=name)
        snap = getattr(result, "metrics", None)
        if snap is not None:
            if hasattr(snap, "snapshot"):
                snap = snap.snapshot()
            metrics.merge(snap)

    def _crash_outcome(crash: WorkerCrash, index: int, cfg: RunConfig):
        """A WorkerCrash sentinel as a standard (result, failure, exc)."""
        err = crash.to_error()
        failure = RunFailure.from_exception(
            err, index=index, config=asdict(cfg),
            attempts=crash.attempt, key=keys[index])
        if obs is not None:
            # the worker died before it could report this row itself
            obs.append_event("row_fail", index=index, key=keys[index],
                             error=failure.error_type)
        return None, failure, err

    def _run_serial_observed(i: int, cfg: RunConfig, key: str):
        """Serial row under observability: events + parent-side spans."""
        from ..exec.spans import SpanRecorder
        spec = obs.task_obs()
        obs.trace.dispatch(i)
        obs.append_event("row_start", index=i, key=key)
        rec = SpanRecorder(spec, i) if spec.get("spans") else None
        outcome = _run_isolated(i, cfg, check, retries, timeout_s,
                                max_cycles, key)
        if rec is not None:
            rec.phase("simulate")
            obs.trace.merge_spans(rec.records)
        _, failure, _ = outcome
        if failure is None:
            obs.append_event("row_ok", index=i, key=key)
        else:
            obs.append_event("row_fail", index=i, key=key,
                             error=failure.error_type)
        return outcome

    if obs is not None:
        obs.append_event("sweep_start", total=len(configs),
                         jobs=backend.jobs)

    outcomes: Dict[int, tuple] = {}
    if not isinstance(backend, SerialBackend):
        tasks = []
        for i, cfg in enumerate(configs):
            if _is_resumed(i):
                continue
            task = (i, cfg, check, retries, timeout_s, max_cycles, keys[i])
            if obs is not None:
                obs.trace.dispatch(i)
                task = task + (obs.task_obs(),)
            tasks.append(task)
        for task, outcome in zip(tasks, backend.map(grid_worker, tasks)):
            if isinstance(outcome, WorkerCrash):
                outcomes[task[0]] = _crash_outcome(outcome, task[0], task[1])
                continue
            if obs is not None and len(outcome) > 3:
                obs.trace.merge_spans(outcome[3])
            outcomes[task[0]] = outcome[:3]
    try:
        for i, cfg in enumerate(configs):
            key = keys[i]
            if _is_resumed(i):
                rows.append(previous[key]["row"])
                rows.resumed += 1
                _fold_fleet(status="resumed")
                if obs is not None:
                    obs.append_event("row_resumed", index=i, key=key)
                if progress is not None:
                    progress(i + 1, len(configs), None)
                continue
            if i in outcomes:
                result, failure, exc = outcomes[i]
            elif obs is not None:
                result, failure, exc = _run_serial_observed(i, cfg, key)
            else:
                # serial path: call the module-global _run_isolated /
                # run_config inline so monkeypatched entry points apply
                result, failure, exc = _run_isolated(i, cfg, check, retries,
                                                     timeout_s, max_cycles,
                                                     key)
            if result is not None:
                row = _result_row(cfg, result)
                rows.append(row)
                if manifest is not None:
                    manifest.add(result)
                if recorder is not None:
                    recorder.record_result(result, source="grid",
                                           checked=check)
                _fold_fleet(result=result, status="ok")
                if journal is not None:
                    journal.append({"key": key, "index": i, "status": "ok",
                                    "row": row})
                if progress is not None:
                    progress(i + 1, len(configs), result)
                continue
            _fold_fleet(status="crash"
                        if failure.error_type == "WorkerCrashError"
                        else "fail")
            if journal is not None:
                journal.append({"key": key, "index": i, "status": "fail",
                                "failure": failure.as_dict()})
            if on_error == "raise":
                raise exc
            rows.failures.append(failure)
            if progress is not None:
                progress(i + 1, len(configs), failure)
    finally:
        if journal is not None:
            journal.close()
        if owns_recorder and recorder is not None:
            recorder.close()
        if obs is not None:
            obs.append_event("sweep_end", ok=len(rows) - rows.resumed,
                             failed=len(rows.failures),
                             resumed=rows.resumed)
            obs.write_trace(metadata={"rows": len(rows),
                                      "failures": len(rows.failures)})
            if metrics is not None:
                obs.write_metrics(metrics)
    return rows


def best_by(rows: Sequence[Dict], metric: str = "ipc",
            group: Sequence[str] = ("workload",)) -> List[Dict]:
    """Best row per group key (highest ``metric``).

    Rows missing ``metric`` are skipped — a mixed banked/virec grid has no
    ``rf_hit_rate`` on the banked rows, and failed configs have no metrics
    at all.
    """
    best: Dict[tuple, Dict] = {}
    for row in rows:
        if metric not in row:
            continue
        key = tuple(row.get(g) for g in group)
        if key not in best or row[metric] > best[key][metric]:
            best[key] = row
    return [best[k] for k in sorted(best)]
