"""Parameter-grid sweeps over RunConfigs.

A small utility for the exploration workflows users actually run: build a
cartesian grid of :class:`RunConfig` variations, simulate them all, and get
results back as rows ready for :func:`repro.stats.reporting.rows_to_csv`
or the ASCII plotters.

Example::

    grid = sweep_grid(
        RunConfig(workload="gather", core_type="virec"),
        context_fraction=[0.4, 0.6, 0.8],
        n_threads=[4, 8],
    )
    rows = run_grid(grid)
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Sequence

from .config import RunConfig
from .simulator import RunResult, run_config


def sweep_grid(base: RunConfig, **axes: Sequence) -> List[RunConfig]:
    """Cartesian product of ``axes`` applied over ``base``.

    Each axis keyword must be a RunConfig field; values are swept in the
    given order, last axis fastest.
    """
    for field in axes:
        if not hasattr(base, field):
            raise ValueError(f"RunConfig has no field {field!r}")
    names = list(axes)
    combos = itertools.product(*(axes[name] for name in names))
    return [base.with_(**dict(zip(names, combo))) for combo in combos]


def run_grid(configs: Iterable[RunConfig], check: bool = True,
             progress=None) -> List[Dict]:
    """Simulate every config; returns flat result rows (config + metrics).

    ``progress`` is an optional callable invoked as ``progress(i, total,
    result)`` after each run (hook for logging long sweeps).
    """
    configs = list(configs)
    rows: List[Dict] = []
    for i, cfg in enumerate(configs):
        result = run_config(cfg, check=check)
        row: Dict = {
            "workload": cfg.workload,
            "core_type": cfg.core_type,
            "n_threads": cfg.n_threads,
            "n_cores": cfg.n_cores,
            "context_fraction": cfg.context_fraction,
            "policy": cfg.policy,
            "cycles": result.cycles,
            "instructions": result.instructions,
            "ipc": result.ipc,
        }
        if result.rf_hit_rate is not None:
            row["rf_hit_rate"] = result.rf_hit_rate
        rows.append(row)
        if progress is not None:
            progress(i + 1, len(configs), result)
    return rows


def best_by(rows: Sequence[Dict], metric: str = "ipc",
            group: Sequence[str] = ("workload",)) -> List[Dict]:
    """Best row per group key (highest ``metric``)."""
    best: Dict[tuple, Dict] = {}
    for row in rows:
        key = tuple(row.get(g) for g in group)
        if key not in best or row[metric] > best[key][metric]:
            best[key] = row
    return [best[k] for k in sorted(best)]
