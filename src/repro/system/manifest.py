"""Run manifests: everything needed to reproduce a simulation exactly.

A manifest captures the configuration, seeds, package version, and a
digest of the results; saving one next to experiment outputs lets a reader
re-run the exact configuration later and byte-compare.  Used by the CLI's
``--manifest`` option and directly from Python.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import sys
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from .. import __version__
from .config import RunConfig
from .simulator import RunResult


#: opt-in RunConfig fields added *after* digests were already in the wild:
#: when left at their ``None`` default they are dropped from digest
#: payloads, so config keys and manifest digests recorded before the field
#: existed remain byte-identical (and checkpoint journals stay resumable).
#: A non-None value still enters the digest — two configs differing only
#: in an active campaign remain distinguishable.
_DIGEST_OPTIONAL_FIELDS = ("metrics", "profile")

#: fields dropped from digest payloads *unconditionally*: the step engine
#: is byte-identical by construction (the equivalence suite enforces it),
#: so two runs differing only in engine are the same run — a digest must
#: name the simulated machine, not the host-side execution strategy.
_DIGEST_EXCLUDED_FIELDS = ("engine",)


def config_payload(cfg: RunConfig) -> Dict:
    """``asdict(cfg)`` normalized for digesting (see above)."""
    payload = dataclasses.asdict(cfg)
    for name in _DIGEST_OPTIONAL_FIELDS:
        if payload.get(name) is None:
            payload.pop(name, None)
    for name in _DIGEST_EXCLUDED_FIELDS:
        payload.pop(name, None)
    return payload


def config_key(cfg: RunConfig) -> str:
    """Stable 16-hex-digit digest of one RunConfig.

    Used as the row identity of the resilient sweep's checkpoint journal
    (a resumed sweep matches completed rows by this key, so reordering or
    extending the grid between invocations is safe) and available to
    manifest consumers for the same purpose.
    """
    payload = json.dumps(config_payload(cfg), sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class RunManifest:
    """Reproducibility record of one or more runs."""

    repro_version: str = __version__
    python_version: str = field(default_factory=lambda: sys.version.split()[0])
    platform: str = field(default_factory=platform.platform)
    configs: List[Dict] = field(default_factory=list)
    results_digest: str = ""
    results_summary: List[Dict] = field(default_factory=list)
    #: per-run host-side wall-clock profiles (phase seconds, instr/s).
    #: Machine-dependent by nature, so deliberately *excluded* from the
    #: reproducibility digest — kept to track simulator performance
    #: run-over-run alongside the deterministic results.
    host_profiles: List[Optional[Dict]] = field(default_factory=list)

    def add(self, result: RunResult) -> None:
        self.configs.append(config_payload(result.config))
        self.results_summary.append({
            "cycles": result.cycles,
            "instructions": result.instructions,
            "ipc": round(result.ipc, 6),
            "rf_hit_rate": (round(result.rf_hit_rate, 6)
                            if result.rf_hit_rate is not None else None),
        })
        self.host_profiles.append(getattr(result, "host_profile", None))
        self.results_digest = self._digest()

    def _digest(self) -> str:
        payload = json.dumps([self.configs, self.results_summary],
                             sort_keys=True, default=str)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(asdict(self), indent=indent, default=str)

    def save(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "RunManifest":
        with open(path) as f:
            data = json.load(f)
        m = cls(repro_version=data["repro_version"],
                python_version=data["python_version"],
                platform=data["platform"],
                configs=data["configs"],
                results_digest=data["results_digest"],
                results_summary=data["results_summary"],
                host_profiles=data.get("host_profiles", []))
        return m

    def replay_config(self, index: int = 0) -> RunConfig:
        """Reconstruct the RunConfig of entry ``index`` for re-running."""
        return RunConfig(**self.configs[index])

    def verify_against(self, results: List[RunResult]) -> bool:
        """True iff re-run results match the recorded summary exactly."""
        fresh = RunManifest()
        for r in results:
            fresh.add(r)
        return fresh.results_digest == self.results_digest
