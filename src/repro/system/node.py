"""Multi-processor near-memory node (the Figure 11 system).

N near-memory processors share the crossbar and DRAM.  Each processor runs
its own instance of the workload (its own offloaded task batch); an address
skew decorrelates per-core data regions in the shared DRAM mapping, exactly
as distinct physical allocations would.  Cores advance in a
smallest-local-clock-first interleaving so cross-core memory contention is
observed in (approximate) global time order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import DeadlockError
from ..memory.hierarchy import NDPMemorySystem
from ..stats.counters import Stats


class AddressSkew:
    """Per-core address offset between the L1s and the shared crossbar."""

    def __init__(self, next_level, core_id: int, skew_bytes: int = 1 << 28) -> None:
        self.next_level = next_level
        self.offset = core_id * skew_bytes

    def access(self, now: int, line_addr: int, is_write: bool = False,
               requestor: int = 0) -> int:
        return self.next_level.access(now, line_addr + self.offset,
                                      is_write=is_write, requestor=requestor)


@dataclass
class NodeResult:
    stats: Stats
    cores: list
    cycles: int
    instructions: int

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def merged_stats(self, name: str = "cores") -> Stats:
        """Structural aggregate of every core's stats tree.

        Uses :meth:`Stats.merge`, so nested namespaces (vrmu, bsi, ...)
        sum counter-by-counter across cores instead of requiring callers
        to hand-flatten dicts.  Note ``cycles`` sums too — use
        ``self.cycles`` (the max) for wall-clock-style totals.
        """
        merged = Stats(name)
        for core in self.cores:
            merged.merge(core.stats)
        return merged


class NearMemoryNode:
    """Builds and runs N cores over a shared NDP memory system.

    ``core_factory(core_id, icache, dcache) -> core`` constructs each
    processor (the factory owns workload instantiation so every core gets
    its own task batch).
    """

    def __init__(self, n_cores: int, memsys: NDPMemorySystem,
                 core_factory: Callable, stats: Optional[Stats] = None) -> None:
        self.stats = stats if stats is not None else Stats("node")
        self.memsys = memsys
        self.cores = []
        for cid in range(n_cores):
            ports = memsys.ports(cid)
            # interpose the skew between each L1 and the shared crossbar
            skew = AddressSkew(memsys.crossbar, cid)
            ports.icache.next_level = skew
            ports.dcache.next_level = skew
            self.cores.append(core_factory(cid, ports.icache, ports.dcache))

    def run(self, max_cycles: Optional[int] = None) -> NodeResult:
        """Interleave cores by local clock until all complete.

        ``max_cycles`` is a per-run watchdog: once the slowest core's local
        clock exceeds it the run aborts with :class:`DeadlockError` (the
        resilient sweep runner turns that into a structured RunFailure
        instead of hanging a multi-hour grid on one bad configuration).
        """
        live = list(self.cores)
        while live:
            core = min(live, key=lambda c: c.now)
            if max_cycles is not None and core.now > max_cycles:
                raise DeadlockError(
                    f"cycle budget exceeded ({core.now} > {max_cycles})",
                    commit_tail=int(getattr(core, "commit_tail", core.now)),
                    committed=sum(
                        int(getattr(th, "instructions", 0))
                        for c in self.cores
                        for th in getattr(c, "threads", ())))
            if not core.step():
                core.finalize_stats()
                live.remove(core)
        cycles = max(int(c.stats["cycles"]) for c in self.cores)
        instructions = sum(int(c.stats["instructions"]) for c in self.cores)
        self.stats.set("cycles", cycles)
        self.stats.set("instructions", instructions)
        self.stats.set("ipc", instructions / cycles if cycles else 0.0)
        return NodeResult(stats=self.stats, cores=self.cores, cycles=cycles,
                          instructions=instructions)
