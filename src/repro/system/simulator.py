"""Top-level simulation driver: RunConfig -> stats.

This is the single entry point used by the experiment drivers, the
benchmarks, and the examples.  It instantiates the workload, memory system,
and core(s) described by a :class:`~repro.system.config.RunConfig`, runs to
completion, verifies functional correctness against the workload's numpy
oracle, and returns a result record.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from .. import workloads
from ..core.cgmt import BankedCore, SoftwareSwitchCore
from ..core.engine import resolve_engine
from ..errors import FunctionalCheckError, RunFailure, SimulationError
from ..core.fgmt import FGMTCore
from ..core.inorder import InOrderCore
from ..core.ooo import OoOCore
from ..core.prefetch import ExactPrefetchCore, FullContextPrefetchCore
from ..memory.hierarchy import HostMemorySystem, NDPMemorySystem
from ..stats.counters import Stats
from ..virec import ViReCConfig, ViReCCore, make_nsf_core
from .config import OOO_CLOCK_RATIO, RunConfig, ndp_dcache, ndp_icache, table1_dram
from .node import NearMemoryNode, NodeResult
from .offload import offload_contexts
from .plugins import registered as registered_plugins


@dataclass
class RunResult:
    """Outcome of one simulated configuration."""

    config: RunConfig
    cycles: int
    instructions: int
    ipc: float
    stats: Stats
    rf_hit_rate: Optional[float] = None
    correct: bool = True
    #: the run's :class:`~repro.telemetry.TelemetrySession` when the config
    #: asked for one (None otherwise)
    telemetry: Optional[object] = None
    #: the run's :class:`~repro.sanitizer.Sanitizer` when the config asked
    #: for one (None otherwise); a returned result means no violation fired
    sanitizer: Optional[object] = None
    #: the run's :class:`~repro.metrics.MetricsSession` when the config
    #: asked for one (None otherwise).  Workers replace the live session
    #: with its plain :meth:`~repro.metrics.MetricsSession.snapshot` dict
    #: before shipping a result across a process boundary.
    metrics: Optional[object] = None
    #: the run's :class:`~repro.profiling.ProfileSession` when the config
    #: asked for one (None otherwise); carries the verified per-cause/
    #: per-thread/per-PC cycle attribution.  Workers fold it to its plain
    #: snapshot dict before shipping across a process boundary.
    profile: Optional[object] = None
    #: host-side wall-clock profile (phase seconds + instr/s); always
    #: collected — it never feeds back into simulated timing
    host_profile: Optional[Dict] = None

    @property
    def speedup_base(self) -> float:
        return self.ipc


def _make_core(cfg: RunConfig, instance, icache, dcache, core_id=0, stats=None):
    threads = instance.threads()
    layout = instance.layout()
    if cfg.core_type != "inorder":
        from ..core.base import ThreadState
        offload_contexts(instance.memory, layout, threads,
                         instance.init_regs, stagger=cfg.offload_stagger)
        if cfg.offload_stagger:
            for th in threads:
                th.state = ThreadState.BLOCKED

    # simulator-built cores run the RunConfig's step engine (threaded-code
    # by default); directly constructed cores stay interpreted
    common = dict(stats=stats, core_id=core_id, layout=layout,
                  engine=resolve_engine(cfg.engine))
    if cfg.core_type == "banked":
        return BankedCore(instance.program, icache, dcache, instance.memory,
                          threads, **common)
    if cfg.core_type == "fgmt":
        return FGMTCore(instance.program, icache, dcache, instance.memory,
                        threads, **common)
    if cfg.core_type == "swctx":
        return SoftwareSwitchCore(instance.program, icache, dcache,
                                  instance.memory, threads, **common)
    if cfg.core_type == "virec":
        rf = cfg.resolve_rf_size(len(instance.active_regs))
        vc = ViReCConfig(rf_size=rf, policy=cfg.policy)
        return ViReCCore(instance.program, icache, dcache, instance.memory,
                         threads, virec=vc, **common)
    if cfg.core_type == "nsf":
        rf = cfg.resolve_rf_size(len(instance.active_regs))
        return make_nsf_core(instance.program, icache, dcache, instance.memory,
                             threads, rf_size=rf, layout=layout,
                             stats=stats, core_id=core_id,
                             engine=resolve_engine(cfg.engine))
    if cfg.core_type == "prefetch-full":
        return FullContextPrefetchCore(instance.program, icache, dcache,
                                       instance.memory, threads, **common)
    if cfg.core_type == "prefetch-exact":
        return ExactPrefetchCore(instance.program, icache, dcache,
                                 instance.memory, threads,
                                 active_regs=instance.active_regs, **common)
    if cfg.core_type == "inorder":
        if len(threads) != 1:
            raise ValueError("inorder runs n_threads=1")
        return InOrderCore(instance.program, icache, dcache, instance.memory,
                           threads, **common)
    raise ValueError(cfg.core_type)  # pragma: no cover


def run_config(cfg: RunConfig, check: bool = True) -> RunResult:
    """Simulate one configuration and return its result record."""
    from ..telemetry import HostProfiler

    spec = workloads.get(cfg.workload)
    profiler = HostProfiler()

    if cfg.core_type == "ooo":
        return _run_ooo(cfg, spec, check, profiler)

    stats = Stats("system")
    with profiler.phase("build"):
        if cfg.dram_preset == "hbm":
            from ..memory.dram import hbm_like_config
            dram = hbm_like_config()
        else:
            dram = table1_dram()
            dram.channels = cfg.dram_channels
            dram.banks_per_channel = cfg.dram_banks
        memsys = NDPMemorySystem(
            n_cores=cfg.n_cores,
            dcache=ndp_dcache(cfg.dcache_kb, cfg.dcache_latency),
            icache=ndp_icache(), dram=dram,
            crossbar_latency=cfg.crossbar_latency, stats=stats.child("mem"))

        instances = []

        def factory(core_id, icache, dcache):
            inst = spec.build(n_threads=cfg.n_threads,
                              n_per_thread=cfg.n_per_thread,
                              seed=cfg.seed + core_id, **cfg.workload_kwargs)
            instances.append(inst)
            core = _make_core(cfg, inst, icache, dcache, core_id=core_id,
                              stats=stats.child(f"core{core_id}"))
            if cfg.n_cores > 1:
                # the node interleaves cores per step() in clock order;
                # superop chains would batch one core's shared-memory
                # traffic and change crossbar/DRAM contention order
                core.set_step_chaining(False)
            return core

        node = NearMemoryNode(cfg.n_cores, memsys, factory,
                              stats=stats.child("node"))
        # subsystem wiring: every registered plugin, in registry order
        # (faults -> telemetry -> sanitizer -> ...); disabled plugins
        # return None and wire nothing (see system/plugins.py)
        plugins = registered_plugins()
        handles = {p.name: p.wire(cfg, node, instances) for p in plugins}

    with profiler.phase("simulate"):
        result = node.run(max_cycles=cfg.max_cycles)
        # e.g. VSan's run-end sweep over the full architectural register
        # file — may raise SanitizerViolation, so it belongs to this phase
        for p in reversed(plugins):
            if p.finalize_simulate is not None and handles[p.name] is not None:
                p.finalize_simulate(handles[p.name], result)
    for p in reversed(plugins):
        if p.finalize is not None and handles[p.name] is not None:
            p.finalize(handles[p.name])
    session = handles.get("telemetry")
    vsan = handles.get("sanitizer")
    metrics = handles.get("metrics")
    profile = handles.get("profile")

    with profiler.phase("check"):
        correct = all(inst.check() for inst in instances) if check else True
    if not correct:
        raise FunctionalCheckError(
            f"functional check failed: {cfg.workload} on {cfg.core_type}")

    hit = None
    core0 = node.cores[0]
    if hasattr(core0, "vrmu"):
        hits = sum(c.vrmu.stats["hits"] for c in node.cores)
        total = hits + sum(c.vrmu.stats["misses"] for c in node.cores)
        hit = hits / total if total else 1.0
    host = profiler.as_dict(
        instructions=result.instructions, cycles=result.cycles,
        events=session.event_count if session is not None else None)
    return RunResult(config=cfg, cycles=result.cycles,
                     instructions=result.instructions, ipc=result.ipc,
                     stats=stats, rf_hit_rate=hit, correct=correct,
                     telemetry=session, sanitizer=vsan, metrics=metrics,
                     profile=profile, host_profile=host)


def _run_ooo(cfg: RunConfig, spec, check: bool, profiler=None) -> RunResult:
    """Single OoO host core over the full (unpartitioned) problem."""
    from ..telemetry import HostProfiler

    if profiler is None:
        profiler = HostProfiler()
    # the ooo host core does not run on the timeline engine, so none of
    # the registered subsystem plugins can be wired to it — and there is
    # no step body to compile (None silently keeps the ooo model's own
    # loop; only an *explicit* compiled request is an error)
    if cfg.engine == "compiled":
        raise ValueError("core_type 'ooo' does not support engine='compiled'"
                         " (no timeline step to compile)")
    for p in registered_plugins():
        if p.ooo_error is not None and p.enabled(cfg):
            raise ValueError(p.ooo_error)
    with profiler.phase("build"):
        inst = spec.build(n_threads=1,
                          n_per_thread=cfg.n_per_thread * cfg.n_threads,
                          seed=cfg.seed, **cfg.workload_kwargs)
        host = HostMemorySystem(dram=table1_dram())
        stats = Stats("ooo-system")
        core = OoOCore(inst.program, host.icache, host.dcache, inst.memory,
                       stats=stats.child("core0"))
    with profiler.phase("simulate"):
        core_stats = core.run(inst.init_regs[0] if inst.init_regs else None)
    with profiler.phase("check"):
        if check and not inst.check():
            raise FunctionalCheckError(
                f"functional check failed: {cfg.workload} on ooo")
    # normalize to NDP cycles: the host runs at 2 GHz
    cycles = int(core_stats["cycles"] / OOO_CLOCK_RATIO)
    instructions = int(core_stats["instructions"])
    return RunResult(config=cfg, cycles=cycles, instructions=instructions,
                     ipc=instructions / cycles if cycles else 0.0,
                     stats=stats, correct=True,
                     host_profile=profiler.as_dict(instructions=instructions,
                                                   cycles=cycles))


class ResultList(List[Optional[RunResult]]):
    """A list of per-config results that also carries structured failures.

    Behaves exactly like a plain list (so existing callers are unaffected);
    isolated-error sweeps leave ``None`` at a failed config's position —
    keeping results aligned with the input configs — and append the
    corresponding :class:`~repro.errors.RunFailure` to ``failures``.
    """

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.failures: List[RunFailure] = []


def sweep(configs: List[RunConfig], check: bool = True,
          on_error: str = "raise", jobs: Optional[int] = None,
          backend=None, ledger=None) -> List[RunResult]:
    """Run a list of configurations (the experiment drivers' workhorse).

    ``on_error="raise"`` (default) keeps the historical fail-fast contract.
    ``on_error="isolate"`` records each failing config as a RunFailure on
    the returned :class:`ResultList` (with ``None`` as its placeholder
    entry) and keeps going, so one bad configuration cannot abort a grid.

    ``jobs``/``backend`` select the execution backend (see
    :mod:`repro.exec`): the default is serial, in-process; ``jobs=N``
    fans the configs out over N spawn workers with results returned in
    config order — parallel and serial sweeps of the same list produce
    identical result digests.

    ``ledger`` (a path or open :class:`~repro.ledger.Recorder`) appends
    every successful result to the run ledger (``source="sweep"``); when
    ``backend`` is a :class:`~repro.ledger.CachedBackend` the argument is
    ignored — the cache records its own misses.
    """
    if on_error not in ("raise", "isolate"):
        raise ValueError(f"on_error must be 'raise' or 'isolate', "
                         f"not {on_error!r}")
    from ..exec import SerialBackend, resolve_backend, sweep_worker
    backend = resolve_backend(jobs, backend)
    recorder = owns_recorder = None
    if ledger is not None:
        from ..ledger.store import open_recorder
        recorder, owns_recorder = open_recorder(ledger, backend)

    def _record(result: Optional[RunResult]) -> None:
        if recorder is not None and result is not None:
            recorder.record_result(result, source="sweep", checked=check)

    try:
        if isinstance(backend, SerialBackend):
            # in-process path: call run_config through this module's global
            # so tests (and downstream embedders) that monkeypatch it apply
            if on_error == "raise":
                out: List[RunResult] = []
                for c in configs:
                    result = run_config(c, check=check)
                    _record(result)
                    out.append(result)
                return out
            results = ResultList()
            for i, cfg in enumerate(configs):
                try:
                    result = run_config(cfg, check=check)
                    _record(result)
                    results.append(result)
                except SimulationError as exc:
                    results.append(None)
                    results.failures.append(RunFailure.from_exception(
                        exc, index=i, config=asdict(cfg)))
            return results

        from ..exec import WorkerCrash
        tagged = backend.map(sweep_worker,
                             [(i, cfg, check)
                              for i, cfg in enumerate(configs)])
        if on_error == "raise":
            out = []
            for i, item in enumerate(tagged):
                if isinstance(item, WorkerCrash):
                    raise item.to_error()
                if item[0] == "err":
                    raise item[2]
                _record(item[1])
                out.append(item[1])
            return out
        results = ResultList()
        for i, item in enumerate(tagged):
            if isinstance(item, WorkerCrash):
                results.append(None)
                results.failures.append(RunFailure.from_exception(
                    item.to_error(), index=i, config=asdict(configs[i])))
            elif item[0] == "ok":
                _record(item[1])
                results.append(item[1])
            else:
                results.append(None)
                results.failures.append(item[1])
        return results
    finally:
        if owns_recorder and recorder is not None:
            recorder.close()
