"""Top-level simulation driver: RunConfig -> stats.

This is the single entry point used by the experiment drivers, the
benchmarks, and the examples.  It instantiates the workload, memory system,
and core(s) described by a :class:`~repro.system.config.RunConfig`, runs to
completion, verifies functional correctness against the workload's numpy
oracle, and returns a result record.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

from .. import workloads
from ..core.cgmt import BankedCore, SoftwareSwitchCore
from ..errors import FunctionalCheckError, RunFailure, SimulationError
from ..core.fgmt import FGMTCore
from ..core.inorder import InOrderCore
from ..core.ooo import OoOCore
from ..core.prefetch import ExactPrefetchCore, FullContextPrefetchCore
from ..memory.hierarchy import HostMemorySystem, NDPMemorySystem
from ..stats.counters import Stats
from ..virec import ViReCConfig, ViReCCore, make_nsf_core
from .config import OOO_CLOCK_RATIO, RunConfig, ndp_dcache, ndp_icache, table1_dram
from .node import NearMemoryNode, NodeResult
from .offload import offload_contexts


@dataclass
class RunResult:
    """Outcome of one simulated configuration."""

    config: RunConfig
    cycles: int
    instructions: int
    ipc: float
    stats: Stats
    rf_hit_rate: Optional[float] = None
    correct: bool = True
    #: the run's :class:`~repro.telemetry.TelemetrySession` when the config
    #: asked for one (None otherwise)
    telemetry: Optional[object] = None
    #: the run's :class:`~repro.sanitizer.Sanitizer` when the config asked
    #: for one (None otherwise); a returned result means no violation fired
    sanitizer: Optional[object] = None
    #: host-side wall-clock profile (phase seconds + instr/s); always
    #: collected — it never feeds back into simulated timing
    host_profile: Optional[Dict] = None

    @property
    def speedup_base(self) -> float:
        return self.ipc


def _make_core(cfg: RunConfig, instance, icache, dcache, core_id=0, stats=None):
    threads = instance.threads()
    layout = instance.layout()
    if cfg.core_type != "inorder":
        from ..core.base import ThreadState
        offload_contexts(instance.memory, layout, threads,
                         instance.init_regs, stagger=cfg.offload_stagger)
        if cfg.offload_stagger:
            for th in threads:
                th.state = ThreadState.BLOCKED

    common = dict(stats=stats, core_id=core_id, layout=layout)
    if cfg.core_type == "banked":
        return BankedCore(instance.program, icache, dcache, instance.memory,
                          threads, **common)
    if cfg.core_type == "fgmt":
        return FGMTCore(instance.program, icache, dcache, instance.memory,
                        threads, **common)
    if cfg.core_type == "swctx":
        return SoftwareSwitchCore(instance.program, icache, dcache,
                                  instance.memory, threads, **common)
    if cfg.core_type == "virec":
        rf = cfg.resolve_rf_size(len(instance.active_regs))
        vc = ViReCConfig(rf_size=rf, policy=cfg.policy)
        return ViReCCore(instance.program, icache, dcache, instance.memory,
                         threads, virec=vc, **common)
    if cfg.core_type == "nsf":
        rf = cfg.resolve_rf_size(len(instance.active_regs))
        return make_nsf_core(instance.program, icache, dcache, instance.memory,
                             threads, rf_size=rf, layout=layout,
                             stats=stats, core_id=core_id)
    if cfg.core_type == "prefetch-full":
        return FullContextPrefetchCore(instance.program, icache, dcache,
                                       instance.memory, threads, **common)
    if cfg.core_type == "prefetch-exact":
        return ExactPrefetchCore(instance.program, icache, dcache,
                                 instance.memory, threads,
                                 active_regs=instance.active_regs, **common)
    if cfg.core_type == "inorder":
        if len(threads) != 1:
            raise ValueError("inorder runs n_threads=1")
        return InOrderCore(instance.program, icache, dcache, instance.memory,
                           threads, **common)
    raise ValueError(cfg.core_type)  # pragma: no cover


def run_config(cfg: RunConfig, check: bool = True) -> RunResult:
    """Simulate one configuration and return its result record."""
    from ..telemetry import HostProfiler

    spec = workloads.get(cfg.workload)
    profiler = HostProfiler()

    if cfg.core_type == "ooo":
        return _run_ooo(cfg, spec, check, profiler)

    stats = Stats("system")
    with profiler.phase("build"):
        if cfg.dram_preset == "hbm":
            from ..memory.dram import hbm_like_config
            dram = hbm_like_config()
        else:
            dram = table1_dram()
            dram.channels = cfg.dram_channels
            dram.banks_per_channel = cfg.dram_banks
        memsys = NDPMemorySystem(
            n_cores=cfg.n_cores,
            dcache=ndp_dcache(cfg.dcache_kb, cfg.dcache_latency),
            icache=ndp_icache(), dram=dram,
            crossbar_latency=cfg.crossbar_latency, stats=stats.child("mem"))

        instances = []

        def factory(core_id, icache, dcache):
            inst = spec.build(n_threads=cfg.n_threads,
                              n_per_thread=cfg.n_per_thread,
                              seed=cfg.seed + core_id, **cfg.workload_kwargs)
            instances.append(inst)
            return _make_core(cfg, inst, icache, dcache, core_id=core_id,
                              stats=stats.child(f"core{core_id}"))

        node = NearMemoryNode(cfg.n_cores, memsys, factory,
                              stats=stats.child("node"))
        _wire_fault_injection(cfg, node, instances)
        session = _wire_telemetry(cfg, node)
        vsan = _wire_sanitizer(cfg, node, instances)

    with profiler.phase("simulate"):
        result = node.run(max_cycles=cfg.max_cycles)
        if vsan is not None:
            # run-end sweep over the full architectural register file (the
            # only check point at granularity="run"); raises
            # SanitizerViolation on divergence
            vsan.finalize(result.cycles)
    if session is not None:
        session.finalize()

    with profiler.phase("check"):
        correct = all(inst.check() for inst in instances) if check else True
    if not correct:
        raise FunctionalCheckError(
            f"functional check failed: {cfg.workload} on {cfg.core_type}")

    hit = None
    core0 = node.cores[0]
    if hasattr(core0, "vrmu"):
        hits = sum(c.vrmu.stats["hits"] for c in node.cores)
        total = hits + sum(c.vrmu.stats["misses"] for c in node.cores)
        hit = hits / total if total else 1.0
    host = profiler.as_dict(
        instructions=result.instructions, cycles=result.cycles,
        events=session.event_count if session is not None else None)
    return RunResult(config=cfg, cycles=result.cycles,
                     instructions=result.instructions, ipc=result.ipc,
                     stats=stats, rf_hit_rate=hit, correct=correct,
                     telemetry=session, sanitizer=vsan, host_profile=host)


def _wire_telemetry(cfg: RunConfig, node):
    """Attach a TelemetrySession when the config asks for one.

    Strictly opt-in, and purely observational even when on: cycle counts
    with telemetry enabled are identical to a run without it (enforced by
    tests/telemetry/test_noop.py).  Must run *after* fault-injection
    wiring so fault events reach the session's event ring.
    """
    if cfg.telemetry is None:
        return None
    from ..telemetry import TelemetryConfig, TelemetrySession
    tc = TelemetryConfig.from_spec(cfg.telemetry)
    if not tc.enabled:
        return None
    session = TelemetrySession(tc)
    for core in node.cores:
        session.attach(core)
    return session


def _wire_sanitizer(cfg: RunConfig, node, instances):
    """Attach a VSan Sanitizer when the config asks for one.

    Strictly opt-in, and purely observational when on: a sanitize-on run
    that raises no violation is cycle-identical to a sanitize-off run
    (enforced by tests/sanitizer/test_noop.py).  Wired *after* fault
    injection so injected corruption is visible to the shadow checks —
    the fault subsystem doubles as VSan's test oracle.
    """
    if cfg.sanitize is None:
        return None
    from ..sanitizer import SanitizeConfig, Sanitizer
    sc = SanitizeConfig.from_spec(cfg.sanitize)
    if not sc.enabled:
        return None
    vsan = Sanitizer(sc)
    for core, inst in zip(node.cores, instances):
        vsan.attach(core, inst.memory)
    return vsan


def _wire_fault_injection(cfg: RunConfig, node, instances) -> None:
    """Attach a per-core FaultInjector when the config asks for one.

    Strictly opt-in: with ``cfg.faults`` unset (or all rates zero and no
    scheduled flips) nothing is wired and the run is bit-identical to one
    on a build without the fault subsystem.
    """
    if cfg.faults is None:
        return
    from ..faults import FaultConfig, FaultInjector
    fc = FaultConfig.from_spec(cfg.faults)
    if not fc.enabled:
        return
    for cid, (core, inst) in enumerate(zip(node.cores, instances)):
        FaultInjector.attach(
            core, fc.reseeded(fc.seed + 1009 * cid + cfg.seed),
            stats=core.stats.child("faults"), regs=inst.active_regs)


def _run_ooo(cfg: RunConfig, spec, check: bool, profiler=None) -> RunResult:
    """Single OoO host core over the full (unpartitioned) problem."""
    from ..telemetry import HostProfiler, TelemetryConfig

    if profiler is None:
        profiler = HostProfiler()
    if cfg.faults is not None:
        from ..faults import FaultConfig
        if FaultConfig.from_spec(cfg.faults).enabled:
            raise ValueError("fault injection is not modelled for the ooo "
                             "host core (its RF is not a ViReC-style cache)")
    if cfg.telemetry is not None and TelemetryConfig.from_spec(
            cfg.telemetry).enabled:
        raise ValueError("telemetry is not modelled for the ooo host core "
                         "(it does not run on the timeline engine)")
    if cfg.sanitize is not None:
        from ..sanitizer import SanitizeConfig
        if SanitizeConfig.from_spec(cfg.sanitize).enabled:
            raise ValueError("the sanitizer is not modelled for the ooo "
                             "host core (it does not run on the timeline "
                             "engine)")
    with profiler.phase("build"):
        inst = spec.build(n_threads=1,
                          n_per_thread=cfg.n_per_thread * cfg.n_threads,
                          seed=cfg.seed, **cfg.workload_kwargs)
        host = HostMemorySystem(dram=table1_dram())
        stats = Stats("ooo-system")
        core = OoOCore(inst.program, host.icache, host.dcache, inst.memory,
                       stats=stats.child("core0"))
    with profiler.phase("simulate"):
        core_stats = core.run(inst.init_regs[0] if inst.init_regs else None)
    with profiler.phase("check"):
        if check and not inst.check():
            raise FunctionalCheckError(
                f"functional check failed: {cfg.workload} on ooo")
    # normalize to NDP cycles: the host runs at 2 GHz
    cycles = int(core_stats["cycles"] / OOO_CLOCK_RATIO)
    instructions = int(core_stats["instructions"])
    return RunResult(config=cfg, cycles=cycles, instructions=instructions,
                     ipc=instructions / cycles if cycles else 0.0,
                     stats=stats, correct=True,
                     host_profile=profiler.as_dict(instructions=instructions,
                                                   cycles=cycles))


class ResultList(List[Optional[RunResult]]):
    """A list of per-config results that also carries structured failures.

    Behaves exactly like a plain list (so existing callers are unaffected);
    isolated-error sweeps leave ``None`` at a failed config's position —
    keeping results aligned with the input configs — and append the
    corresponding :class:`~repro.errors.RunFailure` to ``failures``.
    """

    def __init__(self, *args) -> None:
        super().__init__(*args)
        self.failures: List[RunFailure] = []


def sweep(configs: List[RunConfig], check: bool = True,
          on_error: str = "raise") -> List[RunResult]:
    """Run a list of configurations (the experiment drivers' workhorse).

    ``on_error="raise"`` (default) keeps the historical fail-fast contract.
    ``on_error="isolate"`` records each failing config as a RunFailure on
    the returned :class:`ResultList` (with ``None`` as its placeholder
    entry) and keeps going, so one bad configuration cannot abort a grid.
    """
    if on_error not in ("raise", "isolate"):
        raise ValueError(f"on_error must be 'raise' or 'isolate', "
                         f"not {on_error!r}")
    if on_error == "raise":
        return [run_config(c, check=check) for c in configs]
    results = ResultList()
    for i, cfg in enumerate(configs):
        try:
            results.append(run_config(cfg, check=check))
        except SimulationError as exc:
            results.append(None)
            results.failures.append(RunFailure.from_exception(
                exc, index=i, config=asdict(cfg)))
    return results
